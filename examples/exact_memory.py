"""Section 6 walkthrough: exact alignment without quadratic memory.

Re-enacts the paper's worked example (Tables 5-7) step by step:

1. the forward linear-space scan detects the score-6 alignment endpoint;
2. the dynamic programming over the *reversed prefixes* finds the start
   (Observation 6.1);
3. Theorem 6.2's zero-elimination band prunes the reverse corner, and the
   measured computed fraction converges to the ~30% the paper derives in
   Eqs. 2-3.

Run:  python examples/exact_memory.py
"""

from repro.core import (
    band_limit,
    exact_best_alignment,
    predicted_necessary_fraction,
    reverse_scan,
    sw_best_endpoint,
)
from repro.seq import decode, encode, mutate, random_dna

# The exact input of the paper's Section 6 example.
S = "TCTCGACGGATTAGTATATATATA"
T = "ATATGATCGGAATAGCTCT"

print("=== Step 1: forward scan (Table 5) ===")
endpoint = sw_best_endpoint(T, S)  # the shorter word indexes the rows
print(
    f"alignment of score {endpoint.score} detected at positions "
    f"({endpoint.i}, {endpoint.j})  [paper: score 6 at (14, 15) of s x t]"
)

print("\n=== Step 2: reverse-prefix scan (Tables 6-7) ===")
scan = reverse_scan(encode(T)[: endpoint.i], encode(S)[: endpoint.j], endpoint.score)
print(
    f"score {scan.score} reappears at reverse cell ({scan.rev_i}, {scan.rev_j}) "
    f"-> the alignment starts {scan.rev_i} rows / {scan.rev_j} columns before "
    "its end"
)
print(
    f"banded scan computed {scan.cells_computed} cells vs the naive "
    f"{scan.cells_full} ({scan.computed_fraction:.0%})"
)
print("useful-area border (k + ceil(k/2), Section 6):",
      [band_limit(k) for k in range(1, 9)])

print("\n=== Step 3: the rebuilt alignment ===")
exact = exact_best_alignment(T, S)
print(exact.result.alignment.render())
print(
    f"s[{exact.result.s_start}:{exact.result.s_end}] vs "
    f"t[{exact.result.t_start}:{exact.result.t_end}], "
    f"score {exact.result.alignment.score}"
)

print("\n=== The ~30% claim at scale (Eqs. 2-3) ===")
print(f"{'n-prime':>8s} {'computed':>12s} {'fraction':>9s} {'predicted':>9s}")
for n in (100, 400, 1600):
    seq = random_dna(n, rng=n)
    worst = reverse_scan(seq, seq, n)  # identical pair: the worst case
    print(
        f"{n:>8d} {worst.cells_computed:>12,d} "
        f"{worst.computed_fraction:>8.1%} {predicted_necessary_fraction(n):>8.1%}"
    )

print("\nOn realistic (mutated) alignments the reverse scan usually stops")
print("well before the worst case:")
a = random_dna(1200, rng=5)
b = mutate(a, 0.08, rng=6)
exact = exact_best_alignment(a, b)
print(
    f"1200 BP pair at 8% divergence: alignment of score "
    f"{exact.result.alignment.score}, reverse scan computed "
    f"{exact.scan.computed_fraction:.1%} of its corner"
)
