"""The real shared-memory backend: the paper's algorithm on actual processes.

The simulated cluster reproduces the paper's *measurements*; this example
runs the same blocked wave-front with genuine OS processes sharing a
:mod:`multiprocessing.shared_memory` segment (JIAJIA's stand-in), then
verifies both backends return the same alignment queue.

On a single-core host the workers serialise -- correctness is unaffected.

Run:  python examples/real_multiprocessing.py
"""

import os
import time

from repro.parallel import MpBlockedConfig, mp_blocked_alignments, mp_phase2
from repro.seq import genome_pair
from repro.strategies import BlockedConfig, ScaledWorkload, run_blocked

pair = genome_pair(3000, 3000, n_regions=3, region_length=150, mutation_rate=0.03, rng=17)
workers = min(4, os.cpu_count() or 1)
print(f"host has {os.cpu_count()} CPU(s); using {workers} worker process(es)\n")

t0 = time.perf_counter()
real = mp_blocked_alignments(
    pair.s, pair.t, MpBlockedConfig(n_workers=workers, n_bands=12, n_blocks=8)
)
wall = time.perf_counter() - t0
print(f"real backend: {len(real)} regions in {wall:.2f} wall-clock s")

sim = run_blocked(
    ScaledWorkload(pair.s, pair.t),
    BlockedConfig(n_procs=workers, n_bands=12, n_blocks=8),
).alignments
agree = [a.region for a in real] == [a.region for a in sim]
print(f"simulated backend found the same queue: {agree}")

print("\ntop regions:")
for a in real[:3]:
    print(f"  score {a.score}: s[{a.s_start}:{a.s_end}] ~ t[{a.t_start}:{a.t_end}]")

print("\nphase 2 on the worker pool:")
records = mp_phase2(pair.s, pair.t, real[:5], n_workers=workers)
for rec in records[:2]:
    print()
    print(rec.render())
