"""Drive the simulated cluster at paper scale and study the strategies.

Reproduces, for one 50 kBP comparison, the paper's core performance story:

* strategy 1 (heuristic, per-row border exchange) scales poorly;
* strategy 2 (blocked) gets near-linear speed-ups, sensitive to the
  blocking multiplier (Table 3);
* strategy 3 (pre_process) trades alignment tracking for raw speed.

The kernels run on 5 kBP of real data while the virtual clock is charged
at nominal 50 kBP scale (see DESIGN.md, "Workload scaling").

Run:  python examples/cluster_simulation.py
"""

from repro.seq import genome_pair
from repro.strategies import (
    BlockedConfig,
    PreprocessConfig,
    ScaledWorkload,
    WavefrontConfig,
    run_blocked,
    run_preprocess,
    run_wavefront,
    serial_blocked_time,
    serial_preprocess_time,
    serial_wavefront_time,
)

pair = genome_pair(5000, 5000, n_regions=3, region_length=150, rng=3)
workload = ScaledWorkload(pair.s, pair.t, scale=10)  # nominal 50 kBP
print(f"nominal problem: {workload.nominal_rows} x {workload.nominal_cols} cells\n")

print("=== strategy 1: heuristic (no blocking factors) ===")
serial = serial_wavefront_time(workload)
print(f"serial: {serial:,.0f} virtual s (paper Table 1: 3461 s)")
for procs in (2, 4, 8):
    res = run_wavefront(workload, WavefrontConfig(n_procs=procs))
    print(
        f"  {procs} procs: {res.total_time:,.0f} s  "
        f"speed-up {serial / res.total_time:.2f}"
    )

print("\n=== strategy 2: heuristic with blocking factors ===")
serial_b = serial_blocked_time(workload)
print(f"serial: {serial_b:,.0f} virtual s (paper Table 4: 2620.64 s)")
for multiplier in ((1, 1), (3, 3), (5, 5)):
    res = run_blocked(workload, BlockedConfig(n_procs=8, multiplier=multiplier))
    print(
        f"  8 procs, multiplier {multiplier}: {res.total_time:,.0f} s  "
        f"speed-up {serial_b / res.total_time:.2f}"
    )

print("\n=== strategy 3: pre_process (exact, result matrix only) ===")
config = PreprocessConfig(n_procs=8, band_size=1000, chunk_size=1000, io_mode="immediate")
serial_p = serial_preprocess_time(workload, PreprocessConfig(n_procs=1, band_size=1000))
res = run_preprocess(workload, config)
matrix = res.extras["result_matrix"]
print(f"serial: {serial_p:,.0f} virtual s; 8 procs: {res.total_time:,.0f} s")
print(f"result matrix: {matrix.shape[0]} bands x {matrix.shape[1]} column groups")
hot = matrix.max()
print(f"hottest cell holds {hot} above-threshold hits -> an 'interesting region'")
print(f"disk written: {sum(res.extras['disk_bytes']) / 1e6:.1f} MB (immediate NFS mode)")

print("\n=== auto-tuning the decomposition (Table 3, automated) ===")
from repro.strategies import tune_blocking

tuned = tune_blocking(50_000, 50_000, n_procs=8, actual=500)
print(
    f"best multiplier {tuned.best[0]} x {tuned.best[1]}: "
    f"{tuned.best_time:,.0f} s; gain over 1 x 1: "
    f"{(tuned.gain_over((1, 1)) - 1):.0%}"
)

print("\n=== Section 7 future work: two sub-clusters over a slow link ===")
from repro.strategies import HeteroConfig, SubCluster, run_hetero

hetero = run_hetero(
    workload, HeteroConfig(clusters=(SubCluster(8, 1.0), SubCluster(4, 2.0)))
)
print(
    f"(8 x 1.0) + (4 x 2.0) nodes: {hetero.total_time:,.0f} s, columns split "
    f"{hetero.extras['column_split']}"
)

print("\nper-node breakdown of the 8-proc non-blocked run (Fig. 10 flavour):")
res = run_wavefront(workload, WavefrontConfig(n_procs=8))
for node in res.stats.nodes[:3]:
    fr = node.breakdown.fractions()
    print(
        f"  node {node.node_id}: "
        + ", ".join(f"{k} {v:.0%}" for k, v in fr.items())
        + f"; {node.page_faults} page faults, {node.lock_acquires} lock acquires"
    )
