"""Compare two (synthetic) genomes end to end -- the GenomeDSM pipeline.

Phase 1 finds the similar regions with the blocked wave-front strategy on
the simulated 8-node cluster; phase 2 globally aligns each region with the
scattered mapping.  Output: the Fig. 14-style dot plot, the Fig. 16-style
alignment records, and the virtual-time accounting.

Run:  python examples/genome_comparison.py
"""

from repro.seq import dotplot, genome_pair
from repro.strategies import run_pipeline

# Two 20 kBP genomes sharing 6 homologous regions at ~95% identity --
# a scaled-down stand-in for the paper's pair of mitochondrial genomes.
pair = genome_pair(
    20_000, 20_000, n_regions=6, region_length=400, mutation_rate=0.05, rng=7
)
print(f"genomes: {len(pair.s)} and {len(pair.t)} BP, {len(pair.regions)} planted regions")

result = run_pipeline(pair.s, pair.t, strategy="heuristic_block", n_procs=8)

p1 = result.phase1
print(
    f"\nphase 1 ({p1.name}): {p1.total_time:.1f} virtual s on "
    f"{p1.n_procs} simulated nodes; {len(p1.alignments)} similar regions"
)
print(
    f"  init {p1.phases.init:.2f} s / core {p1.phases.core:.2f} s / "
    f"term {p1.phases.term:.2f} s"
)
breakdown = p1.stats.aggregate_breakdown().fractions()
print(
    "  breakdown: "
    + ", ".join(f"{k} {v:.0%}" for k, v in breakdown.items())
)

print(f"\nphase 2: {result.phase2.total_time:.2f} virtual s, {len(result.records)} alignments")

print("\n=== dot plot of the similar regions (Fig. 14) ===")
plot = dotplot(
    [a.region for a in p1.alignments], len(pair.s), len(pair.t), rows=20, cols=60
)
print(plot.render())

print("\n=== best global alignments (Fig. 16 records) ===")
for rec in result.best_records(2):
    print()
    print(rec.render())

print("\nground truth (planted):")
for r in pair.regions:
    print(f"  s[{r.s_start}:{r.s_end}] ~ t[{r.t_start}:{r.t_end}] identity {r.identity:.0%}")
