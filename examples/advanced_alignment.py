"""Beyond the paper: affine gaps, substitution matrices, E-values, CIGARs.

The paper evaluates with the classic +1/-1/-2 scheme; this example tours
the library extensions a downstream user expects from an aligner: Gotoh
affine-gap alignment, transition/transversion-aware substitution matrices,
Karlin-Altschul significance statistics, and CIGAR interchange.

Run:  python examples/advanced_alignment.py
"""

from repro.blast import blastn, annotate_evalues, fit_evalue_model, karlin_lambda
from repro.core import (
    TRANSITION_TRANSVERSION,
    AffineScoring,
    affine_smith_waterman,
    alignment_stats,
    cigar_of,
    smith_waterman,
)
from repro.seq import composition, genome_pair

pair = genome_pair(3000, 3000, n_regions=2, region_length=200, mutation_rate=0.06, rng=31)
print("input composition:")
print(" s:", composition(pair.s))
print(" t:", composition(pair.t))

print("\n=== linear vs affine gap costs ===")
linear = smith_waterman(pair.s, pair.t)
# note: keep match + gap_extend <= 0, or long gap-plus-match staircases gain
# score through random background and "local" alignments grow unboundedly
affine = affine_smith_waterman(
    pair.s, pair.t, AffineScoring(match=2, mismatch=-3, gap_open=-8, gap_extend=-2)
)
for name, result in (("linear (+1/-1/-2)", linear), ("affine (2/-3/-8,-2)", affine)):
    stats = alignment_stats(result.alignment)
    print(
        f"{name}: score {result.alignment.score}, identity {stats.identity:.0%}, "
        f"{stats.gap_runs} gap run(s) / {stats.gap_characters} gap char(s)"
    )
print("affine CIGAR:", cigar_of(affine.alignment))

print("\n=== transition/transversion-aware scoring ===")
ts = smith_waterman(pair.s, pair.t, TRANSITION_TRANSVERSION)
print(
    f"matrix-scored alignment: score {ts.alignment.score} over "
    f"s[{ts.s_start}:{ts.s_end}]"
)
print("(A<->G and C<->T substitutions cost -1; transversions cost -3)")

print("\n=== protein alignment (BLOSUM62) ===")
from repro.protein import protein_needleman_wunsch, protein_smith_waterman

kinase_a = "MKVLAWGRRNDEYHQFMCSTPIKL"
kinase_b = "MKVLSWGRKNDEYHQWMCSTPIKL"  # two conservative, one radical change
pr = protein_smith_waterman(kinase_a, kinase_b)
print(pr.alignment.render())
print(f"BLOSUM62 local score {pr.alignment.score} "
      f"(identity {pr.alignment.identity:.0%})")

print("\n=== semiglobal: locate a fragment in a reference ===")
from repro.core import locate

planted = pair.regions[0]
fragment = pair.s[planted.s_start : planted.s_start + 120]
t_start, t_end, score = locate(fragment, pair.t)
print(
    f"120 BP fragment of a planted region placed at t[{t_start}:{t_end}] "
    f"with score {score} (truth: starts at {planted.t_start})"
)

print("\n=== statistical significance (Karlin-Altschul) ===")
print(f"lambda for the paper's scheme: {karlin_lambda():.4f} (= ln 3)")
model = fit_evalue_model(length=300, trials=20, rng=8)
print(f"fitted model: lambda={model.lam:.3f}, K={model.k:.3f}")
hits = blastn(pair.s, pair.t)
for hit, evalue in annotate_evalues(hits.hits[:3], model, len(pair.s), len(pair.t)):
    print(
        f"  hit score {hit.score:4d} at s[{hit.alignment.s_start}:"
        f"{hit.alignment.s_end}]: E = {evalue:.2e}, "
        f"{model.bit_score(hit.score):.1f} bits"
    )
print("(planted homologies are overwhelmingly significant; anything with")
print(" E close to 1 would be indistinguishable from chance)")
