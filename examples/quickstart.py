"""Quickstart: the alignment toolbox in five minutes.

Runs the textbook algorithms of Section 2 on the paper's own example
sequences, then the space-efficient variants the paper builds on top of
them.  Everything here is pure library use -- no simulated cluster yet; see
``cluster_simulation.py`` for that.

Run:  python examples/quickstart.py
"""

from repro.core import (
    exact_best_alignment,
    hirschberg,
    needleman_wunsch,
    predicted_necessary_fraction,
    similarity_matrix,
    smith_waterman,
    sw_best_endpoint,
)

# The sequences of the paper's Fig. 1 / Fig. 3 examples.
S = "GACGGATTAG"
T = "GATCGGAATAG"

print("=== Global alignment (Needleman-Wunsch, Section 2.3) ===")
g = needleman_wunsch(S, T)
print(g.render())
print(f"score = {g.score} (paper Fig. 1 reports 6)\n")

print("=== Local alignment (Smith-Waterman, Section 2.1) ===")
r = smith_waterman("ATAGCT", "GATATGCA")
print(r.alignment.render())
print(
    f"score = {r.alignment.score}, "
    f"s[{r.s_start}:{r.s_end}] vs t[{r.t_start}:{r.t_end}]\n"
)

print("=== The similarity array itself (Fig. 3) ===")
H = similarity_matrix("ATAGCT", "GATATGCA", local=True)
print(H, "\n")

print("=== Linear-space scan (two rows of memory, Section 4.1) ===")
endpoint = sw_best_endpoint(S, T)
print(f"best local score {endpoint.score} ends at cell ({endpoint.i}, {endpoint.j})\n")

print("=== Hirschberg: optimal global alignment in linear space ===")
h = hirschberg(S, T)
print(f"score = {h.score} (equals Needleman-Wunsch: {h.score == g.score})\n")

print("=== Section 6: exact local alignment in O(min(n,m) + n'^2) space ===")
PAPER_S = "TCTCGACGGATTAGTATATATATA"
PAPER_T = "ATATGATCGGAATAGCTCT"
exact = exact_best_alignment(PAPER_T, PAPER_S)  # shorter word indexes rows
print(exact.result.alignment.render())
print(
    f"score = {exact.result.alignment.score} (paper's worked example finds 6); "
    f"reverse scan touched {exact.scan.cells_computed} of "
    f"{exact.scan.cells_full} corner cells "
    f"({exact.scan.computed_fraction:.0%}; theory for large n' -> "
    f"{predicted_necessary_fraction(1000):.0%})"
)
