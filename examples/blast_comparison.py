"""Table 2 in miniature: GenomeDSM vs the BLAST-like comparator.

The paper cross-checks its DSM strategies against NCBI BlastN on two
~50 kBP mitochondrial genomes and finds the best-alignment coordinates
"very close but not the same".  This example reruns that comparison on a
synthetic pair with known planted regions, so all three coordinate sets
(DSM, BLAST-like, ground truth) can be printed side by side.

Run:  python examples/blast_comparison.py
"""

from repro.blast import blastn
from repro.seq import genome_pair
from repro.strategies import BlockedConfig, RegionSettings, ScaledWorkload, run_blocked

pair = genome_pair(8000, 8000, n_regions=3, region_length=500, mutation_rate=0.04, rng=21)

# GenomeDSM: phase 1 of the blocked strategy on the simulated cluster
dsm = run_blocked(
    ScaledWorkload(pair.s, pair.t),
    BlockedConfig(n_procs=8, regions=RegionSettings(threshold=45)),
)

# BLAST-like: seed-and-extend with gapped refinement
blast = blastn(pair.s, pair.t)

print(f"GenomeDSM found {len(dsm.alignments)} regions; "
      f"BlastN-like found {len(blast.hits)} hits "
      f"({blast.n_seeds} seeds, {blast.n_hsps} HSPs)\n")

print(f"{'':12s} {'GenomeDSM':>24s} {'BlastN-like':>24s} {'planted':>24s}")
for k, planted in enumerate(pair.regions):
    def closest(items, key):
        return min(items, key=key) if items else None

    dsm_best = closest(
        dsm.alignments, lambda a: abs(a.s_start - planted.s_start) + abs(a.t_start - planted.t_start)
    )
    blast_best = closest(
        [h.alignment for h in blast.hits],
        lambda a: abs(a.s_start - planted.s_start) + abs(a.t_start - planted.t_start),
    )
    for label, getter in (("Begin", 0), ("End", 1)):
        cells = []
        for a in (dsm_best, blast_best):
            cells.append(str(a.paper_coordinates()[getter]) if a else "-")
        truth = (
            (planted.s_start + 1, planted.t_start + 1)
            if label == "Begin"
            else (planted.s_end, planted.t_end)
        )
        name = f"Alignment {k + 1}" if label == "Begin" else ""
        print(f"{name:12s} {label}: {cells[0]:>18s} {cells[1]:>24s} {str(truth):>24s}")
    print()

print("As in the paper's Table 2, the two programs agree on where the")
print("similar regions are, but their exact begin/end coordinates differ")
print("because each applies different heuristics and parameters.")
