"""Setup shim.

The offline environment ships setuptools but not ``wheel``, so PEP 517
editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work from the metadata in pyproject.toml.
"""

from setuptools import setup

setup()
