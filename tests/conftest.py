"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Make tests/_strategies.py importable from every test directory.
sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_pair(rng):
    """A deterministic ~600 BP genome pair with one planted 80 BP region."""
    from repro.seq import genome_pair

    return genome_pair(600, 600, n_regions=1, region_length=80, mutation_rate=0.03, rng=rng)
