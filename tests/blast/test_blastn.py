import numpy as np
import pytest

from repro.blast import BlastnParams, blastn, gapped_extend, ungapped_extend
from repro.blast.extend import _extend_one_way
from repro.core import DEFAULT_SCORING, smith_waterman
from repro.seq import decode, encode, genome_pair, random_dna


class TestExtendOneWay:
    def test_perfect_run(self):
        a = encode("ACGTACGT")
        length, score = _extend_one_way(a, a.copy(), DEFAULT_SCORING, x_drop=10)
        assert (length, score) == (8, 8)

    def test_stops_on_xdrop(self):
        a = encode("AAAA" + "CCCCCCCCCCCCCCCCCCCCCCCCCCCCCC" + "AAAA")
        b = encode("AAAA" + "GGGGGGGGGGGGGGGGGGGGGGGGGGGGGG" + "AAAA")
        length, score = _extend_one_way(a, b, DEFAULT_SCORING, x_drop=5)
        assert length == 4 and score == 4

    def test_empty(self):
        assert _extend_one_way(encode(""), encode("ACG"), DEFAULT_SCORING, 5) == (0, 0)

    def test_negative_prefix_not_taken(self):
        a, b = encode("CA"), encode("GA")
        assert _extend_one_way(a, b, DEFAULT_SCORING, 50) == (0, 0)


class TestUngappedExtend:
    def test_extends_both_directions(self):
        core = "ACGTACGTACG"
        q = "TTTT" + core + "CCCC"
        t = "GGGG" + core + "AAAA"
        hsp = ungapped_extend(encode(q), encode(t), 6, 6, 5)
        assert hsp.q_start == 4 and hsp.t_start == 4
        assert hsp.q_end == 4 + len(core)
        assert hsp.score == len(core)

    def test_diagonal_property(self):
        q = t = encode("ACGTACGTAC")
        hsp = ungapped_extend(q, t, 2, 2, 4)
        assert hsp.diagonal == 0
        assert hsp.length == 10


class TestGappedExtend:
    def test_recovers_indel(self):
        core_a = "ACGTACGTACGTACGTACGT"
        core_b = core_a[:10] + "G" + core_a[10:]  # one insertion
        q = "TTTTT" + core_a + "TTTTT"
        t = "CCCCC" + core_b + "CCCCC"
        hsp = ungapped_extend(encode(q), encode(t), 5, 5, 6)
        refined = gapped_extend(encode(q), encode(t), hsp, pad=10)
        assert refined.score >= len(core_a) - 3  # one gap penalty absorbed
        assert refined.s_start == 5 and refined.t_start == 5


class TestBlastn:
    def test_params_validated(self):
        with pytest.raises(ValueError):
            BlastnParams(word_size=2)
        with pytest.raises(ValueError):
            BlastnParams(x_drop=0)
        with pytest.raises(ValueError):
            BlastnParams(word_size=11, min_hsp_score=5)

    def test_finds_planted_regions(self):
        gp = genome_pair(4000, 4000, n_regions=3, region_length=120, mutation_rate=0.03, rng=71)
        result = blastn(gp.s, gp.t)
        assert len(result) >= 3
        top3 = result.hits[:3]
        for planted in gp.regions:
            assert any(
                abs(h.alignment.s_start - planted.s_start) <= 15
                and abs(h.alignment.t_start - planted.t_start) <= 15
                for h in top3
            )

    def test_no_hits_in_noise(self):
        gp = genome_pair(2000, 2000, n_regions=0, rng=72)
        result = blastn(gp.s, gp.t)
        assert all(h.score < 30 for h in result)

    def test_hits_sorted_desc(self):
        gp = genome_pair(3000, 3000, n_regions=2, region_length=100, mutation_rate=0.02, rng=73)
        result = blastn(gp.s, gp.t)
        scores = [h.score for h in result]
        assert scores == sorted(scores, reverse=True)

    def test_gapped_score_close_to_sw(self):
        gp = genome_pair(1500, 1500, n_regions=1, region_length=150, mutation_rate=0.05, rng=74)
        result = blastn(gp.s, gp.t)
        assert result.hits
        sw_score = smith_waterman(gp.s, gp.t).alignment.score
        assert result.best().score >= 0.85 * sw_score

    def test_ungapped_mode(self):
        gp = genome_pair(1500, 1500, n_regions=1, region_length=100, mutation_rate=0.0, rng=75)
        result = blastn(gp.s, gp.t, BlastnParams(gapped=False))
        assert result.hits
        best = result.best()
        assert best.alignment.s_length == best.alignment.t_length  # no gaps

    def test_best_raises_when_empty(self):
        from repro.blast.blastn import BlastnResult

        with pytest.raises(ValueError):
            BlastnResult().best()

    def test_statistics_populated(self):
        gp = genome_pair(1000, 1000, n_regions=1, region_length=80, mutation_rate=0.0, rng=76)
        result = blastn(gp.s, gp.t)
        assert result.n_seeds >= 70  # ~80-11+1 seeds from the planted region
        assert result.n_hsps >= 1

    def test_accepts_strings(self):
        result = blastn("ACGTACGTACGTACGTACGT", "ACGTACGTACGTACGTACGT", BlastnParams(word_size=8, min_hsp_score=8))
        assert result.best().score == 20
