"""Property tests of the BLAST pipeline against the exact aligner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast import BlastnParams, blastn
from repro.core import smith_waterman
from repro.seq import decode, genome_pair, mutate, random_dna


class TestBlastSoundness:
    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_hit_scores_never_exceed_optimal(self, seed):
        """A heuristic can miss alignments but never invent score."""
        s = random_dna(300, rng=seed)
        t = mutate(s, 0.10, rng=seed + 1000)
        result = blastn(s, t, BlastnParams(word_size=8, min_hsp_score=8))
        if not result.hits:
            return
        optimal = smith_waterman(s, t).alignment.score
        assert result.best().score <= optimal

    @given(st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_high_identity_pairs_found_near_optimal(self, seed):
        """At low divergence the seed stage cannot miss: word hits abound."""
        s = random_dna(400, rng=seed)
        t = mutate(s, 0.03, rng=seed + 2000)
        result = blastn(s, t)
        optimal = smith_waterman(s, t).alignment.score
        assert result.hits
        assert result.best().score >= 0.9 * optimal

    def test_hit_coordinates_name_real_subsequences(self):
        gp = genome_pair(2000, 2000, n_regions=2, region_length=100, mutation_rate=0.03, rng=60)
        for hit in blastn(gp.s, gp.t).hits:
            a = hit.alignment
            assert 0 <= a.s_start < a.s_end <= len(gp.s)
            assert 0 <= a.t_start < a.t_end <= len(gp.t)
            # the named subsequences really do align to at least that score
            local = smith_waterman(
                gp.s[a.s_start : a.s_end], gp.t[a.t_start : a.t_end]
            ).alignment.score
            assert local >= a.score

    def test_word_size_trades_sensitivity(self):
        """Longer words seed less: hit count is non-increasing in word size."""
        gp = genome_pair(1500, 1500, n_regions=1, region_length=100, mutation_rate=0.08, rng=61)
        seeds = []
        for w in (8, 11, 14):
            result = blastn(gp.s, gp.t, BlastnParams(word_size=w, min_hsp_score=w))
            seeds.append(result.n_seeds)
        assert seeds[0] >= seeds[1] >= seeds[2]
