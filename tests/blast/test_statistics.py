import math

import numpy as np
import pytest

from repro.blast.statistics import (
    EvalueModel,
    annotate_evalues,
    estimate_k,
    expected_pair_score,
    fit_evalue_model,
    karlin_lambda,
)
from repro.core import Scoring
from repro.core.linear import sw_best_endpoint
from repro.seq import genome_pair, random_dna


class TestExpectedScore:
    def test_paper_scheme_negative(self):
        # uniform DNA, +1/-1: E[s] = 1/4 - 3/4 = -0.5
        assert expected_pair_score() == pytest.approx(-0.5)

    def test_bad_freqs_rejected(self):
        with pytest.raises(ValueError):
            expected_pair_score(freqs=(0.5, 0.5, 0.5, 0.5))


class TestKarlinLambda:
    def test_closed_form_for_paper_scheme(self):
        # (1/4)e^l + (3/4)e^-l = 1  =>  e^l = 3  =>  lambda = ln 3
        assert karlin_lambda() == pytest.approx(math.log(3.0), abs=1e-9)

    def test_stronger_mismatch_raises_lambda(self):
        strict = Scoring(match=1, mismatch=-3, gap=-5)
        assert karlin_lambda(strict) > karlin_lambda()

    def test_positive_expected_score_rejected(self):
        generous = Scoring(match=3, mismatch=-1, gap=-2)  # E[s] = 0 -> >= 0
        with pytest.raises(ValueError):
            karlin_lambda(generous)

    def test_skewed_frequencies(self):
        lam = karlin_lambda(freqs=(0.4, 0.1, 0.1, 0.4))
        assert 0 < lam < 2


class TestEvalueModel:
    def setup_method(self):
        self.model = EvalueModel(lam=math.log(3.0), k=0.2)

    def test_evalue_decreases_with_score(self):
        e_lo = self.model.evalue(10, 1000, 1000)
        e_hi = self.model.evalue(20, 1000, 1000)
        assert e_hi < e_lo

    def test_evalue_scales_with_search_space(self):
        assert self.model.evalue(15, 2000, 1000) == pytest.approx(
            2 * self.model.evalue(15, 1000, 1000)
        )

    def test_pvalue_bounds(self):
        p = self.model.pvalue(12, 500, 500)
        assert 0 <= p <= 1

    def test_pvalue_approximates_small_evalue(self):
        e = self.model.evalue(40, 500, 500)
        assert self.model.pvalue(40, 500, 500) == pytest.approx(e, rel=1e-3)

    def test_bit_score_monotone(self):
        assert self.model.bit_score(20) > self.model.bit_score(10)

    def test_score_for_evalue_inverts(self):
        s = self.model.score_for_evalue(0.01, 1000, 1000)
        assert self.model.evalue(s, 1000, 1000) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            EvalueModel(lam=0, k=0.1)
        with pytest.raises(ValueError):
            self.model.score_for_evalue(0, 10, 10)


class TestCalibration:
    def test_k_in_plausible_range(self):
        k = estimate_k(length=300, trials=20, rng=1)
        assert 0.01 < k < 2.0

    def test_model_predicts_random_maxima(self):
        """The fitted Gumbel must locate the random-score distribution:
        the median of fresh random maxima should fall near the model's
        E=ln2 score (the Gumbel median)."""
        model = fit_evalue_model(length=300, trials=30, rng=2)
        gen = np.random.default_rng(99)
        scores = [
            sw_best_endpoint(random_dna(300, gen), random_dna(300, gen)).score
            for _ in range(30)
        ]
        predicted_median = model.score_for_evalue(math.log(2.0), 300, 300)
        assert abs(float(np.median(scores)) - predicted_median) <= 2.0

    def test_planted_region_has_tiny_evalue(self):
        model = fit_evalue_model(length=300, trials=20, rng=3)
        gp = genome_pair(800, 800, n_regions=1, region_length=80, mutation_rate=0.0, rng=4)
        score = sw_best_endpoint(gp.s, gp.t).score
        assert model.evalue(score, 800, 800) < 1e-6


class TestAnnotate:
    def test_hits_sorted_by_evalue(self):
        from repro.blast import blastn

        gp = genome_pair(1500, 1500, n_regions=2, region_length=80, mutation_rate=0.0, rng=5)
        result = blastn(gp.s, gp.t)
        model = fit_evalue_model(length=200, trials=10, rng=6)
        annotated = annotate_evalues(result.hits, model, 1500, 1500)
        evalues = [e for _, e in annotated]
        assert evalues == sorted(evalues)
        assert evalues[0] < 1e-6  # the planted regions are overwhelming
