import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast import WordIndex, kmer_ids
from repro.seq import decode, encode, random_dna

from _strategies import dna_codes


class TestKmerIds:
    def test_single_kmer(self):
        # "ACGT" in base 4 = 0*64 + 1*16 + 2*4 + 3 = 27
        assert kmer_ids(encode("ACGT"), 4).tolist() == [27]

    def test_sliding(self):
        ids = kmer_ids(encode("AAAC"), 3)
        assert ids.tolist() == [0, 1]  # AAA=0, AAC=1

    def test_short_sequence_empty(self):
        assert kmer_ids(encode("AC"), 3).size == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmer_ids(encode("ACGT"), 0)
        with pytest.raises(ValueError):
            kmer_ids(encode("ACGT"), 40)

    @given(dna_codes(8, 40), st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_equal_ids_iff_equal_kmers(self, codes, k):
        if len(codes) < k:
            return
        ids = kmer_ids(codes, k)
        text = decode(codes)
        for a in range(len(ids)):
            for b in range(a + 1, len(ids)):
                same = text[a : a + k] == text[b : b + k]
                assert (ids[a] == ids[b]) == same


class TestWordIndex:
    def test_lookup_positions(self):
        idx = WordIndex("ACGTACGT", word_size=4)
        ids = kmer_ids(encode("ACGT"), 4)
        assert idx.lookup(int(ids[0])).tolist() == [0, 4]

    def test_lookup_missing(self):
        idx = WordIndex("AAAAAAA", word_size=4)
        assert idx.lookup(123456).size == 0

    def test_len(self):
        assert len(WordIndex("ACGTACGT", word_size=4)) == 5

    def test_seed_hits_exact(self):
        subject = "TTTTACGTACGTTTTT"
        query = "GGACGTACGG"
        idx = WordIndex(subject, word_size=6)
        q_pos, t_pos = idx.seed_hits(query)
        # ACGTAC at query 2 hits subject 4; CGTACG at query 3 hits subject 5
        assert list(zip(q_pos, t_pos)) == [(2, 4), (3, 5)]
        assert (q_pos - t_pos == -2).all()  # same diagonal

    def test_seed_hits_every_pair_is_exact_match(self):
        rng = np.random.default_rng(5)
        subject = random_dna(500, rng)
        query = random_dna(500, rng)
        idx = WordIndex(subject, word_size=5)
        q_pos, t_pos = idx.seed_hits(query)
        for q, t in zip(q_pos[:200], t_pos[:200]):
            assert np.array_equal(subject[t : t + 5], query[q : q + 5])

    def test_seed_hits_sorted_by_diagonal(self):
        subject = random_dna(300, rng=6)
        idx = WordIndex(subject, word_size=4)
        q_pos, t_pos = idx.seed_hits(random_dna(300, rng=7))
        diag = q_pos - t_pos
        assert np.all(np.diff(diag) >= 0)

    def test_no_hits_for_disjoint_alphabet_usage(self):
        idx = WordIndex("AAAAAAAAAA", word_size=5)
        q_pos, t_pos = idx.seed_hits("CCCCCCCCCC")
        assert q_pos.size == 0

    def test_empty_query(self):
        idx = WordIndex("ACGTACGTA", word_size=5)
        q_pos, t_pos = idx.seed_hits("")
        assert q_pos.size == 0
