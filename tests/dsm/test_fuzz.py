"""Randomised DSM programs: well-formed programs always terminate cleanly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm import JiaJia
from repro.sim import Simulator

# An op is one of: ("compute", seconds), ("cs", lock_id, seconds),
# ("barrier",), ("rw", offset_page, nbytes)
ops = st.one_of(
    st.tuples(st.just("compute"), st.floats(0.0, 0.5)),
    st.tuples(st.just("cs"), st.integers(0, 2), st.floats(0.0, 0.2)),
    st.tuples(st.just("rw"), st.integers(0, 7), st.integers(1, 4096)),
)


@st.composite
def programs(draw):
    n_nodes = draw(st.integers(1, 4))
    n_barriers = draw(st.integers(0, 3))
    # every node gets its own op list, plus the same number of barriers
    bodies = [
        draw(st.lists(ops, max_size=6)) for _ in range(n_nodes)
    ]
    return n_nodes, n_barriers, bodies


class TestDsmFuzz:
    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_well_formed_programs_terminate(self, program):
        """Any mix of computes, critical sections, reads/writes and matched
        barriers runs to completion with a consistent virtual clock and
        non-negative accounting."""
        n_nodes, n_barriers, bodies = program
        sim = Simulator()
        dsm = JiaJia(sim, n_nodes)
        region = dsm.alloc(8 * 4096, "shared")

        def node(p, body):
            for op in body:
                if op[0] == "compute":
                    yield from dsm.compute(p, op[1])
                elif op[0] == "cs":
                    _, lock_id, hold = op
                    yield from dsm.lock(p, lock_id)
                    dsm.write(p, region, 0, 64)
                    yield from dsm.compute(p, hold)
                    yield from dsm.unlock(p, lock_id)
                else:
                    _, page, nbytes = op
                    offset = min(page * 4096, region.nbytes - nbytes)
                    yield from dsm.read(p, region, offset, nbytes)
                    dsm.write(p, region, offset, nbytes)
            for _ in range(n_barriers):
                yield from dsm.barrier(p)

        procs = [sim.spawn(node(p, bodies[p]), name=f"n{p}") for p in range(n_nodes)]
        sim.run_all(procs)  # raises on deadlock
        assert sim.now >= 0.0
        for stats in dsm.stats:
            assert stats.breakdown.total >= 0.0
            assert stats.barrier_waits == n_barriers
        # no lock left held
        for lock in dsm._locks.values():
            assert not lock.locked
