from repro.dsm import Message, MessageTrace, MsgType


class TestMessageTrace:
    def test_record_and_count(self):
        trace = MessageTrace()
        trace.record(0.0, MsgType.ACQ, 1, 0)
        trace.record(0.1, MsgType.GRANT, 0, 1)
        trace.record(0.2, MsgType.ACQ, 2, 0)
        assert len(trace) == 3
        assert trace.count(MsgType.ACQ) == 2
        assert trace.count(MsgType.BARR) == 0

    def test_bytes_total(self):
        trace = MessageTrace()
        trace.record(0.0, MsgType.DIFF, 0, 1, nbytes=4096)
        trace.record(0.0, MsgType.DIFFGRANT, 1, 0, nbytes=64)
        assert trace.bytes_total() == 4160

    def test_between(self):
        trace = MessageTrace()
        for k in range(5):
            trace.record(float(k), MsgType.GETP, 0, 1)
        window = trace.between(1.0, 3.0)
        assert [m.time for m in window] == [1.0, 2.0]

    def test_message_is_frozen(self):
        m = Message(0.0, MsgType.PAGE, 0, 1)
        import pytest

        with pytest.raises(Exception):
            m.time = 5.0  # type: ignore[misc]

    def test_all_fig6_message_types_exist(self):
        # Fig. 6 of the paper names these protocol messages
        for name in ("DIFF", "DIFFGRANT", "BARR", "BARRGRANT", "ACQ", "GRANT"):
            assert hasattr(MsgType, name)
