import pytest

from repro.dsm import JiaJia
from repro.sim import Simulator


def run_cluster(n_nodes, make_body, **kw):
    sim = Simulator()
    dsm = JiaJia(sim, n_nodes, **kw)
    procs = [sim.spawn(make_body(dsm, i), name=f"node{i}") for i in range(n_nodes)]
    sim.run_all(procs)
    return sim, dsm


class TestLifecycle:
    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            JiaJia(Simulator(), 0)

    def test_compute_charges_time_and_cells(self):
        def body(dsm, i):
            yield from dsm.compute(i, 2.0, cells=100)

        sim, dsm = run_cluster(2, body)
        assert sim.now == 2.0
        assert dsm.stats[0].breakdown.computation == 2.0
        assert dsm.stats[0].cells_computed == 100


class TestLocks:
    def test_mutual_exclusion_with_protocol_cost(self):
        order = []

        def body(dsm, i):
            yield from dsm.lock(i, 1)
            order.append(("in", i))
            yield from dsm.compute(i, 1.0)
            order.append(("out", i))
            yield from dsm.unlock(i, 1)

        sim, dsm = run_cluster(2, body)
        ins = [e for e in order if e[0] == "in"]
        outs = [e for e in order if e[0] == "out"]
        # strict alternation: second enters only after first leaves
        assert order.index(outs[0]) < order.index(ins[1])
        assert dsm.stats[0].lock_acquires == 1

    def test_unlock_not_held_raises(self):
        def body(dsm, i):
            yield from dsm.unlock(i, 9)

        with pytest.raises(RuntimeError):
            run_cluster(1, body)

    def test_waiting_time_charged_to_lock_cv(self):
        def body(dsm, i):
            yield from dsm.lock(i, 1)
            yield from dsm.compute(i, 5.0)
            yield from dsm.unlock(i, 1)

        sim, dsm = run_cluster(2, body)
        # one of the nodes waited ~5s for the other's critical section
        waited = max(dsm.stats[i].breakdown.lock_cv for i in range(2))
        assert waited > 4.0


class TestCv:
    def test_producer_consumer_handshake(self):
        seen = []

        def body(dsm, i):
            if i == 0:
                yield from dsm.compute(0, 1.0)
                yield from dsm.setcv(0, 5)
            else:
                yield from dsm.waitcv(1, 5)
                seen.append(dsm.sim.now)

        sim, dsm = run_cluster(2, body)
        assert seen and seen[0] >= 1.0
        assert dsm.stats[0].cv_signals == 1
        assert dsm.stats[1].cv_waits == 1

    def test_signal_memory_prevents_lost_wakeup(self):
        def body(dsm, i):
            if i == 0:
                yield from dsm.setcv(0, 5)  # signal before anyone waits
            else:
                yield from dsm.compute(1, 10.0)
                yield from dsm.waitcv(1, 5)

        sim, dsm = run_cluster(2, body)  # must not deadlock
        assert sim.now >= 10.0


class TestBarrier:
    def test_barrier_synchronizes_all(self):
        after = []

        def body(dsm, i):
            yield from dsm.compute(i, float(i))
            yield from dsm.barrier(i)
            after.append(dsm.sim.now)

        sim, dsm = run_cluster(4, body)
        assert len(set(after)) == 1
        assert after[0] >= 3.0
        assert all(dsm.stats[i].barrier_waits == 1 for i in range(4))

    def test_barrier_time_charged(self):
        def body(dsm, i):
            yield from dsm.barrier(i)

        sim, dsm = run_cluster(2, body)
        assert dsm.stats[0].breakdown.barrier > 0


class TestMemory:
    def test_write_to_home_pages_is_free(self):
        sim = Simulator()
        dsm = JiaJia(sim, 2)
        region = dsm.alloc(4096, home=0)
        dsm.write(0, region, 0, 4096)
        assert dsm._dirty_bytes[0] == 0  # home-local: no diff traffic

    def test_write_to_remote_pages_accumulates_diffs(self):
        sim = Simulator()
        dsm = JiaJia(sim, 2)
        region = dsm.alloc(4096, home=1)
        dsm.write(0, region, 100, 200)
        assert dsm._dirty_bytes[0] == 200
        assert len(dsm._dirty_pages[0]) == 1

    def test_round_robin_split_write(self):
        sim = Simulator()
        dsm = JiaJia(sim, 2)
        region = dsm.alloc(8192)  # pages 0 (home 0) and 1 (home 1)
        dsm.write(0, region, 0, 8192)
        assert dsm._dirty_bytes[0] == 4096  # only the remote page

    def test_release_resets_dirty_state(self):
        def body(dsm, i):
            region = body.region
            if i == 0:
                dsm.write(0, region, 0, 4096)
                yield from dsm.lock(0, 1)
                yield from dsm.unlock(0, 1)
            else:
                yield from dsm.compute(i, 0.0)

        sim = Simulator()
        dsm = JiaJia(sim, 2)
        body.region = dsm.alloc(4096, home=1)
        procs = [sim.spawn(body(dsm, i)) for i in range(2)]
        sim.run_all(procs)
        assert dsm._dirty_bytes[0] == 0
        assert dsm.stats[0].diffs_sent == 1

    def test_read_faults_then_caches(self):
        def body(dsm, i):
            region = body.region
            yield from dsm.read(1, region, 0, 4096)
            yield from dsm.read(1, region, 0, 4096)  # cached now

        sim = Simulator()
        dsm = JiaJia(sim, 2)
        body.region = dsm.alloc(4096, home=0)
        proc = sim.spawn(body(dsm, 1))
        sim.run_all([proc])
        assert dsm.stats[1].page_faults == 1
        assert dsm.caches[1].hits == 1

    def test_read_after_release_refetches(self):
        """A page re-released by its writer is stale in remote caches."""
        sim = Simulator()
        dsm = JiaJia(sim, 3)
        region = dsm.alloc(4096, home=0)  # remote for both node 1 and node 2

        def body():
            yield from dsm.read(1, region, 0, 100)  # fault 1
            dsm.write(2, region, 0, 100)  # node 2 writes (remote to it)
            yield from dsm.lock(2, 1)
            yield from dsm.unlock(2, 1)  # release bumps the page version
            yield from dsm.read(1, region, 0, 100)  # stale copy: fault 2

        proc = sim.spawn(body())
        sim.run_all([proc])
        assert dsm.stats[1].page_faults == 2

    def test_home_reads_are_free(self):
        sim = Simulator()
        dsm = JiaJia(sim, 2)
        region = dsm.alloc(4096, home=1)

        def body():
            yield from dsm.read(1, region, 0, 4096)

        proc = sim.spawn(body())
        sim.run_all([proc])
        assert sim.now == 0.0
        assert dsm.stats[1].page_faults == 0
