"""JIAJIA's optional home-migration feature (jia_config, Section 3.1)."""

import pytest

from repro.dsm import JiaJia
from repro.sim import Simulator


def release(dsm, node):
    """Run one lock/unlock pair on the simulator (a release point)."""
    sim = dsm.sim

    def body():
        yield from dsm.lock(node, 1)
        yield from dsm.unlock(node, 1)

    proc = sim.spawn(body())
    sim.run_all([proc])


class TestJiaConfig:
    def test_all_features_start_off(self):
        dsm = JiaJia(Simulator(), 2)
        assert dsm._options["home_migration"] is False

    def test_unknown_option_rejected(self):
        dsm = JiaJia(Simulator(), 2)
        with pytest.raises(ValueError, match="unknown jia_config option"):
            dsm.config("telepathy", True)

    def test_set_option(self):
        dsm = JiaJia(Simulator(), 2)
        dsm.config("home_migration", True)
        dsm.config("migration_threshold", 5)
        assert dsm._options["home_migration"] is True
        assert dsm._options["migration_threshold"] == 5


class TestHomeMigration:
    def test_repeated_writer_steals_home(self):
        sim = Simulator()
        dsm = JiaJia(sim, 2)
        dsm.config("home_migration", True)
        region = dsm.alloc(4096, home=1)
        page = region.base_page
        for _ in range(3):
            dsm.write(0, region, 0, 100)
            release(dsm, 0)
        assert dsm.directory.home(page) == 0
        assert dsm.stats[0].homes_migrated == 1
        # subsequent writes are home-local: no more diff traffic
        dsm.write(0, region, 0, 100)
        assert dsm._dirty_bytes[0] == 0

    def test_below_threshold_no_migration(self):
        sim = Simulator()
        dsm = JiaJia(sim, 2)
        dsm.config("home_migration", True)
        region = dsm.alloc(4096, home=1)
        for _ in range(2):
            dsm.write(0, region, 0, 100)
            release(dsm, 0)
        assert dsm.directory.home(region.base_page) == 1

    def test_alternating_writers_reset_streak(self):
        sim = Simulator()
        dsm = JiaJia(sim, 3)
        dsm.config("home_migration", True)
        region = dsm.alloc(4096, home=2)
        for _ in range(2):
            dsm.write(0, region, 0, 100)
            release(dsm, 0)
            dsm.write(1, region, 0, 100)
            release(dsm, 1)
        assert dsm.directory.home(region.base_page) == 2
        assert dsm.stats[0].homes_migrated == dsm.stats[1].homes_migrated == 0

    def test_off_by_default(self):
        sim = Simulator()
        dsm = JiaJia(sim, 2)
        region = dsm.alloc(4096, home=1)
        for _ in range(5):
            dsm.write(0, region, 0, 100)
            release(dsm, 0)
        assert dsm.directory.home(region.base_page) == 1

    def test_custom_threshold(self):
        sim = Simulator()
        dsm = JiaJia(sim, 2)
        dsm.config("home_migration", True)
        dsm.config("migration_threshold", 1)
        region = dsm.alloc(4096, home=1)
        dsm.write(0, region, 0, 100)
        release(dsm, 0)
        assert dsm.directory.home(region.base_page) == 0


class TestMigrationInWavefront:
    def test_migration_reduces_time_and_traffic(self):
        from repro.seq import genome_pair
        from repro.strategies import ScaledWorkload, WavefrontConfig, run_wavefront

        gp = genome_pair(1000, 1000, n_regions=0, rng=96)
        wl = ScaledWorkload(gp.s, gp.t, scale=20)
        off = run_wavefront(wl, WavefrontConfig(n_procs=8))
        on = run_wavefront(wl, WavefrontConfig(n_procs=8, home_migration=True))
        assert on.total_time < off.total_time
        assert sum(n.homes_migrated for n in on.stats.nodes) > 0
        bytes_off = sum(n.bytes_sent for n in off.stats.nodes)
        bytes_on = sum(n.bytes_sent for n in on.stats.nodes)
        assert bytes_on < 0.5 * bytes_off

    def test_migration_does_not_change_results(self):
        from repro.seq import genome_pair
        from repro.strategies import ScaledWorkload, WavefrontConfig, run_wavefront

        gp = genome_pair(800, 800, n_regions=1, region_length=80, rng=97)
        wl = ScaledWorkload(gp.s, gp.t)
        off = run_wavefront(wl, WavefrontConfig(n_procs=4))
        on = run_wavefront(wl, WavefrontConfig(n_procs=4, home_migration=True))
        assert off.alignments == on.alignments
