import pytest

from repro.dsm import PageDirectory, RemotePageCache


class TestPageDirectory:
    def test_round_robin_homes(self):
        d = PageDirectory(n_nodes=4, page_bytes=100)
        region = d.alloc(800, "r")
        homes = [d.home(p) for p in range(region.base_page, region.base_page + 8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_pinned_home(self):
        d = PageDirectory(n_nodes=4, page_bytes=100)
        region = d.alloc(300, "r", home=2)
        assert all(d.home(p) == 2 for p in region.pages_of(0, 300))

    def test_invalid_home(self):
        d = PageDirectory(n_nodes=2)
        with pytest.raises(ValueError):
            d.alloc(100, home=5)

    def test_pages_of_ranges(self):
        d = PageDirectory(n_nodes=1, page_bytes=100)
        region = d.alloc(1000)
        assert list(region.pages_of(0, 100)) == [0]
        assert list(region.pages_of(50, 100)) == [0, 1]
        assert list(region.pages_of(0, 0)) == []
        assert list(region.pages_of(999, 1)) == [9]

    def test_pages_of_out_of_bounds(self):
        d = PageDirectory(n_nodes=1, page_bytes=100)
        region = d.alloc(100)
        with pytest.raises(ValueError):
            region.pages_of(50, 100)

    def test_second_region_starts_after_first(self):
        d = PageDirectory(n_nodes=2, page_bytes=100)
        a = d.alloc(250)
        b = d.alloc(100)
        assert b.base_page == a.base_page + 3

    def test_versions_bump(self):
        d = PageDirectory(n_nodes=2)
        d.alloc(100)
        assert d.version(0) == 0
        d.bump(0)
        assert d.version(0) == 1

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            PageDirectory(0)


class TestRemotePageCache:
    def test_miss_then_hit(self):
        c = RemotePageCache(4)
        assert not c.lookup(7, 0)
        c.fill(7, 0)
        assert c.lookup(7, 0)
        assert (c.hits, c.misses) == (1, 1)

    def test_stale_version_is_miss(self):
        c = RemotePageCache(4)
        c.fill(7, 0)
        assert not c.lookup(7, 1)  # page was re-released since
        assert 7 not in c._entries

    def test_capacity_replacement_fifo(self):
        c = RemotePageCache(2)
        c.fill(1, 0)
        c.fill(2, 0)
        c.fill(3, 0)  # evicts page 1
        assert c.replacements == 1
        assert not c.lookup(1, 0)
        assert c.lookup(3, 0)

    def test_invalidate(self):
        c = RemotePageCache(2)
        c.fill(1, 0)
        c.invalidate(1)
        assert c.invalidations == 1
        assert not c.lookup(1, 0)
        c.invalidate(99)  # no-op
        assert c.invalidations == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RemotePageCache(0)
