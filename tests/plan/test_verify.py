"""The static plan verifier: the sweep proves out, illegal graphs do not.

The acceptance bar mirrors the dataflow prover's: every planner x backend x
kernel x prefilter combination the system can build must verify clean, and
hand-built graphs that break each invariant class -- cycle, missing owner,
cell-count mismatch, staged-graph-on-pool -- must be rejected with findings
precise enough to name the tile and the breach.  The graphs below are built
directly from ``Tile``/``TaskGraph`` (never through ``.validate()``), since
the verifier's job is exactly the graphs the constructor checks would have
refused plus the ones they cannot see.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.check.engine import Finding
from repro.plan import (
    DYNAMIC,
    InlineExecutor,
    PlanVerificationError,
    TaskGraph,
    Tile,
    plan_wavefront,
    set_strict,
    sweep_plans,
    verify_graph,
    verify_plan,
    wavefront_spec,
)
from repro.plan.verify import _sweep_packed, is_strict, maybe_verify
from repro.plan.planners import plan_search_buckets
from repro.seq import encode, genome_pair


def rules_of(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


# -- the sweep: everything the planners can build proves out ---------------


def test_every_planner_backend_kernel_prefilter_combination_verifies():
    assert sweep_plans() == []


def test_verify_plan_builds_from_a_spec():
    spec = wavefront_spec(3, group_rows=4, kernel="striped")
    assert verify_plan(spec, 48, 60, backend="pool") == []


def test_verify_plan_needs_a_shape_for_specs():
    with pytest.raises(ValueError, match="rows, cols"):
        verify_plan(wavefront_spec(2))


# -- illegal graphs, one per invariant class -------------------------------


def _blocked(tiles, n_procs=2, shape=(10, 10), **params):
    defaults = {
        "row_bounds": ((0, 5), (5, 10)),
        "col_bounds": ((0, 10),),
        "n_bands": 2,
        "n_blocks": 1,
    }
    defaults.update(params)
    return TaskGraph(
        kind="blocked", n_procs=n_procs, shape=shape, tiles=tuple(tiles),
        params=defaults,
    )


def test_cycle_is_rejected_and_deadlocks_the_simulation():
    # Tiles 0 and 1 depend on each other: inexpressible through validate(),
    # and exactly the graph whose done-flag polls starve forever.
    graph = _blocked(
        [Tile(0, 0, 50, (0, 0), (1,)), Tile(1, 1, 50, (1, 0), (0,))]
    )
    findings = verify_graph(graph, "pool")
    assert {"PLAN001", "PLAN005"} <= rules_of(findings)
    [deadlock] = [f for f in findings if f.rule == "PLAN005" and f.line == 0]
    assert "worker 0" in deadlock.message and "starve" in deadlock.message


def test_forward_dependency_is_a_plan001():
    graph = _blocked(
        [Tile(0, 0, 50, (0, 0), ()), Tile(1, 1, 50, (1, 0), (1,))]
    )
    findings = verify_graph(graph)
    assert any(f.rule == "PLAN001" and f.line == 1 for f in findings)
    assert any("itself" in f.message for f in findings)


def test_dangling_dependency_is_a_plan001():
    graph = _blocked(
        [Tile(0, 0, 50, (0, 0), ()), Tile(1, 1, 50, (1, 0), (7,))]
    )
    assert any(
        f.rule == "PLAN001" and "does not exist" in f.message
        for f in verify_graph(graph)
    )


def test_non_dense_ids_are_a_plan002():
    graph = _blocked(
        [Tile(0, 0, 50, (0, 0), ()), Tile(5, 1, 50, (1, 0), ())]
    )
    assert any(
        f.rule == "PLAN002" and "dense" in f.message for f in verify_graph(graph)
    )


def test_missing_owner_is_a_plan003():
    # Rank 2 of a 3-processor wave-front owns nothing: its column slice
    # would never be computed.
    slices = ((0, 4), (4, 8), (8, 12))
    tiles = [
        Tile(p, p, 16, (0, 4, *slices[p]), (p - 1,) if p else ())
        for p in range(2)
    ]
    graph = TaskGraph(
        kind="wavefront", n_procs=3, shape=(4, 12), tiles=tuple(tiles),
        params={"slices": slices, "group_rows": 4},
    )
    [finding] = verify_graph(graph)
    assert finding.rule == "PLAN003"
    assert "ranks [2]" in finding.message


def test_queue_owned_tile_in_a_static_schedule_is_a_plan003():
    graph = _blocked(
        [Tile(0, 0, 50, (0, 0), ()), Tile(1, DYNAMIC, 50, (1, 0), ())]
    )
    assert any(
        f.rule == "PLAN003" and "DYNAMIC" in f.message and f.line == 1
        for f in verify_graph(graph)
    )


def test_cell_count_mismatch_is_a_plan004():
    graph = _blocked(
        [Tile(0, 0, 50, (0, 0), ()), Tile(1, 1, 999, (1, 0), ())]
    )
    [finding] = verify_graph(graph)
    assert finding.rule == "PLAN004" and finding.line == 1
    assert "999" in finding.message and "50" in finding.message


def test_partition_gap_is_a_plan004():
    # Band 1 is never computed: a silent horizontal stripe of zeros.
    graph = _blocked([Tile(0, 0, 50, (0, 0), ())])
    findings = verify_graph(graph)
    assert any("never computed" in f.message for f in findings)
    assert rules_of(findings) == {"PLAN004"}


def test_dropped_search_lane_is_a_plan004():
    packed = _sweep_packed()
    graph = plan_search_buckets(packed, query_len=80, top_k=5)
    # Shave one lane off the last tile's selection by re-billing its cells
    # as if a lane were skipped -- the locator still promises all lanes.
    victim = graph.tiles[-1]
    lengths = victim.payload[3]
    short = victim.cells - 80 * lengths[-1]
    graph.tiles = graph.tiles[:-1] + (victim._replace(cells=short),)
    assert any(
        f.rule == "PLAN004" and f.line == victim.id
        for f in verify_graph(graph)
    )


def test_more_shards_than_processors_is_a_plan003():
    packed = _sweep_packed()
    good = plan_search_buckets(packed, query_len=80, top_k=5, n_shards=2)
    # Same tiles, but the graph claims fewer nodes than shards: shard 1's
    # tiles would sit on a queue no worker group ever drains.
    graph = TaskGraph(
        kind="search", n_procs=1, shape=good.shape, tiles=good.tiles,
        params=good.params, n_shards=2,
    )
    assert any(
        f.rule == "PLAN003" and "never be dispatched" in f.message
        for f in verify_graph(graph)
    )


def test_shard_outside_the_declared_range_is_a_plan003():
    packed = _sweep_packed()
    graph = plan_search_buckets(packed, query_len=80, top_k=5, n_shards=2)
    victim = graph.tiles[0]
    graph.tiles = (victim._replace(shard=5),) + graph.tiles[1:]
    assert any(
        f.rule == "PLAN003" and f.line == victim.id
        and "no shard group would run it" in f.message
        for f in verify_graph(graph)
    )


def test_sharded_tile_in_a_static_schedule_is_a_plan003():
    graph = TaskGraph(
        kind="blocked", n_procs=2, shape=(10, 10),
        tiles=(Tile(0, 0, 50, (0, 0), ()), Tile(1, 1, 50, (1, 0), (), 1)),
        params={
            "row_bounds": ((0, 5), (5, 10)), "col_bounds": ((0, 10),),
            "n_bands": 2, "n_blocks": 1,
        },
        n_shards=2,
    )
    assert any(
        f.rule == "PLAN003" and "only search graphs are sharded" in f.message
        for f in verify_graph(graph)
    )


def test_sequence_in_two_shards_is_a_plan004():
    packed = _sweep_packed()
    graph = plan_search_buckets(packed, query_len=80, top_k=5, n_shards=2)
    # Duplicate a shard-0 tile into shard 1: every lane it covers is now
    # scored in both shards, so its entries could double up in the merge.
    victim = next(t for t in graph.tiles if t.shard == 0)
    dup = victim._replace(id=len(graph.tiles), shard=1)
    graph.tiles = graph.tiles + (dup,)
    assert any(
        f.rule == "PLAN004" and f.line == dup.id
        and "exactly one shard" in f.message
        for f in verify_graph(graph)
    )


def test_cross_shard_dependency_on_the_pool_is_a_plan006():
    packed = _sweep_packed()
    graph = plan_search_buckets(packed, query_len=80, top_k=5, n_shards=2)
    tiles = list(graph.tiles)
    donor = next(t for t in tiles if t.shard == 0)
    victim = next(t for t in tiles if t.shard == 1 and t.id > donor.id)
    tiles[victim.id] = victim._replace(deps=(donor.id,))
    graph.tiles = tuple(tiles)
    assert any(
        f.rule == "PLAN006" and f.line == victim.id
        and "share no done flags" in f.message
        for f in verify_graph(graph, "pool")
    )
    # The same edge is harmless where one process sees every shard.
    assert verify_graph(graph, "inline") == []


def test_staged_search_graph_on_the_pool_is_a_plan006():
    packed = _sweep_packed()
    staged = plan_search_buckets(
        packed, query_len=80, top_k=5, prefilter=("length", "composition")
    )
    pool_findings = verify_graph(staged, "pool")
    assert any(
        f.rule == "PLAN006" and "top-k threshold" in f.message
        for f in pool_findings
    )
    # The same graph is legal where a shared threshold exists.
    assert verify_graph(staged, "inline") == []
    assert verify_graph(staged, "sim") == []


def test_specless_pair_graph_on_the_pool_is_a_plan006():
    graph = plan_wavefront(12, 12, n_procs=2, group_rows=4)
    graph.spec = None
    assert verify_graph(graph, "inline") == []
    assert any(
        f.rule == "PLAN006" and "PlanSpec" in f.message
        for f in verify_graph(graph, "pool")
    )


def test_unknown_plan_kind_is_a_plan006():
    graph = TaskGraph(
        kind="mystery", n_procs=1, shape=(1, 1),
        tiles=(Tile(0, 0, 1, ()),),
    )
    assert any(
        f.rule == "PLAN006" and "mystery" in f.message
        for f in verify_graph(graph)
    )


# -- strict mode -----------------------------------------------------------


@pytest.fixture
def strict():
    set_strict(True)
    yield
    set_strict(None)


def test_strict_mode_defaults_off_and_obeys_the_env(monkeypatch):
    set_strict(None)
    monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
    assert not is_strict()
    monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
    assert is_strict()
    monkeypatch.setenv("REPRO_VERIFY_PLANS", "0")
    assert not is_strict()


def test_maybe_verify_is_inert_when_off(monkeypatch):
    set_strict(None)
    monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
    bad = _blocked([Tile(0, 0, 50, (0, 0), (0,))])
    maybe_verify(bad, "inline")  # no raise


def test_strict_executor_rejects_a_bad_graph_before_running_it(strict):
    graph = plan_wavefront(64, 64, n_procs=2, group_rows=16)
    broken = TaskGraph(
        kind=graph.kind, n_procs=graph.n_procs, shape=graph.shape,
        tiles=graph.tiles[:-1],  # drop the last tile: rank coverage breaks
        params=graph.params, spec=graph.spec,
    )
    gp = genome_pair(64, 64, n_regions=1, region_length=12, rng=5)
    s, t = encode(gp.s), encode(gp.t)
    with pytest.raises(PlanVerificationError) as err:
        InlineExecutor().run(broken, s, t)
    assert any(f.rule == "PLAN004" for f in err.value.findings)


def test_strict_executor_passes_a_good_graph(strict):
    graph = plan_wavefront(64, 64, n_procs=2, group_rows=16)
    gp = genome_pair(64, 64, n_regions=1, region_length=12, rng=5)
    result = InlineExecutor().run(graph, encode(gp.s), encode(gp.t))
    assert result.backend == "inline"


# -- overhead: strict verification under 2% of an inline align -------------


def test_strict_verification_overhead_under_2pct():
    from time import perf_counter

    assert not obs.is_enabled()
    n = 512
    gp = genome_pair(n, n, n_regions=1, region_length=60, mutation_rate=0.02, rng=33)
    s, t = encode(gp.s), encode(gp.t)
    graph = plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)

    def _best_of(fn, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            t0 = perf_counter()
            fn()
            best = min(best, perf_counter() - t0)
        return best

    def run():
        InlineExecutor().run(graph, s, t)

    try:
        for _ in range(4):
            set_strict(False)
            off = _best_of(run)
            set_strict(True)
            on = _best_of(run)
            if on <= off * 1.02:
                break
        else:
            pytest.fail(
                f"strict {on * 1e3:.3f} ms vs lax {off * 1e3:.3f} ms (>2%)"
            )
    finally:
        set_strict(None)
