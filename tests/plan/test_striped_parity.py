"""Kernel knob parity: striped == classic through every backend.

The ``kernel`` knob travels two routes to a worker -- the graph's params
dict (sim / inline) and the PlanSpec rebuilt inside pool workers -- and
both must select the striped row kernel without changing a single result.
These tests run each planner with ``kernel="striped"`` and ``"classic"``
through the sim, inline and pool executors and require identical region
sets and search rankings, plus validation of the knob itself.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.parallel import AlignmentWorkerPool, MpBlockedConfig, MpWavefrontConfig
from repro.plan import (
    InlineExecutor,
    PoolExecutor,
    SimExecutor,
    plan_blocked,
    plan_preprocess,
    plan_search_buckets,
    plan_wavefront,
    search_blob,
)
from repro.plan.planners import blocked_spec, preprocess_spec, wavefront_spec
from repro.seq import encode, genome_pair
from repro.seq.db import pack_database, synthetic_database
from repro.strategies import SearchConfig, search_db, search_db_sequential
from repro.strategies.runner import run_mp_pipeline

PLANNERS = {
    "wavefront": lambda m, n, kernel: plan_wavefront(
        m, n, n_procs=2, group_rows=16, kernel=kernel
    ),
    "blocked": lambda m, n, kernel: plan_blocked(
        m, n, n_procs=2, n_bands=8, n_blocks=8, kernel=kernel
    ),
    "preprocess": lambda m, n, kernel: plan_preprocess(
        m, n, n_procs=2, band_size=100, chunk_size=100, kernel=kernel
    ),
}


@pytest.fixture(scope="module")
def pair():
    gp = genome_pair(
        600, 600, n_regions=2, region_length=60, mutation_rate=0.02, rng=77
    )
    return encode(gp.s), encode(gp.t)


@pytest.fixture(scope="module")
def pool():
    with AlignmentWorkerPool(n_workers=2) as p:
        yield p


def regions(result):
    return sorted(
        (a.score, a.s_start, a.s_end, a.t_start, a.t_end) for a in result.alignments
    )


class TestRegionParity:
    @pytest.mark.parametrize("strategy", sorted(PLANNERS))
    def test_striped_matches_classic_inline_and_sim(self, pair, strategy):
        s, t = pair
        classic = PLANNERS[strategy](len(s), len(t), "classic")
        striped = PLANNERS[strategy](len(s), len(t), "striped")
        assert striped.params["kernel"] == "striped"
        assert striped.spec.kwargs["kernel"] == "striped"
        if strategy == "preprocess":
            # Preprocess graphs emit a scoreboard, not region alignments.
            want = InlineExecutor().run(classic, s, t).extras["result_matrix"]
            assert want.any()
            np.testing.assert_array_equal(
                InlineExecutor().run(striped, s, t).extras["result_matrix"], want
            )
            np.testing.assert_array_equal(
                SimExecutor().run(striped, s, t).extras["result_matrix"], want
            )
            return
        want = regions(InlineExecutor().run(classic, s, t))
        assert want
        assert regions(InlineExecutor().run(striped, s, t)) == want
        assert regions(SimExecutor().run(striped, s, t)) == want

    @pytest.mark.parametrize("strategy", ["wavefront", "blocked"])
    def test_striped_matches_classic_through_pool(self, pair, pool, strategy):
        s, t = pair
        classic = PLANNERS[strategy](len(s), len(t), "classic")
        striped = PLANNERS[strategy](len(s), len(t), "striped")
        want = regions(PoolExecutor(pool).run(classic, s, t))
        assert want
        assert regions(PoolExecutor(pool).run(striped, s, t)) == want

    @pytest.mark.parametrize(
        "config",
        [
            MpWavefrontConfig(n_workers=2, rows_per_exchange=16, kernel="striped"),
            MpBlockedConfig(n_workers=2, n_bands=6, n_blocks=6, kernel="striped"),
        ],
        ids=["mp_wavefront", "mp_blocked"],
    )
    def test_mp_configs_carry_the_kernel(self, pair, pool, config):
        gp = genome_pair(
            600, 600, n_regions=2, region_length=60, mutation_rate=0.02, rng=77
        )
        backend = "wavefront" if isinstance(config, MpWavefrontConfig) else "blocked"
        assert config.spec().kwargs["kernel"] == "striped"
        striped = run_mp_pipeline(
            gp.s, gp.t, backend=backend, pool=pool, phase1_config=config
        )
        # Same tiling, only the kernel differs: regions depend on the tiling.
        classic = run_mp_pipeline(
            gp.s,
            gp.t,
            backend=backend,
            pool=pool,
            phase1_config=dataclasses.replace(config, kernel="classic"),
        )

        def keyed(result):
            return sorted(
                (r.score, r.s_start, r.s_end, r.t_start, r.t_end)
                for r in result.regions
            )

        assert keyed(classic)
        assert keyed(striped) == keyed(classic)


class TestSearchParity:
    def test_inline_striped_matches_sequential(self):
        db = synthetic_database(n=30, min_length=40, max_length=200, rng=9)
        query = "ACGTACGTACGTACGTACGT"
        sequential = search_db_sequential(query, db, SearchConfig(top_k=5))
        striped = search_db(query, db, SearchConfig(top_k=5, kernel="striped"))
        assert striped.backend == "striped"
        assert sequential.scores()
        assert striped.scores() == sequential.scores()

    def test_pool_striped_matches_inline(self, pool):
        db = synthetic_database(n=30, min_length=40, max_length=200, rng=9)
        packed = pack_database(db)
        query = "ACGTACGTACGTACGTACGT"
        q = encode(query)
        graph = plan_search_buckets(packed, len(q), top_k=5, kernel="striped")
        assert graph.params["kernel"] == "striped"
        inline = InlineExecutor().run(graph, q, search_blob(packed)).hits
        pooled = pool.search(query, packed, top_k=5, kernel="striped")
        classic = pool.search(query, packed, top_k=5)
        assert inline
        assert inline == pooled == classic


class TestKernelValidation:
    def test_planners_reject_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            plan_wavefront(100, 100, n_procs=2, kernel="avx512")
        with pytest.raises(ValueError, match="kernel"):
            plan_blocked(100, 100, n_procs=2, n_bands=4, n_blocks=4, kernel="avx512")
        with pytest.raises(ValueError, match="kernel"):
            plan_preprocess(
                100, 100, n_procs=2, band_size=50, chunk_size=50, kernel="avx512"
            )
        packed = pack_database(
            synthetic_database(n=4, min_length=40, max_length=60, rng=3)
        )
        with pytest.raises(ValueError, match="kernel"):
            plan_search_buckets(packed, 8, kernel="avx512")

    def test_specs_reject_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            wavefront_spec(2, kernel="avx512")
        with pytest.raises(ValueError, match="kernel"):
            blocked_spec(2, 8, 8, kernel="avx512")
        with pytest.raises(ValueError, match="kernel"):
            preprocess_spec(2, 50, 50, kernel="avx512")

    def test_old_graphs_default_to_classic(self, pair):
        """Graphs planned before the knob existed carry no ``kernel`` param;
        runtimes must treat that as classic, not crash."""
        s, t = pair
        graph = plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)
        params = dict(graph.params)
        params.pop("kernel", None)
        stripped = dataclasses.replace(graph, params=params)
        assert regions(InlineExecutor().run(stripped, s, t)) == regions(
            InlineExecutor().run(graph, s, t)
        )
