"""Planners: graph structure, spec round-trips, and the search blob."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.plan import (
    DYNAMIC,
    blocked_spec,
    build_plan,
    cached_plan,
    plan_blocked,
    plan_preprocess,
    plan_search_buckets,
    plan_wavefront,
    search_blob,
    state_shape,
    wavefront_spec,
)
from repro.seq.db import pack_database, synthetic_database


class TestWavefrontPlan:
    def test_tile_grid_and_edges(self):
        g = plan_wavefront(10, 8, n_procs=2, group_rows=4)
        # ceil(10/4) = 3 row groups x 2 processors.
        assert len(g.tiles) == 6
        for tile in g.tiles:
            g_idx, p = divmod(tile.id, 2)
            assert tile.owner == p
            expected = []
            if p > 0:
                expected.append(tile.id - 1)  # left neighbour, same group
            if g_idx > 0:
                expected.append(tile.id - 2)  # previous group, same column
            assert list(tile.deps) == expected

    def test_cells_cover_the_matrix_exactly(self):
        g = plan_wavefront(10, 8, n_procs=2, group_rows=4)
        assert g.total_cells == 10 * 8

    def test_too_few_columns_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            plan_wavefront(10, 3, n_procs=4)

    def test_group_rows_must_be_positive(self):
        with pytest.raises(ValueError, match="group_rows"):
            plan_wavefront(10, 8, n_procs=2, group_rows=0)


class TestBlockedPlan:
    def test_round_robin_owners_and_edges(self):
        g = plan_blocked(40, 40, n_procs=2, n_bands=4, n_blocks=4)
        assert len(g.tiles) == 16
        for tile in g.tiles:
            band, block = tile.payload
            assert tile.owner == band % 2
            expected = []
            if band > 0:
                expected.append(tile.id - 4)  # passage row above
            if block > 0:
                expected.append(tile.id - 1)  # left column, same band
            assert list(tile.deps) == expected

    def test_cells_cover_the_matrix_exactly(self):
        g = plan_blocked(40, 40, n_procs=2, n_bands=4, n_blocks=4)
        assert g.total_cells == 40 * 40


class TestPreprocessPlan:
    def test_band_chunk_grid(self):
        g = plan_preprocess(40, 40, n_procs=2, band_size=10, chunk_size=10)
        assert g.params["n_bands"] == 4
        assert g.params["n_chunks"] == 4
        assert len(g.tiles) == 16
        assert g.total_cells == 40 * 40
        assert state_shape(g) == (5, 41)


class TestSpecs:
    def test_spec_rebuilds_the_identical_graph(self):
        g = plan_blocked(40, 40, n_procs=2, n_bands=4, n_blocks=4)
        rebuilt = build_plan(g.spec, 40, 40)
        assert rebuilt.tiles == g.tiles
        assert rebuilt.params == g.params

    def test_spec_survives_pickling(self):
        spec = wavefront_spec(n_procs=2, group_rows=16)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_spec_is_hashable(self):
        a = blocked_spec(n_procs=2, n_bands=4, n_blocks=4)
        b = blocked_spec(n_procs=2, n_bands=4, n_blocks=4)
        assert hash(a) == hash(b) and a == b

    def test_cached_plan_returns_the_same_object(self):
        spec = wavefront_spec(n_procs=2, group_rows=8)
        assert cached_plan(spec, 64, 64) is cached_plan(spec, 64, 64)

    def test_unknown_kind_rejected(self):
        spec = wavefront_spec(n_procs=2)
        bad = type(spec)("mystery", spec.params)
        with pytest.raises(ValueError, match="unknown plan kind"):
            build_plan(bad, 10, 10)


class TestSearchPlan:
    def test_buckets_become_dynamic_tiles(self):
        packed = pack_database(
            synthetic_database(n=8, min_length=40, max_length=90, rng=9)
        )
        g = plan_search_buckets(packed, 12, top_k=5)
        assert len(g.tiles) == len(packed.buckets)
        assert all(t.owner == DYNAMIC for t in g.tiles)
        assert all(t.deps == () for t in g.tiles)
        assert g.params["top_k"] == 5
        assert state_shape(g) is None

    def test_blob_offsets_recover_each_bucket(self):
        packed = pack_database(
            synthetic_database(n=8, min_length=40, max_length=90, rng=9)
        )
        g = plan_search_buckets(packed, 12)
        blob = search_blob(packed)
        assert blob.size == sum(int(b.codes.size) for b in packed.buckets)
        for tile, bucket in zip(g.tiles, packed.buckets):
            offset, width, lanes, _lengths, _indices = tile.payload
            view = blob[offset : offset + lanes * width].reshape(lanes, width)
            assert np.array_equal(view, bucket.codes)
