"""Cross-backend parity: one graph, identical answers everywhere.

The planner's whole promise is that the choice of backend -- simulated
cluster, inline, or the persistent pool -- changes *where* tiles run and
nothing about the results.  These tests push the same task graph through
all three and require bitwise-identical region sets and search rankings.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.parallel import AlignmentWorkerPool
from repro.plan import (
    InlineExecutor,
    PoolExecutor,
    SimExecutor,
    plan_blocked,
    plan_search_buckets,
    plan_wavefront,
    search_blob,
)
from repro.seq import encode, genome_pair
from repro.seq.db import pack_database, synthetic_database
from repro.strategies import SearchConfig, search_db_sequential


@pytest.fixture(scope="module")
def pair():
    gp = genome_pair(
        600, 600, n_regions=2, region_length=60, mutation_rate=0.02, rng=77
    )
    return encode(gp.s), encode(gp.t)


@pytest.fixture(scope="module")
def pool():
    with AlignmentWorkerPool(n_workers=2) as p:
        yield p


def regions(result):
    return sorted(
        (a.score, a.s_start, a.s_end, a.t_start, a.t_end) for a in result.alignments
    )


class TestRegionParity:
    def test_wavefront_identical_across_backends(self, pair, pool):
        s, t = pair
        graph = plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)
        inline = InlineExecutor().run(graph, s, t)
        sim = SimExecutor().run(graph, s, t)
        pooled = PoolExecutor(pool).run(graph, s, t)
        assert regions(inline)
        assert regions(inline) == regions(sim) == regions(pooled)

    def test_blocked_identical_across_backends(self, pair, pool):
        s, t = pair
        graph = plan_blocked(len(s), len(t), n_procs=2, n_bands=8, n_blocks=8)
        inline = InlineExecutor().run(graph, s, t)
        sim = SimExecutor().run(graph, s, t)
        pooled = PoolExecutor(pool).run(graph, s, t)
        assert regions(inline)
        assert regions(inline) == regions(sim) == regions(pooled)

    def test_backends_are_stamped(self, pair, pool):
        s, t = pair
        graph = plan_blocked(len(s), len(t), n_procs=2, n_bands=8, n_blocks=8)
        inline = InlineExecutor().run(graph, s, t)
        pooled = PoolExecutor(pool).run(graph, s, t)
        assert inline.backend == "inline" and pooled.backend == "pool"
        assert inline.name == "blocked"
        assert inline.total_time == inline.wall_seconds


class TestSearchParity:
    def test_inline_pool_and_sequential_agree(self, pool):
        db = synthetic_database(n=10, min_length=40, max_length=90, rng=9)
        packed = pack_database(db)
        query = "ACGTACGTACGTACGT"
        q = encode(query)
        graph = plan_search_buckets(packed, len(q), top_k=5)
        inline = InlineExecutor().run(graph, q, search_blob(packed)).hits
        pooled = pool.search(query, packed, top_k=5)
        sequential = search_db_sequential(query, packed, SearchConfig(top_k=5))
        reference = [(h.score, h.index) for h in sequential.hits]
        assert reference
        assert inline == pooled == reference


class TestExecutorGuards:
    def test_real_backends_reject_scaled_workloads(self, pair):
        s, t = pair
        graph = plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)
        with pytest.raises(ValueError, match="scale=1"):
            InlineExecutor().run(graph, s, t, scale=4)
        with pytest.raises(ValueError, match="scale=1"):
            PoolExecutor(pool=None).run(graph, s, t, scale=4)

    def test_pool_executor_rejects_search_graphs(self):
        packed = pack_database(
            synthetic_database(n=4, min_length=40, max_length=60, rng=3)
        )
        graph = plan_search_buckets(packed, 8)
        with pytest.raises(ValueError, match="run_search_plan"):
            PoolExecutor(pool=None).run(graph, encode("ACGTACGT"), search_blob(packed))

    def test_pool_executor_needs_a_spec(self, pair):
        s, t = pair
        graph = plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)
        with pytest.raises(ValueError, match="PlanSpec"):
            PoolExecutor(pool=None).run(
                dataclasses.replace(graph, spec=None), s, t
            )
