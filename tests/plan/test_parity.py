"""Cross-backend parity: one graph, identical answers everywhere.

The planner's whole promise is that the choice of backend -- simulated
cluster, inline, or the persistent pool -- changes *where* tiles run and
nothing about the results.  These tests push the same task graph through
all three and require bitwise-identical region sets and search rankings.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.obs as obs
from repro.parallel import AlignmentWorkerPool
from repro.plan import (
    InlineExecutor,
    PoolExecutor,
    SimExecutor,
    cached_plan,
    plan_blocked,
    plan_search_buckets,
    plan_wavefront,
    search_blob,
    wavefront_spec,
)
from repro.seq import encode, genome_pair
from repro.seq.db import pack_database, synthetic_database
from repro.strategies import SearchConfig, search_db_sequential


@pytest.fixture(scope="module")
def pair():
    gp = genome_pair(
        600, 600, n_regions=2, region_length=60, mutation_rate=0.02, rng=77
    )
    return encode(gp.s), encode(gp.t)


@pytest.fixture(scope="module")
def pool():
    with AlignmentWorkerPool(n_workers=2) as p:
        yield p


def regions(result):
    return sorted(
        (a.score, a.s_start, a.s_end, a.t_start, a.t_end) for a in result.alignments
    )


class TestRegionParity:
    def test_wavefront_identical_across_backends(self, pair, pool):
        s, t = pair
        graph = plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)
        inline = InlineExecutor().run(graph, s, t)
        sim = SimExecutor().run(graph, s, t)
        pooled = PoolExecutor(pool).run(graph, s, t)
        assert regions(inline)
        assert regions(inline) == regions(sim) == regions(pooled)

    def test_blocked_identical_across_backends(self, pair, pool):
        s, t = pair
        graph = plan_blocked(len(s), len(t), n_procs=2, n_bands=8, n_blocks=8)
        inline = InlineExecutor().run(graph, s, t)
        sim = SimExecutor().run(graph, s, t)
        pooled = PoolExecutor(pool).run(graph, s, t)
        assert regions(inline)
        assert regions(inline) == regions(sim) == regions(pooled)

    def test_backends_are_stamped(self, pair, pool):
        s, t = pair
        graph = plan_blocked(len(s), len(t), n_procs=2, n_bands=8, n_blocks=8)
        inline = InlineExecutor().run(graph, s, t)
        pooled = PoolExecutor(pool).run(graph, s, t)
        assert inline.backend == "inline" and pooled.backend == "pool"
        assert inline.name == "blocked"
        assert inline.total_time == inline.wall_seconds


class TestSearchParity:
    def test_inline_pool_and_sequential_agree(self, pool):
        db = synthetic_database(n=10, min_length=40, max_length=90, rng=9)
        packed = pack_database(db)
        query = "ACGTACGTACGTACGT"
        q = encode(query)
        graph = plan_search_buckets(packed, len(q), top_k=5)
        inline = InlineExecutor().run(graph, q, search_blob(packed)).hits
        pooled = pool.search(query, packed, top_k=5)
        sequential = search_db_sequential(query, packed, SearchConfig(top_k=5))
        reference = [(h.score, h.index) for h in sequential.hits]
        assert reference
        assert inline == pooled == reference


class TestTileTraceParity:
    """Attribution parity: every backend stamps the same tiles the same way.

    The same PlanSpec must yield identical traced tile-id sets -- and
    identical per-tile labels (owner/kind/cells/kernel/dtype) -- whether it
    runs inline, on the simulator, or on the pool.  This is what lets
    ``repro obs`` reports from different backends be compared directly.
    """

    @staticmethod
    def _traced_tiles(run):
        """Map tile id -> its full span-arg label for one traced run."""
        tiles = {}
        with obs.observed() as (tracer, _):
            run()
            for span in tracer.spans:
                if span.category == "computation" and "tile" in span.args:
                    args = dict(span.args)
                    args.pop("lanes", None)  # pool search extras, not labels
                    args.pop("width", None)
                    tile_id = args.pop("tile")
                    tiles[tile_id] = tuple(sorted(args.items()))
        return tiles

    def test_same_spec_same_tiles_every_backend(self, pair, pool):
        s, t = pair
        spec = wavefront_spec(n_procs=2, group_rows=16)
        graph = cached_plan(spec, len(s), len(t))
        inline = self._traced_tiles(lambda: InlineExecutor().run(graph, s, t))
        sim = self._traced_tiles(lambda: SimExecutor().run(graph, s, t))
        pooled = self._traced_tiles(lambda: PoolExecutor(pool).run(graph, s, t))
        assert set(inline) == {tile.id for tile in graph.tiles}
        assert inline == sim == pooled

    def test_labels_carry_the_attribution_fields(self, pair):
        s, t = pair
        graph = plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)
        traced = self._traced_tiles(lambda: InlineExecutor().run(graph, s, t))
        cells_by_id = {tile.id: tile.cells for tile in graph.tiles}
        for tile_id, label in traced.items():
            args = dict(label)
            assert set(args) == {"owner", "kind", "cells", "kernel", "dtype"}
            assert args["kind"] == "wavefront"
            assert args["cells"] == cells_by_id[tile_id]


class TestExecutorGuards:
    def test_real_backends_reject_scaled_workloads(self, pair):
        s, t = pair
        graph = plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)
        with pytest.raises(ValueError, match="scale=1"):
            InlineExecutor().run(graph, s, t, scale=4)
        with pytest.raises(ValueError, match="scale=1"):
            PoolExecutor(pool=None).run(graph, s, t, scale=4)

    def test_pool_executor_rejects_search_graphs(self):
        packed = pack_database(
            synthetic_database(n=4, min_length=40, max_length=60, rng=3)
        )
        graph = plan_search_buckets(packed, 8)
        with pytest.raises(ValueError, match="run_search_plan"):
            PoolExecutor(pool=None).run(graph, encode("ACGTACGT"), search_blob(packed))

    def test_pool_executor_needs_a_spec(self, pair):
        s, t = pair
        graph = plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)
        with pytest.raises(ValueError, match="PlanSpec"):
            PoolExecutor(pool=None).run(
                dataclasses.replace(graph, spec=None), s, t
            )
