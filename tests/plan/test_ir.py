"""The task-graph IR: invariants, queries, and the critical-path bound."""

from __future__ import annotations

import pytest

from repro.plan import DYNAMIC, TaskGraph, Tile


def diamond() -> TaskGraph:
    #   0
    #  / \
    # 1   2
    #  \ /
    #   3
    tiles = (
        Tile(0, 0, 5, ("a",)),
        Tile(1, 0, 3, ("b",), (0,)),
        Tile(2, 1, 4, ("c",), (0,)),
        Tile(3, 1, 2, ("d",), (1, 2)),
    )
    return TaskGraph(kind="blocked", n_procs=2, shape=(4, 4), tiles=tiles)


class TestValidate:
    def test_valid_graph_returns_itself(self):
        g = diamond()
        assert g.validate() is g

    def test_ids_must_be_dense(self):
        g = TaskGraph("blocked", 1, (2, 2), (Tile(1, 0, 4, ()),))
        with pytest.raises(ValueError, match="dense"):
            g.validate()

    def test_deps_must_point_backwards(self):
        tiles = (Tile(0, 0, 4, (), (0,)),)
        with pytest.raises(ValueError, match="topological"):
            TaskGraph("blocked", 1, (2, 2), tiles).validate()

    def test_owner_out_of_range(self):
        tiles = (Tile(0, 3, 4, ()),)
        with pytest.raises(ValueError, match="owner"):
            TaskGraph("blocked", 2, (2, 2), tiles).validate()

    def test_dynamic_owner_is_allowed(self):
        tiles = (Tile(0, DYNAMIC, 4, ()),)
        TaskGraph("search", 1, (2, 2), tiles).validate()

    def test_n_procs_must_be_positive(self):
        with pytest.raises(ValueError, match="n_procs"):
            TaskGraph("blocked", 0, (2, 2), ()).validate()


class TestQueries:
    def test_tiles_of_preserves_topological_order(self):
        g = diamond()
        assert [t.id for t in g.tiles_of(0)] == [0, 1]
        assert [t.id for t in g.tiles_of(1)] == [2, 3]

    def test_owners_sorted_dynamic_first(self):
        tiles = (Tile(0, 1, 1, ()), Tile(1, DYNAMIC, 1, ()), Tile(2, 0, 1, ()))
        g = TaskGraph("search", 2, (1, 1), tiles)
        assert g.owners() == [DYNAMIC, 0, 1]

    def test_total_cells(self):
        assert diamond().total_cells == 14

    def test_critical_path_is_heaviest_chain(self):
        # 0 -> 2 -> 3 outweighs 0 -> 1 -> 3.
        assert diamond().critical_path_cells() == 5 + 4 + 2

    def test_critical_path_of_empty_graph_is_zero(self):
        g = TaskGraph("search", 1, (0, 0), ())
        assert g.critical_path_cells() == 0
