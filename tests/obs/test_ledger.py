"""Run ledger: persistence, ref resolution, direction-aware diffing.

The acceptance case is the injected 2x slowdown: two entries whose rates
differ by a factor of two must be flagged by ``diff_entries`` in *both*
directions (halved GCUPS, doubled seconds), and the flag threshold must be
the same constant the benchmark guard uses.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.obs.ledger import (
    REGRESSION_THRESHOLD,
    RunLedger,
    active_ledger,
    bench_rates,
    config_digest,
    diff_entries,
    entry_from_bench,
    make_entry,
    record_run,
    render_diff,
    resolve_ref,
    set_ledger,
)


@pytest.fixture(autouse=True)
def clean_ledger_state(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    set_ledger(None)
    yield
    set_ledger(None)


class TestPersistence:
    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(make_entry("run-a", {"x_gcups": 1.0}))
        ledger.append(make_entry("run-b", {"x_gcups": 2.0}))
        entries = ledger.entries()
        assert [e["label"] for e in entries] == ["run-a", "run-b"]
        assert entries[0]["machine"]["python"]

    def test_get_by_id_label_and_negative_index(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = ledger.append(make_entry("nightly", {"x_gcups": 1.0}))
        second = ledger.append(make_entry("nightly", {"x_gcups": 2.0}))
        assert ledger.get(first["run_id"]) == first
        assert ledger.get("nightly") == second  # latest run of a label wins
        assert ledger.get(-1) == second and ledger.get(-2) == first
        assert ledger.get("-2") == first  # CLI refs arrive as strings
        with pytest.raises(LookupError):
            ledger.get("no-such-run")

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.append(make_entry("ok", {"x_gcups": 1.0}))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"run_id": "torn", "rates": {"x_gc')
        assert [e["label"] for e in ledger.entries()] == ["ok"]

    def test_empty_or_missing_file(self, tmp_path):
        ledger = RunLedger(tmp_path / "never-written.jsonl")
        assert ledger.entries() == []
        with pytest.raises(LookupError):
            ledger.get(-1)


class TestRecordRun:
    def test_noop_without_active_ledger(self):
        assert active_ledger() is None
        assert record_run("r", {"x_gcups": 1.0}) is None

    def test_env_var_activates(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(path))
        entry = record_run("r", {"x_gcups": 1.0}, config={"n": 2})
        assert entry is not None
        assert RunLedger(path).get(-1)["config"] == {"n": 2}

    def test_attribution_rides_along_when_traced(self, tmp_path):
        set_ledger(tmp_path / "runs.jsonl")
        with obs.observed() as (tracer, _):
            tracer.record(
                "plan:wavefront", "coordination", 0.0, 1.0,
                kind="wavefront", tiles=1, cells=100, critical_path_cells=60,
                n_procs=1, rows=10, cols=10, backend="inline",
            )
            tracer.record(
                "rows", "computation", 0.1, 0.5,
                tile=0, owner=0, kind="wavefront", cells=100,
                kernel="classic", dtype="int32",
            )
            entry = record_run("r", {"x_gcups": 1.0})
        assert entry["attribution"]["kind"] == "wavefront"
        assert entry["attribution"]["cells_traced"] == 100
        # and it survives the jsonl round trip
        assert RunLedger(tmp_path / "runs.jsonl").get(-1)["attribution"][
            "cells_traced"
        ] == 100

    def test_untraced_entry_has_no_attribution(self, tmp_path):
        set_ledger(tmp_path / "runs.jsonl")
        entry = record_run("r", {"x_gcups": 1.0})
        assert entry["attribution"] is None


class TestDiff:
    def test_injected_2x_slowdown_is_flagged_both_directions(self):
        """The ISSUE's acceptance check: a 2x slowdown must be detected."""
        fast = make_entry("fast", {"phase1_gcups": 1.0, "phase1_seconds": 1.0})
        slow = make_entry("slow", {"phase1_gcups": 0.5, "phase1_seconds": 2.0})
        rows = diff_entries(fast, slow)
        assert {r["key"]: r["regressed"] for r in rows} == {
            "phase1_gcups": True,
            "phase1_seconds": True,
        }
        text = render_diff(fast, slow, rows)
        assert "!!" in text and "2 regression(s)" in text

    def test_threshold_boundary_is_strict(self):
        base = make_entry("a", {"x_gcups": 1.0, "x_seconds": 1.0})
        at_edge = make_entry("b", {
            "x_gcups": 1.0 - REGRESSION_THRESHOLD,          # exactly -30%
            "x_seconds": 1.0 / (1.0 - REGRESSION_THRESHOLD),  # the mirror
        })
        assert not any(r["regressed"] for r in diff_entries(base, at_edge))
        past = make_entry("c", {"x_gcups": 0.69, "x_seconds": 1.45})
        assert all(r["regressed"] for r in diff_entries(base, past))

    def test_improvements_never_flagged(self):
        a = make_entry("a", {"x_gcups": 1.0, "x_seconds": 2.0})
        b = make_entry("b", {"x_gcups": 5.0, "x_seconds": 0.1})
        assert not any(r["regressed"] for r in diff_entries(a, b))

    def test_neutral_keys_reported_but_never_flagged(self):
        a = make_entry("a", {"cells": 100.0})
        b = make_entry("b", {"cells": 1.0})
        rows = diff_entries(a, b)
        assert rows[0]["direction"] == "neutral" and not rows[0]["regressed"]

    def test_guard_threshold_matches_bench_guard(self):
        """One constant for both gates; the bench guard imports it."""
        import importlib.util
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "benchmarks", "test_bench_guard.py"
        )
        spec = importlib.util.spec_from_file_location("bench_guard", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.MAX_REGRESSION == REGRESSION_THRESHOLD


class TestBenchInterop:
    BENCH = {
        "_machine": {"platform": "test", "quick": True},
        "scan": {"workspace_gcups": 2.0, "workspace_seconds": 0.5, "cells": 42},
    }

    def test_bench_rates_flatten_with_direction_suffixes_only(self):
        rates = bench_rates(self.BENCH)
        assert rates == {
            "scan.workspace_gcups": 2.0,
            "scan.workspace_seconds": 0.5,
        }

    def test_resolve_ref_accepts_bench_file(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(self.BENCH))
        entry = resolve_ref(None, str(path))
        assert entry["rates"]["scan.workspace_gcups"] == 2.0
        assert entry["machine"]["quick"] is True

    def test_bench_run_diffs_against_baseline_file(self, tmp_path):
        baseline = entry_from_bench(self.BENCH)
        slowed = dict(self.BENCH, scan={"workspace_gcups": 0.9,
                                        "workspace_seconds": 1.2, "cells": 42})
        rows = diff_entries(baseline, entry_from_bench(slowed))
        assert {r["key"]: r["regressed"] for r in rows} == {
            "scan.workspace_gcups": True,
            "scan.workspace_seconds": True,
        }

    def test_resolve_ref_without_ledger_or_file(self):
        with pytest.raises(LookupError, match="no ledger"):
            resolve_ref(None, "-1")


class TestConfigDigest:
    def test_stable_and_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})
