"""Cross-process segment collection, including killed-worker partial files."""

import json
import os

import repro.obs as obs
from repro.obs.collect import (
    ObsJob,
    discard_segments,
    merge_into,
    merge_segments,
    observed_worker,
    segment_path,
    write_segment,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _make_segment(dir_, key, process, n_spans=2, cells=100):
    """Write a well-formed worker segment the way observed_worker would."""
    tracer = Tracer(process)
    for i in range(n_spans):
        tracer.record("rows", "computation", 10.0 + i, 0.5, lo=i)
    metrics = MetricsRegistry()
    metrics.counter("cells_computed").inc(cells)
    write_segment(ObsJob(str(dir_), key), process, tracer, metrics)


class TestSegmentRoundtrip:
    def test_write_then_merge(self, tmp_path):
        _make_segment(tmp_path, "job1", "worker-0", n_spans=3, cells=30)
        _make_segment(tmp_path, "job1", "worker-1", n_spans=2, cells=20)
        slices, snaps = merge_segments(str(tmp_path), "job1")
        assert len(slices) == 5
        assert sum(s["counters"]["cells_computed"] for s in snaps) == 50

    def test_merge_into_coordinator(self, tmp_path):
        _make_segment(tmp_path, "job1", "worker-0")
        tracer = Tracer("coordinator")
        metrics = MetricsRegistry()
        n = merge_into(tracer, metrics, str(tmp_path), "job1")
        assert n == 2
        assert "worker-0" in tracer.processes()
        assert metrics.counter("cells_computed").value == 100

    def test_keys_do_not_cross_jobs(self, tmp_path):
        _make_segment(tmp_path, "job1", "worker-0")
        _make_segment(tmp_path, "job2", "worker-0", cells=7)
        _, snaps = merge_segments(str(tmp_path), "job2")
        assert [s["counters"]["cells_computed"] for s in snaps] == [7]

    def test_discard(self, tmp_path):
        _make_segment(tmp_path, "job1", "worker-0")
        discard_segments(str(tmp_path), "job1")
        assert merge_segments(str(tmp_path), "job1") == ([], [])


class TestKilledWorker:
    """Partial segments from a dead worker must never corrupt the merge."""

    def test_truncated_tail_keeps_valid_prefix(self, tmp_path):
        _make_segment(tmp_path, "job1", "worker-0", n_spans=2, cells=100)
        # worker-1 died mid-write: valid span line, then a torn one.
        path = segment_path(ObsJob(str(tmp_path), "job1"), "worker-1")
        good = json.dumps(
            {
                "kind": "span",
                "name": "rows",
                "cat": "computation",
                "process": "worker-1",
                "start": 1.0,
                "dur": 0.5,
            }
        )
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(good + "\n")
            fh.write('{"kind": "span", "name": "rows", "cat": "comp')  # torn
        slices, snaps = merge_segments(str(tmp_path), "job1")
        # 2 complete spans from worker-0 + the one valid worker-1 line.
        assert len(slices) == 3
        # worker-1 never reached its metrics line; worker-0's survives.
        assert len(snaps) == 1

    def test_torn_line_mid_file_keeps_records_after_it(self, tmp_path):
        """A killed-then-restarted worker re-opens its segment: the torn line
        sits in the *middle* of the file with valid records after it, and
        every record around the tear must still be collected."""
        path = segment_path(ObsJob(str(tmp_path), "job1"), "worker-0")
        span = {
            "kind": "span",
            "name": "rows",
            "cat": "computation",
            "process": "worker-0",
            "start": 1.0,
            "dur": 0.5,
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(span) + "\n")
            fh.write('{"kind": "span", "name": "rows", "cat": "comp\n')  # torn
            fh.write(json.dumps({**span, "start": 2.0}) + "\n")  # after restart
            fh.write(
                json.dumps({"kind": "metrics", "data": {"counters": {"c": 3}}})
                + "\n"
            )
        slices, snaps = merge_segments(str(tmp_path), "job1")
        assert [s["start"] for s in slices] == [1.0, 2.0]
        assert snaps == [{"counters": {"c": 3}}]

    def test_torn_line_mid_file_in_sanitizer_events(self, tmp_path):
        from repro.obs.collect import read_sanitizer_events

        path = segment_path(ObsJob(str(tmp_path), "job1"), "worker-0")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "sanitizer", "eve\n')  # torn
            fh.write(
                json.dumps({"kind": "sanitizer", "events": [{"op": "wait"}]})
                + "\n"
            )
        assert read_sanitizer_events(str(tmp_path), "job1") == [{"op": "wait"}]

    def test_missing_segment_is_fine(self, tmp_path):
        _make_segment(tmp_path, "job1", "worker-0")
        slices, snaps = merge_segments(str(tmp_path), "job1")
        assert len(slices) == 2 and len(snaps) == 1

    def test_empty_and_garbage_files(self, tmp_path):
        open(os.path.join(tmp_path, "job1-worker-0.jsonl"), "w").close()
        with open(os.path.join(tmp_path, "job1-worker-1.jsonl"), "w") as fh:
            fh.write("not json at all\n")
        with open(os.path.join(tmp_path, "job1-worker-2.jsonl"), "w") as fh:
            fh.write('["a", "list", "not", "a", "dict"]\n')
            fh.write(json.dumps({"kind": "metrics", "data": {"counters": {"c": 1}}}) + "\n")
        slices, snaps = merge_segments(str(tmp_path), "job1")
        assert slices == []
        assert snaps == [{"counters": {"c": 1}}]

    def test_span_missing_required_keys_skipped(self, tmp_path):
        with open(os.path.join(tmp_path, "job1-worker-0.jsonl"), "w") as fh:
            fh.write(json.dumps({"kind": "span", "name": "x"}) + "\n")
        slices, _ = merge_segments(str(tmp_path), "job1")
        assert slices == []

    def test_merged_timeline_stays_coherent(self, tmp_path):
        """After merging a partial segment the tracer still exports cleanly."""
        _make_segment(tmp_path, "job1", "worker-0")
        path = segment_path(ObsJob(str(tmp_path), "job1"), "worker-1")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "span", "na')  # nothing salvageable
        tracer = Tracer("coordinator")
        merge_into(tracer, MetricsRegistry(), str(tmp_path), "job1")
        events = tracer.to_chrome_trace()
        assert len(events) == 2
        assert all(e["ph"] == "X" for e in events)


class TestObservedWorker:
    def test_null_when_no_obs(self):
        obs.enable("inherited-from-fork")  # simulate state inherited over fork
        try:
            with observed_worker(None, "worker-0") as (tracer, metrics):
                assert tracer.enabled is False
            # the inherited tracer must have been reset, not kept
            assert obs.is_enabled() is False
        finally:
            obs.disable()

    def test_writes_segment_and_restores_state(self, tmp_path):
        job = ObsJob(str(tmp_path), "job9", t_submit=0.0)
        with observed_worker(job, "worker-3") as (tracer, metrics):
            assert obs.get_tracer() is tracer
            with tracer.span("rows", "computation"):
                pass
            metrics.counter("cells_computed").inc(5)
        assert obs.is_enabled() is False
        slices, snaps = merge_segments(str(tmp_path), "job9")
        assert len(slices) == 1
        assert snaps[0]["counters"]["cells_computed"] == 5

    def test_segment_written_even_on_error(self, tmp_path):
        job = ObsJob(str(tmp_path), "job9")
        try:
            with observed_worker(job, "worker-0") as (tracer, _):
                tracer.record("rows", "computation", 0.0, 1.0)
                raise RuntimeError("job blew up")
        except RuntimeError:
            pass
        slices, _ = merge_segments(str(tmp_path), "job9")
        assert len(slices) == 1

    def test_queue_wait_recorded(self, tmp_path):
        from time import perf_counter

        job = ObsJob(str(tmp_path), "job9", t_submit=perf_counter() - 0.05)
        with observed_worker(job, "worker-0") as (_, metrics):
            pass
        _, snaps = merge_segments(str(tmp_path), "job9")
        hist = snaps[0]["histograms"]["pool_queue_wait_seconds"]
        assert hist["count"] == 1
        assert hist["sum"] >= 0.05
