"""The disabled-observability overhead budget: <2% on a 512x512 alignment.

The instrumentation contract is that every hook in a hot path is (a) batch-
grained, never per-row, and (b) guarded by one attribute check when no
tracer is installed.  This test enforces the budget two ways:

* an A/B timing of the instrumented batched kernel against a verbatim
  uninstrumented copy of its loop (the only difference is the hook), and
* a direct accounting check: the measured per-call cost of the disabled
  hook, multiplied by a generous per-row hook count, must stay under 2% of
  the full 512x512 alignment time.

Timing comparisons on millisecond workloads are noisy, so the A/B check
takes best-of-several and retries before failing.
"""

from time import perf_counter

import numpy as np
import pytest

import repro.obs as obs
from repro.core import KernelWorkspace, initial_row
from repro.core.kernels import SCORE_DTYPE
from repro.seq import random_dna

N = 512


@pytest.fixture(scope="module")
def pair_512():
    return random_dna(N, rng=21), random_dna(N, rng=22)


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def test_observability_disabled_by_default():
    assert not obs.is_enabled()
    assert obs.get_tracer().enabled is False


def test_disabled_hook_overhead_under_2pct_on_512_alignment(pair_512):
    """Tier-1 budget: hooks cost <2% of a 512x512 alignment when disabled."""
    s, t = pair_512
    assert not obs.is_enabled()
    ws = KernelWorkspace(t)
    H = np.zeros((N + 1, N + 1), dtype=SCORE_DTYPE)
    H[0] = initial_row(N, local=True)

    def instrumented():
        ws.sw_rows(H[0], s, out=H[1:])

    def uninstrumented():
        # sw_rows' loop, verbatim, minus the count_cells hook.
        row = H[0]
        out = H[1:]
        for r in range(N):
            row = ws.sw_row(row, int(s[r]), out=out[r])

    alignment_s = _best_of(instrumented)

    # Accounting bound: even if a hook fired once per ROW (the code only
    # fires once per batch), the disabled cost must fit the 2% budget.
    reps = 10_000
    t0 = perf_counter()
    for _ in range(reps):
        obs.count_cells(N)
    per_hook = (perf_counter() - t0) / reps
    assert per_hook * N < 0.02 * alignment_s, (
        f"disabled hook costs {per_hook * 1e9:.0f} ns; {N} of them exceed "
        f"2% of the {alignment_s * 1e3:.2f} ms alignment"
    )

    # A/B bound: the instrumented batch API vs its hook-free twin.  Retry a
    # few times -- ~1.5 ms timings jitter more than the 2% we are asserting.
    for attempt in range(4):
        a = _best_of(instrumented)
        b = _best_of(uninstrumented)
        if a <= b * 1.02:
            break
    else:
        pytest.fail(f"instrumented {a * 1e3:.3f} ms vs uninstrumented {b * 1e3:.3f} ms (>2%)")


def test_enabled_hook_counts_exactly_once(pair_512):
    s, t = pair_512
    ws = KernelWorkspace(t)
    H = np.zeros((N + 1, N + 1), dtype=SCORE_DTYPE)
    H[0] = initial_row(N, local=True)
    with obs.observed() as (_, metrics):
        ws.sw_rows(H[0], s, out=H[1:])
    assert metrics.counter("cells_computed").value == N * N
    assert not obs.is_enabled()
