"""Tile attribution must stay <2% overhead when observability is disabled.

The per-tile span stamping this feature added (tile_args construction, the
plan-span args with their O(tiles) critical-path walk) is gated on
``tracer.enabled``; with no tracer installed each tile pays one attribute
check and ``Executor.run`` pays one branch.  Enforced the same two ways as
``tests/obs/test_overhead.py``: an accounting bound on the measured cost of
the disabled check, and an A/B of the instrumented inline executor against a
verbatim hook-free copy of its loop (best-of-several with retries, because
millisecond timings jitter more than the 2% being asserted).
"""

from __future__ import annotations

from time import perf_counter

import pytest

import repro.obs as obs
from repro.core.scoring import DEFAULT_SCORING
from repro.plan import InlineExecutor, plan_wavefront
from repro.plan.runtime import finalize_plan, make_runtime
from repro.seq import encode, genome_pair

N = 512


@pytest.fixture(scope="module")
def workload():
    gp = genome_pair(N, N, n_regions=1, region_length=60, mutation_rate=0.02, rng=33)
    s, t = encode(gp.s), encode(gp.t)
    return s, t, plan_wavefront(len(s), len(t), n_procs=2, group_rows=16)


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def test_disabled_tile_attribution_overhead_under_2pct(workload):
    s, t, graph = workload
    assert not obs.is_enabled()

    def instrumented():
        InlineExecutor().run(graph, s, t)

    def uninstrumented():
        # InlineExecutor._execute, verbatim, minus every obs hook: no
        # Stopwatch, no tracer check, no tile_args, no cell counting.
        runtime = make_runtime(graph, s, t, DEFAULT_SCORING)
        for tile in graph.tiles:
            runtime.run_tile(tile)
        finalize_plan(graph, [runtime.emit(owner) for owner in graph.owners()])

    run_s = _best_of(instrumented)

    # Accounting bound: the disabled path costs one tracer-enabled check per
    # tile (plus one span-args branch per plan).  Even charging every tile
    # the measured per-check cost must fit the 2% budget.
    reps = 10_000
    t0 = perf_counter()
    for _ in range(reps):
        obs.get_tracer().enabled  # noqa: B018 -- the disabled branch itself
    per_check = (perf_counter() - t0) / reps
    assert per_check * len(graph.tiles) < 0.02 * run_s, (
        f"disabled check costs {per_check * 1e9:.0f} ns; {len(graph.tiles)} "
        f"of them exceed 2% of the {run_s * 1e3:.2f} ms run"
    )

    # A/B bound with retries: instrumented executor vs its hook-free twin.
    for _ in range(4):
        a = _best_of(instrumented)
        b = _best_of(uninstrumented)
        if a <= b * 1.02:
            break
    else:
        pytest.fail(
            f"instrumented {a * 1e3:.3f} ms vs uninstrumented {b * 1e3:.3f} ms (>2%)"
        )


def test_plan_span_args_not_built_when_disabled(workload, monkeypatch):
    """The O(tiles) critical-path walk must not run on the disabled path."""
    s, t, graph = workload
    assert not obs.is_enabled()
    called = []
    monkeypatch.setattr(
        type(graph), "span_args", lambda self, **kw: called.append(1) or {}
    )
    InlineExecutor().run(graph, s, t)
    assert not called
    with obs.observed():
        InlineExecutor().run(graph, s, t)
    assert called
