"""Metrics registry: counters, gauges, histogram bucket edges, merge rules."""

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    MIN_RATE_SECONDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    gcups,
    safe_rate,
)


class TestCounter:
    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_monotonic(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set(self):
        g = Gauge("g")
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0


class TestHistogramBuckets:
    def test_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)  # exactly on the first edge -> bucket 0
        h.observe(1.5)  # between 1 and 2 -> bucket 1
        h.observe(2.0)  # exactly on an edge -> bucket 1
        h.observe(4.0)  # last edge -> bucket 2
        h.observe(5.0)  # above every edge -> overflow
        assert h.counts == [1, 2, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(13.5)
        assert h.mean == pytest.approx(2.7)

    def test_below_first_edge(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.0)
        assert h.counts == [1, 0, 0]

    def test_overflow_slot_exists(self):
        h = Histogram("h", buckets=(1.0,))
        assert len(h.counts) == 2

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(DEFAULT_SECONDS_BUCKETS)

    def test_rejects_unsorted_or_empty(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("c") is r.counter("c")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")
        assert len(r) == 3

    def test_snapshot_is_jsonable(self):
        import json

        r = MetricsRegistry()
        r.counter("cells").inc(100)
        r.gauge("gcups").set(1.5)
        r.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        snap = json.loads(json.dumps(r.snapshot()))
        assert snap["counters"]["cells"] == 100
        assert snap["gauges"]["gcups"] == 1.5
        assert snap["histograms"]["lat"]["counts"] == [0, 1, 0]

    def test_merge_counters_add_gauges_max_histograms_sum(self):
        a = MetricsRegistry()
        a.counter("cells").inc(10)
        a.gauge("peak").set(2.0)
        a.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)

        b = MetricsRegistry()
        b.counter("cells").inc(5)
        b.gauge("peak").set(3.0)
        b.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)

        a.merge(b.snapshot())
        assert a.counter("cells").value == 15
        assert a.gauge("peak").value == 3.0
        h = a.histogram("lat", buckets=(1.0, 2.0))
        assert h.counts == [1, 1, 0]
        assert h.count == 2

    def test_merge_skips_mismatched_histogram_buckets(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        a.merge({"histograms": {"lat": {"buckets": [9.0], "counts": [1, 1], "sum": 1, "count": 2}}})
        assert a.histogram("lat", buckets=(1.0, 2.0)).count == 1

    def test_merge_tolerates_malformed_snapshot(self):
        a = MetricsRegistry()
        a.merge({"histograms": {"bad": {"buckets": None}}})
        a.merge({})
        assert len(a) == 0


class TestGcups:
    def test_value(self):
        assert gcups(2e9, 2.0) == pytest.approx(1.0)

    def test_zero_time(self):
        assert gcups(1e9, 0.0) == 0.0

    def test_near_zero_negative_and_nonfinite_all_yield_zero(self):
        """Degenerate denominators must give 0.0, never a raise or inf."""
        for seconds in (0.0, MIN_RATE_SECONDS, MIN_RATE_SECONDS / 2, -1.0,
                        float("nan"), float("inf"), float("-inf")):
            assert gcups(1e9, seconds) == 0.0
            assert safe_rate(5.0, seconds) == 0.0

    def test_just_above_floor_divides(self):
        assert safe_rate(4.0, 2.0) == pytest.approx(2.0)
        assert safe_rate(1.0, 1e-9) == pytest.approx(1e9)

    def test_registry_gcups_guarded(self):
        r = MetricsRegistry()
        r.counter("cells_computed").inc(2_000_000_000)
        assert r.gcups(2.0) == pytest.approx(1.0)
        assert r.gcups(0.0) == 0.0
        assert r.gcups(float("nan")) == 0.0
        # counter that was never incremented: 0 cells over real time is 0.0
        assert r.gcups(1.0, counter="never_touched") == 0.0
