"""Span tracer: nesting, ordering, and Chrome-trace schema parity."""

import json

import pytest

from repro.obs.trace import NULL_TRACER, Span, Stopwatch, Tracer
from repro.sim import Simulator, compute
from repro.sim.trace import Timeline


class TestSpanNesting:
    def test_nested_depths(self):
        tracer = Tracer("p0")
        with tracer.span("outer", "phase"):
            with tracer.span("inner", "computation"):
                with tracer.span("innermost", "computation"):
                    pass
            with tracer.span("sibling", "communication"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].depth == 2
        assert by_name["sibling"].depth == 1

    def test_children_contained_in_parent(self):
        tracer = Tracer("p0")
        with tracer.span("outer", "phase"):
            with tracer.span("inner"):
                pass
        outer = tracer.named("outer")[0]
        inner = tracer.named("inner")[0]
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_chrome_export_sorted_by_start(self):
        tracer = Tracer("p0")
        tracer.record("b", "computation", 2.0, 1.0)
        tracer.record("a", "computation", 1.0, 0.5)
        events = tracer.to_chrome_trace()
        assert [e["name"] for e in events] == ["a", "b"]
        assert events[0]["ts"] == 0.0  # normalised to the earliest span

    def test_span_context_exposes_duration(self):
        tracer = Tracer("p0")
        with tracer.span("x") as sp:
            pass
        assert sp.duration >= 0.0
        assert tracer.spans[0].duration == sp.duration

    def test_record_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Tracer("p").record("x", "computation", 0.0, -1.0)


class TestSchemaParity:
    """Real and simulated traces must emit the same Chrome-trace schema."""

    def _sim_events(self):
        tl = Timeline()
        sim = Simulator(timeline=tl)

        def body():
            yield compute(0.5)

        sim.spawn(body(), name="n0")
        sim.spawn(body(), name="n1")
        sim.run()
        return tl.to_chrome_trace()

    def _obs_events(self):
        tracer = Tracer("coordinator")
        with tracer.span("phase1", "phase"):
            pass
        tracer.record("rows", "computation", tracer.spans[0].start, 0.001, process="worker-0")
        return tracer.to_chrome_trace()

    def test_same_key_set(self):
        sim_keys = {frozenset(e) for e in self._sim_events()}
        obs_keys = {frozenset(e) for e in self._obs_events()}
        assert sim_keys == obs_keys

    def test_complete_events_with_process_arg(self):
        for events in (self._sim_events(), self._obs_events()):
            for e in events:
                assert e["ph"] == "X"
                assert isinstance(e["ts"], float)
                assert isinstance(e["dur"], float)
                assert e["tid"] == 1
                assert "process" in e["args"]

    def test_pids_enumerate_processes(self):
        events = self._obs_events()
        assert {e["pid"] for e in events} == {1, 2}

    def test_write_chrome_trace_embeds_metrics(self, tmp_path):
        tracer = Tracer("p")
        with tracer.span("x"):
            pass
        path = tmp_path / "t.json"
        tracer.write_chrome_trace(path, metrics={"counters": {"c": 1}})
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["reproMetrics"]["counters"]["c"] == 1


class TestCrossProcessMerge:
    def test_slices_roundtrip(self):
        worker = Tracer("worker-0")
        with worker.span("rows", "computation", lo=0, hi=8):
            pass
        coordinator = Tracer("coordinator")
        with coordinator.span("phase1", "phase"):
            pass
        coordinator.add_slices(worker.export_slices())
        assert coordinator.processes() == ["coordinator", "worker-0"]
        merged = coordinator.named("rows")[0]
        assert merged.process == "worker-0"
        assert merged.args == {"lo": 0, "hi": 8}

    def test_busy_time_per_process(self):
        tracer = Tracer("c")
        tracer.record("a", "computation", 1.0, 2.0, process="w0")
        tracer.record("b", "communication", 3.0, 1.0, process="w0")
        assert tracer.busy_time("w0") == pytest.approx(3.0)
        assert tracer.busy_time("w0", "computation") == pytest.approx(2.0)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("x", "computation", a=1) as sp:
            assert sp.duration == 0.0
        NULL_TRACER.record("x", "computation", 0.0, 1.0)
        assert NULL_TRACER.export_slices() == []
        assert len(NULL_TRACER.spans) == 0

    def test_span_object_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            assert sw.elapsed == 0.0
        assert sw.elapsed > 0.0


class TestSpanDataclass:
    def test_end_and_dict(self):
        s = Span("n", "computation", "p", 1.0, 2.0, depth=1, args={"k": "v"})
        assert s.end == 3.0
        d = s.to_dict()
        assert d["name"] == "n" and d["cat"] == "computation"
        assert d["start"] == 1.0 and d["dur"] == 2.0 and d["depth"] == 1
