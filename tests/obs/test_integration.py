"""End-to-end telemetry through the real execution paths.

These are the acceptance tests of the observability tentpole: a pool run
under ``observed()`` must yield one coherent timeline containing spans from
every worker process plus the coordinator, with merged metrics, and the
pipeline runners must report wall-clock seconds that can never be confused
with simulated time.
"""

import pytest

import repro.obs as obs
from repro.obs.report import phase_rows, process_rows, render_report
from repro.seq import genome_pair


@pytest.fixture(scope="module")
def pair():
    return genome_pair(
        400, 400, n_regions=2, region_length=60, mutation_rate=0.02, rng=7, min_separation=60
    )


class TestPoolTelemetry:
    def test_pool_run_collects_worker_spans_and_metrics(self, pair):
        from repro.parallel import AlignmentWorkerPool

        with obs.observed("coordinator") as (tracer, metrics):
            with AlignmentWorkerPool(n_workers=2) as pool:
                pool.load_pair(pair.s, pair.t)
                regions = pool.wavefront()
                pool.phase2([r for r in regions if r.s_length and r.t_length])
        processes = tracer.processes()
        assert "coordinator" in processes
        assert "worker-0" in processes and "worker-1" in processes
        # every phase-1 cell was counted exactly once across the workers
        assert metrics.counter("cells_computed").value >= 400 * 400
        assert metrics.counter("arena_bytes_published").value == 800
        assert metrics.histogram("pool_queue_wait_seconds").count >= 2
        # worker compute slices and the shm publish span are both present
        assert any(s.name == "rows" for s in tracer.spans)
        assert any(s.name == "shm_publish" for s in tracer.spans)

    def test_blocked_job_traces_tiles(self, pair):
        from repro.parallel import AlignmentWorkerPool, MpBlockedConfig

        with obs.observed() as (tracer, metrics):
            with AlignmentWorkerPool(n_workers=2) as pool:
                pool.blocked(pair.s, pair.t, MpBlockedConfig(n_workers=2, n_bands=4, n_blocks=4))
        assert any(s.name == "tile" for s in tracer.spans)
        assert metrics.counter("cells_computed").value >= 400 * 400
        assert metrics.counter("worker_busy_seconds").value > 0

    def test_pool_without_obs_leaves_no_spans(self, pair):
        from repro.parallel import AlignmentWorkerPool

        assert not obs.is_enabled()
        with AlignmentWorkerPool(n_workers=2) as pool:
            pool.wavefront(pair.s, pair.t)
        assert len(obs.get_tracer().spans) == 0


class TestOneShotBackends:
    def test_mp_wavefront_merges_worker_segments(self, pair):
        from repro.parallel import MpWavefrontConfig, mp_wavefront_alignments

        with obs.observed() as (tracer, metrics):
            mp_wavefront_alignments(
                pair.s, pair.t, MpWavefrontConfig(n_workers=2, rows_per_exchange=16)
            )
        assert {"worker-0", "worker-1"} <= set(tracer.processes())
        assert metrics.counter("cells_computed").value == 400 * 400

    def test_mp_blocked_merges_worker_segments(self, pair):
        from repro.parallel import MpBlockedConfig, mp_blocked_alignments

        with obs.observed() as (tracer, metrics):
            mp_blocked_alignments(
                pair.s, pair.t, MpBlockedConfig(n_workers=2, n_bands=4, n_blocks=4)
            )
        assert {"worker-0", "worker-1"} <= set(tracer.processes())
        assert metrics.counter("cells_computed").value >= 400 * 400


class TestRunnerClocks:
    def test_mp_pipeline_phase_spans_and_gauges(self, pair):
        from repro.strategies import run_mp_pipeline

        with obs.observed() as (tracer, metrics):
            result = run_mp_pipeline(pair.s, pair.t, backend="wavefront", n_workers=2)
        phase_spans = [s for s in tracer.spans if s.category == "phase"]
        assert sorted(s.name for s in phase_spans) == ["phase1", "phase2"]
        phase1 = next(s for s in phase_spans if s.name == "phase1")
        assert phase1.args["cells"] == 400 * 400
        # the stopwatch wraps the span, so the two readings differ by at
        # most the context-manager entry/exit cost
        assert phase1.duration == pytest.approx(result.phase1_seconds, abs=5e-3)
        assert metrics.gauge("phase1_seconds").value == result.phase1_seconds
        assert metrics.gauge("phase1_gcups").value > 0

    def test_sim_pipeline_wall_vs_virtual_clock(self, pair):
        from repro.strategies import run_pipeline

        result = run_pipeline(pair.s, pair.t, strategy="heuristic_block", n_procs=2)
        # virtual cluster seconds and host wall seconds are separate fields
        assert result.wall_seconds > 0.0
        assert result.total_time > 0.0
        assert result.wall_seconds != result.total_time

    def test_mp_pipeline_works_without_obs(self, pair):
        from repro.strategies import run_mp_pipeline

        assert not obs.is_enabled()
        result = run_mp_pipeline(pair.s, pair.t, backend="wavefront", n_workers=2)
        assert result.phase1_seconds > 0
        assert result.total_seconds == result.phase1_seconds + result.phase2_seconds


class TestReport:
    def test_report_from_real_run(self, pair):
        from repro.strategies import run_mp_pipeline

        with obs.observed() as (tracer, metrics):
            run_mp_pipeline(pair.s, pair.t, backend="wavefront", n_workers=2)
        payload = {
            "traceEvents": tracer.to_chrome_trace(),
            "reproMetrics": metrics.snapshot(),
        }
        rows = phase_rows(payload)
        assert [r["phase"] for r in rows] == ["phase1", "phase2", "total"]
        assert rows[0]["cells"] == 400 * 400
        assert rows[0]["seconds"] > 0
        assert rows[0]["gcups"] > 0
        procs = process_rows(payload)
        assert len(procs) >= 3  # coordinator + 2 workers
        text = render_report(payload)
        assert "GCUPS" in text and "phase1" in text and "cells_computed" in text

    def test_report_empty_trace(self):
        text = render_report({"traceEvents": []})
        assert "no phase spans" in text
