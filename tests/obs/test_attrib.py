"""Plan-aware attribution: trace/graph reconciliation, stalls, gantt.

Two layers of coverage: synthetic payloads with hand-placed spans make the
classification and dedup rules deterministic, and real traced runs (inline
wavefront, pool wavefront, inline db-search) assert the acceptance
contract -- the numbers the report quotes reconcile exactly with the task
graph's ``total_cells`` / ``critical_path_cells``.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.obs.attrib import (
    MIN_STALL_SECONDS,
    STALL_CAUSES,
    attribute,
    events_of,
    payload_from_tracer,
    pick_plan,
    plan_spans,
    render_gantt,
)
from repro.plan import InlineExecutor, PoolExecutor, cached_plan, wavefront_spec
from repro.seq import encode, genome_pair, synthetic_database
from repro.strategies import SearchConfig, search_db


# --------------------------------------------------------------------------
# Synthetic payloads: deterministic classification rules
# --------------------------------------------------------------------------


def _ev(name: str, cat: str, process: str, start_s: float, dur_s: float, **args):
    """One Chrome-trace complete event (µs timestamps, args.process)."""
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": start_s * 1e6,
        "dur": dur_s * 1e6,
        "pid": 1,
        "tid": 1,
        "args": {"process": process, **args},
    }


def _plan_ev(start_s, dur_s, kind="wavefront", process="coordinator", **extra):
    args = {
        "kind": kind,
        "tiles": extra.pop("tiles", 2),
        "cells": extra.pop("cells", 100),
        "critical_path_cells": extra.pop("critical_path_cells", 60),
        "n_procs": 2,
        "rows": 10,
        "cols": 10,
        "backend": extra.pop("backend", "pool"),
        **extra,
    }
    return _ev(f"plan:{kind}", "coordination", process, start_s, dur_s, **args)


def _tile_ev(process, start_s, dur_s, tile, cells=50, kind="wavefront"):
    return _ev(
        "rows",
        "computation",
        process,
        start_s,
        dur_s,
        tile=tile,
        owner=0,
        kind=kind,
        cells=cells,
        kernel="classic",
        dtype="int32",
    )


class TestPlanSpanDiscovery:
    def test_nested_duplicate_keeps_outermost(self):
        # PoolExecutor.run wraps pool.run_plan: two copies, one contained.
        payload = {
            "traceEvents": [
                _plan_ev(0.0, 1.0),
                _plan_ev(0.01, 0.98),
                _tile_ev("worker-0", 0.1, 0.2, tile=0),
            ]
        }
        spans = plan_spans(events_of(payload))
        assert len(spans) == 1
        assert spans[0].dur == pytest.approx(1.0)

    def test_sequential_runs_both_kept_and_pick_prefers_cells(self):
        payload = {
            "traceEvents": [
                _plan_ev(0.0, 1.0, cells=100),
                _plan_ev(2.0, 1.0, cells=900),
            ]
        }
        events = events_of(payload)
        assert len(plan_spans(events)) == 2
        assert pick_plan(events).args["cells"] == 900
        assert pick_plan(events, pick=0).args["cells"] == 100

    def test_no_plan_span_raises(self):
        with pytest.raises(ValueError, match="no plan"):
            attribute({"traceEvents": [_tile_ev("w", 0.0, 0.1, tile=0)]})


class TestStallClassification:
    def _payload(self):
        return {
            "traceEvents": [
                _plan_ev(0.0, 1.0),
                _ev("shm_publish", "communication", "coordinator", 0.0, 0.08),
                _tile_ev("worker-0", 0.1, 0.2, tile=0),
                _tile_ev("worker-0", 0.6, 0.2, tile=1),
                _ev("tile_wait", "communication", "worker-0", 0.35, 0.2, tile=1, dep=0),
            ]
        }

    def test_causes(self):
        a = attribute(self._payload())
        by_start = {round(s.start, 2): s.cause for s in a.stalls}
        assert by_start[0.0] == "arena_publish"  # leading gap over shm_publish
        assert by_start[0.3] == "dependency_wait"  # overlaps the tile_wait
        assert by_start[0.8] == "result_drain"  # trailing gap
        assert all(s.cause in STALL_CAUSES for s in a.stalls)

    def test_interior_gap_of_search_is_queue_starvation(self):
        payload = {
            "traceEvents": [
                _plan_ev(0.0, 1.0, kind="search"),
                _tile_ev("worker-0", 0.0, 0.2, tile=0, kind="search"),
                _tile_ev("worker-0", 0.5, 0.5, tile=1, kind="search"),
            ]
        }
        a = attribute(payload)
        assert [s.cause for s in a.stalls] == ["queue_starvation"]

    def test_sub_threshold_gaps_dropped(self):
        payload = {
            "traceEvents": [
                _plan_ev(0.0, 0.40005),
                _tile_ev("worker-0", 0.0, 0.2, tile=0),
                # 50 µs gap: under the 100 µs default threshold
                _tile_ev("worker-0", 0.20005, 0.2, tile=1),
            ]
        }
        assert attribute(payload).stalls == []
        assert len(attribute(payload, min_stall=MIN_STALL_SECONDS / 10).stalls) == 1


class TestSyntheticAccounting:
    def test_cells_and_chain_without_graph(self):
        # No spec args -> no rebuild: achieved chain = heaviest single tile.
        payload = {
            "traceEvents": [
                _plan_ev(0.0, 1.0),
                _tile_ev("worker-0", 0.0, 0.3, tile=0, cells=60),
                _tile_ev("worker-1", 0.0, 0.5, tile=1, cells=40),
            ]
        }
        a = attribute(payload)
        assert a.cells_traced == 100 == a.cells_planned
        assert a.busy_seconds == pytest.approx(0.8)
        assert a.achieved_critical_seconds == pytest.approx(0.5)
        # theoretical = cp_cells / (cells/busy) = 60 / 125 cells/s
        assert a.theoretical_critical_seconds == pytest.approx(60 / 125.0)
        assert {w.process: w.tiles for w in a.workers} == {
            "worker-0": 1,
            "worker-1": 1,
        }


# --------------------------------------------------------------------------
# Real runs: the acceptance reconciliation
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pair():
    gp = genome_pair(
        600, 600, n_regions=2, region_length=60, mutation_rate=0.02, rng=77
    )
    return encode(gp.s), encode(gp.t)


@pytest.fixture(scope="module")
def wavefront_graph(pair):
    s, t = pair
    return cached_plan(wavefront_spec(n_procs=2, group_rows=16), len(s), len(t))


@pytest.fixture(scope="module")
def inline_run(pair, wavefront_graph):
    s, t = pair
    with obs.observed() as (tracer, metrics):
        InlineExecutor().run(wavefront_graph, s, t)
    return payload_from_tracer(tracer, metrics)


class TestInlineAttribution:
    def test_reconciles_with_graph(self, wavefront_graph, inline_run):
        a = attribute(inline_run)
        assert a.kind == "wavefront" and a.backend == "inline"
        assert a.cells_traced == a.cells_planned == wavefront_graph.total_cells
        assert a.critical_path_cells == wavefront_graph.critical_path_cells()
        assert a.tiles_traced == a.tiles_planned == len(wavefront_graph.tiles)

    def test_chain_bounded_by_busy_and_wall(self, inline_run):
        a = attribute(inline_run)
        assert 0.0 < a.achieved_critical_seconds <= a.busy_seconds + 1e-9
        assert a.busy_seconds <= a.wall_seconds + 1e-9
        assert a.measured_gcups > 0.0

    def test_summary_is_json_safe_and_digest_stable(self, inline_run):
        a, b = attribute(inline_run), attribute(inline_run)
        assert a.spec_digest == b.spec_digest
        round_trip = json.loads(json.dumps(a.summary()))
        assert round_trip["cells_traced"] == a.cells_traced
        assert set(round_trip["stall_seconds_by_cause"]) == set(STALL_CAUSES)

    def test_render_mentions_the_numbers(self, inline_run):
        text = attribute(inline_run).render()
        assert "critical path" in text and "plan:wavefront" in text
        assert "coordinator" in text  # inline: the coordinator runs every tile


class TestPoolAttribution:
    @pytest.fixture(scope="class")
    def pool_run(self, pair, wavefront_graph):
        from repro.parallel import AlignmentWorkerPool

        s, t = pair
        with AlignmentWorkerPool(n_workers=2) as pool:
            with obs.observed() as (tracer, metrics):
                PoolExecutor(pool).run(wavefront_graph, s, t)
        return payload_from_tracer(tracer, metrics)

    def test_acceptance_reconciliation(self, wavefront_graph, pool_run):
        """The ISSUE's acceptance check for the pool wavefront run."""
        a = attribute(pool_run)
        assert a.backend == "pool"
        assert a.cells_traced == a.cells_planned == wavefront_graph.total_cells
        assert a.critical_path_cells == wavefront_graph.critical_path_cells()
        assert a.tiles_traced == len(wavefront_graph.tiles)
        assert {w.process for w in a.workers} == {"worker-0", "worker-1"}
        for w in a.workers:
            assert 0.0 < w.util_pct <= 100.0
        assert all(s.cause in STALL_CAUSES for s in a.stalls)

    def test_nested_plan_span_deduplicated(self, pool_run):
        # Executor.run wraps pool.run_plan: the trace holds two copies but
        # attribution must see exactly one window.
        assert len(plan_spans(events_of(pool_run))) == 1

    def test_gantt_has_one_row_per_process(self, pool_run):
        chart = render_gantt(pool_run, width=40)
        assert "worker-0 |" in chart and "worker-1 |" in chart
        lines = [line for line in chart.splitlines() if "|" in line]
        assert all(line.count("|") == 2 for line in lines)


class TestSearchAttribution:
    def test_db_search_reconciles(self):
        """The ISSUE's acceptance check for the db-search run (inline)."""
        db = synthetic_database(n=20, min_length=60, max_length=120, rng=9)
        with obs.observed() as (tracer, metrics):
            search_db("ACGTACGTACGTACGTACGT", db, SearchConfig(top_k=5))
        a = attribute(payload_from_tracer(tracer, metrics))
        assert a.kind == "search"
        assert a.cells_traced == a.cells_planned > 0
        assert a.tiles_traced == a.tiles_planned > 0
        # search graphs have no edges: the chain is the heaviest tile
        assert 0.0 < a.achieved_critical_seconds <= a.busy_seconds + 1e-9
