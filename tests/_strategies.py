"""Shared hypothesis strategies for the test suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import Scoring
from repro.seq import encode


def dna_text(min_size: int = 0, max_size: int = 64) -> st.SearchStrategy[str]:
    """Hypothesis strategy for DNA strings."""
    return st.text(alphabet="ACGT", min_size=min_size, max_size=max_size)


def dna_codes(min_size: int = 0, max_size: int = 64):
    """Hypothesis strategy for encoded DNA arrays."""
    return dna_text(min_size, max_size).map(encode)


#: Strategy over valid scoring schemes (match > mismatch, negative gap).
scorings = st.builds(
    Scoring,
    match=st.integers(1, 5),
    mismatch=st.integers(-5, 0),
    gap=st.integers(-6, -1),
)
