import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_defaults(self):
        args = build_parser().parse_args(["align", "--demo"])
        assert args.strategy == "heuristic_block"
        assert args.procs == 8

    def test_bad_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["align", "--demo", "--strategy", "nope"])


class TestAlign:
    def test_demo_align(self, capsys):
        rc = main(["align", "--demo", "--demo-length", "1000", "--procs", "2", "--top", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase 1" in out and "similar regions" in out
        assert "similarity:" in out

    def test_demo_align_accepts_alias_names(self, capsys):
        rc = main(
            ["align", "--demo", "--demo-length", "600",
             "--strategy", "blocked", "--procs", "2", "--top", "1"]
        )
        assert rc == 0
        assert "heuristic_block" in capsys.readouterr().out

    def test_inline_backend_reports_wall_clock(self, capsys):
        rc = main(
            ["align", "--demo", "--demo-length", "600", "--backend", "inline",
             "--strategy", "wavefront", "--procs", "2", "--top", "1"]
        )
        assert rc == 0
        assert "inline execution" in capsys.readouterr().out

    def test_scaled_run_explains_the_phase2_skip(self, capsys):
        rc = main(
            ["align", "--demo", "--demo-length", "600", "--scale", "4",
             "--procs", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase 2 skipped:" in out and "scale=4" in out

    def test_align_fasta_files(self, tmp_path, capsys):
        main(
            [
                "generate",
                str(tmp_path / "a.fa"),
                str(tmp_path / "b.fa"),
                "--length", "1200", "--regions", "1", "--region-length", "80",
            ]
        )
        rc = main(
            [
                "align",
                str(tmp_path / "a.fa"),
                str(tmp_path / "b.fa"),
                "--procs", "2", "--top", "1",
            ]
        )
        assert rc == 0
        assert "align_s:" in capsys.readouterr().out


class TestGenerate:
    def test_writes_fasta(self, tmp_path, capsys):
        rc = main(
            [
                "generate",
                str(tmp_path / "a.fa"),
                str(tmp_path / "b.fa"),
                "--length", "500", "--regions", "1", "--region-length", "60",
            ]
        )
        assert rc == 0
        assert (tmp_path / "a.fa").exists()
        assert "planted region" in capsys.readouterr().out


class TestDotplot:
    def test_demo_dotplot(self, capsys):
        rc = main(["dotplot", "--demo", "--demo-length", "1500", "--threshold", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "similar regions" in out
        assert "+---" in out


class TestReport:
    def test_exports_markdown_and_csv(self, tmp_path, capsys):
        rc = main(["report", "sec6", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "sec6.md").exists()
        assert (tmp_path / "sec6.csv").exists()
        assert (tmp_path / "SUMMARY.md").exists()

    def test_unknown_name(self, tmp_path):
        with pytest.raises(ValueError):
            main(["report", "bogus", "--out", str(tmp_path)])


class TestTuneAndTrace:
    def test_tune_prints_ranking(self, capsys):
        rc = main(["tune", "--rows", "10000", "--cols", "10000", "--procs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best blocking multiplier" in out
        assert "<-- best" in out

    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "t.json"
        rc = main(["trace", "--demo", "--demo-length", "500", "--procs", "2",
                   "--out", str(out)])
        assert rc == 0
        events = json.loads(out.read_text())["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)


class TestObs:
    def test_align_trace_and_report(self, tmp_path, capsys):
        """Acceptance: `align --backend mp --trace` yields a Chrome trace with
        spans from >= 2 workers plus the coordinator; `obs report` reads it."""
        import json

        out = tmp_path / "t.json"
        rc = main(
            [
                "align", "--demo", "--demo-length", "500",
                "--backend", "mp", "--mp-workers", "2",
                "--trace", str(out), "--metrics",
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "GCUPS" in printed and "phase1" in printed

        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        procs = {e["args"]["process"] for e in events}
        assert "coordinator" in procs
        assert {"worker-0", "worker-1"} <= procs
        assert "reproMetrics" in payload

        rc = main(["obs", "report", str(out)])
        assert rc == 0
        report = capsys.readouterr().out
        assert "phase1" in report and "phase2" in report and "GCUPS" in report


class TestExperiment:
    def test_unknown_name(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiment", "table99"])

    def test_sec6(self, capsys):
        rc = main(["experiment", "sec6"])
        assert rc == 0
        assert "~30%" in capsys.readouterr().out


class TestCheck:
    def test_plans_sweep_alone_is_clean(self, capsys):
        rc = main(["check", "--plans"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_no_paths_and_no_plans_is_a_usage_error(self, capsys):
        rc = main(["check"])
        assert rc == 2
        assert "need paths" in capsys.readouterr().out

    def test_baseline_ratchet(self, tmp_path, capsys, monkeypatch):
        """Known findings pass against their own report; new ones fail."""
        import json

        # Relative paths: rule scoping (core/...) is path-derived.
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "core"
        bad.mkdir()
        (bad / "multi_engine.py").write_text(
            "import numpy as np\nPAD = np.int8(-300)\n"
        )
        rc = main(["check", "core", "--format", "json"])
        assert rc == 1
        report = capsys.readouterr().out
        assert json.loads(report)["count"] == 1
        baseline = tmp_path / "base.json"
        baseline.write_text(report)

        # Same tree vs its own report: the known finding is tolerated.
        rc = main(["check", "core", "--baseline", str(baseline)])
        assert rc == 0
        assert "1 known, 0 fixed, 0 new" in capsys.readouterr().out

        # A second regression is new and fails the gate.
        (bad / "striped_helper.py").write_text(
            "import numpy as np\nCAP = np.int16(90000)\n"
        )
        rc = main(["check", "core", "--baseline", str(baseline)])
        assert rc == 1
        assert "1 new" in capsys.readouterr().out
