import pytest

from repro.analysis import ExperimentReport, run_and_export, to_csv, to_markdown, write_report


@pytest.fixture
def report():
    return ExperimentReport(
        ident="demo",
        title="A demo table",
        headers=["name", "value", "paper"],
        rows=[["a", 1.234, 2.0], ["b", 5678.9, None]],
        notes=["shape holds"],
        series={"plot": "+--+\n|##|\n+--+"},
    )


class TestMarkdown:
    def test_structure(self, report):
        md = to_markdown(report)
        assert "### demo: A demo table" in md
        assert "| name | value | paper |" in md
        assert "| --- | --- | --- |" in md
        assert "| a | 1.23 | 2.00 |" in md
        assert "> shape holds" in md

    def test_series_rendered_as_code_block(self, report):
        md = to_markdown(report)
        assert "```  # plot" in md and "|##|" in md

    def test_none_formatted_as_dash(self, report):
        assert "| 5,679 | - |" in to_markdown(report)


class TestCsv:
    def test_rows(self, report):
        lines = to_csv(report).strip().split("\r\n")
        assert lines[0] == "name,value,paper"
        assert lines[1] == "a,1.23,2.00"
        assert len(lines) == 3


class TestWrite:
    def test_files_created(self, report, tmp_path):
        paths = write_report(report, tmp_path)
        assert [p.name for p in paths] == ["demo.md", "demo.csv"]
        assert (tmp_path / "demo.md").read_text().startswith("### demo")

    def test_run_and_export_sec6(self, tmp_path):
        reports = run_and_export(["sec6"], tmp_path)
        assert len(reports) == 1
        assert (tmp_path / "sec6.md").exists()
        assert (tmp_path / "sec6.csv").exists()
        summary = (tmp_path / "SUMMARY.md").read_text()
        assert "[sec6](sec6.md)" in summary

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_and_export(["nope"], tmp_path)
