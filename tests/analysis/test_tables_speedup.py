import pytest

from repro.analysis import SpeedupCurve, amdahl_bound, ascii_table, format_value, render_bar


class TestFormatValue:
    def test_large_float(self):
        assert format_value(12345.6) == "12,346"

    def test_medium_float(self):
        assert format_value(42.123) == "42.1"

    def test_small_float(self):
        assert format_value(3.14159) == "3.14"

    def test_nan(self):
        assert format_value(float("nan")) == "-"

    def test_none(self):
        assert format_value(None) == "-"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_int(self):
        assert format_value(7) == "7"


class TestAsciiTable:
    def test_alignment_and_rule(self):
        out = ascii_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.split("\n")
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = ascii_table(["x"], [])
        assert "x" in out


class TestRenderBar:
    def test_full_and_empty(self):
        assert render_bar(1.0, width=5) == "#####"
        assert render_bar(0.0, width=5) == "....."

    def test_half(self):
        assert render_bar(0.5, width=4) == "##.."

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            render_bar(1.5)


class TestSpeedupCurve:
    def test_speedup_and_efficiency(self):
        curve = SpeedupCurve("x", serial_time=100.0)
        curve.add(2, 60.0)
        curve.add(4, 30.0)
        assert curve.speedup(2) == pytest.approx(100 / 60)
        assert curve.efficiency(4) == pytest.approx(100 / 30 / 4)

    def test_series_sorted(self):
        curve = SpeedupCurve("x", serial_time=10.0)
        curve.add(8, 2.0)
        curve.add(2, 6.0)
        assert [p for p, _ in curve.series()] == [2, 8]

    def test_nonpositive_time_rejected(self):
        curve = SpeedupCurve("x", serial_time=10.0)
        with pytest.raises(ValueError):
            curve.add(2, 0.0)


class TestAmdahl:
    def test_no_serial_fraction_is_linear(self):
        assert amdahl_bound(0.0, 8) == pytest.approx(8.0)

    def test_all_serial_is_one(self):
        assert amdahl_bound(1.0, 8) == pytest.approx(1.0)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            amdahl_bound(-0.1, 4)
