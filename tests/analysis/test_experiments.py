"""Experiment-harness plumbing tests (the cheap experiments run for real;
the heavy ones are covered by the benchmark suite)."""

import pytest

from repro.analysis import ALL_EXPERIMENTS, DEFAULT_PROFILE, FAST_PROFILE, ExperimentReport
from repro.analysis.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    _phase2_workload,
    exp_fig16,
    exp_sec6,
)


class TestRegistry:
    def test_all_fourteen_experiments_present(self):
        expected = {
            "table1", "fig9", "fig10", "table2", "table3", "table4_fig12",
            "fig13", "fig14", "fig15", "fig16", "fig18", "fig19", "fig20", "sec6",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_paper_constants_sane(self):
        assert PAPER_TABLE1[400][0] == 175295.0
        assert PAPER_TABLE3[5] == 363.13
        assert PAPER_TABLE4[50][2] == 2620.64


class TestProfiles:
    def test_profiles_cover_all_sizes(self):
        for profile in (DEFAULT_PROFILE, FAST_PROFILE):
            assert set(profile.table1) == {15, 50, 80, 150, 400}
            assert set(profile.blocked) == {8, 15, 50}
            assert set(profile.preprocess) == {16, 40, 80}

    def test_nominal_sizes_match_paper(self):
        for profile in (DEFAULT_PROFILE, FAST_PROFILE):
            for kbp, (actual, scale) in profile.table1.items():
                assert actual * scale == kbp * 1000

    def test_workload_builds(self):
        wl = FAST_PROFILE.workload("blocked", 8)
        assert wl.nominal_rows == 8000


class TestReports:
    def test_render_contains_rows(self):
        report = ExperimentReport(
            ident="x", title="t", headers=["a", "b"], rows=[[1, 2]], notes=["n"]
        )
        out = report.render()
        assert "== x: t ==" in out and "note: n" in out

    def test_sec6_report(self):
        report = exp_sec6()
        assert report.ident == "sec6"
        assert len(report.rows) == 4
        for row in report.rows:
            assert 0.25 < row[3] < 0.45

    def test_fig16_report(self):
        report = exp_fig16()
        assert report.rows
        assert all(isinstance(v, str) for v in report.series.values())


class TestPhase2Workload:
    def test_pair_count(self):
        s, t, regions = _phase2_workload(100)
        assert len(regions) == 100
        assert all(r.s_end <= len(s) and r.t_end <= len(t) for r in regions)

    def test_mean_size_shrinks_with_count(self):
        _, _, few = _phase2_workload(100)
        _, _, many = _phase2_workload(5000)
        mean_few = sum(r.size for r in few) / len(few)
        mean_many = sum(r.size for r in many) / len(many)
        assert mean_many < mean_few
