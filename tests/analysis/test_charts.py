import pytest

from repro.analysis.charts import bar_group, line_chart, speedup_chart


class TestLineChart:
    def test_markers_and_legend(self):
        out = line_chart({"alpha": [(1, 1), (2, 2)], "beta": [(1, 2), (2, 1)]})
        assert "a" in out and "b" in out
        assert "legend: a=alpha  b=beta" in out

    def test_overlap_becomes_star(self):
        out = line_chart({"x": [(1, 1)], "y": [(1, 1)]})
        assert "*" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_nonpositive_range_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"x": [(0, 0)]})

    def test_dimensions(self):
        out = line_chart({"x": [(4, 4)]}, width=20, height=5)
        lines = out.split("\n")
        # header + 5 rows + axis + legend
        assert len(lines) == 8
        assert all(len(l) >= 20 for l in lines[1:6])


class TestBarGroup:
    def test_scaling(self):
        out = bar_group({"a": 10.0, "bb": 5.0}, width=10)
        lines = out.split("\n")
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        out = bar_group({"a": 1.0, "long": 1.0})
        for line in out.split("\n"):
            assert line.index("|") == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_group({})


class TestSpeedupChart:
    def test_includes_ideal_line(self):
        out = speedup_chart({"50K": [(2, 1.4), (4, 1.9), (8, 2.8)]})
        assert "i=ideal" in out
        assert "5=50K" in out

    def test_measured_below_ideal(self):
        """Visual sanity: the measured marker row sits below ideal at x=8."""
        out = speedup_chart({"m": [(8, 2.0)]})
        lines = out.split("\n")[1:-2]
        ideal_row = next(i for i, l in enumerate(lines) if l.rstrip().endswith("i"))
        m_row = next(i for i, l in enumerate(lines) if "m" in l)
        assert m_row > ideal_row  # lower on screen = smaller speed-up
