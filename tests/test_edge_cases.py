"""Cross-cutting edge-case tests that don't belong to a single module file."""

import numpy as np
import pytest

from repro.core import GlobalAlignment, LocalAlignment
from repro.dsm import JiaJia
from repro.seq import genome_pair
from repro.sim import Delay, Simulator


class TestEngineFailures:
    def test_process_exception_propagates(self):
        sim = Simulator()

        def body():
            yield Delay(1.0)
            raise RuntimeError("boom")

        sim.spawn(body())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_failed_process_is_marked(self):
        sim = Simulator()

        def body():
            yield Delay(1.0)
            raise ValueError("bad")

        proc = sim.spawn(body())
        with pytest.raises(ValueError):
            sim.run()
        assert isinstance(proc.failed, ValueError)


class TestSmallDsmCache:
    def test_replacements_counted_under_pressure(self):
        sim = Simulator()
        dsm = JiaJia(sim, 2, cache_pages=2)
        region = dsm.alloc(10 * 4096, home=0)  # 10 pages, all remote to node 1

        def body():
            for k in range(10):
                yield from dsm.read(1, region, k * 4096, 100)
            # revisit the first page: long evicted, faults again
            yield from dsm.read(1, region, 0, 100)

        proc = sim.spawn(body())
        sim.run_all([proc])
        assert dsm.caches[1].replacements >= 8
        assert dsm.stats[1].page_faults == 11


class TestPipelineScaledRun:
    def test_scaled_pipeline_skips_phase2(self):
        from repro.strategies import run_pipeline

        gp = genome_pair(500, 500, n_regions=1, region_length=60, rng=140)
        result = run_pipeline(gp.s, gp.t, strategy="heuristic_block", n_procs=2, scale=4)
        assert result.phase1.nominal_size == (2000, 2000)
        assert result.records == []

    def test_phase1_alignments_in_nominal_coordinates(self):
        from repro.strategies import run_pipeline

        gp = genome_pair(500, 500, n_regions=1, region_length=80, mutation_rate=0.0, rng=141)
        unscaled = run_pipeline(gp.s, gp.t, strategy="heuristic_block", n_procs=2, scale=1)
        scaled = run_pipeline(gp.s, gp.t, strategy="heuristic_block", n_procs=2, scale=4)
        a1 = max(unscaled.phase1.alignments, key=lambda a: a.score)
        a4 = max(scaled.phase1.alignments, key=lambda a: a.score)
        assert a4.s_start == a1.s_start * 4
        assert a4.t_end == a1.t_end * 4
        assert a4.score == a1.score  # scores are data properties, not scaled


class TestRenderWidths:
    def test_render_block_count(self):
        g = GlobalAlignment("A" * 130, "A" * 130, 130)
        blocks = g.render(width=60).split("\n\n")
        assert len(blocks) == 3  # 60 + 60 + 10 columns

    def test_alignment_queue_merge_returns_sorted(self):
        from repro.core import AlignmentQueue

        q = AlignmentQueue(
            [
                LocalAlignment(5, 0, 10, 0, 10),
                LocalAlignment(9, 5, 12, 5, 12),
                LocalAlignment(3, 100, 140, 100, 140),
            ]
        )
        out = q.finalize(merge=True)
        sizes = [a.size for a in out]
        assert sizes == sorted(sizes, reverse=True)
        # the two overlapping entries merged into one spanning rectangle
        assert any(a.s_start == 0 and a.s_end == 12 for a in out)


class TestWorkloadValidation:
    def test_region_settings_admission_default(self):
        from repro.strategies import RegionSettings

        assert RegionSettings(threshold=42).admission_score == 42
        assert RegionSettings(threshold=42, min_score=30).admission_score == 30
