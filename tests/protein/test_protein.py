import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protein import (
    AMINO_ACIDS,
    BLOSUM62,
    BLOSUM62_SCORING,
    PROTEIN_ALPHABET,
    ProteinScoring,
    protein_best_score,
    protein_needleman_wunsch,
    protein_smith_waterman,
)
from repro.seq.alphabet import AlphabetError

protein_text = st.text(alphabet=AMINO_ACIDS, min_size=0, max_size=40)


class TestBlosumMatrix:
    def test_symmetric(self):
        arr = np.array(BLOSUM62)
        assert np.array_equal(arr, arr.T)

    def test_twenty_by_twenty(self):
        assert len(BLOSUM62) == 20
        assert all(len(row) == 20 for row in BLOSUM62)

    def test_known_entries(self):
        sc = BLOSUM62_SCORING
        W = AMINO_ACIDS.index("W")
        C = AMINO_ACIDS.index("C")
        A = AMINO_ACIDS.index("A")
        assert sc.pair_score(W, W) == 11  # tryptophan self-match
        assert sc.pair_score(C, C) == 9
        assert sc.pair_score(A, A) == 4
        assert sc.pair_score(W, C) == -2

    def test_diagonal_positive(self):
        arr = np.array(BLOSUM62)
        assert (arr.diagonal() > 0).all()

    def test_bounds_derived(self):
        assert BLOSUM62_SCORING.match == 11
        assert BLOSUM62_SCORING.mismatch == -4

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            ProteinScoring(gap=-4, matrix=((1, 2, 3), (4, 5, 6)))


class TestProteinAlphabet:
    def test_roundtrip(self):
        text = "MKVLAW"
        assert PROTEIN_ALPHABET.decode(PROTEIN_ALPHABET.encode(text)) == text

    def test_twenty_letters(self):
        assert PROTEIN_ALPHABET.size == 20

    def test_invalid_residue(self):
        with pytest.raises(AlphabetError):
            PROTEIN_ALPHABET.encode("MKXB")

    @given(protein_text)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, text):
        assert PROTEIN_ALPHABET.decode(PROTEIN_ALPHABET.encode(text)) == text


class TestProteinAlignment:
    def test_self_alignment(self):
        seq = "MKVLAWGRRNDE"
        r = protein_smith_waterman(seq, seq)
        assert r.alignment.aligned_s == seq
        expected = sum(
            BLOSUM62_SCORING.pair_score(
                AMINO_ACIDS.index(c), AMINO_ACIDS.index(c)
            )
            for c in seq
        )
        assert r.alignment.score == expected

    def test_conservative_substitution_outscores_radical(self):
        # I<->L (+2) vs I<->P (-3): the conservative variant aligns better
        base = "AAAIAAA" * 3
        conservative = base.replace("I", "L")
        radical = base.replace("I", "P")
        s_cons = protein_smith_waterman(base, conservative).alignment.score
        s_rad = protein_smith_waterman(base, radical).alignment.score
        assert s_cons > s_rad

    def test_global_alignment_verifies(self):
        g = protein_needleman_wunsch("MKVLAW", "MKVAW")
        assert g.aligned_s.replace("-", "") == "MKVLAW"
        assert g.aligned_t.replace("-", "") == "MKVAW"
        # score re-checks against BLOSUM column scoring
        total = sum(
            BLOSUM62_SCORING.column_score(a, b)
            for a, b in zip(g.aligned_s, g.aligned_t)
        )
        assert total == g.score

    @given(protein_text.filter(bool), protein_text.filter(bool))
    @settings(max_examples=40, deadline=None)
    def test_linear_space_matches_full_matrix(self, s, t):
        from repro.core import similarity_matrix

        H = similarity_matrix(
            s, t, local=True, scoring=BLOSUM62_SCORING, alphabet=PROTEIN_ALPHABET
        )
        assert protein_best_score(s, t) == int(H.max())

    @given(protein_text.filter(bool))
    @settings(max_examples=30, deadline=None)
    def test_self_score_is_diagonal_sum(self, s):
        expected = sum(
            BLOSUM62_SCORING.pair_score(AMINO_ACIDS.index(c), AMINO_ACIDS.index(c))
            for c in s
        )
        assert protein_best_score(s, s) == expected

    def test_homologous_fragments_found(self):
        # a shared motif inside unrelated flanks
        motif = "WCHKFMYRQDENW"
        a = "GGGGGGGGGG" + motif + "AAAAAAAAAA"
        b = "PPPPPPPPPP" + motif + "SSSSSSSSSS"
        r = protein_smith_waterman(a, b)
        assert motif in r.alignment.aligned_s
        assert r.s_start >= 9 and r.t_start >= 9


class TestProteinAffine:
    def test_affine_self_alignment(self):
        from repro.protein import protein_affine_smith_waterman

        seq = "MKVLAWGRRNDEYHQF"
        r = protein_affine_smith_waterman(seq, seq)
        assert r.alignment.aligned_s == seq
        assert r.alignment.identity == 1.0

    def test_affine_keeps_gap_contiguous(self):
        from repro.protein import protein_affine_smith_waterman

        a = "MKVLAWGRRNDEYHQFMCSTPIKL"
        b = a[:12] + a[15:]  # 3-residue deletion
        r = protein_affine_smith_waterman(a, b)
        assert "---" in r.alignment.aligned_t
        # exactly one gap run
        import re

        assert len(re.findall(r"-+", r.alignment.aligned_t)) == 1

    def test_affine_score_verifies(self):
        from repro.protein import BLOSUM62_AFFINE, protein_affine_smith_waterman

        a = "MKVLAWGRRNDEYHQFMCSTPIKL"
        b = "MKVLSWGRKNDAYHQWMCSTPIKL"
        r = protein_affine_smith_waterman(a, b)
        assert BLOSUM62_AFFINE.alignment_score(
            r.alignment.aligned_s, r.alignment.aligned_t
        ) == r.alignment.score

    def test_affine_matches_naive_gotoh_on_protein(self):
        import numpy as np

        from repro.core.affine import affine_matrices, gotoh_naive
        from repro.protein import BLOSUM62_AFFINE, PROTEIN_ALPHABET

        a = PROTEIN_ALPHABET.encode("MKVLAWGRRNDEYH")
        b = PROTEIN_ALPHABET.encode("MKVAWGRKNDEYHH")
        H, _, _ = affine_matrices(a, b, BLOSUM62_AFFINE, local=True,
                                  alphabet=PROTEIN_ALPHABET)
        assert int(H.max()) == gotoh_naive(a, b, BLOSUM62_AFFINE, local=True)
