"""Integration: the phase-1 strategies agree with each other and with the
reference algorithms on *what* they find, differing only in *how fast*."""

import numpy as np
import pytest

from repro.core import (
    HeuristicParams,
    exact_best_alignment,
    heuristic_local_alignments,
    smith_waterman,
    sw_row_hits,
)
from repro.seq import decode, genome_pair
from repro.strategies import (
    BlockedConfig,
    PreprocessConfig,
    RegionSettings,
    ScaledWorkload,
    WavefrontConfig,
    run_blocked,
    run_preprocess,
    run_wavefront,
)


@pytest.fixture(scope="module")
def pair():
    return genome_pair(1000, 1000, n_regions=2, region_length=80, mutation_rate=0.02, rng=88)


class TestStrategiesAgree:
    def test_wavefront_and_blocked_find_same_top_regions(self, pair):
        wl = ScaledWorkload(pair.s, pair.t)
        wf = run_wavefront(wl, WavefrontConfig(n_procs=4))
        bl = run_blocked(wl, BlockedConfig(n_procs=4, multiplier=(2, 2)))
        wf_top = sorted(a.score for a in wf.alignments)[-2:]
        bl_top = sorted(a.score for a in bl.alignments)[-2:]
        assert wf_top == bl_top

    def test_strategy_scores_match_full_sw(self, pair):
        wl = ScaledWorkload(pair.s, pair.t)
        bl = run_blocked(wl, BlockedConfig(n_procs=2, multiplier=(2, 2)))
        exact = smith_waterman(pair.s, pair.t).alignment.score
        assert max(a.score for a in bl.alignments) == exact

    def test_exact_linear_agrees_with_strategies(self, pair):
        wl = ScaledWorkload(pair.s, pair.t)
        bl = run_blocked(wl, BlockedConfig(n_procs=2))
        exact = exact_best_alignment(pair.s, pair.t)
        assert max(a.score for a in bl.alignments) == exact.result.alignment.score

    def test_heuristic_reference_finds_same_regions(self, pair):
        """The faithful Section 4.1 engine and the fast region engine find
        the same planted regions (the DESIGN.md 'two engines' claim)."""
        wl = ScaledWorkload(pair.s, pair.t)
        fast = run_blocked(wl, BlockedConfig(n_procs=2)).alignments
        reference = heuristic_local_alignments(
            decode(pair.s), decode(pair.t), HeuristicParams(12, 12, 30)
        )
        strong_ref = [a for a in reference if a.score >= 50]
        assert len(strong_ref) == 2
        # every reference region is re-found by the fast engine ...
        for r in strong_ref:
            assert any(
                abs(f.s_end - r.s_end) <= 25 and abs(f.t_end - r.t_end) <= 25
                for f in fast
            ), r
        # ... and nothing the fast engine adds (band-boundary decay-tail
        # fragments) outranks the real regions
        best_ref = max(a.score for a in strong_ref)
        extras = [
            f
            for f in fast
            if not any(
                abs(f.s_end - r.s_end) <= 25 and abs(f.t_end - r.t_end) <= 25
                for r in strong_ref
            )
        ]
        assert all(f.score < best_ref for f in extras)

    def test_preprocess_hits_flag_the_same_regions(self, pair):
        wl = ScaledWorkload(pair.s, pair.t)
        cfg = PreprocessConfig(
            n_procs=4, band_size=125, chunk_size=125, result_interleave=125, threshold=30
        )
        res = run_preprocess(wl, cfg)
        matrix = res.extras["result_matrix"]
        total = int(matrix.sum())
        assert total == int(sw_row_hits(pair.s, pair.t, threshold=30).sum())
        # the hottest band-bucket sits at a planted region's end (or in its
        # immediate decay tail)
        band, bucket = np.unravel_index(np.argmax(matrix), matrix.shape)
        ends = [(p.s_end, p.t_end) for p in pair.regions]
        assert any(
            -1 <= band * 125 - s_end <= 300 or abs(band * 125 + 62 - s_end) <= 190
            for s_end, _ in ends
        )


class TestTimingHierarchy:
    def test_paper_headline_ordering(self, pair):
        """pre_process < blocked < wavefront in total time at 8 procs, 50k."""
        wl = ScaledWorkload(pair.s, pair.t, scale=50)
        wf = run_wavefront(wl, WavefrontConfig(n_procs=8)).total_time
        bl = run_blocked(wl, BlockedConfig(n_procs=8)).total_time
        pp = run_preprocess(
            wl, PreprocessConfig(n_procs=8, band_size=1000, chunk_size=1000)
        ).total_time
        assert pp < bl < wf
        # Section 1: "for 80 kBP sequences, the pre-process strategy runs
        # approximately 12 times faster than the heuristic one"
        assert wf / pp > 5
