import numpy as np
import pytest

from repro.core import similarity_matrix, sw_best_endpoint
from repro.core.kernels import SCORE_DTYPE, sw_row_slice
from repro.seq import genome_pair
from repro.strategies import (
    RegionSettings,
    ScaledWorkload,
    WavefrontConfig,
    run_wavefront,
    serial_wavefront_time,
)


class TestScaledWorkload:
    def test_nominal_sizes(self):
        gp = genome_pair(100, 200, n_regions=0, rng=0)
        wl = ScaledWorkload(gp.s, gp.t, scale=5)
        assert wl.nominal_rows == 500 and wl.nominal_cols == 1000
        assert wl.nominal_cells == 500_000

    def test_invalid_scale(self):
        gp = genome_pair(10, 10, n_regions=0, rng=0)
        with pytest.raises(ValueError):
            ScaledWorkload(gp.s, gp.t, scale=0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ScaledWorkload(np.array([], dtype=np.uint8), np.array([0], dtype=np.uint8))

    def test_scale_alignment(self):
        from repro.core import LocalAlignment

        gp = genome_pair(10, 10, n_regions=0, rng=0)
        wl = ScaledWorkload(gp.s, gp.t, scale=3)
        a = wl.scale_alignment(LocalAlignment(5, 1, 2, 3, 4))
        assert a.region == (3, 6, 9, 12)


class TestSliceKernel:
    def test_stitched_slices_equal_full_row(self):
        """Distributed row computation is exact (the strategy's core claim)."""
        gp = genome_pair(60, 60, n_regions=1, region_length=20, rng=1, min_separation=0)
        H = similarity_matrix(gp.s, gp.t, local=True)
        # recompute row by row with 3 column slices
        bounds = [(0, 20), (20, 40), (40, 60)]
        prev = [H[0][c0 : c1 + 1].copy() for c0, c1 in bounds]
        for i in range(1, len(gp.s) + 1):
            # stitch left borders from the already-computed full matrix row
            new = []
            for k, (c0, c1) in enumerate(bounds):
                left_cur = int(H[i][c0]) if c0 > 0 else 0
                row = sw_row_slice(prev[k], int(gp.s[i - 1]), gp.t[c0:c1], left_cur)
                new.append(row)
                assert np.array_equal(row[1:], H[i][c0 + 1 : c1 + 1])
            prev = new


class TestRunWavefront:
    def test_finds_planted_regions(self):
        gp = genome_pair(1200, 1200, n_regions=2, region_length=80, mutation_rate=0.0, rng=2)
        wl = ScaledWorkload(gp.s, gp.t)
        res = run_wavefront(wl, WavefrontConfig(n_procs=4))
        assert len(res.alignments) >= 2
        top = res.alignments[:2]
        for planted in gp.regions:
            assert any(
                abs(a.s_end - planted.s_end) <= 20 and abs(a.t_end - planted.t_end) <= 20
                for a in top
            )

    def test_region_spanning_processor_border(self):
        """A region crossing the column partition must still be found."""
        gp = genome_pair(600, 600, n_regions=0, rng=3)
        s, t = gp.s.copy(), gp.t.copy()
        # plant one region straddling the border between proc 1 and proc 2
        # (columns 300 with 2 procs)
        frag = genome_pair(100, 100, n_regions=0, rng=4).s
        s[250:350] = frag
        t[250:350] = frag
        wl = ScaledWorkload(s, t)
        res = run_wavefront(wl, WavefrontConfig(n_procs=2, regions=RegionSettings(threshold=30)))
        assert res.alignments
        best = res.alignments[0]
        assert best.score >= 60
        assert abs(best.t_end - 350) <= 20

    def test_single_proc_matches_linear_scan(self):
        gp = genome_pair(400, 400, n_regions=1, region_length=60, mutation_rate=0.0, rng=5)
        wl = ScaledWorkload(gp.s, gp.t)
        res = run_wavefront(wl, WavefrontConfig(n_procs=1))
        ep = sw_best_endpoint(gp.s, gp.t)
        assert res.alignments
        assert res.alignments[0].score == ep.score

    def test_best_score_invariant_to_proc_count(self):
        """The dominant alignment's score and rectangle do not depend on P.

        (Parallel runs may additionally report fragments of a region's decay
        tail when the tail crosses a column border -- the paper's own
        parallel heuristic also reports "very close but not the same"
        results -- but the top-scoring region must be stable.)
        """
        gp = genome_pair(800, 800, n_regions=1, region_length=80, mutation_rate=0.02, rng=6)
        wl = ScaledWorkload(gp.s, gp.t)
        tops = []
        for P in (1, 2, 4):
            res = run_wavefront(wl, WavefrontConfig(n_procs=P))
            tops.append(max(res.alignments, key=lambda a: a.score))
        assert tops[0].score == tops[1].score == tops[2].score
        assert tops[0].region == tops[1].region == tops[2].region

    def test_more_procs_faster(self):
        gp = genome_pair(1000, 1000, n_regions=0, rng=7)
        wl = ScaledWorkload(gp.s, gp.t, scale=20)
        t2 = run_wavefront(wl, WavefrontConfig(n_procs=2)).total_time
        t8 = run_wavefront(wl, WavefrontConfig(n_procs=8)).total_time
        assert t8 < t2

    def test_small_sequences_poor_speedup(self):
        """Paper: 'for small sequence sizes ... very bad speed-ups'."""
        gp = genome_pair(500, 500, n_regions=0, rng=8)
        wl = ScaledWorkload(gp.s, gp.t, scale=2)  # 1 kBP nominal
        serial = serial_wavefront_time(wl)
        t8 = run_wavefront(wl, WavefrontConfig(n_procs=8)).total_time
        assert serial / t8 < 1.5

    def test_breakdown_is_complete(self):
        gp = genome_pair(600, 600, n_regions=0, rng=9)
        wl = ScaledWorkload(gp.s, gp.t, scale=5)
        res = run_wavefront(wl, WavefrontConfig(n_procs=4))
        for node in res.stats.nodes:
            fr = node.breakdown.fractions()
            assert abs(sum(fr.values()) - 1.0) < 1e-9
            assert node.breakdown.computation > 0

    def test_phases_sum_to_total(self):
        gp = genome_pair(400, 400, n_regions=0, rng=10)
        wl = ScaledWorkload(gp.s, gp.t)
        res = run_wavefront(wl, WavefrontConfig(n_procs=2))
        assert res.phases.total == pytest.approx(res.total_time)
        assert res.phases.init > 0 and res.phases.term > 0

    def test_too_many_procs_rejected(self):
        gp = genome_pair(10, 10, n_regions=0, rng=11)
        with pytest.raises(ValueError):
            run_wavefront(ScaledWorkload(gp.s, gp.t), WavefrontConfig(n_procs=16))

    def test_deterministic(self):
        gp = genome_pair(500, 500, n_regions=1, region_length=50, rng=12)
        wl = ScaledWorkload(gp.s, gp.t)
        a = run_wavefront(wl, WavefrontConfig(n_procs=4))
        b = run_wavefront(wl, WavefrontConfig(n_procs=4))
        assert a.total_time == b.total_time
        assert a.alignments == b.alignments

    def test_speedup_against(self):
        # 25 kBP nominal: comfortably past the strategy's break-even size
        gp = genome_pair(1000, 1000, n_regions=0, rng=13)
        wl = ScaledWorkload(gp.s, gp.t, scale=25)
        res = run_wavefront(wl, WavefrontConfig(n_procs=4))
        su = res.speedup_against(serial_wavefront_time(wl))
        assert su > 1.3
