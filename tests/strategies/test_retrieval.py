"""Section 5's final selection: recovering alignments from the scoreboard."""

import numpy as np
import pytest

from repro.core import smith_waterman
from repro.seq import genome_pair
from repro.strategies import (
    PreprocessConfig,
    ScaledWorkload,
    interesting_regions,
    retrieve_alignments,
    run_preprocess,
)
from repro.strategies.retrieval import InterestingRegion, _merge_windows


def preprocess_result(gp, **cfg_kw):
    wl = ScaledWorkload(gp.s, gp.t)
    defaults = dict(
        n_procs=4, band_size=250, chunk_size=250, result_interleave=250, threshold=30
    )
    defaults.update(cfg_kw)
    return run_preprocess(wl, PreprocessConfig(**defaults))


class TestInterestingRegions:
    def test_sorted_by_hits(self):
        matrix = np.array([[5, 0], [20, 1]])
        regions = interesting_regions(matrix, [10, 10], 50, 100)
        assert [r.hits for r in regions] == [20, 5, 1]

    def test_min_hits_filters(self):
        matrix = np.array([[5, 0], [20, 1]])
        regions = interesting_regions(matrix, [10, 10], 50, 100, min_hits=5)
        assert [r.hits for r in regions] == [20, 5]

    def test_coordinates(self):
        matrix = np.array([[0, 7]])
        (r,) = interesting_regions(matrix, [10], 50, 80)
        assert (r.row_start, r.row_end) == (0, 10)
        assert (r.col_start, r.col_end) == (50, 80)  # clamped to n_cols

    def test_max_regions(self):
        matrix = np.ones((4, 4), dtype=int)
        assert len(interesting_regions(matrix, [5] * 4, 10, 40, max_regions=3)) == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            interesting_regions(np.ones(3), [1], 10, 10)
        with pytest.raises(ValueError):
            interesting_regions(np.ones((2, 2)), [1], 10, 10)

    def test_density(self):
        r = InterestingRegion(0, 0, 50, 0, 10, 0, 10)
        assert r.hit_density == pytest.approx(0.5)


class TestMergeWindows:
    def test_disjoint_kept(self):
        regions = [
            InterestingRegion(0, 0, 1, 0, 10, 0, 10),
            InterestingRegion(1, 1, 1, 50, 60, 50, 60),
        ]
        assert len(_merge_windows(regions, 2, 100, 100)) == 2

    def test_overlapping_merged(self):
        regions = [
            InterestingRegion(0, 0, 1, 0, 10, 0, 10),
            InterestingRegion(0, 1, 1, 5, 15, 5, 15),
        ]
        merged = _merge_windows(regions, 0, 100, 100)
        assert merged == [(0, 15, 0, 15)]

    def test_pad_clamped(self):
        regions = [InterestingRegion(0, 0, 1, 0, 10, 0, 10)]
        (win,) = _merge_windows(regions, 1000, 50, 60)
        assert win == (0, 50, 0, 60)


class TestRetrieveAlignments:
    def test_recovers_all_planted_regions(self):
        gp = genome_pair(2000, 2000, n_regions=3, region_length=100, mutation_rate=0.03, rng=91)
        res = preprocess_result(gp)
        found = retrieve_alignments(gp.s, gp.t, res, min_score=50, min_hits=5)
        assert len(found) >= 3
        # SW may legitimately extend a planted region by a few chance
        # matches on either side, so compare with a modest tolerance
        for planted in gp.regions:
            assert any(
                abs(a.s_start - planted.s_start) <= 40
                and abs(a.t_start - planted.t_start) <= 40
                for a in found
            ), planted

    def test_scores_match_direct_sw(self):
        gp = genome_pair(1000, 1000, n_regions=1, region_length=90, mutation_rate=0.0, rng=92)
        res = preprocess_result(gp)
        found = retrieve_alignments(gp.s, gp.t, res, min_score=40)
        direct = smith_waterman(gp.s, gp.t).alignment.score
        assert found[0].score == direct

    def test_rejects_wrong_result_type(self):
        from repro.strategies import BlockedConfig, run_blocked

        gp = genome_pair(300, 300, n_regions=0, rng=93)
        res = run_blocked(ScaledWorkload(gp.s, gp.t), BlockedConfig(n_procs=2))
        with pytest.raises(ValueError, match="pre_process"):
            retrieve_alignments(gp.s, gp.t, res, min_score=10)

    def test_rejects_scaled_result(self):
        gp = genome_pair(500, 500, n_regions=0, rng=94)
        wl = ScaledWorkload(gp.s, gp.t, scale=4)
        res = run_preprocess(wl, PreprocessConfig(n_procs=2, band_size=500, chunk_size=500))
        with pytest.raises(ValueError, match="scale"):
            retrieve_alignments(gp.s, gp.t, res, min_score=10)

    def test_no_hot_cells_no_alignments(self):
        gp = genome_pair(600, 600, n_regions=0, rng=95)
        res = preprocess_result(gp, threshold=40)  # noise never reaches 40
        assert retrieve_alignments(gp.s, gp.t, res, min_score=40) == []
