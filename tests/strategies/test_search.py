"""Database search: deterministic top-k, batched/sequential/pool parity."""

import numpy as np
import pytest

from repro.seq import pack_database, random_dna, synthetic_database
from repro.seq.db import PackedBucket, PackedDatabase
from repro.strategies import (
    SearchConfig,
    TopK,
    search_db,
    search_db_sequential,
)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(404)
    db = synthetic_database(n=90, min_length=15, max_length=150, rng=rng)
    query = random_dna(200, rng)
    return query, db


class TestTopK:
    def test_keeps_best_k(self):
        top = TopK(2)
        for score, idx in [(5, 0), (9, 1), (7, 2), (1, 3)]:
            top.push(score, idx)
        assert top.ranked() == [(9, 1), (7, 2)]

    def test_ties_break_by_database_order(self):
        top = TopK(3)
        for idx in (4, 2, 9, 7):
            top.push(5, idx)
        assert top.ranked() == [(5, 2), (5, 4), (5, 7)]

    def test_insertion_order_independent(self):
        entries = [(s, i) for i, s in enumerate([3, 8, 8, 1, 5, 8, 2, 5])]
        rng = np.random.default_rng(0)
        expected = None
        for _ in range(10):
            shuffled = list(entries)
            rng.shuffle(shuffled)
            top = TopK(4)
            for score, idx in shuffled:
                top.push(score, idx)
            expected = expected or top.ranked()
            assert top.ranked() == expected

    def test_merge_equals_single_heap(self):
        entries = [(int(s), i) for i, s in enumerate(np.random.default_rng(1).integers(0, 20, 30))]
        whole = TopK(5)
        for score, idx in entries:
            whole.push(score, idx)
        left, right = TopK(5), TopK(5)
        for score, idx in entries[:15]:
            left.push(score, idx)
        for score, idx in entries[15:]:
            right.push(score, idx)
        merged = TopK(5)
        merged.merge(left.items())
        merged.merge(right.items())
        assert merged.ranked() == whole.ranked()

    def test_k_zero_and_validation(self):
        top = TopK(0)
        top.push(10, 0)
        assert top.ranked() == []
        with pytest.raises(ValueError):
            TopK(-1)

    def test_threshold_is_minus_inf_while_underfull(self):
        top = TopK(3)
        assert top.threshold() == float("-inf")
        top.push(9, 0)
        top.push(5, 1)
        assert top.threshold() == float("-inf")

    def test_threshold_is_kth_score_when_full(self):
        top = TopK(3)
        for score, idx in [(9, 0), (5, 1), (7, 2), (1, 3)]:
            top.push(score, idx)
        assert top.threshold() == 5

    def test_threshold_on_ties(self):
        # Equal scores fill the heap; the threshold is that tied score, and
        # pruning must stay strict (<) so other tied sequences still get
        # scanned -- an equal score at a smaller index displaces the k-th.
        top = TopK(2)
        top.push(5, 4)
        top.push(5, 9)
        assert top.threshold() == 5
        top.push(5, 2)
        assert top.threshold() == 5
        assert top.ranked() == [(5, 2), (5, 4)]

    def test_threshold_k_zero_prunes_everything(self):
        assert TopK(0).threshold() == float("inf")


class TestSearchDb:
    def test_batched_matches_sequential(self, workload):
        query, db = workload
        config = SearchConfig(top_k=12, max_lanes=16)
        batched = search_db(query, db, config)
        sequential = search_db_sequential(query, db, config)
        assert batched.scores() == sequential.scores()
        assert [h.name for h in batched.hits] == [h.name for h in sequential.hits]
        assert batched.total_cells == sequential.total_cells

    def test_parity_survives_heavy_padding_and_empty_lanes(self, rng):
        # Degenerate length mix: forced padding tails and a zero-length record.
        records = [("long", random_dna(120, rng)), ("tiny", random_dna(1, rng)),
                   ("empty", random_dna(0, rng)), ("mid", random_dna(60, rng))]
        packed = pack_database(records, max_lanes=4, max_waste=0.99)
        query = random_dna(80, rng)
        config = SearchConfig(top_k=4)
        assert search_db(query, packed, config).scores() == \
            search_db_sequential(query, packed, config).scores()

    def test_accepts_prepacked_database(self, workload):
        query, db = workload
        config = SearchConfig(top_k=5, max_lanes=16)
        packed = pack_database(db, max_lanes=16)
        assert search_db(query, packed, config).scores() == \
            search_db(query, db, config).scores()

    def test_empty_database(self, workload):
        query, _ = workload
        result = search_db(query, pack_database([]), SearchConfig(top_k=3))
        assert result.hits == []
        assert result.n_sequences == 0

    def test_hits_carry_names_and_lengths(self, workload):
        query, db = workload
        result = search_db(query, db, SearchConfig(top_k=3, max_lanes=16))
        for hit in result.hits:
            assert hit.name == db[hit.index].name
            assert hit.length == len(db[hit.index].codes)

    def test_result_accounting(self, workload):
        query, db = workload
        result = search_db(query, db, SearchConfig(top_k=3, max_lanes=16))
        assert result.total_cells == len(query) * sum(len(r.codes) for r in db)
        assert result.wall_seconds > 0
        assert result.gcups > 0
        assert result.backend == "batched"


class TestPoolSearch:
    def test_pool_matches_sequential(self, workload):
        from repro.parallel import AlignmentWorkerPool

        query, db = workload
        config = SearchConfig(top_k=10, max_lanes=16)
        expected = search_db_sequential(query, db, config).scores()
        with AlignmentWorkerPool(n_workers=3) as pool:
            first = search_db(query, db, config, pool=pool)
            # A second search proves the work queue is clean between jobs.
            second = search_db(query, db, config, pool=pool)
            empty = search_db(query, pack_database([]), config, pool=pool)
        assert first.scores() == expected
        assert second.scores() == expected
        assert first.backend == "pool" and first.n_workers == 3
        assert empty.hits == []

    def test_worker_error_fails_search_but_not_pool(self, workload):
        from repro.parallel import AlignmentWorkerPool
        from repro.parallel.pool import PoolJobError

        query, db = workload
        config = SearchConfig(top_k=5, max_lanes=16)
        good = pack_database(db, max_lanes=16)
        bad_bucket = PackedBucket(
            codes=good.buckets[0].codes,
            lengths=good.buckets[0].lengths + 10_000,  # exceeds the packed width
            indices=good.buckets[0].indices,
        )
        bad = PackedDatabase(
            buckets=[bad_bucket] + good.buckets[1:],
            names=good.names,
            lengths=good.lengths,
        )
        expected = search_db_sequential(query, good, config).scores()
        with AlignmentWorkerPool(n_workers=2) as pool:
            with pytest.raises(PoolJobError):
                search_db(query, bad, config, pool=pool)
            # The queue was drained: the next search must be correct.
            assert search_db(query, good, config, pool=pool).scores() == expected

    def test_pool_then_pairwise_jobs_coexist(self, rng):
        from repro.parallel import AlignmentWorkerPool

        db = synthetic_database(n=20, min_length=20, max_length=60, rng=rng)
        query = random_dna(50, rng)
        config = SearchConfig(top_k=3, max_lanes=8)
        expected = search_db_sequential(query, db, config).scores()
        s, t = random_dna(300, rng), random_dna(300, rng)
        with AlignmentWorkerPool(n_workers=2) as pool:
            regions_before = pool.wavefront(s, t)
            assert search_db(query, db, config, pool=pool).scores() == expected
            regions_after = pool.wavefront(s, t)
        assert [r.region for r in regions_before] == [r.region for r in regions_after]
