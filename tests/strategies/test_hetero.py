"""The Section 7 future-work extension: hierarchical heterogeneous clusters."""

import pytest

from repro.core import smith_waterman
from repro.seq import genome_pair
from repro.strategies import (
    HeteroConfig,
    ScaledWorkload,
    SubCluster,
    hetero_serial_time,
    run_hetero,
)


class TestSubCluster:
    def test_power(self):
        assert SubCluster(8, 1.0).power == 8.0
        assert SubCluster(4, 2.0).power == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SubCluster(0, 1.0)
        with pytest.raises(ValueError):
            SubCluster(2, 0.0)


class TestHeteroConfig:
    def test_split_proportional_to_power(self):
        cfg = HeteroConfig(clusters=(SubCluster(8, 1.0), SubCluster(4, 2.0)))
        split = cfg.column_split(1000)
        assert split == [(0, 500), (500, 1000)]

    def test_split_covers_everything(self):
        cfg = HeteroConfig(clusters=(SubCluster(3, 1.0), SubCluster(5, 1.0), SubCluster(2, 1.0)))
        split = cfg.column_split(997)
        assert split[0][0] == 0 and split[-1][1] == 997
        for (a0, a1), (b0, b1) in zip(split, split[1:]):
            assert a1 == b0

    def test_validation(self):
        with pytest.raises(ValueError):
            HeteroConfig(clusters=())
        with pytest.raises(ValueError):
            HeteroConfig(bands_per_proc=0)


class TestRunHetero:
    def test_finds_planted_regions(self):
        gp = genome_pair(1200, 1200, n_regions=2, region_length=80, mutation_rate=0.0, rng=60)
        wl = ScaledWorkload(gp.s, gp.t)
        cfg = HeteroConfig(clusters=(SubCluster(2, 1.0), SubCluster(2, 1.0)))
        res = run_hetero(wl, cfg)
        assert res.name == "hetero"
        strong = [a for a in res.alignments if a.score >= 50]
        assert len(strong) >= 2

    def test_score_matches_full_sw(self):
        gp = genome_pair(800, 800, n_regions=1, region_length=80, mutation_rate=0.02, rng=61)
        wl = ScaledWorkload(gp.s, gp.t)
        res = run_hetero(wl, HeteroConfig(clusters=(SubCluster(2), SubCluster(2))))
        exact = smith_waterman(gp.s, gp.t).alignment.score
        assert max(a.score for a in res.alignments) == exact

    def test_region_crossing_cluster_border(self):
        gp = genome_pair(600, 600, n_regions=0, rng=62)
        s, t = gp.s.copy(), gp.t.copy()
        frag = genome_pair(100, 100, n_regions=0, rng=63).s
        s[250:350] = frag
        t[250:350] = frag  # straddles the 300-column split of two equal clusters
        res = run_hetero(
            ScaledWorkload(s, t), HeteroConfig(clusters=(SubCluster(2), SubCluster(2)))
        )
        assert res.alignments
        assert res.alignments[0].score >= 60

    def test_faster_cluster_gets_more_columns(self):
        gp = genome_pair(1000, 1000, n_regions=0, rng=64)
        cfg = HeteroConfig(clusters=(SubCluster(4, 1.0), SubCluster(4, 3.0)))
        res = run_hetero(ScaledWorkload(gp.s, gp.t), cfg)
        (a0, a1), (b0, b1) = res.extras["column_split"]
        assert (b1 - b0) > 2 * (a1 - a0)

    def test_two_clusters_beat_one_at_scale(self):
        gp = genome_pair(2000, 2000, n_regions=0, rng=65)
        wl = ScaledWorkload(gp.s, gp.t, scale=200)  # 400 kBP nominal (>1 MBP-class)
        one = run_hetero(wl, HeteroConfig(clusters=(SubCluster(8, 1.0),)))
        two = run_hetero(wl, HeteroConfig(clusters=(SubCluster(8, 1.0), SubCluster(8, 1.0))))
        assert two.total_time < one.total_time

    def test_serial_baseline_uses_fastest_node(self):
        gp = genome_pair(200, 200, n_regions=0, rng=66)
        wl = ScaledWorkload(gp.s, gp.t, scale=10)
        cfg = HeteroConfig(clusters=(SubCluster(2, 1.0), SubCluster(2, 4.0)))
        fast = hetero_serial_time(wl, cfg)
        slow = hetero_serial_time(wl, HeteroConfig(clusters=(SubCluster(2, 1.0),)))
        assert fast < slow

    def test_too_narrow_workload_rejected(self):
        gp = genome_pair(20, 20, n_regions=0, rng=67)
        cfg = HeteroConfig(clusters=(SubCluster(2, 1.0), SubCluster(2, 100.0)))
        with pytest.raises(ValueError):
            run_hetero(ScaledWorkload(gp.s, gp.t), cfg)

    def test_inter_cluster_messages_recorded(self):
        gp = genome_pair(600, 600, n_regions=0, rng=68)
        res = run_hetero(
            ScaledWorkload(gp.s, gp.t), HeteroConfig(clusters=(SubCluster(2), SubCluster(2)))
        )
        comm = sum(n.breakdown.communication for n in res.stats.nodes)
        assert comm > 0
