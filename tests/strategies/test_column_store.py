"""The on-disk column store: Section 5's saved partial results, for real."""

import numpy as np
import pytest

from repro.core import similarity_matrix
from repro.core.kernels import SCORE_DTYPE
from repro.seq import genome_pair
from repro.strategies.column_store import (
    ColumnStore,
    restart_band_from_store,
    save_preprocess_columns,
)


class TestColumnStore:
    def test_save_and_load(self, tmp_path):
        store = ColumnStore(tmp_path / "run")
        values = np.arange(10, dtype=SCORE_DTYPE)
        store.save_column(0, 100, 0, values)
        assert np.array_equal(store.load(0, 100), values)

    def test_duplicate_rejected(self, tmp_path):
        store = ColumnStore(tmp_path)
        store.save_column(0, 5, 0, np.zeros(3, dtype=SCORE_DTYPE))
        with pytest.raises(ValueError):
            store.save_column(0, 5, 0, np.zeros(3, dtype=SCORE_DTYPE))

    def test_missing_column_raises(self, tmp_path):
        with pytest.raises(KeyError):
            ColumnStore(tmp_path).load(0, 1)

    def test_manifest_roundtrip(self, tmp_path):
        store = ColumnStore(tmp_path)
        store.save_column(1, 200, 50, np.ones(4, dtype=SCORE_DTYPE))
        store.finalize(rows=100, cols=400)
        reopened = ColumnStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.meta["rows"] == 100
        assert np.array_equal(reopened.load(1, 200), np.ones(4, dtype=SCORE_DTYPE))

    def test_columns_in_band(self, tmp_path):
        store = ColumnStore(tmp_path)
        store.save_column(0, 10, 0, np.zeros(2, dtype=SCORE_DTYPE))
        store.save_column(1, 10, 2, np.zeros(2, dtype=SCORE_DTYPE))
        store.save_column(0, 20, 0, np.zeros(2, dtype=SCORE_DTYPE))
        assert [c.column for c in store.columns_in_band(0)] == [10, 20]

    def test_total_bytes_positive(self, tmp_path):
        store = ColumnStore(tmp_path)
        store.save_column(0, 10, 0, np.zeros(100, dtype=SCORE_DTYPE))
        assert store.total_bytes() >= 400

    def test_1d_enforced(self, tmp_path):
        with pytest.raises(ValueError):
            ColumnStore(tmp_path).save_column(0, 1, 0, np.zeros((2, 2)))


class TestSavePreprocessColumns:
    def test_saved_columns_match_full_matrix(self, tmp_path):
        gp = genome_pair(120, 150, n_regions=1, region_length=40, rng=110, min_separation=0)
        store = ColumnStore(tmp_path)
        n = save_preprocess_columns(gp.s, gp.t, store, band_heights=[60, 60], save_interleave=50)
        assert n == len(store) == 6  # columns 50, 100, 150 in each of 2 bands
        H = similarity_matrix(gp.s, gp.t)
        for rec in store.columns():
            expected = H[rec.row_start + 1 : rec.row_start + 61, rec.column]
            assert np.array_equal(store.load(rec.band, rec.column), expected)

    def test_band_heights_validated(self, tmp_path):
        gp = genome_pair(100, 100, n_regions=0, rng=111)
        with pytest.raises(ValueError):
            save_preprocess_columns(gp.s, gp.t, ColumnStore(tmp_path), [30], 10)

    def test_manifest_records_parameters(self, tmp_path):
        gp = genome_pair(80, 80, n_regions=0, rng=112)
        store = ColumnStore(tmp_path)
        save_preprocess_columns(gp.s, gp.t, store, [40, 40], 20)
        assert store.meta["save_interleave"] == 20
        assert store.meta["band_heights"] == [40, 40]


class TestRestartFromStore:
    def test_restarted_window_matches_full_matrix(self, tmp_path):
        """The paper's 'later processing': recompute a window from a stored
        boundary column instead of the whole matrix."""
        gp = genome_pair(100, 400, n_regions=0, rng=113)
        store = ColumnStore(tmp_path)
        save_preprocess_columns(gp.s, gp.t, store, band_heights=[100], save_interleave=100)
        H = similarity_matrix(gp.s, gp.t)
        tile = restart_band_from_store(gp.s, gp.t, store, band=0, col_start=200, col_end=350)
        assert np.array_equal(tile[:, 1:], H[1:101, 201:351])

    def test_window_before_first_anchor_uses_edge(self, tmp_path):
        gp = genome_pair(60, 200, n_regions=0, rng=114)
        store = ColumnStore(tmp_path)
        save_preprocess_columns(gp.s, gp.t, store, band_heights=[60], save_interleave=150)
        H = similarity_matrix(gp.s, gp.t)
        tile = restart_band_from_store(gp.s, gp.t, store, band=0, col_start=50, col_end=120)
        assert np.array_equal(tile[:, 1:], H[1:61, 51:121])

    def test_inner_band_not_supported(self, tmp_path):
        gp = genome_pair(80, 80, n_regions=0, rng=115)
        store = ColumnStore(tmp_path)
        save_preprocess_columns(gp.s, gp.t, store, [40, 40], 20)
        with pytest.raises(NotImplementedError):
            restart_band_from_store(gp.s, gp.t, store, band=1, col_start=20, col_end=40)
