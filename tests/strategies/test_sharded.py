"""Sharded search parity and the content-addressed result cache.

The shard dimension's contract is absolute: for every backend (inline,
pool, simulated cluster), every kernel, every prefilter mode and every
shard count, the ranking is bitwise identical to
:func:`~repro.strategies.search.search_db_sequential`.  The cache's
contract is the complement: a hit returns an equal result without running
any of that machinery (zero tile spans).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.plan import SimExecutor, plan_search_buckets, search_blob
from repro.seq import pack_database, random_dna, synthetic_database
from repro.seq.db import content_digest, shard_database
from repro.strategies import (
    DEFAULT_CACHE,
    SearchCache,
    SearchConfig,
    cache_key,
    search_db,
    search_db_sequential,
)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(77)
    db = synthetic_database(n=140, min_length=30, max_length=160, rng=rng)
    packed = pack_database(db)
    query = random_dna(150, rng)
    return query, packed


@pytest.fixture(scope="module")
def reference(workload):
    query, packed = workload
    return search_db_sequential(query, packed, SearchConfig(top_k=8)).scores()


@pytest.fixture(autouse=True)
def fresh_cache():
    DEFAULT_CACHE.clear()
    yield
    DEFAULT_CACHE.clear()


class TestShardPacker:
    def test_round_robin_exactly_once(self, workload):
        _, packed = workload
        shards = shard_database(packed, 3)
        seen: dict[int, int] = {}
        for s, shard in enumerate(shards):
            for bucket in shard.buckets:
                for index in bucket.indices:
                    assert int(index) not in seen, "sequence in two shards"
                    seen[int(index)] = s
                    assert int(index) % 3 == s, "not the scattered mapping"
        assert len(seen) == packed.n_sequences

    def test_shards_preserve_codes(self, workload):
        _, packed = workload
        originals = {}
        for bucket in packed.buckets:
            for lane in range(bucket.lanes):
                width = int(bucket.lengths[lane])
                originals[int(bucket.indices[lane])] = bucket.codes[lane, :width]
        for shard in shard_database(packed, 4):
            for bucket in shard.buckets:
                for lane in range(bucket.lanes):
                    width = int(bucket.lengths[lane])
                    np.testing.assert_array_equal(
                        bucket.codes[lane, :width],
                        originals[int(bucket.indices[lane])],
                    )


class TestInlineParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4])
    @pytest.mark.parametrize("kernel", ["classic", "striped"])
    def test_matches_sequential(self, workload, reference, n_shards, kernel):
        query, packed = workload
        config = SearchConfig(
            top_k=8, kernel=kernel, n_shards=n_shards, prefilter="off"
        )
        result = search_db(query, packed, config)
        assert result.scores() == reference
        assert result.n_shards == n_shards

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_prefiltered_matches_sequential(self, workload, reference, n_shards):
        query, packed = workload
        config = SearchConfig(top_k=8, n_shards=n_shards, prefilter="kmer")
        result = search_db(query, packed, config)
        assert result.scores() == reference

    def test_more_shards_than_sequences_still_exact(self, reference, workload):
        query, packed = workload
        small = pack_database(
            synthetic_database(n=5, min_length=30, max_length=60, rng=1)
        )
        ref = search_db_sequential(query, small, SearchConfig(top_k=3)).scores()
        got = search_db(query, small, SearchConfig(top_k=3, n_shards=8, prefilter="off"))
        assert got.scores() == ref


class TestSimParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_matches_sequential_and_bills_the_merge(
        self, workload, reference, n_shards
    ):
        query, packed = workload
        from repro.seq.alphabet import encode

        q = encode(query)
        shards = shard_database(packed, n_shards) if n_shards > 1 else None
        graph = plan_search_buckets(
            packed, len(q), top_k=8, n_shards=n_shards, shards=shards
        )
        result = SimExecutor().run(graph, q, search_blob(shards or packed))
        assert result.hits == reference
        merge = result.extras["sim"]["stage_seconds"].get("merge", 0.0)
        if n_shards > 1:
            assert merge > 0.0, "cross-shard merge traffic was not billed"
        else:
            assert merge == 0.0


class TestPoolParity:
    def test_matches_sequential_across_shards_and_prefilter(
        self, workload, reference
    ):
        from repro.parallel import AlignmentWorkerPool

        query, packed = workload
        with AlignmentWorkerPool(n_workers=4) as pool:
            for n_shards in (1, 2, 4):
                for prefilter in ("off", "kmer"):
                    config = SearchConfig(
                        top_k=8, n_shards=n_shards, prefilter=prefilter
                    )
                    result = search_db(query, packed, config, pool=pool)
                    assert result.scores() == reference, (n_shards, prefilter)
                    assert result.n_workers == 4

    def test_oversharding_the_pool_is_rejected(self, workload):
        from repro.parallel import AlignmentWorkerPool

        query, packed = workload
        with AlignmentWorkerPool(n_workers=2) as pool:
            with pytest.raises(ValueError, match="shard"):
                search_db(
                    query,
                    packed,
                    SearchConfig(top_k=8, n_shards=4, prefilter="off"),
                    pool=pool,
                )


class TestResultCache:
    def test_hit_returns_an_identical_result(self, workload, reference):
        query, packed = workload
        config = SearchConfig(top_k=8, cache=True, prefilter="off")
        first = search_db(query, packed, config)
        second = search_db(query, packed, config)
        assert not first.cached and second.cached
        assert second.scores() == first.scores() == reference
        assert second.hits == first.hits
        assert second.n_sequences == first.n_sequences
        assert second.total_cells == first.total_cells

    def test_hit_skips_all_dp_work(self, workload):
        query, packed = workload
        config = SearchConfig(top_k=8, cache=True, prefilter="off")
        search_db(query, packed, config)  # warm
        with obs.observed("coordinator") as (tracer, _):
            hit = search_db(query, packed, config)
        assert hit.cached
        assert tracer.spans == [], "a cache hit must plan and scan nothing"

    def test_key_ignores_kernel_shards_and_backend(self, workload):
        query, packed = workload
        warm = SearchConfig(top_k=8, cache=True, kernel="striped", n_shards=2)
        search_db(query, packed, warm)
        probe = SearchConfig(top_k=8, cache=True, kernel="classic", n_shards=1)
        assert search_db(query, packed, probe).cached

    def test_key_covers_ranking_inputs(self, workload):
        query, packed = workload
        search_db(query, packed, SearchConfig(top_k=8, cache=True))
        # Different k, different scoring, different query: all misses.
        assert not search_db(query, packed, SearchConfig(top_k=5, cache=True)).cached
        from repro.core.scoring import Scoring

        other = SearchConfig(top_k=8, cache=True, scoring=Scoring(2, -1, -2))
        assert not search_db(query, packed, other).cached
        assert not search_db(query[:-1], packed, SearchConfig(top_k=8, cache=True)).cached

    def test_database_change_changes_the_digest(self, workload):
        _, packed = workload
        other = pack_database(
            synthetic_database(n=140, min_length=30, max_length=160, rng=5)
        )
        assert content_digest(packed) != content_digest(other)

    def test_mutating_a_hit_does_not_corrupt_the_master(self, workload):
        query, packed = workload
        config = SearchConfig(top_k=8, cache=True)
        search_db(query, packed, config)
        hit = search_db(query, packed, config)
        hit.hits.clear()
        again = search_db(query, packed, config)
        assert again.cached and len(again.hits) == 8

    def test_lru_eviction_and_counters(self):
        cache = SearchCache(maxsize=2)
        from repro.strategies.search import SearchResult

        def result(i):
            return SearchResult(
                hits=[], n_sequences=i, total_cells=1, wall_seconds=0.0
            )

        cache.put("a", "d1", result(1))
        cache.put("b", "d1", result(2))
        assert cache.get("a") is not None  # refresh a: b becomes the LRU tail
        cache.put("c", "d2", result(3))
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.stats() == {
            "entries": 2, "hits": 3, "misses": 1, "evictions": 1,
        }

    def test_invalidate_by_digest(self):
        cache = SearchCache(maxsize=8)
        from repro.strategies.search import SearchResult

        r = SearchResult(hits=[], n_sequences=1, total_cells=1, wall_seconds=0.0)
        cache.put("a", "d1", r)
        cache.put("b", "d1", r)
        cache.put("c", "d2", r)
        assert cache.invalidate("d1") == 2
        assert cache.get("a") is None and cache.get("c") is not None

    def test_cache_key_is_stable_and_sensitive(self, workload):
        query, packed = workload
        from repro.core.scoring import DEFAULT_SCORING
        from repro.seq.alphabet import encode

        q = encode(query)
        digest = content_digest(packed)
        k1 = cache_key(q, digest, DEFAULT_SCORING, 8, ())
        assert k1 == cache_key(q, digest, DEFAULT_SCORING, 8, ())
        assert k1 != cache_key(q, digest, DEFAULT_SCORING, 9, ())
        assert k1 != cache_key(q, digest, DEFAULT_SCORING, 8, ("length",))
        assert k1 != cache_key(q, "other", DEFAULT_SCORING, 8, ())
