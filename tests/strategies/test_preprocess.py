import numpy as np
import pytest

from repro.core import sw_row_hits
from repro.seq import genome_pair
from repro.strategies import (
    PreprocessConfig,
    ScaledWorkload,
    run_preprocess,
    serial_preprocess_time,
)


class TestConfig:
    def test_invalid_io_mode(self):
        with pytest.raises(ValueError):
            PreprocessConfig(io_mode="sometimes")

    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            PreprocessConfig(band_scheme="weird")

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            PreprocessConfig(band_size=0)

    def test_cache_penalty_applies(self):
        from repro.sim import DEFAULT_COST_MODEL as cm

        cfg = PreprocessConfig()
        assert cfg.cell_time(1000, cm) == cm.preprocess_cell_time
        assert cfg.cell_time(100_000, cm) > cm.preprocess_cell_time


class TestResultMatrix:
    def test_hits_match_reference_scan(self):
        """The distributed scoreboard equals the sequential hit counts."""
        gp = genome_pair(300, 300, n_regions=1, region_length=60, mutation_rate=0.0, rng=31)
        wl = ScaledWorkload(gp.s, gp.t)
        cfg = PreprocessConfig(
            n_procs=3, band_size=64, chunk_size=50, result_interleave=300, threshold=15
        )
        res = run_preprocess(wl, cfg)
        matrix = res.extras["result_matrix"]
        # one bucket per band; total hits must equal the reference count
        reference = int(sw_row_hits(gp.s, gp.t, threshold=15).sum())
        assert int(matrix.sum()) == reference

    def test_hits_bucketed_by_column(self):
        gp = genome_pair(200, 200, n_regions=1, region_length=60, mutation_rate=0.0, rng=32, min_separation=0)
        wl = ScaledWorkload(gp.s, gp.t)
        cfg = PreprocessConfig(
            n_procs=2, band_size=50, chunk_size=50, result_interleave=50, threshold=15
        )
        res = run_preprocess(wl, cfg)
        matrix = res.extras["result_matrix"]
        assert matrix.shape == (4, 4)
        # hits appear where the planted region ends (and possibly in its
        # decay tail after it), never before the region starts
        planted = gp.regions[0]
        band = min(3, (planted.s_end - 1) // 50)
        bucket = min(3, (planted.t_end - 1) // 50)
        assert matrix[band, bucket] > 0
        first_band = planted.s_start // 50
        assert matrix[:first_band].sum() == 0

    def test_interesting_region_detectable(self):
        """Section 5: high hit counts flag regions 'very likely to contain
        good alignments'."""
        gp = genome_pair(400, 400, n_regions=1, region_length=80, mutation_rate=0.0, rng=33)
        wl = ScaledWorkload(gp.s, gp.t)
        cfg = PreprocessConfig(n_procs=2, band_size=100, chunk_size=100, result_interleave=100, threshold=20)
        res = run_preprocess(wl, cfg)
        matrix = res.extras["result_matrix"]
        planted = gp.regions[0]
        # the region's own bucket is hot, and everything before the region
        # (where only random background exists) is silent
        band = min(matrix.shape[0] - 1, (planted.s_end - 1) // 100)
        bucket = min(matrix.shape[1] - 1, (planted.t_end - 1) // 100)
        assert matrix[band, bucket] > 50
        assert matrix[: planted.s_start // 100].sum() == 0


class TestIoModes:
    def _run(self, mode, **kw):
        gp = genome_pair(400, 400, n_regions=0, rng=34)
        wl = ScaledWorkload(gp.s, gp.t, scale=10)
        cfg = PreprocessConfig(
            n_procs=4, band_size=500, chunk_size=500, save_interleave=500, io_mode=mode, **kw
        )
        return run_preprocess(wl, cfg)

    def test_none_mode_writes_nothing(self):
        res = self._run("none")
        assert sum(res.extras["disk_bytes"]) == 0

    def test_immediate_mode_writes(self):
        res = self._run("immediate")
        assert sum(res.extras["disk_bytes"]) > 0

    def test_deferred_io_lands_in_term(self):
        none = self._run("none")
        deferred = self._run("deferred")
        assert deferred.phases.core == pytest.approx(none.phases.core, rel=0.02)
        assert deferred.phases.term > none.phases.term

    def test_immediate_io_barely_affects_core(self):
        """Fig. 20: 'saving columns at these frequencies has little effect'."""
        none = self._run("none")
        immediate = self._run("immediate")
        assert immediate.phases.core <= none.phases.core * 1.10


class TestSpeedups:
    def test_fig18_shape(self):
        gp = genome_pair(800, 800, n_regions=0, rng=35)
        wl = ScaledWorkload(gp.s, gp.t, scale=20)  # 16 kBP nominal
        cfg1 = PreprocessConfig(n_procs=1, band_size=1000, chunk_size=1000)
        serial = serial_preprocess_time(wl, cfg1)
        speedups = {}
        for P in (2, 4, 8):
            cfg = PreprocessConfig(n_procs=P, band_size=1000, chunk_size=1000)
            speedups[P] = serial / run_preprocess(wl, cfg).total_time
        assert speedups[2] > 1.5
        assert speedups[4] > speedups[2]
        assert speedups[8] > speedups[4]
        assert speedups[8] > 0.6 * 8  # "roughly 75% of the linear case"

    def test_large_blocking_starves_processors(self):
        """Fig. 18's 16K/4K-blocking case: only 4 bands -> 8 procs idle."""
        gp = genome_pair(800, 800, n_regions=0, rng=36)
        wl = ScaledWorkload(gp.s, gp.t, scale=20)  # 16 kBP
        fine = PreprocessConfig(n_procs=8, band_size=1000, chunk_size=1000)
        coarse = PreprocessConfig(n_procs=8, band_size=4000, chunk_size=4000)
        t_fine = run_preprocess(wl, fine).total_time
        t_coarse = run_preprocess(wl, coarse).total_time
        assert t_coarse > 1.5 * t_fine

    def test_equal_scheme_sequential_penalty(self):
        """Fig. 19: 'equal' bands ~20% slower sequentially at 40/80 kBP."""
        gp = genome_pair(800, 800, n_regions=0, rng=37)
        wl = ScaledWorkload(gp.s, gp.t, scale=100)  # 80 kBP nominal
        even = serial_preprocess_time(wl, PreprocessConfig(n_procs=1, band_scheme="equal"))
        fixed = serial_preprocess_time(wl, PreprocessConfig(n_procs=1, band_scheme="fixed", band_size=1000))
        assert even == pytest.approx(fixed * 1.2, rel=0.02)

    def test_deterministic(self):
        gp = genome_pair(300, 300, n_regions=0, rng=38)
        wl = ScaledWorkload(gp.s, gp.t)
        cfg = PreprocessConfig(n_procs=4, band_size=80, chunk_size=80)
        a = run_preprocess(wl, cfg)
        b = run_preprocess(wl, cfg)
        assert a.total_time == b.total_time
        assert np.array_equal(a.extras["result_matrix"], b.extras["result_matrix"])
