"""Strategy-name unification and the explicit phase-2 skip reason.

The paper's names (``heuristic``, ``heuristic_block``, ``pre_process``) and
the mp backends' names (``wavefront``, ``blocked``) must be interchangeable
everywhere a strategy is named, and a scaled pipeline must *say* that phase
2 was skipped instead of silently aligning nothing.
"""

from __future__ import annotations

import pytest

from repro.seq import genome_pair
from repro.strategies import (
    MP_BACKENDS,
    STRATEGIES,
    STRATEGY_ALIASES,
    ScaledWorkload,
    canonical_strategy,
    run_phase1,
    run_pipeline,
)
from repro.strategies.runner import _mp_backend


@pytest.fixture(scope="module")
def pair():
    gp = genome_pair(
        600, 600, n_regions=1, region_length=80, mutation_rate=0.02, rng=41
    )
    return gp.s, gp.t


class TestCanonicalStrategy:
    def test_paper_names_are_fixed_points(self):
        for name in STRATEGIES:
            assert canonical_strategy(name) == name

    def test_every_alias_resolves_to_a_paper_name(self):
        for alias, paper in STRATEGY_ALIASES.items():
            assert canonical_strategy(alias) == paper
            assert paper in STRATEGIES

    def test_unknown_name_rejected_with_the_full_vocabulary(self):
        with pytest.raises(ValueError, match="heuristic_block"):
            canonical_strategy("diagonal")


class TestAliasesAcceptedEverywhere:
    def test_run_phase1_same_result_under_both_names(self, pair):
        s, t = pair
        workload = ScaledWorkload(s, t)
        paper = run_phase1(workload, "heuristic")
        alias = run_phase1(workload, "wavefront")
        assert paper.name == alias.name == "heuristic"
        assert paper.alignments == alias.alignments
        assert paper.total_time == alias.total_time

    def test_run_pipeline_accepts_mp_names(self, pair):
        s, t = pair
        result = run_pipeline(s, t, strategy="blocked", n_procs=4)
        assert result.phase1.name == "heuristic_block"

    def test_mp_backend_accepts_both_vocabularies(self):
        assert _mp_backend("wavefront") == "wavefront"
        assert _mp_backend("heuristic") == "wavefront"
        assert _mp_backend("heuristic_block") == "blocked"
        assert _mp_backend("blocked") == "blocked"

    def test_pre_process_has_no_real_backend(self):
        with pytest.raises(ValueError, match="no real-parallel backend"):
            _mp_backend("pre_process")
        with pytest.raises(ValueError, match="no real-parallel backend"):
            _mp_backend("preprocess")
        assert "pre_process" not in MP_BACKENDS


class TestPhase2SkipReason:
    def test_scaled_pipeline_records_why_phase2_was_skipped(self, pair):
        s, t = pair
        result = run_pipeline(s, t, strategy="heuristic_block", scale=4)
        assert result.phase2_skipped_reason is not None
        assert "scale=4" in result.phase2_skipped_reason
        assert result.records == []

    def test_unscaled_pipeline_has_no_skip_reason(self, pair):
        s, t = pair
        result = run_pipeline(s, t, strategy="heuristic_block", scale=1)
        assert result.phase2_skipped_reason is None
