"""The faithful distributed Section 4.1 engine: bit-identical to sequential."""

import pytest

from repro.core import HeuristicParams, heuristic_local_alignments
from repro.seq import decode, genome_pair
from repro.strategies.wavefront_exact import (
    ExactWavefrontConfig,
    exact_wavefront_alignments,
)


class TestExactWavefront:
    @pytest.mark.parametrize("n_procs", [1, 2, 3, 4, 7])
    def test_identical_to_sequential(self, n_procs):
        """Any processor count produces the sequential algorithm's queue."""
        gp = genome_pair(320, 320, n_regions=2, region_length=50, mutation_rate=0.02,
                         rng=101, min_separation=60)
        sequential = heuristic_local_alignments(decode(gp.s), decode(gp.t))
        distributed = exact_wavefront_alignments(
            gp.s, gp.t, ExactWavefrontConfig(n_procs=n_procs)
        )
        assert distributed == sequential

    def test_identical_with_custom_params(self):
        gp = genome_pair(250, 250, n_regions=1, region_length=60, mutation_rate=0.0,
                         rng=102, min_separation=0)
        params = HeuristicParams(open_delta=8, close_delta=8, min_score=15)
        sequential = heuristic_local_alignments(decode(gp.s), decode(gp.t), params)
        distributed = exact_wavefront_alignments(
            gp.s, gp.t, ExactWavefrontConfig(n_procs=3, params=params)
        )
        assert distributed == sequential

    def test_region_straddling_border_exact(self):
        """Metadata crossing the border keeps candidate state intact."""
        gp = genome_pair(200, 200, n_regions=0, rng=103)
        s, t = gp.s.copy(), gp.t.copy()
        frag = genome_pair(60, 60, n_regions=0, rng=104).s
        s[70:130] = frag
        t[70:130] = frag  # straddles the 100-column border of 2 procs
        sequential = heuristic_local_alignments(decode(s), decode(t))
        distributed = exact_wavefront_alignments(s, t, ExactWavefrontConfig(n_procs=2))
        assert distributed == sequential
        assert distributed, "the planted region must be found"

    def test_narrow_input_rejected(self):
        gp = genome_pair(10, 10, n_regions=0, rng=105)
        with pytest.raises(ValueError):
            exact_wavefront_alignments(gp.s, gp.t, ExactWavefrontConfig(n_procs=16))

    def test_empty_queue_on_noise(self):
        gp = genome_pair(150, 150, n_regions=0, rng=106)
        assert exact_wavefront_alignments(gp.s, gp.t, ExactWavefrontConfig(n_procs=2)) == (
            heuristic_local_alignments(decode(gp.s), decode(gp.t))
        )
