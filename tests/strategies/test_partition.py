import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strategies import (
    balanced_band_size,
    band_heights,
    bounds_from_heights,
    chunk_widths,
    column_partition,
    explicit_tiling,
    split_even,
    tiling_from_multiplier,
)


class TestSplitEven:
    def test_exact_division(self):
        assert split_even(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        assert split_even(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_parts_than_items(self):
        parts = split_even(2, 4)
        assert parts == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_even(5, 0)
        with pytest.raises(ValueError):
            split_even(-1, 2)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_cover_exactly_and_balanced(self, total, parts):
        slices = split_even(total, parts)
        assert len(slices) == parts
        assert slices[0][0] == 0 and slices[-1][1] == total
        for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
            assert a1 == b0
        sizes = [hi - lo for lo, hi in slices]
        assert max(sizes) - min(sizes) <= 1


class TestColumnPartition:
    def test_paper_example(self):
        # Fig. 8: N columns over P processors, N/P each
        parts = column_partition(1000, 4)
        assert all(hi - lo == 250 for lo, hi in parts)


class TestTiling:
    def test_multiplier_counts(self):
        # "a 3 x 5 blocking multiplier for 8 processors divides the matrix
        # into 40 bands (5 x 8), each one containing 24 blocks (3 x 8)"
        t = tiling_from_multiplier(50_000, 50_000, 8, (3, 5))
        assert t.n_bands == 40
        assert t.n_blocks == 24

    def test_5x5_table3(self):
        t = tiling_from_multiplier(50_000, 50_000, 8, (5, 5))
        assert t.n_bands == 40 and t.n_blocks == 40

    def test_band_owner_round_robin(self):
        t = tiling_from_multiplier(100, 100, 4, (1, 2))
        assert [t.band_owner(b, 4) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_small_matrix_clamps(self):
        t = tiling_from_multiplier(3, 3, 8, (5, 5))
        assert t.n_bands == 3 and t.n_blocks == 3

    def test_explicit(self):
        t = explicit_tiling(100, 200, 10, 20)
        assert t.n_bands == 10 and t.n_blocks == 20
        assert t.band_height(0) == 10 and t.block_width(0) == 10

    def test_explicit_invalid(self):
        with pytest.raises(ValueError):
            explicit_tiling(10, 10, 0, 5)

    def test_multiplier_invalid(self):
        with pytest.raises(ValueError):
            tiling_from_multiplier(10, 10, 2, (0, 1))


class TestBalancedBandSize:
    def test_paper_equations(self):
        # ssize=16384, bsize=1000, 8 nodes: bands=17, bandsproc=3,
        # down=ceil(16384/24)=683, up=ceil(16384/16)=1024; 1024 nearer 1000
        assert balanced_band_size(16_384, 1000, 8) == 1024

    def test_single_band_per_proc(self):
        assert balanced_band_size(800, 1000, 8) == 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_band_size(0, 10, 2)

    @given(st.integers(1, 100_000), st.integers(1, 10_000), st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_all_nodes_equal_band_count(self, ssize, bsize, nodes):
        size = balanced_band_size(ssize, bsize, nodes)
        n_bands = -(-ssize // size)
        # every node processes the same number of bands (possibly the last
        # band is partial)
        assert n_bands <= -(-(-(-ssize // bsize)) // nodes) * nodes


class TestBandHeights:
    def test_fixed(self):
        assert band_heights("fixed", 2500, 1000, 4) == [1000, 1000, 500]

    def test_equal(self):
        assert band_heights("equal", 1000, 123, 4) == [250, 250, 250, 250]

    def test_equal_one_node_is_whole_sequence(self):
        assert band_heights("equal", 80_000, 1000, 1) == [80_000]

    def test_balanced_covers(self):
        heights = band_heights("balanced", 16_384, 1000, 8)
        assert sum(heights) == 16_384

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            band_heights("mystery", 100, 10, 2)

    @given(
        st.sampled_from(["fixed", "equal", "balanced"]),
        st.integers(1, 50_000),
        st.integers(1, 5_000),
        st.integers(1, 16),
    )
    @settings(max_examples=100, deadline=None)
    def test_heights_cover_sequence(self, scheme, ssize, bsize, nodes):
        heights = band_heights(scheme, ssize, bsize, nodes)
        assert sum(heights) == ssize
        assert all(h > 0 for h in heights)


class TestBoundsFromHeights:
    def test_roundtrip(self):
        bounds = bounds_from_heights([3, 4, 5])
        assert bounds == ((0, 3), (3, 7), (7, 12))


class TestChunkWidths:
    def test_fixed(self):
        assert chunk_widths(10, 4) == [4, 4, 2]

    def test_arithmetic(self):
        assert chunk_widths(30, 4, "arithmetic") == [4, 8, 12, 6]

    def test_geometric(self):
        assert chunk_widths(30, 2, "geometric", factor=2.0) == [2, 4, 8, 16]

    def test_unknown_growth(self):
        with pytest.raises(ValueError):
            chunk_widths(10, 2, "fibonacci")

    @given(st.integers(1, 10_000), st.integers(1, 500), st.sampled_from(["fixed", "arithmetic", "geometric"]))
    @settings(max_examples=100, deadline=None)
    def test_cover_columns(self, n, base, growth):
        widths = chunk_widths(n, base, growth)
        assert sum(widths) == n
        assert all(w > 0 for w in widths)
