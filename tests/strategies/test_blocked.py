import numpy as np
import pytest

from repro.core import similarity_matrix
from repro.core.kernels import SCORE_DTYPE
from repro.core.scoring import DEFAULT_SCORING
from repro.seq import genome_pair
from repro.strategies import (
    BlockedConfig,
    ScaledWorkload,
    compute_tile,
    explicit_tiling,
    run_blocked,
    serial_blocked_time,
)


class TestComputeTile:
    def test_tiles_reassemble_full_matrix(self):
        """Band x block decomposition reproduces the full DP matrix."""
        gp = genome_pair(50, 70, n_regions=0, rng=20)
        H = similarity_matrix(gp.s, gp.t, local=True)
        tiling = explicit_tiling(50, 70, 4, 5)
        rebuilt = np.zeros_like(H)
        for band, (r0, r1) in enumerate(tiling.row_bounds):
            for block, (c0, c1) in enumerate(tiling.col_bounds):
                top = rebuilt[r0][c0 : c1 + 1].copy()
                left_col = rebuilt[r0 + 1 : r1 + 1, c0].copy()
                tile = compute_tile(
                    top, left_col, gp.s[r0:r1], gp.t[c0:c1], DEFAULT_SCORING
                )
                rebuilt[r0 + 1 : r1 + 1, c0 + 1 : c1 + 1] = tile[:, 1:]
        assert np.array_equal(rebuilt, H)

    def test_empty_tile(self):
        tile = compute_tile(
            np.zeros(1, dtype=SCORE_DTYPE),
            np.zeros(0, dtype=SCORE_DTYPE),
            np.array([], dtype=np.uint8),
            np.array([], dtype=np.uint8),
            DEFAULT_SCORING,
        )
        assert tile.shape == (0, 1)


class TestBlockedConfig:
    def test_partial_explicit_rejected(self):
        with pytest.raises(ValueError):
            BlockedConfig(n_bands=10)

    def test_invalid_procs(self):
        with pytest.raises(ValueError):
            BlockedConfig(n_procs=0)


class TestRunBlocked:
    def test_finds_planted_regions(self):
        gp = genome_pair(1200, 1200, n_regions=2, region_length=80, mutation_rate=0.0, rng=21)
        wl = ScaledWorkload(gp.s, gp.t)
        res = run_blocked(wl, BlockedConfig(n_procs=4, multiplier=(2, 2)))
        strong = [a for a in res.alignments if a.score >= 50]
        assert len(strong) >= 2
        for planted in gp.regions:
            assert any(
                abs(a.s_end - planted.s_end) <= 20 and abs(a.t_end - planted.t_end) <= 20
                for a in strong
            )

    def test_region_spanning_band_boundary(self):
        gp = genome_pair(400, 400, n_regions=0, rng=22)
        s, t = gp.s.copy(), gp.t.copy()
        frag = genome_pair(80, 80, n_regions=0, rng=23).s
        s[160:240] = frag  # straddles the 200-row band line at 2x(1,1)
        t[100:180] = frag
        wl = ScaledWorkload(s, t)
        res = run_blocked(wl, BlockedConfig(n_procs=2, multiplier=(1, 1)))
        assert res.alignments
        assert res.alignments[0].score >= 45

    def test_blocking_multiplier_reduces_time(self):
        """Table 3's effect: finer blocking beats 1x1."""
        gp = genome_pair(1000, 1000, n_regions=0, rng=24)
        wl = ScaledWorkload(gp.s, gp.t, scale=20)
        t11 = run_blocked(wl, BlockedConfig(n_procs=8, multiplier=(1, 1))).total_time
        t55 = run_blocked(wl, BlockedConfig(n_procs=8, multiplier=(5, 5))).total_time
        assert t55 < t11

    def test_blocked_beats_wavefront(self):
        """Fig. 13: the blocked strategy dominates the non-blocked one."""
        from repro.strategies import WavefrontConfig, run_wavefront

        gp = genome_pair(1500, 1500, n_regions=0, rng=25)
        wl = ScaledWorkload(gp.s, gp.t, scale=10)
        blocked = run_blocked(wl, BlockedConfig(n_procs=8)).total_time
        wavefront = run_wavefront(wl, WavefrontConfig(n_procs=8)).total_time
        assert blocked < 0.6 * wavefront

    def test_good_speedup_for_large_sequences(self):
        gp = genome_pair(2000, 2000, n_regions=0, rng=26)
        wl = ScaledWorkload(gp.s, gp.t, scale=25)  # 50 kBP nominal
        res = run_blocked(wl, BlockedConfig(n_procs=8, n_bands=40, n_blocks=25))
        su = res.speedup_against(serial_blocked_time(wl))
        assert su > 6.0

    def test_explicit_tiling_reported(self):
        gp = genome_pair(200, 200, n_regions=0, rng=27)
        res = run_blocked(
            ScaledWorkload(gp.s, gp.t), BlockedConfig(n_procs=2, n_bands=10, n_blocks=5)
        )
        assert res.extras["n_bands"] == 10 and res.extras["n_blocks"] == 5

    def test_deterministic(self):
        gp = genome_pair(400, 400, n_regions=1, region_length=60, rng=28)
        wl = ScaledWorkload(gp.s, gp.t)
        a = run_blocked(wl, BlockedConfig(n_procs=4, multiplier=(2, 2)))
        b = run_blocked(wl, BlockedConfig(n_procs=4, multiplier=(2, 2)))
        assert a.total_time == b.total_time and a.alignments == b.alignments

    def test_single_proc(self):
        gp = genome_pair(300, 300, n_regions=1, region_length=50, mutation_rate=0.0, rng=29)
        res = run_blocked(ScaledWorkload(gp.s, gp.t), BlockedConfig(n_procs=1, multiplier=(2, 2)))
        assert res.alignments
        assert res.alignments[0].score >= 40

    def test_more_bands_than_needed(self):
        gp = genome_pair(40, 40, n_regions=0, rng=30)
        res = run_blocked(
            ScaledWorkload(gp.s, gp.t), BlockedConfig(n_procs=8, multiplier=(5, 5))
        )
        assert res.total_time > 0
