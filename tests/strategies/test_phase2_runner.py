import pytest

from repro.core import LocalAlignment
from repro.core.global_align import SubsequenceAlignment
from repro.seq import genome_pair, mutate, random_dna
from repro.strategies import (
    Phase2Config,
    run_phase2,
    run_pipeline,
    serial_phase2_time,
)


def make_regions(n, size=120, seq_len=4000, rng_seed=0):
    import numpy as np

    rng = np.random.default_rng(rng_seed)
    out = []
    for _ in range(n):
        length = int(rng.integers(size // 2, size * 2))
        s0 = int(rng.integers(0, seq_len - length))
        t0 = int(rng.integers(0, seq_len - length))
        out.append(LocalAlignment(10, s0, s0 + length, t0, t0 + length))
    return out


class TestRunPhase2:
    def setup_method(self):
        self.s = random_dna(4000, rng=40)
        self.t = mutate(self.s, 0.05, rng=41)[:4000]

    def test_all_pairs_aligned(self):
        regions = make_regions(20)
        res = run_phase2(self.s, self.t, regions, Phase2Config(n_procs=4))
        records = res.extras["records"]
        assert len(records) == 20
        assert all(isinstance(r, SubsequenceAlignment) for r in records)

    def test_records_sorted_by_size(self):
        regions = make_regions(10)
        res = run_phase2(self.s, self.t, regions, Phase2Config(n_procs=2))
        sizes = [r.source.size for r in res.extras["records"]]
        assert sizes == sorted(sizes, reverse=True)

    def test_score_only_mode_matches_render_mode(self):
        regions = make_regions(8)
        fast = run_phase2(self.s, self.t, regions, Phase2Config(n_procs=2, render=False))
        full = run_phase2(self.s, self.t, regions, Phase2Config(n_procs=2, render=True))
        fast_scores = [score for _, score in fast.extras["records"]]
        full_scores = [r.similarity for r in full.extras["records"]]
        assert fast_scores == full_scores

    def test_no_locks_used(self):
        """Section 4.4: 'no locks or condition variables are used'."""
        regions = make_regions(12)
        res = run_phase2(self.s, self.t, regions, Phase2Config(n_procs=4))
        for node in res.stats.nodes:
            assert node.lock_acquires == 0
            assert node.cv_waits == 0 and node.cv_signals == 0

    def test_speedup_scales(self):
        regions = make_regions(200, size=200)
        serial = serial_phase2_time(regions)
        res = run_phase2(self.s, self.t, regions, Phase2Config(n_procs=8, render=False))
        assert serial / res.total_time > 5.0

    def test_empty_queue(self):
        res = run_phase2(self.s, self.t, [], Phase2Config(n_procs=2))
        assert res.extras["records"] == []

    def test_identical_subsequences_score_maximal(self):
        region = LocalAlignment(10, 100, 200, 100, 200)
        res = run_phase2(self.s, self.s, [region], Phase2Config(n_procs=1))
        rec = res.extras["records"][0]
        assert rec.similarity == 100
        assert rec.alignment.identity == 1.0


class TestRunPipeline:
    def test_end_to_end_recovers_regions(self):
        gp = genome_pair(1500, 1500, n_regions=2, region_length=90, mutation_rate=0.03, rng=42)
        result = run_pipeline(gp.s, gp.t, strategy="heuristic_block", n_procs=4)
        assert len(result.records) >= 2
        best = result.best_records(2)
        assert all(r.alignment.identity > 0.7 for r in best)

    def test_wavefront_strategy_selectable(self):
        gp = genome_pair(600, 600, n_regions=1, region_length=60, mutation_rate=0.0, rng=43)
        result = run_pipeline(gp.s, gp.t, strategy="heuristic", n_procs=2)
        assert result.phase1.name == "heuristic"
        assert result.total_time > 0

    def test_preprocess_strategy_has_no_phase2_input(self):
        gp = genome_pair(400, 400, n_regions=1, region_length=60, rng=44)
        result = run_pipeline(gp.s, gp.t, strategy="pre_process", n_procs=2)
        assert result.records == []
        assert "result_matrix" in result.phase1.extras

    def test_unknown_strategy(self):
        gp = genome_pair(100, 100, n_regions=0, rng=45)
        with pytest.raises(ValueError):
            run_pipeline(gp.s, gp.t, strategy="magic")

    def test_fig16_render(self):
        gp = genome_pair(800, 800, n_regions=1, region_length=80, mutation_rate=0.05, rng=46)
        result = run_pipeline(gp.s, gp.t, strategy="heuristic_block", n_procs=2)
        assert result.best_records(1)
        text = result.best_records(1)[0].render()
        assert "similarity:" in text and "align_s:" in text
