import pytest

from repro.strategies.tuning import (
    DEFAULT_CANDIDATES,
    TuningResult,
    miniature_workload,
    tune_blocking,
)


class TestMiniature:
    def test_scale_preserves_nominal(self):
        wl = miniature_workload(50_000, 50_000, actual=1000)
        assert wl.nominal_rows == 50_000
        assert wl.nominal_cols == 50_000
        assert wl.rows == 1000

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            miniature_workload(50_000, 30_000)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            miniature_workload(0, 100)


class TestTuneBlocking:
    def test_beats_1x1_at_paper_size(self):
        result = tune_blocking(50_000, 50_000, n_procs=8, actual=500)
        assert result.best != (1, 1)
        assert result.gain_over((1, 1)) > 1.5  # Table 3's headline effect

    def test_fine_blocking_wins_at_50k(self):
        """The paper found 5x5 best among the squares; the tuner must land
        on a comparably fine decomposition."""
        squares = ((1, 1), (2, 2), (3, 3), (4, 4), (5, 5))
        result = tune_blocking(50_000, 50_000, n_procs=8, candidates=squares, actual=500)
        assert result.best in ((4, 4), (5, 5))

    def test_ranking_sorted(self):
        result = tune_blocking(20_000, 20_000, n_procs=4, actual=500,
                               candidates=((1, 1), (3, 3), (5, 5)))
        times = [t for _, t in result.ranking()]
        assert times == sorted(times)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            tune_blocking(10_000, 10_000, candidates=())

    def test_deterministic(self):
        a = tune_blocking(20_000, 20_000, n_procs=4, actual=400,
                          candidates=((1, 1), (5, 5)))
        b = tune_blocking(20_000, 20_000, n_procs=4, actual=400,
                          candidates=((1, 1), (5, 5)))
        assert a.best == b.best and a.times == b.times
