"""Scale invariance: the virtual clock depends on nominal size only.

The whole benchmark methodology rests on this: a 50 kBP-nominal run must
report (nearly) the same virtual times whether the kernels chew 5 000 or
2 500 actual base pairs.  Residual differences come only from pipeline
fill/drain quantisation, bounded in DESIGN.md by O(scale * P / n_nominal).
"""

import pytest

from repro.seq import genome_pair
from repro.strategies import (
    BlockedConfig,
    PreprocessConfig,
    ScaledWorkload,
    WavefrontConfig,
    run_blocked,
    run_preprocess,
    run_wavefront,
)


def workloads(nominal: int, pairs: tuple[tuple[int, int], ...]):
    out = []
    for actual, scale in pairs:
        assert actual * scale == nominal
        gp = genome_pair(actual, actual, n_regions=0, rng=777)
        out.append(ScaledWorkload(gp.s, gp.t, scale=scale))
    return out


class TestScaleInvariance:
    def test_wavefront_times_scale_invariant(self):
        a, b = workloads(16_000, ((2000, 8), (1000, 16)))
        t_a = run_wavefront(a, WavefrontConfig(n_procs=4)).total_time
        t_b = run_wavefront(b, WavefrontConfig(n_procs=4)).total_time
        assert t_a == pytest.approx(t_b, rel=0.02)

    def test_blocked_times_scale_invariant(self):
        a, b = workloads(16_000, ((2000, 8), (1000, 16)))
        t_a = run_blocked(a, BlockedConfig(n_procs=4, multiplier=(3, 3))).total_time
        t_b = run_blocked(b, BlockedConfig(n_procs=4, multiplier=(3, 3))).total_time
        assert t_a == pytest.approx(t_b, rel=0.02)

    def test_preprocess_times_scale_invariant(self):
        a, b = workloads(16_000, ((2000, 8), (1000, 16)))
        cfg = dict(n_procs=4, band_size=1000, chunk_size=1000)
        t_a = run_preprocess(a, PreprocessConfig(**cfg)).total_time
        t_b = run_preprocess(b, PreprocessConfig(**cfg)).total_time
        assert t_a == pytest.approx(t_b, rel=0.02)

    def test_unscaled_run_approximates_scaled(self):
        """scale=1 ground truth vs a 4x-scaled stand-in of the same nominal."""
        gp_full = genome_pair(2000, 2000, n_regions=0, rng=778)
        gp_small = genome_pair(500, 500, n_regions=0, rng=779)
        t_full = run_blocked(
            ScaledWorkload(gp_full.s, gp_full.t),
            BlockedConfig(n_procs=4, multiplier=(2, 2)),
        ).total_time
        t_scaled = run_blocked(
            ScaledWorkload(gp_small.s, gp_small.t, scale=4),
            BlockedConfig(n_procs=4, multiplier=(2, 2)),
        ).total_time
        assert t_scaled == pytest.approx(t_full, rel=0.03)
