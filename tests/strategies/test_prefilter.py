"""Exact score-bound pruning: admissibility fuzz and ranking parity.

The prefilter is only allowed to exist because it provably changes nothing:
every ceiling in :data:`repro.core.bounds.ADMISSIBLE_BOUNDS` must
over-estimate the true Smith-Waterman score for *every* sequence (the
admissibility fuzz -- the test BOUND001 points at), and the pruned search
must return bitwise-identical rankings to the sequential reference across
all backends, kernels and k values (the exactness fuzz).  The adversarial
databases plant duplicates, ties, sequences whose best score sits exactly
at the threshold, and composition-skewed decoys -- the cases where an
off-by-one in the strict ``<`` prune or a one-short ceiling would show.
"""

import numpy as np
import pytest

from repro.core.bounds import (
    ADMISSIBLE_BOUNDS,
    DEFAULT_KMER_K,
    QueryBoundContext,
    TieredFilter,
)
from repro.core.scoring import TRANSITION_TRANSVERSION, MatrixScoring, Scoring
from repro.plan import (
    InlineExecutor,
    SimExecutor,
    plan_search_buckets,
    search_blob,
)
from repro.seq import biased_dna, mutate, pack_database, random_dna
from repro.seq.db import pack_subset
from repro.strategies import (
    AUTO_MIN_SEQUENCES,
    SearchConfig,
    resolve_prefilter,
    search_db,
    search_db_sequential,
)
from repro.strategies.search import sequential_best_score

SCORINGS = [
    Scoring(match=1, mismatch=-1, gap=-2),
    Scoring(match=1, mismatch=-3, gap=-4),
    Scoring(match=2, mismatch=0, gap=-1),  # non-negative mismatch: no kmer tier
    TRANSITION_TRANSVERSION,
    MatrixScoring(
        gap=-8,
        matrix=(
            (5, -4, -4, -4),
            (-4, 5, -4, -4),
            (-4, -4, 5, -4),
            (-4, -4, -4, 5),
        ),
    ),
]


def adversarial_db(rng: np.random.Generator, query: np.ndarray):
    """A database built to break sloppy pruning.

    Homologs (mutated query substrings) that must rank on top, exact
    duplicates of one homolog (tie at the same score -- the strict ``<``
    prune must keep both), verbatim query copies (ceiling == score ==
    threshold once k fills), composition-skewed decoys, zero/one-length
    degenerates, and uniform background.
    """
    records = []
    span = max(8, len(query) // 2)
    hom = mutate(query[: span], 0.05, rng)
    records.append(("hom_a", hom))
    records.append(("hom_dup1", hom.copy()))
    records.append(("hom_dup2", hom.copy()))
    records.append(("query_copy", query.copy()))
    records.append(("query_prefix", query[: span].copy()))
    records.append(("empty", np.zeros(0, dtype=np.uint8)))
    records.append(("single", random_dna(1, rng)))
    records.append(("at_skew", biased_dna(span, 0.05, rng)))
    records.append(("gc_skew", biased_dna(span, 0.95, rng)))
    for i in range(20):
        records.append((f"bg{i}", random_dna(int(rng.integers(5, 2 * span)), rng)))
    return records


class TestAdmissibility:
    """Every registered bound over-estimates every true score (BOUND001's test)."""

    @pytest.mark.parametrize("scoring", SCORINGS, ids=lambda s: repr(s)[:30])
    @pytest.mark.parametrize("tier", sorted(ADMISSIBLE_BOUNDS))
    def test_ceiling_dominates_true_score(self, tier, scoring):
        rng = np.random.default_rng(sum(map(ord, tier)))
        query = random_dna(60, rng)
        records = adversarial_db(rng, query)
        packed = pack_database(records, max_lanes=8)
        ctx = QueryBoundContext(query, scoring, DEFAULT_KMER_K)
        bound = ADMISSIBLE_BOUNDS[tier]
        for bucket in packed.buckets:
            ceilings = bound(ctx, bucket.codes, bucket.lengths)
            if ceilings is None:  # tier not applicable under this scoring
                continue
            for lane in range(bucket.lanes):
                width = int(bucket.lengths[lane])
                true = sequential_best_score(
                    query, bucket.codes[lane, :width], scoring
                )
                assert ceilings[lane] >= true, (
                    f"{tier} under-estimated lane {lane}: "
                    f"ceiling {ceilings[lane]} < true score {true}"
                )

    def test_combined_ceiling_is_admissible_too(self):
        rng = np.random.default_rng(7)
        scoring = Scoring(match=1, mismatch=-3, gap=-4)
        query = random_dna(80, rng)
        packed = pack_database(adversarial_db(rng, query), max_lanes=8)
        tiered = TieredFilter(query, scoring)
        for bucket in packed.buckets:
            combined, _, _ = tiered.ceilings(bucket.codes, bucket.lengths)
            for lane in range(bucket.lanes):
                width = int(bucket.lengths[lane])
                true = sequential_best_score(query, bucket.codes[lane, :width], scoring)
                assert combined[lane] >= true


class TestResolvePrefilter:
    def test_modes(self):
        assert resolve_prefilter("off", 10**6) == ()
        assert resolve_prefilter("composition", 1) == ("length", "composition")
        assert resolve_prefilter("kmer", 1) == ("length", "composition", "kmer")

    def test_auto_gates_on_database_size(self):
        assert resolve_prefilter("auto", AUTO_MIN_SEQUENCES - 1) == ()
        assert resolve_prefilter("auto", AUTO_MIN_SEQUENCES) == (
            "length",
            "composition",
            "kmer",
        )

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="prefilter"):
            resolve_prefilter("always", 100)


class TestExactness:
    """Pruned rankings are bitwise-identical to the sequential reference."""

    @pytest.mark.parametrize("kernel", ["classic", "striped"])
    @pytest.mark.parametrize("top_k", [1, 10, 10**6])
    def test_inline_matches_sequential(self, top_k, kernel):
        rng = np.random.default_rng(top_k % 101 + (kernel == "striped"))
        query = random_dna(90, rng)
        db = adversarial_db(rng, query)
        scoring = Scoring(match=1, mismatch=-3, gap=-4)
        base = SearchConfig(top_k=top_k, max_lanes=8, scoring=scoring, kernel=kernel)
        expected = search_db_sequential(query, db, base).scores()
        for mode in ("off", "composition", "kmer"):
            config = SearchConfig(
                top_k=top_k, max_lanes=8, scoring=scoring, kernel=kernel,
                prefilter=mode,
            )
            assert search_db(query, db, config).scores() == expected, mode

    @pytest.mark.parametrize("scoring", SCORINGS, ids=lambda s: repr(s)[:30])
    def test_inline_matches_sequential_across_scorings(self, scoring):
        rng = np.random.default_rng(SCORINGS.index(scoring) + 100)
        query = random_dna(70, rng)
        db = adversarial_db(rng, query)
        config = SearchConfig(top_k=5, max_lanes=8, scoring=scoring, prefilter="kmer")
        expected = search_db_sequential(query, db, config).scores()
        assert search_db(query, db, config).scores() == expected

    def test_random_fuzz_rounds(self):
        scoring = Scoring(match=1, mismatch=-3, gap=-4)
        for seed in range(6):
            rng = np.random.default_rng(seed)
            query = random_dna(int(rng.integers(20, 120)), rng)
            db = adversarial_db(rng, query)
            config = SearchConfig(top_k=7, max_lanes=8, scoring=scoring, prefilter="kmer")
            assert (
                search_db(query, db, config).scores()
                == search_db_sequential(query, db, config).scores()
            ), f"seed {seed}"

    @pytest.mark.parametrize("kernel", ["classic", "striped"])
    def test_pool_matches_sequential(self, kernel):
        from repro.parallel import AlignmentWorkerPool

        rng = np.random.default_rng(31)
        query = random_dna(90, rng)
        db = adversarial_db(rng, query)
        scoring = Scoring(match=1, mismatch=-3, gap=-4)
        config = SearchConfig(
            top_k=5, max_lanes=8, scoring=scoring, kernel=kernel, prefilter="kmer"
        )
        expected = search_db_sequential(query, db, config).scores()
        with AlignmentWorkerPool(n_workers=2) as pool:
            result = search_db(query, db, config, pool=pool)
        assert result.scores() == expected
        assert result.backend == "pool"

    @pytest.mark.parametrize("kernel", ["classic", "striped"])
    def test_sim_matches_sequential(self, kernel):
        rng = np.random.default_rng(53)
        query = random_dna(90, rng)
        db = adversarial_db(rng, query)
        scoring = Scoring(match=1, mismatch=-3, gap=-4)
        config = SearchConfig(top_k=5, scoring=scoring, kernel=kernel)
        packed = pack_database(db, max_lanes=8)
        graph = plan_search_buckets(
            packed, len(query), top_k=5, kernel=kernel,
            prefilter=("length", "composition", "kmer"),
            seed_count=6,  # smaller than the database so filter tiles exist
        )
        executed = SimExecutor().run(graph, query, search_blob(packed), scoring)
        expected = search_db_sequential(query, packed, config).scores()
        assert [(s, i) for s, i in executed.hits] == expected
        assert executed.extras["sim"]["total_time"] > 0
        assert "filter" in executed.extras["sim"]["stage_seconds"]

    def test_inline_prunes_and_accounts(self):
        """On a prunable workload the filter actually fires and the result
        carries the accounting (not just a no-op that trivially matches)."""
        rng = np.random.default_rng(11)
        scoring = Scoring(match=1, mismatch=-3, gap=-4)
        query = random_dna(300, rng)
        db = [(f"bg{i}", random_dna(int(rng.integers(40, 200)), rng)) for i in range(120)]
        db += [(f"hom{i}", mutate(query[:150], 0.05, rng)) for i in range(5)]
        config = SearchConfig(top_k=5, max_lanes=16, scoring=scoring, prefilter="kmer")
        result = search_db(query, db, config)
        sequential = search_db_sequential(query, db, config)
        assert result.scores() == sequential.scores()
        assert result.prefilter == "length,composition,kmer"
        assert result.sequences_pruned > 0
        assert result.cells_skipped > 0
        assert 0 < result.pruned_fraction < 1

    def test_prefilter_off_reports_off(self):
        rng = np.random.default_rng(3)
        query = random_dna(50, rng)
        db = [("a", random_dna(40, rng)), ("b", random_dna(60, rng))]
        result = search_db(query, db, SearchConfig(top_k=2, prefilter="off"))
        assert result.prefilter == "off"
        assert result.sequences_pruned == 0
        assert result.cells_skipped == 0


class TestPoolRejectsStagedGraphs:
    def test_run_search_plan_refuses_prefilter_graphs(self):
        from repro.parallel.pool import AlignmentWorkerPool

        rng = np.random.default_rng(5)
        packed = pack_database(
            [("a", random_dna(30, rng)), ("b", random_dna(40, rng))], max_lanes=4
        )
        graph = plan_search_buckets(
            packed, 20, top_k=2, prefilter=("length", "composition")
        )
        with AlignmentWorkerPool(n_workers=1) as pool:
            with pytest.raises(ValueError, match="pooled_pruned_search"):
                pool.run_search_plan(
                    graph, random_dna(20, rng), search_blob(packed)
                )


class TestPackSubset:
    def test_round_trip_preserves_indices_and_codes(self):
        rng = np.random.default_rng(17)
        records = [(f"s{i}", random_dna(int(rng.integers(5, 90)), rng)) for i in range(30)]
        packed = pack_database(records, max_lanes=8)
        wanted = np.array([3, 7, 11, 25, 28], dtype=np.int64)
        subset = pack_subset(packed, wanted, max_lanes=4, max_waste=0.5)
        seen = {}
        for bucket in subset.buckets:
            for lane in range(bucket.lanes):
                idx = int(bucket.indices[lane])
                width = int(bucket.lengths[lane])
                seen[idx] = bucket.codes[lane, :width]
        assert sorted(seen) == list(wanted)
        for idx in wanted:
            np.testing.assert_array_equal(seen[int(idx)], records[int(idx)][1])
        # Names/lengths stay the full original arrays, so original indices
        # keep resolving.
        assert subset.names == packed.names
        assert subset.lengths is packed.lengths

    def test_missing_index_raises(self):
        rng = np.random.default_rng(19)
        packed = pack_database([("a", random_dna(10, rng))], max_lanes=4)
        with pytest.raises(ValueError, match="not in the database"):
            pack_subset(packed, np.array([5], dtype=np.int64), 4, 0.5)

    def test_empty_subset(self):
        rng = np.random.default_rng(23)
        packed = pack_database([("a", random_dna(10, rng))], max_lanes=4)
        subset = pack_subset(packed, np.zeros(0, dtype=np.int64), 4, 0.5)
        assert subset.buckets == []
