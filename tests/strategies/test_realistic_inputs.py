"""The pipeline on realistic (biased, repeat-bearing) synthetic genomes."""

import numpy as np

from repro.seq import biased_dna, mito_like, mutate
from repro.strategies import BlockedConfig, RegionSettings, ScaledWorkload, run_blocked, run_pipeline


class TestBiasedBackgrounds:
    def test_region_recovery_with_at_rich_background(self):
        """Composition bias must not break region recovery at the default
        thresholds (chance matches rise, but not past threshold 35)."""
        rng = np.random.default_rng(70)
        s = biased_dna(2000, gc_content=0.30, rng=rng)
        t = biased_dna(2000, gc_content=0.30, rng=rng)
        fragment = biased_dna(120, gc_content=0.30, rng=rng)
        s[700:820] = fragment
        copy = mutate(fragment, 0.04, rng=rng, indel_fraction=0.0)  # length-safe
        t[1100:1220] = copy
        res = run_blocked(
            ScaledWorkload(s, t), BlockedConfig(n_procs=4, regions=RegionSettings(threshold=35))
        )
        assert res.alignments
        best = max(res.alignments, key=lambda a: a.score)
        assert abs(best.s_end - 820) <= 25
        assert abs(best.t_end - 1220) <= 25

    def test_background_noise_stays_below_threshold(self):
        rng = np.random.default_rng(71)
        s = biased_dna(2000, gc_content=0.30, rng=rng)
        t = biased_dna(2000, gc_content=0.30, rng=rng)
        res = run_blocked(
            ScaledWorkload(s, t), BlockedConfig(n_procs=4, regions=RegionSettings(threshold=35))
        )
        assert res.alignments == []


class TestRepeatFamilies:
    def test_self_comparison_reports_repeats_once_each(self):
        """Repeat copies create off-diagonal similar regions; the queue's
        dedup keeps them as distinct entries without exploding."""
        seq = mito_like(2500, repeat_families=2, repeat_unit=80,
                        copies_per_family=3, rng=72)
        result = run_pipeline(seq, seq, strategy="heuristic_block", n_procs=4)
        off_diag = [
            a for a in result.phase1.alignments
            if abs(a.s_start - a.t_start) > 150
        ]
        assert off_diag, "repeat copies must appear off the main diagonal"
        # bounded: no duplicate explosion from symmetric rediscovery
        assert len(result.phase1.alignments) < 80

    def test_phase2_renders_repeat_alignments(self):
        seq = mito_like(2000, repeat_families=1, repeat_unit=100,
                        copies_per_family=2, rng=73)
        result = run_pipeline(seq, seq, strategy="heuristic_block", n_procs=2)
        records = result.best_records(3)
        assert records
        assert all(r.alignment.identity > 0.5 for r in records)
