import pytest

from repro.sim import DEFAULT_COST_MODEL, CostModel


class TestCalibration:
    """The constants must stay anchored to the paper's measurements."""

    def test_heuristic_cell_time_matches_table1_serial(self):
        # Table 1: 50k serial = 3461 s => 1.38 us/cell; we calibrate 1.30
        implied = 3461.0 / (50_000 * 50_000)
        assert DEFAULT_COST_MODEL.heuristic_cell_time == pytest.approx(implied, rel=0.15)

    def test_blocked_cell_time_matches_table4_serial(self):
        implied = 2620.64 / (50_000 * 50_000)
        assert DEFAULT_COST_MODEL.blocked_cell_time == pytest.approx(implied, rel=0.10)

    def test_preprocess_cell_is_much_leaner(self):
        # Section 5's kernel only counts hits; ~8x cheaper than the
        # candidate-tracking kernel
        ratio = DEFAULT_COST_MODEL.heuristic_cell_time / DEFAULT_COST_MODEL.preprocess_cell_time
        assert 5 < ratio < 12

    def test_network_is_100mbps(self):
        assert DEFAULT_COST_MODEL.network.bandwidth == 12.5e6

    def test_wavefront_fixed_exchange_cost_near_10ms(self):
        """The per-row overhead implied by Table 1 at 8 processors."""
        cm = DEFAULT_COST_MODEL
        consumer = cm.cv_wait_time() + cm.page_fault_time() + cm.cv_signal_time()
        producer = (
            cm.lock_acquire_time()
            + cm.lock_release_time(0)
            + cm.cv_signal_time()
            + cm.cv_wait_time()
        )
        assert 0.006 < consumer + producer < 0.014


class TestDerivedCosts:
    def test_message_time_monotone_in_size(self):
        cm = DEFAULT_COST_MODEL
        assert cm.message_time(10_000) > cm.message_time(100) > 0

    def test_lock_release_with_no_dirty_data_is_cheap(self):
        cm = DEFAULT_COST_MODEL
        assert cm.lock_release_time(0) < cm.lock_release_time(100_000)

    def test_page_fault_includes_page_transfer(self):
        cm = DEFAULT_COST_MODEL
        assert cm.page_fault_time() > cm.page_bytes / cm.network.bandwidth

    def test_barrier_time_scales_with_nodes_and_diffs(self):
        cm = DEFAULT_COST_MODEL
        assert cm.barrier_time(0, 8) > cm.barrier_time(0, 2) - 1e-9
        assert cm.barrier_time(1_000_000, 8) > cm.barrier_time(0, 8)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.page_bytes = 1  # type: ignore[misc]

    def test_custom_model(self):
        cm = CostModel(heuristic_cell_time=1e-9)
        assert cm.heuristic_cell_time == 1e-9
