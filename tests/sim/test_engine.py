import pytest

from repro.sim import Delay, SimulationError, Simulator, TimeBreakdown, compute


class TestDelay:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1)

    def test_compute_helper_category(self):
        d = compute(2.0)
        assert d.duration == 2.0 and d.category == "computation"


class TestSimulator:
    def test_single_process_advances_clock(self):
        sim = Simulator()

        def body():
            yield Delay(5.0)
            yield Delay(2.5)

        p = sim.spawn(body())
        sim.run()
        assert sim.now == 7.5
        assert p.done.triggered

    def test_plain_number_yield(self):
        sim = Simulator()

        def body():
            yield 3.0

        sim.spawn(body())
        assert sim.run() == 3.0

    def test_bad_yield_raises(self):
        sim = Simulator()

        def body():
            yield "nope"

        sim.spawn(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_result(self):
        sim = Simulator()

        def body():
            yield Delay(1.0)
            return 42

        p = sim.spawn(body())
        sim.run()
        assert p.result == 42

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def worker(name, step):
            for _ in range(3):
                yield Delay(step)
                log.append((sim.now, name))

        sim.spawn(worker("a", 1.0))
        sim.spawn(worker("b", 1.5))
        sim.run()
        # At the 3.0 tie, "b" scheduled its wakeup (at t=1.5) before "a"
        # scheduled its own (at t=2.0), so "b" resumes first: FIFO within a
        # timestamp follows scheduling order.
        assert log == [
            (1.0, "a"),
            (1.5, "b"),
            (2.0, "a"),
            (3.0, "b"),
            (3.0, "a"),
            (4.5, "b"),
        ]

    def test_deterministic_tie_order_is_spawn_order(self):
        sim = Simulator()
        log = []

        def w(name):
            yield Delay(1.0)
            log.append(name)

        for name in "abc":
            sim.spawn(w(name))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_run_until_horizon(self):
        sim = Simulator()

        def body():
            yield Delay(10.0)

        sim.spawn(body())
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0

    def test_run_all_detects_deadlock(self):
        sim = Simulator()

        def body():
            yield sim.event()  # never triggered

        p = sim.spawn(body())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_all([p])

    def test_breakdown_charged_for_labelled_delays(self):
        sim = Simulator()
        bd = TimeBreakdown()

        def body():
            yield compute(2.0)
            yield Delay(1.0)  # unlabelled: not charged

        sim.spawn(body(), breakdown=bd)
        sim.run()
        assert bd.computation == 2.0
        assert bd.total == 2.0


class TestEvent:
    def test_wait_and_trigger(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        def signaler():
            yield Delay(4.0)
            ev.trigger("hello")

        sim.spawn(waiter())
        sim.spawn(signaler())
        sim.run()
        assert got == [(4.0, "hello")]

    def test_wait_on_already_triggered(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger(7)
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        sim.spawn(waiter())
        sim.run()
        assert got == [7]

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        ev = sim.event()
        woke = []

        def waiter(k):
            yield ev
            woke.append(k)

        for k in range(3):
            sim.spawn(waiter(k))

        def signaler():
            yield Delay(1.0)
            ev.trigger()

        sim.spawn(signaler())
        sim.run()
        assert sorted(woke) == [0, 1, 2]
