"""Property-based tests of the simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Delay, SimBarrier, SimCondition, SimLock, Simulator


class TestEngineProperties:
    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_clock_is_sum_of_delays_single_process(self, delays):
        sim = Simulator()

        def body():
            for d in delays:
                yield Delay(d)

        sim.spawn(body())
        assert sim.run() == sum(delays)

    @given(
        st.lists(
            st.lists(st.floats(0.0, 5.0), min_size=1, max_size=10),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_clock_is_max_over_processes(self, schedules):
        sim = Simulator()

        def body(delays):
            for d in delays:
                yield Delay(d)

        for delays in schedules:
            sim.spawn(body(delays))
        assert sim.run() == max(sum(d) for d in schedules)

    @given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=10), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_runs_are_deterministic(self, delays, extra_procs):
        def run_once():
            sim = Simulator()
            log = []

            def body(k):
                for d in delays:
                    yield Delay(d + k * 0.1)
                log.append((k, sim.now))

            for k in range(extra_procs + 1):
                sim.spawn(body(k))
            sim.run()
            return log

        assert run_once() == run_once()


class TestLockProperties:
    @given(
        st.lists(st.tuples(st.floats(0.0, 2.0), st.floats(0.01, 2.0)), min_size=1, max_size=8)
    )
    @settings(max_examples=50, deadline=None)
    def test_mutual_exclusion_under_random_schedules(self, jobs):
        """Critical sections never overlap, whatever the arrival times."""
        sim = Simulator()
        lock = SimLock(sim)
        intervals = []

        def body(arrive, hold):
            yield Delay(arrive)
            yield from lock.acquire()
            start = sim.now
            yield Delay(hold)
            intervals.append((start, sim.now))
            lock.release()

        procs = [sim.spawn(body(a, h)) for a, h in jobs]
        sim.run_all(procs)
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-12

    @given(st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_condition_permits_conserved(self, signals, waiters):
        """Exactly min(signals, waiters) waiters wake; permits bank the rest."""
        sim = Simulator()
        cv = SimCondition(sim)
        woke = []

        def waiter(k):
            yield from cv.wait()
            woke.append(k)

        def signaler():
            for _ in range(signals):
                yield Delay(1.0)
                cv.signal()

        for k in range(waiters):
            sim.spawn(waiter(k))
        sim.spawn(signaler())
        sim.run()
        assert len(woke) == min(signals, waiters)
        assert cv.permits == max(0, signals - waiters)


class TestBarrierProperties:
    @given(st.integers(1, 8), st.lists(st.floats(0.0, 5.0), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_nobody_passes_before_the_last(self, rounds, arrivals):
        sim = Simulator()
        barrier = SimBarrier(sim, len(arrivals))
        passed = []

        def body(delay):
            for r in range(rounds):
                yield Delay(delay)
                yield from barrier.arrive()
                passed.append((r, sim.now))

        procs = [sim.spawn(body(d)) for d in arrivals]
        sim.run_all(procs)
        # within each round, all passage times are equal
        for r in range(rounds):
            times = {t for rr, t in passed if rr == r}
            assert len(times) == 1
