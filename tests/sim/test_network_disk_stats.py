import pytest

from repro.sim import (
    DiskParams,
    Network,
    NetworkParams,
    NfsDisk,
    NodeStats,
    TimeBreakdown,
)


class TestNetwork:
    def test_message_time_components(self):
        net = Network(NetworkParams(latency=1e-3, bandwidth=1e6))
        assert net.message_time(0) == pytest.approx(1e-3)
        assert net.message_time(1_000_000) == pytest.approx(1e-3 + 1.0)

    def test_round_trip(self):
        net = Network(NetworkParams(latency=1e-3, bandwidth=1e6))
        assert net.round_trip_time(1000, 1000) == pytest.approx(2e-3 + 2e-3)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Network().message_time(-1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NetworkParams(latency=-1)
        with pytest.raises(ValueError):
            NetworkParams(bandwidth=0)

    def test_default_is_100mbps(self):
        assert NetworkParams().bandwidth == 12.5e6


class TestNfsDisk:
    def test_cached_write_is_fast(self):
        disk = NfsDisk(DiskParams(cache_bytes=10_000_000, cache_write_bandwidth=1e8, nfs_bandwidth=1e6))
        t = disk.write_time(0.0, 1_000_000)
        assert t == pytest.approx(0.01)  # memcpy only

    def test_overflowing_write_blocks_on_nfs(self):
        disk = NfsDisk(DiskParams(cache_bytes=1_000_000, cache_write_bandwidth=1e9, nfs_bandwidth=1e6))
        t = disk.write_time(0.0, 2_000_000)
        # 1 MB overflow drains at 1 MB/s
        assert t == pytest.approx(1.0 + 0.002, rel=0.02)

    def test_cache_drains_over_time(self):
        disk = NfsDisk(DiskParams(cache_bytes=1_000_000, cache_write_bandwidth=1e9, nfs_bandwidth=1e6))
        disk.write_time(0.0, 1_000_000)
        assert disk.buffered_bytes > 0
        # after 2 virtual seconds the cache has fully drained
        t = disk.write_time(2.0, 500_000)
        assert t < 0.01

    def test_flush_time(self):
        disk = NfsDisk(DiskParams(cache_bytes=10_000_000, cache_write_bandwidth=1e9, nfs_bandwidth=1e6))
        disk.write_time(0.0, 3_000_000)
        assert disk.flush_time(0.01) == pytest.approx(3.0, rel=0.01)
        assert disk.buffered_bytes == 0

    def test_total_written_tracked(self):
        disk = NfsDisk()
        disk.write_time(0.0, 100)
        disk.write_time(1.0, 200)
        assert disk.total_written == 300

    def test_time_backwards_rejected(self):
        disk = NfsDisk()
        disk.write_time(5.0, 10)
        with pytest.raises(ValueError):
            disk.write_time(1.0, 10)

    def test_negative_write_rejected(self):
        with pytest.raises(ValueError):
            NfsDisk().write_time(0.0, -1)


class TestTimeBreakdown:
    def test_add_and_total(self):
        bd = TimeBreakdown()
        bd.add("computation", 3.0)
        bd.add("lock_cv", 1.0)
        bd.add("lock+cv", 1.0)  # paper spelling accepted
        assert bd.lock_cv == 2.0
        assert bd.total == 5.0

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            TimeBreakdown().add("naptime", 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("barrier", -1.0)

    def test_fractions_sum_to_one(self):
        bd = TimeBreakdown(computation=6.0, communication=2.0, lock_cv=1.0, barrier=1.0)
        fr = bd.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["computation"] == pytest.approx(0.6)

    def test_fractions_fold_idle_into_lock_cv(self):
        bd = TimeBreakdown(computation=1.0, idle=1.0)
        assert bd.fractions()["lock_cv"] == pytest.approx(0.5)

    def test_empty_fractions(self):
        assert set(TimeBreakdown().fractions().values()) == {0.0}

    def test_merge(self):
        a = TimeBreakdown(computation=1.0)
        a.merge(TimeBreakdown(computation=2.0, barrier=1.0))
        assert a.computation == 3.0 and a.barrier == 1.0


class TestNodeStats:
    def test_record_message(self):
        st = NodeStats(node_id=0)
        st.record_message(100)
        st.record_message(50)
        assert st.messages_sent == 2 and st.bytes_sent == 150
