import json

import pytest

from repro.sim import Delay, Simulator, compute
from repro.sim.trace import Timeline


class TestTimeline:
    def test_record_and_span(self):
        tl = Timeline()
        tl.record("p0", "computation", 0.0, 2.0)
        tl.record("p1", "lock_cv", 1.0, 3.0)
        assert len(tl) == 2
        assert tl.span == 4.0

    def test_zero_duration_skipped(self):
        tl = Timeline()
        tl.record("p0", "x", 0.0, 0.0)
        assert len(tl) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Timeline().record("p", "x", 0.0, -1.0)

    def test_busy_time_and_utilization(self):
        tl = Timeline()
        tl.record("p0", "computation", 0.0, 3.0)
        tl.record("p0", "lock_cv", 3.0, 1.0)
        assert tl.busy_time("p0") == 4.0
        assert tl.busy_time("p0", "computation") == 3.0
        assert tl.utilization("p0") == pytest.approx(0.75)

    def test_empty_utilization(self):
        assert Timeline().utilization("p0") == 0.0


class TestEngineIntegration:
    def test_delays_recorded(self):
        tl = Timeline()
        sim = Simulator(timeline=tl)

        def body():
            yield compute(2.0)
            yield Delay(1.0)  # unlabelled: recorded as "delay"

        sim.spawn(body(), name="worker")
        sim.run()
        assert [s.category for s in tl.slices] == ["computation", "delay"]
        assert tl.slices[0].process == "worker"
        assert tl.slices[1].start == 2.0

    def test_chrome_trace_export(self, tmp_path):
        tl = Timeline()
        sim = Simulator(timeline=tl)

        def body():
            yield compute(0.5)

        sim.spawn(body(), name="n0")
        sim.spawn(body(), name="n1")
        sim.run()
        path = tmp_path / "trace.json"
        tl.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == 2
        assert {e["ph"] for e in events} == {"X"}
        assert {e["pid"] for e in events} == {1, 2}
        assert events[0]["dur"] == pytest.approx(0.5e6)

    def test_pipeline_fill_visible(self):
        """The wave-front fill shows up as staggered first computations."""
        from repro.dsm import JiaJia

        tl = Timeline()
        sim = Simulator(timeline=tl)
        dsm = JiaJia(sim, 3)

        def node(p):
            if p > 0:
                yield from dsm.waitcv(p, p - 1)
            yield from dsm.compute(p, 1.0)
            if p < 2:
                yield from dsm.setcv(p, p)

        procs = [sim.spawn(node(p), name=f"n{p}") for p in range(3)]
        sim.run_all(procs)
        starts = {
            s.process: s.start for s in tl.slices if s.category == "computation"
        }
        assert starts["n0"] < starts["n1"] < starts["n2"]
