import pytest

from repro.sim import Delay, SimBarrier, SimCondition, SimLock, SimulationError, Simulator


class TestSimLock:
    def test_uncontended_acquire_is_instant(self):
        sim = Simulator()
        lock = SimLock(sim)
        times = []

        def body():
            yield from lock.acquire()
            times.append(sim.now)
            lock.release()

        sim.spawn(body())
        sim.run()
        assert times == [0.0]

    def test_mutual_exclusion_and_fifo(self):
        sim = Simulator()
        lock = SimLock(sim)
        order = []

        def body(name, hold):
            yield from lock.acquire()
            order.append(("in", name, sim.now))
            yield Delay(hold)
            order.append(("out", name, sim.now))
            lock.release()

        sim.spawn(body("a", 2.0))
        sim.spawn(body("b", 1.0))
        sim.spawn(body("c", 1.0))
        sim.run()
        assert order == [
            ("in", "a", 0.0),
            ("out", "a", 2.0),
            ("in", "b", 2.0),
            ("out", "b", 3.0),
            ("in", "c", 3.0),
            ("out", "c", 4.0),
        ]

    def test_release_unlocked_raises(self):
        sim = Simulator()
        lock = SimLock(sim)
        with pytest.raises(SimulationError):
            lock.release()


class TestSimCondition:
    def test_signal_before_wait_is_remembered(self):
        sim = Simulator()
        cv = SimCondition(sim)
        cv.signal()
        done = []

        def body():
            yield from cv.wait()
            done.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert done == [0.0]

    def test_wait_blocks_until_signal(self):
        sim = Simulator()
        cv = SimCondition(sim)
        done = []

        def waiter():
            yield from cv.wait()
            done.append(sim.now)

        def signaler():
            yield Delay(3.0)
            cv.signal()

        sim.spawn(waiter())
        sim.spawn(signaler())
        sim.run()
        assert done == [3.0]

    def test_each_signal_wakes_one(self):
        sim = Simulator()
        cv = SimCondition(sim)
        done = []

        def waiter(k):
            yield from cv.wait()
            done.append(k)

        for k in range(3):
            sim.spawn(waiter(k))

        def signaler():
            yield Delay(1.0)
            cv.signal()
            yield Delay(1.0)
            cv.signal()

        sim.spawn(signaler())
        sim.run()
        assert sorted(done) == [0, 1]  # third waiter still blocked

    def test_permits_accumulate(self):
        sim = Simulator()
        cv = SimCondition(sim)
        cv.signal()
        cv.signal()
        assert cv.permits == 2
        done = []

        def body():
            yield from cv.wait()
            yield from cv.wait()
            done.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert done == [0.0]


class TestSimBarrier:
    def test_all_wait_for_last(self):
        sim = Simulator()
        barrier = SimBarrier(sim, 3)
        times = []

        def body(delay):
            yield Delay(delay)
            yield from barrier.arrive()
            times.append(sim.now)

        for d in (1.0, 5.0, 3.0):
            sim.spawn(body(d))
        sim.run()
        assert times == [5.0, 5.0, 5.0]

    def test_reusable(self):
        sim = Simulator()
        barrier = SimBarrier(sim, 2)
        times = []

        def body(delay):
            yield from barrier.arrive()
            yield Delay(delay)
            yield from barrier.arrive()
            times.append(sim.now)

        sim.spawn(body(1.0))
        sim.spawn(body(4.0))
        sim.run()
        assert times == [4.0, 4.0]

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            SimBarrier(Simulator(), 0)
