"""Integration smoke tests: the shipped examples must run clean.

Each example is executed in-process (``runpy``) with stdout captured; the
slowest walkthroughs are exercised by the benchmark suite instead.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "score = 6 (paper Fig. 1 reports 6)" in out
        assert "Section 6" in out

    def test_exact_memory(self, capsys):
        out = run_example("exact_memory.py", capsys)
        assert "score 6" in out or "alignment of score 6" in out
        assert "30" in out  # the ~30% table

    def test_advanced_alignment(self, capsys):
        out = run_example("advanced_alignment.py", capsys)
        assert "lambda for the paper's scheme: 1.0986" in out
        assert "affine CIGAR:" in out
        assert "E = " in out

    @pytest.mark.slow
    def test_cluster_simulation(self, capsys):
        out = run_example("cluster_simulation.py", capsys)
        assert "strategy 1" in out and "strategy 3" in out
        assert "speed-up" in out

    @pytest.mark.slow
    def test_blast_comparison(self, capsys):
        out = run_example("blast_comparison.py", capsys)
        assert "GenomeDSM found" in out
        assert "Alignment 1" in out

    @pytest.mark.slow
    def test_real_multiprocessing(self, capsys):
        out = run_example("real_multiprocessing.py", capsys)
        assert "simulated backend found the same queue: True" in out

    @pytest.mark.slow
    def test_genome_comparison(self, capsys):
        out = run_example("genome_comparison.py", capsys)
        assert "dot plot" in out
        assert "similarity:" in out
