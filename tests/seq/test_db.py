"""Database ingestion: streaming FASTA and the greedy length-bucket packer."""

import numpy as np
import pytest

from repro.core import PAD_CODE
from repro.seq import (
    pack_database,
    random_dna,
    read_fasta,
    stream_fasta,
    synthetic_database,
    write_fasta,
)


@pytest.fixture
def db(rng):
    return synthetic_database(n=60, min_length=20, max_length=200, rng=rng)


class TestStreamFasta:
    def test_round_trips_write_fasta(self, tmp_path, db):
        path = tmp_path / "db.fa"
        write_fasta(path, db)
        streamed = list(stream_fasta(path))
        assert [r.name for r in streamed] == [r.name for r in db]
        for got, want in zip(streamed, db):
            np.testing.assert_array_equal(got.codes, want.codes)

    def test_matches_read_fasta(self, tmp_path, db):
        path = tmp_path / "db.fa"
        write_fasta(path, db)
        assert [r.name for r in stream_fasta(path)] == [r.name for r in read_fasta(path)]

    def test_is_lazy(self, tmp_path, db):
        path = tmp_path / "db.fa"
        write_fasta(path, db)
        gen = stream_fasta(path)
        assert next(gen).name == db[0].name  # only the head was parsed
        gen.close()


class TestPackDatabase:
    def test_indices_partition_the_database(self, db):
        packed = pack_database(db, max_lanes=16)
        seen = sorted(i for b in packed.buckets for i in b.indices.tolist())
        assert seen == list(range(len(db)))
        assert packed.n_sequences == len(db)

    def test_lanes_in_database_order_within_bucket(self, db):
        packed = pack_database(db, max_lanes=16)
        for bucket in packed.buckets:
            assert bucket.indices.tolist() == sorted(bucket.indices.tolist())

    def test_lane_contents_match_records(self, db):
        packed = pack_database(db, max_lanes=16)
        for bucket in packed.buckets:
            for lane, index in enumerate(bucket.indices.tolist()):
                length = int(bucket.lengths[lane])
                assert length == len(db[index].codes)
                np.testing.assert_array_equal(
                    bucket.codes[lane, :length], db[index].codes
                )
                assert (bucket.codes[lane, length:] == PAD_CODE).all()

    def test_max_lanes_cap(self, db):
        packed = pack_database(db, max_lanes=7)
        assert all(b.lanes <= 7 for b in packed.buckets)

    def test_max_waste_invariant(self, db):
        packed = pack_database(db, max_lanes=512, max_waste=0.1)
        for bucket in packed.buckets:
            assert int(bucket.lengths.min()) >= (1.0 - 0.1) * bucket.width

    def test_accepts_name_codes_tuples(self, rng):
        packed = pack_database([("a", random_dna(10, rng)), ("b", random_dna(5, rng))])
        assert packed.names == ["a", "b"]
        assert packed.lengths.tolist() == [10, 5]

    def test_small_window_still_packs_everything(self, db):
        packed = pack_database(db, max_lanes=16, window=8)
        seen = sorted(i for b in packed.buckets for i in b.indices.tolist())
        assert seen == list(range(len(db)))

    def test_empty_database(self):
        packed = pack_database([])
        assert packed.buckets == []
        assert packed.n_sequences == 0
        assert packed.total_residues == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            pack_database([], max_lanes=0)
        with pytest.raises(ValueError):
            pack_database([], max_waste=1.0)

    def test_padded_slots_accounting(self, db):
        packed = pack_database(db, max_lanes=16)
        assert packed.padded_slots >= packed.total_residues
        assert packed.total_residues == sum(len(r.codes) for r in db)


class TestSyntheticDatabase:
    def test_deterministic_for_seed(self):
        a = synthetic_database(n=5, rng=3)
        b = synthetic_database(n=5, rng=3)
        for x, y in zip(a, b):
            assert x.name == y.name
            np.testing.assert_array_equal(x.codes, y.codes)

    def test_lengths_in_range(self):
        for r in synthetic_database(n=20, min_length=10, max_length=12, rng=1):
            assert 10 <= len(r.codes) <= 12

    def test_names_sort_in_database_order(self):
        names = [r.name for r in synthetic_database(n=11, rng=0)]
        assert names == sorted(names)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_database(n=-1)
        with pytest.raises(ValueError):
            synthetic_database(min_length=10, max_length=5)
