import pytest

from repro.seq import dotplot


class TestDotplot:
    def test_counts_regions(self):
        regions = [(0, 10, 0, 10), (50, 60, 50, 60)]
        plot = dotplot(regions, 100, 100, rows=10, cols=10)
        assert plot.n_regions == 2

    def test_midpoint_bucketing(self):
        plot = dotplot([(0, 10, 90, 100)], 100, 100, rows=10, cols=10)
        # s midpoint 5 -> row 0; t midpoint 95 -> col 9
        assert plot.grid[0, 9] == 1
        assert plot.grid.sum() == 1

    def test_out_of_range_clamped(self):
        plot = dotplot([(95, 120, 95, 130)], 100, 100, rows=10, cols=10)
        assert plot.grid[9, 9] == 1

    def test_empty(self):
        plot = dotplot([], 100, 100)
        assert plot.n_regions == 0

    def test_invalid_grid_raises(self):
        with pytest.raises(ValueError):
            dotplot([], 100, 100, rows=0)

    def test_invalid_lengths_raise(self):
        with pytest.raises(ValueError):
            dotplot([], 0, 100)

    def test_render_dimensions(self):
        plot = dotplot([(0, 10, 0, 10)], 100, 100, rows=5, cols=8)
        lines = plot.render().split("\n")
        assert len(lines) == 7  # 5 rows + 2 borders
        assert all(len(line) == 10 for line in lines)

    def test_render_shows_density(self):
        regions = [(0, 10, 0, 10)] * 5
        plot = dotplot(regions, 100, 100, rows=4, cols=4)
        art = plot.render()
        assert "#" in art

    def test_diagonal_pattern(self):
        regions = [(i, i + 10, i, i + 10) for i in range(0, 90, 10)]
        plot = dotplot(regions, 100, 100, rows=10, cols=10)
        # all regions on the main diagonal
        assert all(plot.grid[k, k] >= 1 for k in range(1, 9))


class TestZoom:
    def _regions(self):
        return [(0, 10, 0, 10), (45, 55, 45, 55), (90, 100, 90, 100)]

    def test_zoom_keeps_only_window_regions(self):
        from repro.seq import zoom

        plot = zoom(self._regions(), (40, 60), (40, 60), rows=10, cols=10)
        assert plot.n_regions == 1

    def test_zoom_clips_straddling_regions(self):
        from repro.seq import zoom

        plot = zoom([(35, 45, 35, 45)], (40, 60), (40, 60), rows=10, cols=10)
        # clipped to (40,45)x(40,45): midpoint in the first bucket
        assert plot.grid[1, 1] == 1

    def test_zoom_coordinates_are_window_relative(self):
        from repro.seq import zoom

        plot = zoom([(45, 55, 45, 55)], (40, 60), (40, 60), rows=10, cols=10)
        assert plot.grid[5, 5] == 1

    def test_empty_window_rejected(self):
        import pytest

        from repro.seq import zoom

        with pytest.raises(ValueError):
            zoom([], (10, 10), (0, 5))
