"""The general Alphabet abstraction (beyond the DNA fast path)."""

import numpy as np
import pytest

from repro.seq import DNA_ALPHABET, Alphabet
from repro.seq.alphabet import AlphabetError


class TestAlphabetConstruction:
    def test_duplicate_letters_rejected(self):
        with pytest.raises(ValueError):
            Alphabet("AAB")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Alphabet("")

    def test_size(self):
        assert Alphabet("XYZ").size == 3


class TestEncodeDecode:
    def test_roundtrip(self):
        rna = Alphabet("ACGU", "RNA")
        assert rna.decode(rna.encode("GUAC")) == "GUAC"

    def test_case_insensitive_encode(self):
        assert Alphabet("XY").encode("xyXY").tolist() == [0, 1, 0, 1]

    def test_invalid_char(self):
        with pytest.raises(AlphabetError, match="RNA"):
            Alphabet("ACGU", "RNA").encode("ACGT")

    def test_array_passthrough_validated(self):
        ab = Alphabet("AB")
        good = np.array([0, 1, 0], dtype=np.uint8)
        assert ab.encode(good) is good
        with pytest.raises(AlphabetError):
            ab.encode(np.array([2], dtype=np.uint8))
        with pytest.raises(AlphabetError):
            ab.encode(np.array([0], dtype=np.int64))

    def test_decode_range_checked(self):
        with pytest.raises(AlphabetError):
            Alphabet("AB").decode(np.array([5], dtype=np.uint8))

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            Alphabet("AB").encode(3.14)


class TestDnaAlphabetInstance:
    def test_matches_module_functions(self):
        from repro.seq import decode, encode

        text = "GATTACA"
        assert np.array_equal(DNA_ALPHABET.encode(text), encode(text))
        assert DNA_ALPHABET.decode(encode(text)) == decode(encode(text))

    def test_custom_alphabet_through_full_matrix(self):
        """A binary alphabet with its own scoring runs the core unchanged."""
        from repro.core import MatrixScoring, Scoring, smith_waterman

        binary = Alphabet("01", "binary")
        scoring = Scoring(match=2, mismatch=-3, gap=-4)
        r = smith_waterman("0110", "0110", scoring, alphabet=binary)
        assert r.alignment.score == 8
        assert r.alignment.aligned_s == "0110"
