import io

import numpy as np
import pytest

from repro.seq import (
    FastaError,
    FastaRecord,
    encode,
    parse_fasta,
    random_dna,
    read_fasta,
    write_fasta,
)


SAMPLE = """\
>seq1 first record
ACGTACGT
ACGT
>seq2
TTTT
"""


class TestParse:
    def test_two_records(self):
        recs = list(parse_fasta(io.StringIO(SAMPLE)))
        assert [r.name for r in recs] == ["seq1 first record", "seq2"]
        assert recs[0].text == "ACGTACGTACGT"
        assert recs[1].text == "TTTT"

    def test_blank_lines_ignored(self):
        recs = list(parse_fasta(io.StringIO(">a\nAC\n\nGT\n")))
        assert recs[0].text == "ACGT"

    def test_ambiguity_codes_dropped(self):
        recs = list(parse_fasta(io.StringIO(">a\nACNNGT\n")))
        assert recs[0].text == "ACGT"

    def test_data_before_header_raises(self):
        with pytest.raises(FastaError):
            list(parse_fasta(io.StringIO("ACGT\n>a\n")))

    def test_empty_input(self):
        assert list(parse_fasta(io.StringIO(""))) == []

    def test_record_len(self):
        recs = list(parse_fasta(io.StringIO(SAMPLE)))
        assert len(recs[0]) == 12


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "test.fa"
        seq = random_dna(500, rng=0)
        write_fasta(path, [("chr1", seq), FastaRecord("chr2", encode("ACGT"))])
        recs = read_fasta(path)
        assert [r.name for r in recs] == ["chr1", "chr2"]
        assert np.array_equal(recs[0].codes, seq)
        assert recs[1].text == "ACGT"

    def test_wrapping(self, tmp_path):
        path = tmp_path / "wrap.fa"
        write_fasta(path, [("x", random_dna(100, rng=1))], width=10)
        lines = path.read_text().strip().split("\n")
        assert lines[0] == ">x"
        assert all(len(line) == 10 for line in lines[1:])

    def test_write_to_stream(self):
        buf = io.StringIO()
        write_fasta(buf, [("y", encode("GATTACA"))])
        assert buf.getvalue() == ">y\nGATTACA\n"

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "test.fa.gz"
        seq = random_dna(300, rng=9)
        write_fasta(path, [("gz", seq)])
        # actually compressed
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        (rec,) = read_fasta(path)
        assert rec.name == "gz"
        assert np.array_equal(rec.codes, seq)

    def test_gzip_detected_without_suffix(self, tmp_path):
        import gzip

        path = tmp_path / "oddly_named.fasta"
        with gzip.open(path, "wt", encoding="ascii") as fh:
            fh.write(">x\nACGT\n")
        (rec,) = read_fasta(path)
        assert rec.text == "ACGT"
