import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seq import (
    ALPHABET_SIZE,
    DNA,
    AlphabetError,
    complement,
    decode,
    encode,
    reverse_complement,
)


class TestEncode:
    def test_basic_order(self):
        assert list(encode("ACGT")) == [0, 1, 2, 3]

    def test_lowercase_accepted(self):
        assert list(encode("acgt")) == [0, 1, 2, 3]

    def test_empty(self):
        assert encode("").size == 0

    def test_bytes_input(self):
        assert list(encode(b"GATT")) == [2, 0, 3, 3]

    def test_ndarray_passthrough_no_copy(self):
        arr = np.array([0, 1, 2, 3], dtype=np.uint8)
        assert encode(arr) is arr

    def test_invalid_character_raises(self):
        with pytest.raises(AlphabetError, match="N"):
            encode("ACGTN")

    def test_invalid_dtype_raises(self):
        with pytest.raises(AlphabetError):
            encode(np.array([0, 1], dtype=np.int64))

    def test_out_of_range_codes_raise(self):
        with pytest.raises(AlphabetError):
            encode(np.array([0, 7], dtype=np.uint8))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode(123)

    def test_dtype_is_uint8(self):
        assert encode("ACGT").dtype == np.uint8


class TestDecode:
    def test_roundtrip_simple(self):
        assert decode(encode("GATTACA")) == "GATTACA"

    def test_empty(self):
        assert decode(np.array([], dtype=np.uint8)) == ""

    def test_rejects_out_of_range(self):
        with pytest.raises(AlphabetError):
            decode(np.array([4], dtype=np.uint8))

    @given(st.text(alphabet="ACGT", max_size=200))
    def test_roundtrip_property(self, text):
        assert decode(encode(text)) == text


class TestComplement:
    def test_complement_pairs(self):
        assert decode(complement(encode("ACGT"))) == "TGCA"

    def test_reverse_complement(self):
        assert decode(reverse_complement(encode("AACGT"))) == "ACGTT"

    @given(st.text(alphabet="ACGT", max_size=100))
    def test_reverse_complement_involution(self, text):
        codes = encode(text)
        assert decode(reverse_complement(reverse_complement(codes))) == text


def test_alphabet_constants():
    assert DNA == "ACGT"
    assert ALPHABET_SIZE == 4
