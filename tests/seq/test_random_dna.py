import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq import encode, genome_pair, mutate, random_dna


class TestRandomDna:
    def test_length(self):
        assert len(random_dna(100, rng=0)) == 100

    def test_zero_length(self):
        assert len(random_dna(0, rng=0)) == 0

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            random_dna(-1, rng=0)

    def test_codes_in_range(self):
        seq = random_dna(1000, rng=1)
        assert seq.min() >= 0 and seq.max() <= 3

    def test_deterministic_with_seed(self):
        assert np.array_equal(random_dna(50, rng=7), random_dna(50, rng=7))

    def test_roughly_uniform(self):
        seq = random_dna(40_000, rng=2)
        counts = np.bincount(seq, minlength=4)
        assert counts.min() > 0.2 * len(seq)


class TestMutate:
    def test_zero_rate_is_identity(self):
        seq = random_dna(200, rng=3)
        assert np.array_equal(mutate(seq, 0.0, rng=3), seq)

    def test_rate_one_changes_everything(self):
        seq = random_dna(300, rng=4)
        out = mutate(seq, 1.0, rng=4, indel_fraction=0.0)
        # pure substitutions to a *different* base: no position can match
        assert len(out) == len(seq)
        assert not np.any(out == seq)

    def test_rate_bounds_checked(self):
        seq = random_dna(10, rng=0)
        with pytest.raises(ValueError):
            mutate(seq, 1.5, rng=0)
        with pytest.raises(ValueError):
            mutate(seq, 0.1, rng=0, indel_fraction=-0.2)

    def test_expected_divergence(self):
        seq = random_dna(20_000, rng=5)
        out = mutate(seq, 0.1, rng=5, indel_fraction=0.0)
        frac_changed = np.mean(out != seq)
        assert 0.07 < frac_changed < 0.13

    def test_indels_change_length_sometimes(self):
        seq = random_dna(2000, rng=6)
        lengths = {len(mutate(seq, 0.2, rng=k, indel_fraction=1.0)) for k in range(5)}
        assert any(length != len(seq) for length in lengths)

    @given(st.integers(0, 2**31), st.floats(0, 1))
    @settings(max_examples=25, deadline=None)
    def test_output_codes_valid(self, seed, rate):
        seq = random_dna(64, rng=seed)
        out = mutate(seq, rate, rng=seed)
        assert out.dtype == np.uint8
        if out.size:
            assert out.max() <= 3


class TestGenomePair:
    def test_lengths(self):
        gp = genome_pair(3000, 2500, n_regions=2, region_length=100, rng=0)
        assert len(gp.s) == 3000 and len(gp.t) == 2500

    def test_no_regions(self):
        gp = genome_pair(500, n_regions=0, rng=0)
        assert gp.regions == []

    def test_regions_recorded(self):
        gp = genome_pair(5000, n_regions=3, region_length=120, rng=1)
        assert len(gp.regions) == 3

    def test_planted_fragment_identity(self):
        gp = genome_pair(4000, n_regions=2, region_length=150, mutation_rate=0.0, rng=2)
        for r in gp.regions:
            frag_s = gp.s[r.s_start : r.s_end]
            frag_t = gp.t[r.t_start : r.t_end]
            assert np.array_equal(frag_s, frag_t)
            assert r.identity == 1.0

    def test_mutated_fragment_similarity(self):
        gp = genome_pair(6000, n_regions=2, region_length=200, mutation_rate=0.05, rng=3)
        for r in gp.regions:
            assert r.identity > 0.85

    def test_regions_sorted_and_separated(self):
        gp = genome_pair(10_000, n_regions=4, region_length=100, rng=4)
        for a, b in zip(gp.regions, gp.regions[1:]):
            assert b.s_start - a.s_end >= 3 * 100  # default min_separation
            assert b.t_start - a.t_end >= 0

    def test_custom_separation(self):
        gp = genome_pair(10_000, n_regions=3, region_length=100, rng=5, min_separation=1000)
        for a, b in zip(gp.regions, gp.regions[1:]):
            assert b.s_start - a.s_end >= 1000

    def test_too_many_regions_raises(self):
        with pytest.raises(ValueError, match="do not fit"):
            genome_pair(500, n_regions=5, region_length=200, rng=0)

    def test_bad_region_length_raises(self):
        with pytest.raises(ValueError):
            genome_pair(500, n_regions=1, region_length=0, rng=0)

    def test_text_properties_roundtrip(self):
        gp = genome_pair(300, n_regions=0, rng=6)
        assert np.array_equal(encode(gp.s_text), gp.s)
        assert np.array_equal(encode(gp.t_text), gp.t)

    def test_deterministic(self):
        a = genome_pair(2000, n_regions=2, region_length=80, rng=9)
        b = genome_pair(2000, n_regions=2, region_length=80, rng=9)
        assert np.array_equal(a.s, b.s) and np.array_equal(a.t, b.t)
        assert a.regions == b.regions


class TestBiasedDna:
    def test_gc_target_hit(self):
        from repro.seq import biased_dna, composition

        seq = biased_dna(40_000, gc_content=0.35, rng=50)
        assert abs(composition(seq).gc_content - 0.35) < 0.02

    def test_extremes(self):
        from repro.seq import biased_dna, composition

        assert composition(biased_dna(1000, 0.0, rng=51)).gc_content == 0.0
        assert composition(biased_dna(1000, 1.0, rng=52)).gc_content == 1.0

    def test_validation(self):
        from repro.seq import biased_dna

        with pytest.raises(ValueError):
            biased_dna(100, gc_content=1.5)
        with pytest.raises(ValueError):
            biased_dna(-1)


class TestMitoLike:
    def test_length_and_composition(self):
        from repro.seq import composition, mito_like

        seq = mito_like(20_000, rng=53)
        assert len(seq) == 20_000
        assert abs(composition(seq).gc_content - 0.35) < 0.03

    def test_self_comparison_has_offdiagonal_regions(self):
        """Dispersed repeats make self-comparison non-trivial."""
        from repro.core import RegionConfig, find_regions
        from repro.seq import mito_like

        seq = mito_like(3000, repeat_families=2, repeat_unit=60,
                        copies_per_family=3, rng=54)
        regions = find_regions(seq, seq, RegionConfig(threshold=30))
        off_diagonal = [
            r for r in regions if abs(r.peak_i - r.peak_j) > 100
        ]
        assert off_diagonal, "repeat copies must show up off the main diagonal"

    def test_uniform_genome_has_none(self):
        from repro.core import RegionConfig, find_regions
        from repro.seq import random_dna

        a = random_dna(3000, rng=55)
        regions = find_regions(a, a, RegionConfig(threshold=30))
        assert all(abs(r.peak_i - r.peak_j) <= 100 for r in regions)

    def test_repeats_must_fit(self):
        from repro.seq import mito_like

        with pytest.raises(ValueError):
            mito_like(100, repeat_families=10, repeat_unit=40, copies_per_family=10)
