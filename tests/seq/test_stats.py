import math

import pytest
from hypothesis import given, settings

from repro.seq import genome_pair, random_dna
from repro.seq.stats import composition, kmer_spectrum, longest_shared_kmer

from _strategies import dna_text


class TestComposition:
    def test_counts(self):
        stats = composition("AACGT")
        assert stats.counts == (2, 1, 1, 1)
        assert stats.length == 5

    def test_gc_content(self):
        assert composition("GGCC").gc_content == 1.0
        assert composition("AATT").gc_content == 0.0
        assert composition("ACGT").gc_content == 0.5

    def test_entropy_uniform(self):
        assert composition("ACGT").entropy == pytest.approx(2.0)

    def test_entropy_degenerate(self):
        assert composition("AAAA").entropy == 0.0

    def test_empty(self):
        stats = composition("")
        assert stats.gc_content == 0.0 and stats.entropy == 0.0

    def test_str_summary(self):
        text = str(composition("ACGTACGT"))
        assert "8 BP" in text and "GC 50.0%" in text

    def test_random_dna_near_uniform(self):
        stats = composition(random_dna(50_000, rng=1))
        assert stats.entropy > 1.99
        assert abs(stats.gc_content - 0.5) < 0.02

    @given(dna_text(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_counts_sum_to_length(self, text):
        stats = composition(text)
        assert sum(stats.counts) == stats.length == len(text)
        assert 0 <= stats.entropy <= 2.0 + 1e-12


class TestKmerSpectrum:
    def test_simple(self):
        assert kmer_spectrum("AAAA", 2) == {"AA": 3}

    def test_distinct_kmers(self):
        spectrum = kmer_spectrum("ACGT", 2)
        assert spectrum == {"AC": 1, "CG": 1, "GT": 1}

    def test_short_sequence(self):
        assert kmer_spectrum("AC", 3) == {}

    @given(dna_text(3, 40))
    @settings(max_examples=40, deadline=None)
    def test_spectrum_counts_total(self, text):
        spectrum = kmer_spectrum(text, 3)
        assert sum(spectrum.values()) == max(0, len(text) - 2)
        for word, count in spectrum.items():
            assert len(word) == 3 and count > 0


class TestLongestSharedKmer:
    def test_identical_sequences(self):
        assert longest_shared_kmer("ACGTACGT", "ACGTACGT") == 8

    def test_disjoint(self):
        assert longest_shared_kmer("AAAA", "CCCC") == 0

    def test_known_overlap(self):
        a = "TTTTT" + "ACGTACGTAC" + "TTTTT"
        b = "GGGGG" + "ACGTACGTAC" + "GGGGG"
        assert longest_shared_kmer(a, b) >= 10

    def test_random_backgrounds_share_only_short_words(self):
        a = random_dna(2000, rng=2)
        b = random_dna(2000, rng=3)
        # ~log4(n*m) expected; anything above 20 would be suspicious
        assert longest_shared_kmer(a, b) < 20

    def test_planted_region_detected(self):
        gp = genome_pair(1000, 1000, n_regions=1, region_length=60, mutation_rate=0.0, rng=4)
        assert longest_shared_kmer(gp.s, gp.t) == 31  # capped at the packing limit
