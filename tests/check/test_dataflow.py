"""The lane-cap prover: extraction, obligations, and regime coverage.

The acceptance bar for the semantic tier is that ``prove_lane_limits``
*statically* re-derives the striped kernel's saturation geometry from the
shipped source and discharges it for every scoring regime the system can
reach -- and that breaking the geometry (widening the cap, misplacing the
pad, deleting the sticky check) breaks the proof.
"""

from __future__ import annotations

import ast
import inspect

import numpy as np
import pytest

import repro.core.striped as striped
from repro.check.dataflow import (
    INT_BOUNDS,
    SCORING_REGIMES,
    ModuleFlow,
    has_sticky_check,
    prove_lane_limits,
    prove_striped,
)
from repro.core.scoring import TRANSITION_TRANSVERSION, MatrixScoring, Scoring
from repro.core.striped import LaneLimits, score_bounds

STRIPED_SOURCE = inspect.getsource(striped)

#: The real scoring objects behind each prover regime (same order as
#: :data:`SCORING_REGIMES`); the wide-matrix entry is a BLOSUM-magnitude
#: 4x4 substitution matrix.
REGIME_SCORINGS = (
    Scoring(),
    Scoring(1, -2, -2),
    TRANSITION_TRANSVERSION,
    Scoring(5, -4, -8),
    MatrixScoring(
        gap=-11,
        matrix=(
            (10, -12, -5, -12),
            (-12, 10, -12, -5),
            (-5, -12, 10, -12),
            (-12, -5, -12, 10),
        ),
    ),
)


@pytest.fixture(scope="module")
def tree():
    return ast.parse(STRIPED_SOURCE)


def test_regime_grid_matches_the_real_scoring_objects():
    assert len(SCORING_REGIMES) == len(REGIME_SCORINGS)
    for (name, gap, lo, hi), scoring in zip(SCORING_REGIMES, REGIME_SCORINGS):
        assert gap == scoring.gap, name
        assert (lo, hi) == score_bounds(scoring), name


@pytest.mark.parametrize("dtype", ["int8", "int16"])
@pytest.mark.parametrize("regime", SCORING_REGIMES, ids=[r[0] for r in SCORING_REGIMES])
def test_prover_discharges_every_regime_and_bounds_the_cap(tree, regime, dtype):
    name, gap, lo, hi = regime
    flow = ModuleFlow(tree, interpret=False)
    checked = 0
    for seg in range(1, striped.MAX_SEG + 1):
        proof = prove_lane_limits(
            tree, dtype=dtype, seg=seg, gap=gap, lo=lo, hi=hi, flow=flow
        )
        real = LaneLimits(dtype, seg, gap, lo, hi)
        # Extraction, not re-derivation: the abstract interpretation of
        # LaneLimits.__init__ reproduces the implemented geometry exactly.
        assert (proof.span, proof.cap, proof.pad, proof.fits) == (
            real.span,
            real.cap,
            real.pad,
            real.fits,
        )
        if not proof.fits:
            continue
        checked += 1
        assert proof.sound, proof.failures
        # The derived bracket: the prover's floor is <= the implemented
        # cap, which is <= the largest provably safe threshold.
        assert proof.floor_cap <= proof.cap <= proof.safe_cap
        # Wrap-freedom at both ends of the lane dtype.
        imin, imax = INT_BOUNDS[dtype]
        assert imin <= proof.reach_lo and proof.reach_hi <= imax
        assert proof.sticky_check
    assert checked > 0, f"{name}/{dtype} fits no segment length at all"


def test_full_sweep_of_the_shipped_kernel_is_sound(tree):
    assert prove_striped(tree) == []


def test_reach_bounds_agree_with_iinfo(tree):
    proof = prove_lane_limits(tree, dtype="int8", seg=4, gap=-2, lo=-1, hi=1)
    info = np.iinfo(np.int8)
    assert proof.reach_lo == info.min  # pad absorbs exactly one segment decay
    assert proof.reach_hi == proof.cap - 1 + max(proof.hi, 0) <= info.max


# -- seeded regressions: each mutation must break the proof ----------------


def _mutate(old: str, new: str) -> ast.Module:
    assert old in STRIPED_SOURCE, f"kernel source drifted: {old!r} not found"
    return ast.parse(STRIPED_SOURCE.replace(old, new))


def test_widened_cap_is_refuted():
    # Dropping the span+hi headroom from the cap: an unflagged row can
    # then climb past iinfo.max before the flag comparison sees it.
    mutated = _mutate(
        "self.cap = (-int(info.min)) - self.span - max(hi, 0) - 1",
        "self.cap = (-int(info.min)) - 1",
    )
    failed = prove_striped(mutated)
    assert failed, "widened cap must fail the sweep"
    assert any("headroom" in p.failures[0] for _, p in failed)
    # ... but not for every regime: the paper's +1/-1/-2 scheme is
    # forgiving enough that only wider-scoring regimes expose the bug --
    # which is exactly why the prover sweeps all five.
    names = {name for name, _ in failed}
    assert "high-reward" in names or "wide-matrix" in names


def test_misplaced_pad_is_refuted():
    mutated = _mutate(
        "self.pad = int(info.min) + self.span",
        "self.pad = int(info.min)",
    )
    failed = prove_striped(mutated)
    assert failed, "misplaced pad must fail the sweep"
    assert any("segment decay" in p.failures[0] for _, p in failed)


def test_removed_sticky_check_is_refuted(tree):
    assert has_sticky_check(tree)
    mutated = _mutate("np.logical_or(self._ovf, self._ovtmp, out=self._ovf)", "pass")
    assert not has_sticky_check(mutated)
    failed = prove_striped(mutated)
    assert failed
    assert all("sticky" in p.failures[0] for _, p in failed)


def test_missing_lane_limits_class_is_reported():
    proof = prove_lane_limits(
        ast.parse("x = 1\n"), dtype="int8", seg=1, gap=-2, lo=-1, hi=1
    )
    assert not proof.sound
    assert "no LaneLimits class" in proof.failures[0]


def test_unevaluable_formula_is_reported_not_trusted():
    mutated = _mutate(
        "self.cap = (-int(info.min)) - self.span - max(hi, 0) - 1",
        "self.cap = external_oracle(dtype)",
    )
    proof = prove_lane_limits(mutated, dtype="int8", seg=4, gap=-2, lo=-1, hi=1)
    assert not proof.sound
    assert "not statically evaluable" in proof.failures[0]
    assert "cap" in proof.failures[0]
