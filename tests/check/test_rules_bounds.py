"""BOUND001 fixtures: score ceilings must be marked admissible and registered."""

from __future__ import annotations

from repro.check import check_source
from repro.check.rules.bounds import UnmarkedBound

RULES = [UnmarkedBound()]


def bounds(source: str):
    return check_source(source, RULES, module="core/bounds.py")


GOOD = (
    "def length_bound(ctx, codes, lengths):  # repro: admissible\n"
    "    return lengths\n"
    "\n"
    "ADMISSIBLE_BOUNDS = {'length': length_bound}\n"
)


def test_marked_and_registered_is_quiet():
    assert bounds(GOOD) == []


def test_marker_on_a_multiline_signature_counts():
    src = (
        "def length_bound(\n"
        "    ctx, codes, lengths\n"
        "):  # repro: admissible\n"
        "    return lengths\n"
        "\n"
        "ADMISSIBLE_BOUNDS = {'length': length_bound}\n"
    )
    assert bounds(src) == []


def test_marker_in_the_body_does_not_count():
    src = (
        "def length_bound(ctx, codes, lengths):\n"
        "    return lengths  # repro: admissible\n"
        "\n"
        "ADMISSIBLE_BOUNDS = {'length': length_bound}\n"
    )
    findings = bounds(src)
    assert [f.rule for f in findings] == ["BOUND001"]


def test_unmarked_bound_fires():
    src = (
        "def length_bound(ctx, codes, lengths):\n"
        "    return lengths\n"
        "\n"
        "ADMISSIBLE_BOUNDS = {'length': length_bound}\n"
    )
    findings = bounds(src)
    assert [f.rule for f in findings] == ["BOUND001"]
    assert "marker" in findings[0].message


def test_unregistered_bound_fires():
    src = (
        "def length_bound(ctx, codes, lengths):  # repro: admissible\n"
        "    return lengths\n"
        "\n"
        "ADMISSIBLE_BOUNDS = {}\n"
    )
    findings = bounds(src)
    assert [f.rule for f in findings] == ["BOUND001"]
    assert "registered" in findings[0].message


def test_unmarked_and_unregistered_fires_twice():
    src = "def kmer_bound(ctx, codes, lengths):\n    return lengths\n"
    findings = bounds(src)
    assert [f.rule for f in findings] == ["BOUND001", "BOUND001"]


def test_helpers_without_bound_suffix_are_quiet():
    src = "def kmer_hits(ctx, codes):\n    return codes\n"
    assert bounds(src) == []


def test_rule_is_scoped_to_core_bounds():
    src = "def length_bound(ctx, codes, lengths):\n    return lengths\n"
    assert check_source(src, RULES, module="core/engine.py") == []
    assert check_source(src, RULES, module="strategies/prefilter.py") == []


def test_suppression_comment_silences():
    src = (
        "def odd_bound(ctx, codes, lengths):  # repro: noqa[BOUND001]\n"
        "    return lengths\n"
        "\n"
        "ADMISSIBLE_BOUNDS = {'odd': odd_bound}\n"
    )
    assert bounds(src) == []
