"""The analyzer's own acceptance bar: the shipped tree has zero findings.

This is the test that turns every rule into a standing invariant -- a new
unpinned allocation, leaked arena idiom, wall-clock read or queue-protocol
deviation anywhere under ``src/repro`` fails CI with the exact file:line.
"""

from __future__ import annotations

import os

import pytest

from repro.check import check_paths, render_text

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src", "repro")


@pytest.mark.skipif(not os.path.isdir(SRC), reason="source tree not present")
def test_src_tree_is_clean():
    findings = check_paths([SRC])
    assert not findings, "\n" + render_text(findings)


@pytest.mark.skipif(not os.path.isdir(SRC), reason="source tree not present")
def test_src_tree_has_files_to_check():
    # Guard against the clean result being vacuous (wrong path, empty walk).
    from repro.check.engine import iter_python_files

    files = list(iter_python_files([SRC]))
    assert len(files) > 40
    assert any(p.endswith("core/engine.py") for p in files)
