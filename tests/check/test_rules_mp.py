"""MP001/MP002 fixtures: the queue discipline of the worker pool."""

from __future__ import annotations

from repro.check import check_source
from repro.check.rules.mp_protocol import LoneSentinelSend, UnboundedQueueGet

RULES = [UnboundedQueueGet(), LoneSentinelSend()]


def check(source: str):
    return check_source(source, RULES, module="parallel/x.py")


# -- MP001: unbounded .get() -------------------------------------------------


def test_bare_get_fires():
    findings = check("def collect(q):\n    item = q.get()\n    return item\n")
    assert [f.rule for f in findings] == ["MP001"]


def test_get_with_timeout_is_quiet():
    assert check("def collect(q):\n    return q.get(timeout=0.2)\n") == []


def test_dict_get_with_key_is_quiet():
    assert check("def lookup(d):\n    return d.get('key')\n") == []


def test_sentinel_pull_loop_is_the_sanctioned_blocking_get():
    src = """
def worker(tasks):
    while True:
        job = tasks.get()
        if job is None:
            break
        run(job)
"""
    assert check(src) == []


def test_while_true_without_none_break_still_fires():
    src = """
def worker(tasks):
    while True:
        job = tasks.get()
        run(job)
"""
    assert [f.rule for f in check(src)] == ["MP001"]


def test_non_while_true_loop_is_not_a_pull_loop():
    src = """
def worker(tasks, running):
    while running:
        job = tasks.get()
        if job is None:
            break
"""
    assert [f.rule for f in check(src)] == ["MP001"]


def test_named_sentinel_pull_loop_is_quiet():
    src = """
SENTINEL = None

def worker(tasks):
    while True:
        job = tasks.get()
        if job is SENTINEL:
            break
        run(job)
"""
    assert check(src) == []


def test_named_sentinel_must_be_a_module_none_constant():
    # A name that is not a module-level None binding is no sentinel: the
    # break test compares against arbitrary state, so the get still hangs
    # if the producer never sends that object.
    src = """
def worker(tasks, stop_token):
    while True:
        job = tasks.get()
        if job is stop_token:
            break
        run(job)
"""
    assert [f.rule for f in check(src)] == ["MP001"]


def test_rule_scoped_to_parallel():
    src = "def collect(q):\n    return q.get()\n"
    assert check_source(src, RULES, module="obs/x.py") == []


def test_rule_covers_plan_modules():
    src = "def collect(q):\n    return q.get()\n"
    findings = check_source(src, RULES, module="plan/x.py")
    assert [f.rule for f in findings] == ["MP001"]


# -- MP002: lone sentinel sends ---------------------------------------------


def test_lone_put_none_fires():
    assert [f.rule for f in check("def stop(q):\n    q.put(None)\n")] == ["MP002"]


def test_sentinel_loop_over_workers_is_quiet():
    src = """
def stop(tasks):
    for q in tasks:
        q.put(None)
"""
    assert check(src) == []


def test_one_queue_many_workers_loop_is_quiet():
    src = """
def stop(work, n_workers):
    for _ in range(n_workers):
        work.put(None)
"""
    assert check(src) == []


def test_lone_put_named_sentinel_fires():
    src = """
SENTINEL = None

def stop(q):
    q.put(SENTINEL)
"""
    assert [f.rule for f in check(src)] == ["MP002"]


def test_named_sentinel_loop_over_workers_is_quiet():
    src = """
SENTINEL = None

def stop(tasks):
    for q in tasks:
        q.put(SENTINEL)
"""
    assert check(src) == []


def test_put_of_payload_is_quiet():
    assert check("def send(q, job):\n    q.put(job)\n") == []


def test_put_of_non_sentinel_name_is_quiet():
    # No module-level None binding for `job`, so this is a payload send.
    src = """
def send(q, job):
    q.put(job)
"""
    assert check(src) == []
