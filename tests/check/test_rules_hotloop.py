"""LOOP001/LOOP002 fixtures: kernel-module scoping and the marker comment."""

from __future__ import annotations

from repro.check import check_source
from repro.check.rules.hotloop import LoopAllocation, NestedKernelLoop

RULES = [NestedKernelLoop(), LoopAllocation()]

NESTED = """
import numpy as np
def sw_rows(prev):
    for i in range(10):
        for j in range(10):
            prev[j] = i
    return prev
"""

ALLOC_IN_LOOP = """
import numpy as np
def sw_rows(prev):
    for i in range(10):
        tmp = np.zeros(4, dtype=np.int32)
    return prev
"""

CLEAN_KERNEL = """
import numpy as np
def sw_rows(prev, scratch):
    for i in range(10):
        np.maximum(prev, 0, out=scratch)
    return prev
"""


def kernel(source: str):
    return check_source(source, RULES, module="core/engine.py")


def test_nested_loop_fires_in_kernel_module():
    assert [f.rule for f in kernel(NESTED)] == ["LOOP001"]


def test_allocation_in_loop_fires_once():
    assert [f.rule for f in kernel(ALLOC_IN_LOOP)] == ["LOOP002"]


def test_allocation_under_nested_loops_reported_once():
    src = """
import numpy as np
def sw_rows(prev):
    for i in range(10):
        for j in range(10):
            tmp = np.zeros(4, dtype=np.int32)
"""
    rules = [f.rule for f in kernel(src)]
    assert rules.count("LOOP002") == 1  # not once per enclosing loop


def test_out_param_reuse_is_quiet():
    assert kernel(CLEAN_KERNEL) == []


def test_single_row_loop_is_allowed():
    src = """
def sw_rows(prev, ws):
    for i in range(10):
        prev = ws.step(prev, i)
    return prev
"""
    assert kernel(src) == []


def test_non_kernel_module_is_exempt():
    assert check_source(NESTED, RULES, module="strategies/x.py") == []


def test_striped_module_is_a_kernel_module():
    """core/striped.py is whole-module kernel discipline, like the engines."""
    from repro.check.rules.hotloop import KERNEL_MODULES

    assert "core/striped.py" in KERNEL_MODULES
    findings = check_source(NESTED, RULES, module="core/striped.py")
    assert [f.rule for f in findings] == ["LOOP001"]


def test_marker_comment_promotes_a_function_anywhere():
    src = """
import numpy as np
def hot(prev):  # repro: kernel
    for i in range(10):
        for j in range(10):
            prev[j] = i
"""
    findings = check_source(src, RULES, module="strategies/x.py")
    assert [f.rule for f in findings] == ["LOOP001"]


def test_allocation_outside_any_loop_is_quiet():
    src = """
import numpy as np
def sw_rows(prev):
    scratch = np.zeros(4, dtype=np.int32)
    for i in range(10):
        np.maximum(prev, 0, out=scratch)
"""
    assert kernel(src) == []


def test_nested_def_inside_kernel_function_is_not_its_loop():
    src = """
def outer(prev):
    def helper():
        for i in range(3):
            for j in range(3):
                pass
    return helper
"""
    # helper's loops belong to helper (itself a kernel function in this
    # module), so the nested pair is still flagged -- but exactly once.
    findings = kernel(src)
    assert [f.rule for f in findings] == ["LOOP001"]
