"""SHM001 fixtures: every sanctioned ownership idiom, and the leaks."""

from __future__ import annotations

from repro.check import check_source
from repro.check.rules.shm_lifecycle import UnguardedSharedResource

RULES = [UnguardedSharedResource()]


def check(source: str):
    return check_source(source, RULES, module="parallel/x.py")


def test_bare_local_assignment_fires():
    findings = check("arena = SequenceArena(s, t)\nuse(arena)\n")
    assert [f.rule for f in findings] == ["SHM001"]


def test_bare_expression_fires():
    assert [f.rule for f in check("create_shared_array((4,))\n")] == ["SHM001"]


def test_with_statement_is_guarded():
    assert check("with create_shared_array((4,)) as arr:\n    use(arr)\n") == []


def test_nested_with_items_are_guarded():
    src = (
        "with create_shared_array((4,)) as a, create_shared_array((5,)) as b:\n"
        "    use(a, b)\n"
    )
    assert check(src) == []


def test_try_finally_is_guarded():
    src = """
arena = None
try:
    arena = SequenceArena(s, t)
    use(arena)
finally:
    if arena is not None:
        arena.close()
"""
    assert check(src) == []


def test_creation_inside_the_finally_itself_is_not_guarded():
    src = """
try:
    pass
finally:
    arena = SequenceArena(s, t)
"""
    assert [f.rule for f in check(src)] == ["SHM001"]


def test_attribute_assignment_transfers_ownership():
    assert check("self._arena = SequenceArena(s, t)\n") == []


def test_container_assignment_transfers_ownership():
    assert check("cache[name] = attach_arena(handle)\n") == []


def test_return_transfers_ownership():
    src = "def make():\n    return SharedArray(shm=x, array=y, owner=True)\n"
    assert check(src) == []


def test_call_argument_transfers_ownership():
    assert check("stack.enter_context(create_shared_array((4,)))\n") == []


def test_pool_search_regression_idiom_is_guarded():
    # The fixed shape of AlignmentWorkerPool.search: creation inside an outer
    # try whose finally closes.  The pre-fix shape (creation before the try)
    # is the fire case above.
    src = """
arena = None
try:
    with tracer.span("publish"):
        arena = SequenceArena(query, blob)
    dispatch(arena.handle)
finally:
    if arena is not None:
        arena.close()
"""
    assert check(src) == []


def test_rule_runs_outside_parallel_too():
    # Lifecycle bugs are wherever the factories are called from.
    findings = check_source("a = SequenceArena(s, t)\n", RULES, module="strategies/x.py")
    assert [f.rule for f in findings] == ["SHM001"]
