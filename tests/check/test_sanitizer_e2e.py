"""End-to-end sanitizer runs over every real-parallel backend.

Each test enables ``REPRO_SANITIZE=1``, drives a backend with real worker
processes (which inherit the environment at fork and ship their events back
through the obs jsonl segments), and asserts the merged report is clean --
no lock-order cycles, no leaked owner segments, no double-closes.  The
worker-death test is the one that pins the pool's error-path cleanup.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.check import sanitizer as san_mod
from repro.check.sanitizer import assert_clean

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


@pytest.fixture
def sanitize():
    """Active sanitizer for the duration of one test (workers inherit it).

    Env managed by hand so the teardown ``reset()`` re-reads the restored
    value (keeps a session-wide ``REPRO_SANITIZE=1`` run working after
    these tests finish).
    """
    prev = os.environ.get(san_mod.ENV_VAR)
    os.environ[san_mod.ENV_VAR] = "1"
    san = san_mod.reset()
    assert san is not None
    yield san
    if prev is None:
        os.environ.pop(san_mod.ENV_VAR, None)
    else:
        os.environ[san_mod.ENV_VAR] = prev
    san_mod.reset()


@pytest.fixture
def pair():
    rng = np.random.default_rng(7)
    make = lambda: "".join(rng.choice(list("ACGT"), 240))
    return make(), make()


def test_mp_wavefront_runs_clean(sanitize, pair):
    from repro.parallel.mp_wavefront import MpWavefrontConfig, mp_wavefront_alignments

    mp_wavefront_alignments(*pair, MpWavefrontConfig(n_workers=2, threshold=18))
    report = assert_clean()
    assert report.n_processes >= 3  # coordinator + 2 workers reported in


def test_mp_blocked_runs_clean(sanitize, pair):
    from repro.parallel.mp_blocked import MpBlockedConfig, mp_blocked_alignments

    mp_blocked_alignments(
        *pair, MpBlockedConfig(n_workers=2, n_bands=4, n_blocks=4, threshold=18)
    )
    report = assert_clean()
    assert report.n_processes >= 3


def test_pool_backends_run_clean(sanitize, pair):
    from repro.parallel.pool import AlignmentWorkerPool

    with AlignmentWorkerPool(n_workers=2) as pool:
        pool.wavefront(*pair)
        pool.blocked(*pair)
    report = assert_clean()
    assert report.n_processes >= 3
    # The coordinator's owner segments (arena + border/progress arrays) all
    # closed: count them explicitly rather than trusting the verdict alone.
    own = [e for e in sanitize.events if e.get("pid") == sanitize.pid]
    opens = [e for e in own if e["kind"] == "open" and e.get("owner")]
    closes = [e for e in own if e["kind"] == "close" and e.get("owner")]
    assert len(opens) >= 5
    assert len(closes) == len(opens)


def test_search_db_runs_clean(sanitize):
    from repro.parallel.pool import AlignmentWorkerPool
    from repro.seq.db import pack_database, synthetic_database

    packed = pack_database(synthetic_database(n=12, min_length=60, max_length=120, rng=1))
    rng = np.random.default_rng(2)
    query = "".join(rng.choice(list("ACGT"), 80))
    with AlignmentWorkerPool(n_workers=2) as pool:
        hits = pool.search(query, packed, top_k=5)
    assert len(hits) == 5
    assert_clean()


def test_forced_worker_death_leaves_no_owner_leak(sanitize, pair):
    """SIGKILL one pool worker mid-life: the error path must still unwind
    every coordinator-owned segment (the PR's pool.py lifecycle fixes)."""
    from repro.parallel.pool import AlignmentWorkerPool, PoolJobError, WorkerCrashed

    with AlignmentWorkerPool(n_workers=2) as pool:
        pool.wavefront(*pair)
        os.kill(pool._procs[0].pid, signal.SIGKILL)
        with pytest.raises((WorkerCrashed, PoolJobError)):
            pool.blocked(*pair)
    assert_clean()


def test_search_failure_path_closes_the_arena(sanitize):
    """A dispatch failure after the arena exists must still close it."""
    from repro.parallel.pool import AlignmentWorkerPool
    from repro.seq.db import pack_database, synthetic_database

    packed = pack_database(synthetic_database(n=4, min_length=50, max_length=80, rng=3))

    class Boom(RuntimeError):
        pass

    with AlignmentWorkerPool(n_workers=2) as pool:
        class BrokenQueue:
            def put(self, item):
                raise Boom("work queue unavailable")

            def get(self, *a, **k):
                import queue

                raise queue.Empty

        pool._works = [BrokenQueue() for _ in range(pool.n_workers)]
        with pytest.raises(Boom):
            pool.search("ACGTACGT", packed, top_k=3)
    assert_clean()
