"""Engine-level behaviour: suppression, parse errors, discovery, rendering."""

from __future__ import annotations

import ast
import json
import os

from repro.check import check_paths, check_source, render_json, render_text
from repro.check.engine import (
    CHECK_SCHEMA_VERSION,
    PARSE_ERROR_RULE,
    FileContext,
    Finding,
    Rule,
    findings_from_json,
    module_path,
    rule_url,
)


class AlwaysFlagName(Rule):
    """Test rule: flag every ``ast.Name`` node."""

    id = "TEST001"
    summary = "every name is flagged (test rule)"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                yield self.finding(ctx, node, f"name {node.id!r}")


class CoreOnly(AlwaysFlagName):
    id = "TEST002"

    def applies(self, module):
        return module.startswith("core/")


def test_findings_are_sorted_and_formatted():
    findings = check_source("b = 1\na = 2\n", [AlwaysFlagName()], path="x.py")
    assert [f.line for f in findings] == [1, 2]
    assert findings[0].format() == "x.py:1:0: TEST001 name 'b'"


def test_noqa_bare_suppresses_every_rule():
    source = "a = 1  # repro: noqa\nb = 2\n"
    findings = check_source(source, [AlwaysFlagName()], path="x.py")
    assert [f.line for f in findings] == [2]


def test_noqa_with_rule_list_is_selective():
    src_match = "a = 1  # repro: noqa[TEST001]\n"
    src_other = "a = 1  # repro: noqa[OTHER999]\n"
    assert check_source(src_match, [AlwaysFlagName()]) == []
    assert len(check_source(src_other, [AlwaysFlagName()])) == 1


def test_plain_flake8_noqa_is_not_honoured():
    findings = check_source("a = 1  # noqa\n", [AlwaysFlagName()])
    assert len(findings) == 1


def test_parse_error_becomes_e000_finding():
    findings = check_source("def broken(:\n", [AlwaysFlagName()], path="bad.py")
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE
    assert findings[0].path == "bad.py"


def test_applies_scopes_rules_by_module_path():
    source = "a = 1\n"
    hit = check_source(source, [CoreOnly()], module="core/engine.py")
    miss = check_source(source, [CoreOnly()], module="parallel/pool.py")
    assert len(hit) == 1 and miss == []


def test_module_path_strips_up_to_last_repro_segment():
    assert module_path("src/repro/core/engine.py") == "core/engine.py"
    assert module_path(os.path.join("src", "repro", "obs", "trace.py")) == "obs/trace.py"
    assert module_path("elsewhere/thing.py") == "elsewhere/thing.py"


def test_check_paths_walks_directories(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg.joinpath("mod.py")).write_text("import numpy as np\nx = np.zeros(3)\n")
    (pkg.joinpath("notes.txt")).write_text("not python")
    findings = check_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["DTYPE001"]
    assert findings[0].path.endswith("mod.py")


def test_render_text_clean_and_dirty():
    assert render_text([]) == "repro check: clean"
    finding = Finding(path="x.py", line=1, col=0, rule="R", message="m")
    text = render_text([finding])
    assert "x.py:1:0: R m" in text and "1 finding(s)" in text


def test_render_json_payload_shape():
    finding = Finding(path="x.py", line=3, col=1, rule="TEST001", message="m")
    payload = json.loads(render_json([finding], [AlwaysFlagName()]))
    assert payload["schema_version"] == CHECK_SCHEMA_VERSION
    assert payload["count"] == 1
    assert payload["findings"][0] == {
        "path": "x.py",
        "line": 3,
        "col": 1,
        "rule": "TEST001",
        "message": "m",
        "url": "CONTRIBUTING.md#test001",
    }
    assert payload["rules"]["TEST001"]["summary"].startswith("every name")
    assert payload["rules"]["TEST001"]["url"] == rule_url("TEST001")


def test_render_json_round_trips_findings():
    findings = check_source("b = 1\na = 2\n", [AlwaysFlagName()], path="x.py")
    assert findings
    assert findings_from_json(render_json(findings, [AlwaysFlagName()])) == findings


def test_findings_from_json_rejects_other_schema_versions():
    payload = json.loads(render_json([], [AlwaysFlagName()]))
    payload["schema_version"] = CHECK_SCHEMA_VERSION + 1
    try:
        findings_from_json(json.dumps(payload))
    except ValueError as exc:
        assert str(CHECK_SCHEMA_VERSION + 1) in str(exc)
    else:
        raise AssertionError("mismatched schema_version must be rejected")


class AlwaysFlagAssign(Rule):
    """Test rule: flag every assignment statement."""

    id = "TEST003"
    summary = "every assignment is flagged (test rule)"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                yield self.finding(ctx, node, "assignment")


def test_one_suppression_comment_covers_multiple_rules():
    rules = [AlwaysFlagName(), AlwaysFlagAssign()]
    source = "a = b  # repro: noqa[TEST001,TEST003]\n"
    assert check_source(source, rules) == []
    # ... and listing only one of the two keeps the other finding alive.
    partial = check_source("a = b  # repro: noqa[TEST003]\n", rules)
    assert [f.rule for f in partial] == ["TEST001", "TEST001"]


def test_syntax_error_yields_exactly_one_finding_regardless_of_rules():
    source = "def broken(:\n    a = 1\n"
    for rules in ([], [AlwaysFlagName()], [AlwaysFlagName(), AlwaysFlagAssign()]):
        findings = check_source(source, rules, path="bad.py")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
        assert findings[0].line == 1


def test_check_paths_keeps_walking_past_a_broken_file(tmp_path):
    (tmp_path / "aa_broken.py").write_text("def broken(:\n")
    (tmp_path / "bb_fine.py").write_text("x = 1\n")
    findings = check_paths([str(tmp_path)], [AlwaysFlagName()])
    assert [f.rule for f in findings] == [PARSE_ERROR_RULE, "TEST001"]


def test_finding_order_is_deterministic_across_rule_order():
    source = "a = b\nc = d\n"
    rules = [AlwaysFlagName(), AlwaysFlagAssign()]
    forward = check_source(source, rules, path="x.py")
    backward = check_source(source, list(reversed(rules)), path="x.py")
    assert forward == backward
    assert forward == sorted(forward)
    # Per line: the Store name at col 0, the Assign at col 0, the Load name
    # at col 4 -- ties broken by rule id, so the order is reproducible.
    assert [f.rule for f in forward] == ["TEST001", "TEST003", "TEST001"] * 2


def test_statement_and_ancestors_navigation():
    ctx = FileContext("def f():\n    x = g(1)\n", path="x.py")
    call = next(n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call))
    stmt = ctx.statement(call)
    assert isinstance(stmt, ast.Assign)
    kinds = [type(a).__name__ for a in ctx.ancestors(call)]
    assert kinds == ["Assign", "FunctionDef", "Module"]
