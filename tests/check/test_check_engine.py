"""Engine-level behaviour: suppression, parse errors, discovery, rendering."""

from __future__ import annotations

import ast
import json
import os

from repro.check import check_paths, check_source, render_json, render_text
from repro.check.engine import (
    PARSE_ERROR_RULE,
    FileContext,
    Finding,
    Rule,
    module_path,
)


class AlwaysFlagName(Rule):
    """Test rule: flag every ``ast.Name`` node."""

    id = "TEST001"
    summary = "every name is flagged (test rule)"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                yield self.finding(ctx, node, f"name {node.id!r}")


class CoreOnly(AlwaysFlagName):
    id = "TEST002"

    def applies(self, module):
        return module.startswith("core/")


def test_findings_are_sorted_and_formatted():
    findings = check_source("b = 1\na = 2\n", [AlwaysFlagName()], path="x.py")
    assert [f.line for f in findings] == [1, 2]
    assert findings[0].format() == "x.py:1:0: TEST001 name 'b'"


def test_noqa_bare_suppresses_every_rule():
    source = "a = 1  # repro: noqa\nb = 2\n"
    findings = check_source(source, [AlwaysFlagName()], path="x.py")
    assert [f.line for f in findings] == [2]


def test_noqa_with_rule_list_is_selective():
    src_match = "a = 1  # repro: noqa[TEST001]\n"
    src_other = "a = 1  # repro: noqa[OTHER999]\n"
    assert check_source(src_match, [AlwaysFlagName()]) == []
    assert len(check_source(src_other, [AlwaysFlagName()])) == 1


def test_plain_flake8_noqa_is_not_honoured():
    findings = check_source("a = 1  # noqa\n", [AlwaysFlagName()])
    assert len(findings) == 1


def test_parse_error_becomes_e000_finding():
    findings = check_source("def broken(:\n", [AlwaysFlagName()], path="bad.py")
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE
    assert findings[0].path == "bad.py"


def test_applies_scopes_rules_by_module_path():
    source = "a = 1\n"
    hit = check_source(source, [CoreOnly()], module="core/engine.py")
    miss = check_source(source, [CoreOnly()], module="parallel/pool.py")
    assert len(hit) == 1 and miss == []


def test_module_path_strips_up_to_last_repro_segment():
    assert module_path("src/repro/core/engine.py") == "core/engine.py"
    assert module_path(os.path.join("src", "repro", "obs", "trace.py")) == "obs/trace.py"
    assert module_path("elsewhere/thing.py") == "elsewhere/thing.py"


def test_check_paths_walks_directories(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg.joinpath("mod.py")).write_text("import numpy as np\nx = np.zeros(3)\n")
    (pkg.joinpath("notes.txt")).write_text("not python")
    findings = check_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["DTYPE001"]
    assert findings[0].path.endswith("mod.py")


def test_render_text_clean_and_dirty():
    assert render_text([]) == "repro check: clean"
    finding = Finding(path="x.py", line=1, col=0, rule="R", message="m")
    text = render_text([finding])
    assert "x.py:1:0: R m" in text and "1 finding(s)" in text


def test_render_json_payload_shape():
    finding = Finding(path="x.py", line=3, col=1, rule="TEST001", message="m")
    payload = json.loads(render_json([finding], [AlwaysFlagName()]))
    assert payload["count"] == 1
    assert payload["findings"][0] == {
        "path": "x.py",
        "line": 3,
        "col": 1,
        "rule": "TEST001",
        "message": "m",
    }
    assert payload["rules"]["TEST001"].startswith("every name")


def test_statement_and_ancestors_navigation():
    ctx = FileContext("def f():\n    x = g(1)\n", path="x.py")
    call = next(n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call))
    stmt = ctx.statement(call)
    assert isinstance(stmt, ast.Assign)
    kinds = [type(a).__name__ for a in ctx.ancestors(call)]
    assert kinds == ["Assign", "FunctionDef", "Module"]
