"""The typed island stays mypy-clean (skips where mypy is not installed).

CI's ``typecheck`` job installs mypy and runs the same configuration from
``pyproject.toml`` (``src/repro/check``, ``src/repro/obs``,
``src/repro/seq/db.py`` in basic mode); this test makes the invariant
reproducible locally for developers who have mypy available.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
@pytest.mark.skipif(
    not os.path.isfile(os.path.join(REPO_ROOT, "pyproject.toml")),
    reason="pyproject.toml not present",
)
def test_typed_island_is_mypy_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
