"""FLOW001/2/3/4 fixtures: seeded regressions fire, fixed idioms stay quiet."""

from __future__ import annotations

import inspect

import repro.core.striped as striped
from repro.check import check_source
from repro.check.rules import (
    OverflowUnsafeNarrowing,
    UncheckedSaturatingOp,
    UnprovenLaneCap,
    WideningAcrossCall,
)

RULES = [OverflowUnsafeNarrowing(), WideningAcrossCall(), UncheckedSaturatingOp()]


def check(source: str, module: str = "core/multi_engine.py"):
    return check_source(source, RULES, module=module)


# -- FLOW001: overflow-unsafe narrowing ------------------------------------


def test_widened_constant_cast_is_caught():
    # The seeded regression: someone widens a pad constant past the lane
    # dtype; the cast wraps silently at import time.
    source = (
        "import numpy as np\n"
        "PAD_SCORE = np.int8(-300)\n"
    )
    findings = check(source)
    assert [f.rule for f in findings] == ["FLOW001"]
    assert "int8" in findings[0].message
    assert findings[0].line == 2


def test_in_range_constant_cast_is_quiet():
    assert check("import numpy as np\nPAD_SCORE = np.int8(-120)\n") == []


def test_astype_of_provably_large_value_is_caught():
    source = (
        "import numpy as np\n"
        "def shrink():\n"
        "    wide = np.full(8, 40000, dtype=np.int32)\n"
        "    return wide.astype(np.int16)\n"
    )
    findings = check(source)
    assert [f.rule for f in findings] == ["FLOW001"]
    assert "[40000, 40000]" in findings[0].message


def test_overlap_is_not_proof_so_astype_stays_quiet():
    # A value that *might* fit must not be flagged: the rule only claims
    # proven overflow (interval disjoint from the target range).
    source = (
        "import numpy as np\n"
        "def shrink(n):\n"
        "    wide = np.arange(n, dtype=np.int32)\n"
        "    return wide.astype(np.int16)\n"
    )
    assert check(source) == []


def test_flow_rules_are_scoped_to_core():
    source = "import numpy as np\nPAD_SCORE = np.int8(-300)\n"
    assert check_source(source, RULES, module="strategies/search.py") == []


# -- FLOW002: widening across a call boundary ------------------------------


_WIDENING = (
    "import numpy as np\n"
    "def combine(row, acc):\n"
    "    return row + acc\n"
    "def run():\n"
    "    lanes = np.zeros(16, dtype=np.int8)\n"
    "    acc = np.zeros(16, dtype=np.int32)\n"
    "    return combine(lanes, acc)\n"
)


def test_narrow_argument_widening_in_callee_is_caught():
    findings = check(_WIDENING)
    assert [f.rule for f in findings] == ["FLOW002"]
    assert "'row'" in findings[0].message and "int32" in findings[0].message
    # The finding anchors at the *call site*, where the fix belongs.
    assert findings[0].line == 7


def test_explicit_boundary_cast_is_quiet():
    fixed = _WIDENING.replace(
        "combine(lanes, acc)", "combine(lanes.astype(np.int32), acc)"
    )
    assert check(fixed) == []


def test_narrow_on_narrow_arithmetic_is_not_a_widening():
    same = _WIDENING.replace("dtype=np.int32", "dtype=np.int8")
    assert [f.rule for f in check(same)] == []


# -- FLOW003: unchecked saturating op --------------------------------------


_UNCHECKED = (
    "import numpy as np\n"
    "class Scan:\n"
    "    def run(self, n):\n"
    "        h = np.zeros(64, dtype=np.int16)\n"
    "        p = np.full(64, 3, dtype=np.int16)\n"
    "        for _ in range(n):\n"
    "            np.add(h, p, out=h)\n"
    "        return h\n"
)

_STICKY = (
    "np.add(h, p, out=h)\n"
    "            np.greater_equal(h, 30000, out=tmp)\n"
    "            np.logical_or(flags, tmp, out=flags)\n"
)


def test_unchecked_narrow_accumulation_is_caught():
    # The seeded regression: a sticky-flag check deleted from an int16
    # accumulation loop.
    findings = check(_UNCHECKED)
    assert [f.rule for f in findings] == ["FLOW003"]
    assert "int16" in findings[0].message and "sticky" in findings[0].message
    assert findings[0].line == 7


def test_sticky_checked_accumulation_is_quiet():
    guarded = _UNCHECKED.replace("np.add(h, p, out=h)\n", _STICKY).replace(
        "p = np.full(64, 3, dtype=np.int16)\n",
        "p = np.full(64, 3, dtype=np.int16)\n"
        "        tmp = np.zeros(64, dtype=bool)\n"
        "        flags = np.zeros(64, dtype=bool)\n",
    )
    assert check(guarded) == []


def test_wide_accumulation_needs_no_sticky_check():
    wide = _UNCHECKED.replace("np.int16", "np.int64")
    assert check(wide) == []


def test_suppression_works_on_flow_findings():
    suppressed = _UNCHECKED.replace(
        "np.add(h, p, out=h)", "np.add(h, p, out=h)  # repro: noqa[FLOW003]"
    )
    assert check(suppressed) == []


# -- FLOW004: the lane-cap prover wired into the finding pipeline ----------


STRIPED_SOURCE = inspect.getsource(striped)


def test_shipped_striped_kernel_proves_clean():
    findings = check_source(
        STRIPED_SOURCE, [UnprovenLaneCap()], module="core/striped.py"
    )
    assert findings == []


def test_mutated_cap_surfaces_as_flow004_findings():
    mutated = STRIPED_SOURCE.replace(
        "self.cap = (-int(info.min)) - self.span - max(hi, 0) - 1",
        "self.cap = (-int(info.min)) - 1",
    )
    findings = check_source(mutated, [UnprovenLaneCap()], module="core/striped.py")
    assert findings and all(f.rule == "FLOW004" for f in findings)
    assert any("headroom" in f.message for f in findings)


def test_flow004_only_applies_to_the_striped_module():
    rule = UnprovenLaneCap()
    assert rule.applies("core/striped.py")
    assert not rule.applies("core/engine.py")
    assert not rule.applies("plan/planners.py")
