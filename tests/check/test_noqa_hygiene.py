"""NOQA001: stale and unknown-code suppression comments are flagged."""

from __future__ import annotations

import ast

from repro.check import DEFAULT_RULES, check_source
from repro.check.engine import NOQA_RULE, Rule
from repro.check.rules import NoqaHygiene


class FlagEveryName(Rule):
    id = "TEST001"
    summary = "every name is flagged (test rule)"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                yield self.finding(ctx, node, f"name {node.id!r}")


RULES = [FlagEveryName(), NoqaHygiene()]


def test_used_suppression_is_not_flagged():
    assert check_source("a = 1  # repro: noqa[TEST001]\n", RULES) == []


def test_stale_suppression_is_flagged():
    findings = check_source("1 + 1  # repro: noqa[TEST001]\n", RULES)
    assert [f.rule for f in findings] == [NOQA_RULE]
    assert "stale suppression" in findings[0].message
    assert "TEST001" in findings[0].message


def test_stale_bare_noqa_is_flagged():
    findings = check_source("1 + 1  # repro: noqa\n", RULES)
    assert [f.rule for f in findings] == [NOQA_RULE]
    assert "bare" in findings[0].message


def test_used_bare_noqa_is_not_flagged():
    assert check_source("a = 1  # repro: noqa\n", RULES) == []


def test_unknown_rule_code_is_flagged():
    findings = check_source("a = 1  # repro: noqa[TEST001,NOPE999]\n", RULES)
    assert [f.rule for f in findings] == [NOQA_RULE]
    assert "unknown rule code" in findings[0].message
    assert "NOPE999" in findings[0].message


def test_mixed_stale_and_unknown_report_separately():
    findings = check_source("1 + 1  # repro: noqa[TEST001,NOPE999]\n", RULES)
    assert [f.rule for f in findings] == [NOQA_RULE, NOQA_RULE]
    messages = "\n".join(f.message for f in findings)
    assert "NOPE999" in messages and "TEST001" in messages


def test_hygiene_finding_is_self_suppressible():
    source = "1 + 1  # repro: noqa[TEST001,NOQA001]\n"
    assert check_source(source, RULES) == []


def test_hygiene_pass_is_off_without_the_rule():
    # Passing a rule subset (as fixture tests do) must not drag the
    # hygiene pass in: only the registry entry switches it on.
    findings = check_source("1 + 1  # repro: noqa[TEST001]\n", [FlagEveryName()])
    assert findings == []


def test_docstring_mention_is_not_a_suppression():
    source = '"""Docs mention # repro: noqa[TEST001] in passing."""\na = 1\n'
    findings = check_source(source, RULES)
    assert [f.rule for f in findings] == ["TEST001"]


def test_noqa_hygiene_is_in_the_default_rule_set():
    assert any(rule.id == NOQA_RULE for rule in DEFAULT_RULES)
