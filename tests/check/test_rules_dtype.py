"""DTYPE001/DTYPE002 fixtures: fire on the bad idiom, quiet on the fix."""

from __future__ import annotations

from repro.check import check_source
from repro.check.rules.dtype import FloatWidening, UnpinnedAllocation

RULES = [UnpinnedAllocation(), FloatWidening()]


def check_core(source: str):
    return check_source(source, RULES, module="core/x.py")


# -- DTYPE001: unpinned allocations -----------------------------------------


def test_unpinned_arange_fires():
    findings = check_core("import numpy as np\nidx = np.arange(0, 10)\n")
    assert [f.rule for f in findings] == ["DTYPE001"]


def test_pinned_arange_is_quiet():
    assert check_core("import numpy as np\nidx = np.arange(0, 10, dtype=np.int64)\n") == []


def test_banded_regression_idiom_is_quiet():
    # The exact fixed line from core/banded.py: this rule found the original
    # unpinned version (platform C long) and must accept the pin.
    src = (
        "import numpy as np\n"
        "i, width = 5, 3\n"
        "sub_j = np.arange(i - width, i + width + 1, dtype=np.int64)\n"
    )
    assert check_core(src) == []


def test_every_allocator_is_covered():
    for name in ("zeros", "empty", "ones", "full"):
        findings = check_core(f"import numpy as np\nx = np.{name}((4, 4))\n")
        assert [f.rule for f in findings] == ["DTYPE001"], name


def test_strategies_scope_included_but_parallel_is_not():
    src = "import numpy as np\nx = np.zeros(3)\n"
    assert check_source(src, RULES, module="strategies/x.py")
    assert check_source(src, RULES, module="parallel/x.py") == []
    assert check_source(src, RULES, module="obs/x.py") == []


def test_non_numpy_zeros_is_quiet():
    assert check_core("x = mymod.zeros(3)\n") == []


# -- DTYPE002: float widening ------------------------------------------------


def test_astype_float_fires():
    findings = check_core("y = x.astype(np.float64)\n")
    assert [f.rule for f in findings] == ["DTYPE002"]


def test_astype_int_is_quiet():
    assert check_core("y = x.astype(np.int32)\n") == []


def test_dtype_kwarg_float_fires_even_with_pin():
    # Pinned, so DTYPE001 stays quiet -- but pinned to a float, so DTYPE002 fires.
    findings = check_core("import numpy as np\nx = np.zeros(3, dtype=np.float32)\n")
    assert [f.rule for f in findings] == ["DTYPE002"]


def test_float_string_dtype_fires():
    findings = check_core("y = x.astype('<f8')\n")
    assert [f.rule for f in findings] == ["DTYPE002"]


def test_widening_only_applies_to_core():
    src = "y = x.astype(np.float64)\n"
    assert check_source(src, RULES, module="strategies/x.py") == []


def test_noqa_silences_a_true_positive():
    src = "import numpy as np\nx = np.zeros(3)  # repro: noqa[DTYPE001]\n"
    assert check_core(src) == []
