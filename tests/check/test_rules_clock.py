"""CLOCK001 fixtures: wall-clock reads are confined out of obs/."""

from __future__ import annotations

from repro.check import check_source
from repro.check.rules.clock import WallClockInObs

RULES = [WallClockInObs()]


def obs(source: str):
    return check_source(source, RULES, module="obs/x.py")


def test_time_time_fires():
    findings = obs("import time\nt0 = time.time()\n")
    assert [f.rule for f in findings] == ["CLOCK001"]


def test_datetime_now_fires():
    findings = obs("from datetime import datetime\nstamp = datetime.now()\n")
    assert [f.rule for f in findings] == ["CLOCK001"]


def test_datetime_utcnow_fires():
    findings = obs("from datetime import datetime\nstamp = datetime.utcnow()\n")
    assert [f.rule for f in findings] == ["CLOCK001"]


def test_from_time_import_time_fires_at_the_import():
    findings = obs("from time import time\n")
    assert [f.rule for f in findings] == ["CLOCK001"]
    assert findings[0].line == 1


def test_perf_counter_is_the_sanctioned_clock():
    src = "from time import perf_counter\nt0 = perf_counter()\n"
    assert obs(src) == []


def test_unrelated_time_attr_is_quiet():
    assert obs("import time\ntime.sleep(0.1)\n") == []


def test_methods_named_time_on_other_objects_are_quiet():
    assert obs("elapsed = stopwatch.time()\n") == []


def test_rule_is_scoped_to_obs():
    src = "import time\nt0 = time.time()\n"
    assert check_source(src, RULES, module="analysis/x.py") == []
    assert check_source(src, RULES, module="sim/x.py") == []
