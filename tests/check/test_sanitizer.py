"""Unit tests for the runtime sanitizer: recording, absorb, analysis."""

from __future__ import annotations

import os
import threading

import pytest

from repro.check import sanitizer as san_mod
from repro.check.sanitizer import (
    SanitizedLock,
    Sanitizer,
    analyze,
    assert_clean,
    get_sanitizer,
    sanitize_lock,
)


@pytest.fixture
def enabled():
    """A fresh active sanitizer; env + module state restored afterwards.

    The environment is managed by hand (not monkeypatch) so the final
    ``reset()`` re-reads the *restored* value -- a teardown ordered before
    the env restore would leave the sticky-disabled cache poisoned for the
    rest of a ``REPRO_SANITIZE=1`` session.
    """
    prev = os.environ.get(san_mod.ENV_VAR)
    os.environ[san_mod.ENV_VAR] = "1"
    san = san_mod.reset()
    assert san is not None
    yield san
    _restore_env(prev)
    san_mod.reset()


@pytest.fixture
def disabled():
    prev = os.environ.get(san_mod.ENV_VAR)
    os.environ.pop(san_mod.ENV_VAR, None)
    san_mod.reset()
    yield
    _restore_env(prev)
    san_mod.reset()


def _restore_env(prev):
    if prev is None:
        os.environ.pop(san_mod.ENV_VAR, None)
    else:
        os.environ[san_mod.ENV_VAR] = prev


# -- enable/disable singleton ------------------------------------------------


def test_disabled_by_default(disabled):
    assert get_sanitizer() is None


def test_sanitize_lock_is_identity_when_disabled(disabled):
    lock = threading.Lock()
    assert sanitize_lock(lock, "x") is lock


def test_enabled_returns_one_singleton(enabled):
    assert get_sanitizer() is enabled
    assert get_sanitizer() is get_sanitizer()


def test_assert_clean_requires_an_active_sanitizer(disabled):
    with pytest.raises(AssertionError, match="not active"):
        assert_clean()


# -- event recording ---------------------------------------------------------


def test_events_carry_pid_seq_and_clock(enabled):
    enabled.on_acquire("a")
    enabled.on_release("a")
    kinds = [e["kind"] for e in enabled.events]
    assert kinds == ["acquire", "release"]
    seqs = [e["seq"] for e in enabled.events]
    assert seqs == [1, 2]
    assert all(e["pid"] == enabled.pid for e in enabled.events)


def test_sanitized_lock_records_and_delegates(enabled):
    lock = threading.Lock()
    wrapped = sanitize_lock(lock, "L")
    assert isinstance(wrapped, SanitizedLock)
    with wrapped:
        assert lock.locked()
    assert not lock.locked()
    assert [e["kind"] for e in enabled.events] == ["acquire", "release"]
    assert [e["name"] for e in enabled.events] == ["L", "L"]


def test_failed_acquire_is_not_recorded(enabled):
    lock = threading.Lock()
    lock.acquire()
    wrapped = SanitizedLock(lock, "L")
    assert wrapped.acquire(blocking=False) is False
    assert enabled.events == []
    lock.release()


# -- absorb (cross-process merge) -------------------------------------------


def test_absorb_dedupes_on_pid_seq(enabled):
    worker_events = [
        {"pid": 99, "seq": 1, "kind": "acquire", "name": "a", "t": 0.0},
        {"pid": 99, "seq": 2, "kind": "release", "name": "a", "t": 0.1},
    ]
    assert enabled.absorb(worker_events) == 2
    # A persistent worker re-exports its full history with the next job.
    assert enabled.absorb(worker_events + [
        {"pid": 99, "seq": 3, "kind": "acquire", "name": "b", "t": 0.2},
    ]) == 1
    assert len(enabled.events) == 3


def test_absorb_skips_own_pid_and_malformed(enabled):
    enabled.on_acquire("a")
    echoes = [dict(e) for e in enabled.export_events()]
    assert enabled.absorb(echoes) == 0  # own events echoed back via a segment
    assert enabled.absorb([{"kind": "acquire"}, "garbage", {"pid": "x", "seq": "y"}]) == 0
    assert len(enabled.events) == 1


# -- analysis: lock ordering -------------------------------------------------


def _lock_events(pid, *names_in_order):
    """acquire all names in order, then release in reverse (one critical section)."""
    events = []
    seq = 0
    for name in names_in_order:
        seq += 1
        events.append({"pid": pid, "seq": seq, "kind": "acquire", "name": name, "t": seq * 0.1})
    for name in reversed(names_in_order):
        seq += 1
        events.append({"pid": pid, "seq": seq, "kind": "release", "name": name, "t": seq * 0.1})
    return events


def test_consistent_lock_order_is_clean():
    report = analyze(_lock_events(1, "a", "b") + _lock_events(2, "a", "b"))
    assert report.clean
    assert ("a", "b") in report.lock_edges


def test_lock_order_inversion_is_a_cycle():
    report = analyze(_lock_events(1, "a", "b") + _lock_events(2, "b", "a"))
    assert not report.clean
    assert report.findings[0].kind == "lock-cycle"
    assert "a" in report.findings[0].message and "b" in report.findings[0].message


def test_three_way_cycle_is_detected():
    events = (
        _lock_events(1, "a", "b") + _lock_events(2, "b", "c") + _lock_events(3, "c", "a")
    )
    report = analyze(events)
    assert [f.kind for f in report.findings] == ["lock-cycle"]


def test_signal_waits_stay_out_of_the_lock_graph():
    # A worker that "holds" a semaphore signal forever is normal
    # producer/consumer flow, not a mutual-exclusion edge.
    san = Sanitizer(pid=7)
    san.on_wait("produced[0]")
    san.on_acquire("a")
    san.on_release("a")
    san.on_post("consumed[0]")
    report = san.report()
    assert report.clean
    assert report.lock_edges == []


def test_reentrant_same_lock_is_not_an_edge():
    san = Sanitizer(pid=7)
    san.on_acquire("r")
    san.on_acquire("r")  # RLock re-entry
    san.on_release("r")
    san.on_release("r")
    assert san.report().clean


# -- analysis: resource lifecycle --------------------------------------------


def _open_close(pid, name, *, opens=1, closes=1, owner=True, seq0=0):
    events = []
    seq = seq0
    for _ in range(opens):
        seq += 1
        events.append(
            {"pid": pid, "seq": seq, "kind": "open", "name": name,
             "resource": "arena", "owner": owner, "t": seq * 0.1}
        )
    for _ in range(closes):
        seq += 1
        events.append(
            {"pid": pid, "seq": seq, "kind": "close", "name": name,
             "resource": "arena", "owner": owner, "t": seq * 0.1}
        )
    return events


def test_balanced_open_close_is_clean():
    assert analyze(_open_close(1, "seg")).clean


def test_owner_leak_is_detected():
    report = analyze(_open_close(1, "seg", opens=1, closes=0))
    assert [f.kind for f in report.findings] == ["arena-leak"]
    assert "seg" in report.findings[0].message


def test_unclosed_attachment_is_not_a_leak():
    # Pool workers cache attachments across jobs by design.
    report = analyze(_open_close(1, "seg", opens=1, closes=0, owner=False))
    assert report.clean


def test_double_close_is_detected_even_for_attachments():
    report = analyze(_open_close(1, "seg", opens=1, closes=2, owner=False))
    assert [f.kind for f in report.findings] == ["double-close"]


def test_same_name_in_different_processes_is_accounted_separately():
    # Coordinator creates+closes; worker attaches and (by design) keeps it.
    events = _open_close(1, "seg") + _open_close(2, "seg", closes=0, owner=False)
    assert analyze(events).clean


def test_assert_clean_raises_with_rendered_report(enabled):
    enabled.on_open("seg", "arena", True)
    with pytest.raises(AssertionError, match="arena-leak"):
        assert_clean()
    enabled.on_close("seg", "arena", True)
    report = assert_clean()
    assert report.clean and report.n_events == 2


def test_report_render_mentions_counts():
    san = Sanitizer(pid=3)
    san.on_acquire("a")
    text = san.report().render()
    assert "1 event(s)" in text and "0 finding(s)" in text
