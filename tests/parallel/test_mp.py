import numpy as np
import pytest

from repro.core import LocalAlignment, needleman_wunsch
from repro.parallel import (
    MpBlockedConfig,
    attach_shared_array,
    create_shared_array,
    mp_blocked_alignments,
    mp_phase2,
)
from repro.seq import genome_pair


class TestSharedArray:
    def test_create_and_attach(self):
        owner = create_shared_array((4, 5))
        try:
            owner.array[2, 3] = 42
            view = attach_shared_array(owner.name, (4, 5))
            try:
                assert view.array[2, 3] == 42
                view.array[0, 0] = 7
                assert owner.array[0, 0] == 7
            finally:
                view.close()
        finally:
            owner.close()

    def test_zero_initialised(self):
        arr = create_shared_array((10,))
        try:
            assert (arr.array == 0).all()
        finally:
            arr.close()


class TestMpBlocked:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MpBlockedConfig(n_workers=0)

    def test_single_worker_finds_regions(self):
        gp = genome_pair(500, 500, n_regions=1, region_length=70, mutation_rate=0.0, rng=50)
        found = mp_blocked_alignments(
            gp.s, gp.t, MpBlockedConfig(n_workers=1, n_bands=4, n_blocks=4)
        )
        assert found
        planted = gp.regions[0]
        assert abs(found[0].s_end - planted.s_end) <= 20

    def test_two_workers_match_one_worker(self):
        gp = genome_pair(600, 600, n_regions=2, region_length=60, mutation_rate=0.02, rng=51)
        one = mp_blocked_alignments(
            gp.s, gp.t, MpBlockedConfig(n_workers=1, n_bands=6, n_blocks=4)
        )
        two = mp_blocked_alignments(
            gp.s, gp.t, MpBlockedConfig(n_workers=2, n_bands=6, n_blocks=4)
        )
        assert [a.score for a in one] == [a.score for a in two]
        assert [a.region for a in one] == [a.region for a in two]

    def test_matches_simulated_backend(self):
        """The real and simulated backends agree on the alignment queue."""
        from repro.strategies import BlockedConfig, ScaledWorkload, run_blocked

        gp = genome_pair(500, 500, n_regions=1, region_length=80, mutation_rate=0.0, rng=52)
        real = mp_blocked_alignments(
            gp.s, gp.t, MpBlockedConfig(n_workers=2, n_bands=8, n_blocks=4)
        )
        simulated = run_blocked(
            ScaledWorkload(gp.s, gp.t),
            BlockedConfig(n_procs=2, n_bands=8, n_blocks=4),
        ).alignments
        assert [a.score for a in real] == [a.score for a in simulated]

    def test_no_regions_in_noise(self):
        gp = genome_pair(400, 400, n_regions=0, rng=53)
        found = mp_blocked_alignments(
            gp.s, gp.t, MpBlockedConfig(n_workers=2, n_bands=4, n_blocks=2, threshold=40)
        )
        assert found == []


class TestMpPhase2:
    def test_records_match_serial_nw(self):
        gp = genome_pair(800, 800, n_regions=2, region_length=60, mutation_rate=0.05, rng=54)
        regions = [
            LocalAlignment(10, p.s_start, p.s_end, p.t_start, p.t_end)
            for p in gp.regions
        ]
        records = mp_phase2(gp.s, gp.t, regions, n_workers=2)
        assert len(records) == 2
        for rec in records:
            reference = needleman_wunsch(
                gp.s[rec.source.s_start : rec.source.s_end],
                gp.t[rec.source.t_start : rec.source.t_end],
            )
            assert rec.similarity == reference.score

    def test_empty(self):
        gp = genome_pair(100, 100, n_regions=0, rng=55)
        assert mp_phase2(gp.s, gp.t, [], n_workers=2) == []

    def test_invalid_workers(self):
        gp = genome_pair(100, 100, n_regions=0, rng=56)
        with pytest.raises(ValueError):
            mp_phase2(gp.s, gp.t, [], n_workers=0)

    def test_sorted_by_size(self):
        gp = genome_pair(1000, 1000, n_regions=0, rng=57)
        regions = [
            LocalAlignment(5, 0, 50, 0, 50),
            LocalAlignment(5, 100, 400, 100, 400),
            LocalAlignment(5, 500, 600, 500, 600),
        ]
        records = mp_phase2(gp.s, gp.t, regions, n_workers=1)
        sizes = [r.source.size for r in records]
        assert sizes == sorted(sizes, reverse=True)
