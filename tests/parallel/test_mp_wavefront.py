import pytest

from repro.parallel.mp_wavefront import MpWavefrontConfig, mp_wavefront_alignments
from repro.seq import genome_pair


class TestMpWavefront:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MpWavefrontConfig(n_workers=0)
        with pytest.raises(ValueError):
            MpWavefrontConfig(rows_per_exchange=0)

    def test_single_worker(self):
        gp = genome_pair(400, 400, n_regions=1, region_length=60, mutation_rate=0.0, rng=120)
        found = mp_wavefront_alignments(gp.s, gp.t, MpWavefrontConfig(n_workers=1))
        assert found
        planted = gp.regions[0]
        assert abs(found[0].s_end - planted.s_end) <= 20

    def test_multi_worker_matches_single(self):
        gp = genome_pair(500, 500, n_regions=2, region_length=60, mutation_rate=0.02, rng=121)
        one = mp_wavefront_alignments(gp.s, gp.t, MpWavefrontConfig(n_workers=1))
        three = mp_wavefront_alignments(gp.s, gp.t, MpWavefrontConfig(n_workers=3))
        # the dominant alignments agree (border-split fragments may differ)
        assert max(a.score for a in one) == max(a.score for a in three)

    def test_batched_exchanges_same_result(self):
        """rows_per_exchange only changes timing, never results."""
        gp = genome_pair(400, 400, n_regions=1, region_length=70, mutation_rate=0.0, rng=122)
        fine = mp_wavefront_alignments(
            gp.s, gp.t, MpWavefrontConfig(n_workers=2, rows_per_exchange=1)
        )
        coarse = mp_wavefront_alignments(
            gp.s, gp.t, MpWavefrontConfig(n_workers=2, rows_per_exchange=64)
        )
        assert [a.region for a in fine] == [a.region for a in coarse]
        assert [a.score for a in fine] == [a.score for a in coarse]

    def test_matches_blocked_backend(self):
        from repro.parallel import MpBlockedConfig, mp_blocked_alignments

        gp = genome_pair(400, 400, n_regions=1, region_length=70, mutation_rate=0.0, rng=123)
        wavefront = mp_wavefront_alignments(gp.s, gp.t, MpWavefrontConfig(n_workers=2))
        blocked = mp_blocked_alignments(
            gp.s, gp.t, MpBlockedConfig(n_workers=2, n_bands=1, n_blocks=2)
        )
        assert max(a.score for a in wavefront) == max(a.score for a in blocked)

    def test_narrow_input_rejected(self):
        gp = genome_pair(10, 10, n_regions=0, rng=124)
        with pytest.raises(ValueError):
            mp_wavefront_alignments(gp.s, gp.t, MpWavefrontConfig(n_workers=16))
