"""Unit coverage for :mod:`repro.parallel.guard` (crash-safe collection)."""

from __future__ import annotations

import queue
import time
from types import SimpleNamespace

import pytest

from repro.parallel.guard import WorkerCrashed, drain_results, poll_until


def worker(exitcode=None):
    """A stand-in for ``multiprocessing.Process``: only exitcode is read."""
    return SimpleNamespace(exitcode=exitcode)


def loaded_queue(*items):
    q = queue.Queue()
    for item in items:
        q.put(item)
    return q


def test_collects_all_expected_results():
    results = loaded_queue((0, "a"), (1, "b"))
    out = drain_results(results, [worker(), worker()], 2, timeout=5.0, poll=0.01)
    assert out == {0: "a", 1: "b"}


def test_last_writer_wins_per_worker_id():
    results = loaded_queue((0, "first"), (0, "second"), (1, "b"))
    out = drain_results(results, [worker(), worker()], 2, timeout=5.0, poll=0.01)
    assert out == {0: "second", 1: "b"}


def test_crashed_worker_fails_fast():
    results = loaded_queue((0, "a"))
    workers = [worker(exitcode=0), worker(exitcode=-9)]  # SIGKILL
    t0 = time.monotonic()
    with pytest.raises(WorkerCrashed, match=r"-9"):
        drain_results(results, workers, 2, timeout=60.0, poll=0.01)
    assert time.monotonic() - t0 < 5.0  # surfaced well before the deadline


def test_all_exited_cleanly_but_result_missing():
    results = loaded_queue((0, "a"))
    workers = [worker(exitcode=0), worker(exitcode=0)]
    with pytest.raises(WorkerCrashed, match="never arrived"):
        drain_results(results, workers, 2, timeout=60.0, poll=0.01)


def test_clean_exit_flushes_the_feeder_grace_window():
    # All workers exited cleanly but the queue feeder is lagging: the first
    # poll comes up empty, then the one-shot grace 'get' must deliver.
    class LaggingQueue:
        def __init__(self):
            self.calls = 0

        def get(self, timeout=None):
            self.calls += 1
            if self.calls == 1:
                raise queue.Empty
            return (0, "late")

    results = LaggingQueue()
    out = drain_results(results, [worker(exitcode=0)], 1, timeout=5.0, poll=0.01)
    assert out == {0: "late"}
    assert results.calls == 2  # empty poll, then the grace read


def test_timeout_when_workers_alive_but_silent():
    results = queue.Queue()
    workers = [worker(exitcode=None)]  # still running, never reports
    with pytest.raises(TimeoutError, match="timed out"):
        drain_results(results, workers, 1, timeout=0.05, poll=0.01)


def test_poll_until_returns_once_condition_holds():
    state = {"n": 0}

    def condition():
        state["n"] += 1
        return state["n"] >= 3

    poll_until(condition, timeout=5.0, what="counter")
    assert state["n"] == 3


def test_poll_until_times_out_with_message():
    with pytest.raises(TimeoutError, match="band_done stuck"):
        poll_until(lambda: False, timeout=0.05, what="band_done stuck")
