"""Regression tests for the pool's shared-segment lifecycle fixes.

Two leak windows existed in ``AlignmentWorkerPool``:

* ``wavefront``/``blocked`` allocated two segments back to back; a failure
  allocating the second left the first one linked forever.  Fixed by nesting
  both in one ``with``.
* ``search`` created its :class:`SequenceArena` *before* entering the
  try/finally that closed it; any exception in between (metrics, queue
  dispatch) leaked the named segment.  Fixed by moving creation inside an
  outer ``try`` whose ``finally`` closes.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.parallel.pool as pool_mod
from repro.parallel.pool import AlignmentWorkerPool
from repro.seq.db import pack_database, synthetic_database


class Boom(RuntimeError):
    pass


@pytest.fixture
def pair():
    rng = np.random.default_rng(11)
    make = lambda: "".join(rng.choice(list("ACGT"), 200))
    return make(), make()


def _failing_second_allocation(monkeypatch):
    """Patch the pool's create_shared_array: 1st call real, 2nd raises."""
    real = pool_mod.create_shared_array
    created = []
    state = {"calls": 0}

    def wrapper(shape, dtype=np.int32):
        state["calls"] += 1
        if state["calls"] == 2:
            raise Boom("no memory for the second segment")
        arr = real(shape, dtype)
        created.append(arr)
        return arr

    monkeypatch.setattr(pool_mod, "create_shared_array", wrapper)
    return created


def test_wavefront_unwinds_first_segment_when_second_fails(monkeypatch, pair):
    with AlignmentWorkerPool(n_workers=2) as pool:
        created = _failing_second_allocation(monkeypatch)
        with pytest.raises(Boom):
            pool.wavefront(*pair)
    assert len(created) == 1
    assert created[0].shm is None  # closed (and unlinked) despite the failure


def test_blocked_unwinds_first_segment_when_second_fails(monkeypatch, pair):
    with AlignmentWorkerPool(n_workers=2) as pool:
        created = _failing_second_allocation(monkeypatch)
        with pytest.raises(Boom):
            pool.blocked(*pair)
    assert len(created) == 1
    assert created[0].shm is None


def test_search_closes_arena_when_dispatch_fails(monkeypatch):
    packed = pack_database(synthetic_database(n=4, min_length=50, max_length=80, rng=5))
    arenas = []
    real_arena = pool_mod.SequenceArena

    class TrackedArena(real_arena):
        def __init__(self, s, t):
            super().__init__(s, t)
            arenas.append(self)

    monkeypatch.setattr(pool_mod, "SequenceArena", TrackedArena)

    class BrokenQueue:
        def put(self, item):
            raise Boom("work queue unavailable")

        def get(self, *a, **k):
            import queue

            raise queue.Empty

    with AlignmentWorkerPool(n_workers=2) as pool:
        pool._works = [BrokenQueue() for _ in range(pool.n_workers)]
        with pytest.raises(Boom):
            pool.search("ACGTACGTACGT", packed, top_k=3)
    assert len(arenas) == 1
    assert arenas[0]._shm is None  # the fix: finally closes the arena


def test_search_happy_path_closes_arena_too(monkeypatch):
    packed = pack_database(synthetic_database(n=6, min_length=50, max_length=90, rng=6))
    arenas = []
    real_arena = pool_mod.SequenceArena

    class TrackedArena(real_arena):
        def __init__(self, s, t):
            super().__init__(s, t)
            arenas.append(self)

    monkeypatch.setattr(pool_mod, "SequenceArena", TrackedArena)
    with AlignmentWorkerPool(n_workers=2) as pool:
        hits = pool.search("ACGTACGTACGT", packed, top_k=3)
    assert hits
    assert arenas and all(a._shm is None for a in arenas)


def test_close_is_idempotent_and_releases_the_loaded_arena(pair):
    pool = AlignmentWorkerPool(n_workers=2)
    pool.load_pair(*pair)
    arena = pool._arena
    assert arena is not None
    pool.close()
    assert pool._arena is None and arena._shm is None
    pool.close()  # second close is a no-op, not a double-unlink
