"""Tests for the persistent shared-memory worker pool.

The pool must be a drop-in for the one-shot ``mp_*`` backends (identical
results), stay correct across many repeated requests (the amortisation case
it exists for), and fail fast -- not hang for the full timeout -- when a
worker dies.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import LocalAlignment
from repro.parallel import (
    AlignmentWorkerPool,
    MpBlockedConfig,
    MpWavefrontConfig,
    SequenceArena,
    SharedArray,
    WorkerCrashed,
    create_shared_array,
    mp_blocked_alignments,
    mp_phase2,
    mp_wavefront_alignments,
)
from repro.parallel.shm import attach_arena
from repro.seq import genome_pair


@pytest.fixture(scope="module")
def pair():
    return genome_pair(
        600, 600, n_regions=2, region_length=60, mutation_rate=0.02, rng=51
    )


@pytest.fixture(scope="module")
def pool():
    with AlignmentWorkerPool(n_workers=2) as p:
        yield p


class TestSequenceArena:
    def test_round_trip(self):
        s = np.array([0, 1, 2, 3, 1], dtype=np.uint8)
        t = np.array([3, 2, 1], dtype=np.uint8)
        with SequenceArena(s, t) as arena:
            shm, s_view, t_view = attach_arena(arena.handle)
            try:
                assert s_view.tolist() == s.tolist()
                assert t_view.tolist() == t.tolist()
                assert s_view.dtype == np.uint8
            finally:
                shm.close()

    def test_context_manager_unlinks(self):
        from multiprocessing import shared_memory

        s = np.zeros(4, dtype=np.uint8)
        with SequenceArena(s, s) as arena:
            name = arena.handle.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestSharedArrayLifecycle:
    def test_context_manager_unlinks(self):
        from multiprocessing import shared_memory

        with create_shared_array((3, 3)) as arr:
            name = arr.name
            arr.array[1, 1] = 9
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_idempotent(self):
        arr = create_shared_array((4,))
        arr.close()
        arr.close()  # second close is a no-op, not a crash

    def test_name_after_close_raises(self):
        arr = create_shared_array((4,))
        arr.close()
        with pytest.raises(ValueError):
            _ = arr.name


class TestPoolMatchesOneShotBackends:
    def test_wavefront_matches(self, pool, pair):
        config = MpWavefrontConfig(n_workers=2, rows_per_exchange=16)
        expected = mp_wavefront_alignments(pair.s, pair.t, config)
        got = pool.wavefront(pair.s, pair.t, config)
        assert [a.region for a in got] == [a.region for a in expected]
        assert [a.score for a in got] == [a.score for a in expected]

    def test_blocked_matches(self, pool, pair):
        config = MpBlockedConfig(n_workers=2, n_bands=6, n_blocks=4)
        expected = mp_blocked_alignments(pair.s, pair.t, config)
        got = pool.blocked(pair.s, pair.t, config)
        assert [a.region for a in got] == [a.region for a in expected]

    def test_phase2_matches(self, pool, pair):
        regions = [
            LocalAlignment(10, p.s_start, p.s_end, p.t_start, p.t_end)
            for p in pair.regions
        ]
        expected = mp_phase2(pair.s, pair.t, regions, n_workers=2)
        got = pool.phase2(regions, pair.s, pair.t)
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert g.similarity == e.similarity
            assert g.source.region == e.source.region

    def test_repeated_requests_stay_correct(self, pool, pair):
        """Ten requests on live workers: the amortisation scenario."""
        config = MpWavefrontConfig(n_workers=2, rows_per_exchange=16)
        expected = mp_wavefront_alignments(pair.s, pair.t, config)
        pool.load_pair(pair.s, pair.t)
        for _ in range(10):
            got = pool.wavefront(config=config)
            assert [a.region for a in got] == [a.region for a in expected]

    def test_pair_switch(self, pool, pair):
        other = genome_pair(
            400, 400, n_regions=1, region_length=70, mutation_rate=0.0, rng=50
        )
        config = MpWavefrontConfig(n_workers=2, rows_per_exchange=16)
        first = pool.wavefront(pair.s, pair.t, config)
        second = pool.wavefront(other.s, other.t, config)
        third = pool.wavefront(pair.s, pair.t, config)
        assert [a.region for a in first] == [a.region for a in third]
        assert [a.region for a in second] != [a.region for a in first]

    def test_phase2_empty(self, pool, pair):
        assert pool.phase2([], pair.s, pair.t) == []


class TestPoolLifecycle:
    def test_requires_loaded_pair(self):
        with AlignmentWorkerPool(n_workers=1) as p:
            with pytest.raises(ValueError):
                p.wavefront()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            AlignmentWorkerPool(n_workers=0)

    def test_submit_after_close_raises(self, pair):
        p = AlignmentWorkerPool(n_workers=1)
        p.close()
        with pytest.raises(RuntimeError):
            p.wavefront(pair.s, pair.t)

    def test_close_idempotent(self):
        p = AlignmentWorkerPool(n_workers=1)
        p.close()
        p.close()

    def test_worker_error_reports_not_hangs(self, pair):
        """A job-level error surfaces as PoolJobError and the pool survives."""
        from repro.parallel import PoolJobError

        with AlignmentWorkerPool(n_workers=2) as p:
            with pytest.raises((PoolJobError, ValueError)):
                # t narrower than worker count -> worker-side / parent-side error
                p.wavefront(pair.s[:4], pair.t[:1])
            # the pool still serves good jobs afterwards
            got = p.wavefront(
                pair.s, pair.t, MpWavefrontConfig(n_workers=2, rows_per_exchange=16)
            )
            assert got


class TestWorkerDeathDetection:
    def test_killed_worker_raises_quickly(self, pair):
        """SIGKILL one worker mid-pool: the request fails in seconds, it does
        not sit out the full 300 s job timeout."""
        pool = AlignmentWorkerPool(n_workers=2)
        try:
            pool.load_pair(pair.s, pair.t)
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            start = time.monotonic()
            with pytest.raises(WorkerCrashed):
                pool.wavefront(
                    config=MpWavefrontConfig(n_workers=2, rows_per_exchange=16)
                )
            assert time.monotonic() - start < 30.0
        finally:
            pool.close(join_timeout=0.5)
