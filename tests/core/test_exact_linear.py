import pytest
from hypothesis import given, settings

from repro.core import (
    DEFAULT_SCORING,
    Scoring,
    band_limit,
    exact_alignments_above,
    exact_best_alignment,
    predicted_necessary_fraction,
    predicted_unnecessary_cells,
    rebuild_alignment,
    reverse_scan,
    smith_waterman,
    sw_best_endpoint,
)
from repro.seq import decode, encode, genome_pair

from _strategies import dna_text

# The Section 6 worked example (Tables 5-7).
PAPER_S = "TCTCGACGGATTAGTATATATATA"
PAPER_T = "ATATGATCGGAATAGCTCT"


class TestBandLimit:
    def test_paper_scheme_k_plus_half_k(self):
        # "for the kth column, it is placed in row k + ceil(k/2)"
        assert band_limit(1) == 2
        assert band_limit(2) == 3
        assert band_limit(3) == 5
        assert band_limit(4) == 6
        assert band_limit(6) == 9

    def test_zero_column(self):
        assert band_limit(0) == 0

    def test_other_scoring(self):
        # match=1, gap=-1: border at 2k
        s = Scoring(match=1, mismatch=-1, gap=-1)
        assert band_limit(4, s) == 8


class TestPredictedArea:
    def test_fraction_tends_to_one_third(self):
        # Eq. (3): unnecessary ~ 2/3 n^2 - n, so necessary ~ 1/3 (~30%)
        frac = predicted_necessary_fraction(1000)
        assert 0.30 < frac < 0.36

    def test_small_n(self):
        assert predicted_necessary_fraction(0) == 1.0
        assert 0 <= predicted_necessary_fraction(3) <= 1.0

    def test_unnecessary_cells_monotone(self):
        values = [predicted_unnecessary_cells(n) for n in (10, 50, 100)]
        assert values[0] < values[1] < values[2]

    def test_eq2_closed_form_approximation(self):
        # paper: unnecessary ~ 2/3 n'^2 - n'
        n = 600
        approx = 2 / 3 * n * n - n
        assert abs(predicted_unnecessary_cells(n) - approx) / approx < 0.02


class TestReverseScan:
    def test_paper_example_start_positions(self):
        """Tables 5-6: score-6 alignment ends at (14, 15) of s x t with s as
        the shorter word indexing rows; the reverse scan finds its start."""
        s = encode(PAPER_T)  # shorter word indexes rows, as in the paper
        t = encode(PAPER_S)
        ep = sw_best_endpoint(s, t)
        assert ep.score == 6
        scan = reverse_scan(s[: ep.i], t[: ep.j], ep.score)
        assert scan.found
        assert scan.score >= 6

    def test_not_found_for_impossible_score(self):
        scan = reverse_scan(encode("ACGT"), encode("ACGT"), 100)
        assert not scan.found

    def test_band_prunes_cells(self):
        s = encode("ACGT" * 30)
        scan = reverse_scan(s, s, 120)
        assert scan.found
        # the banded scan computes well under the full rectangle
        assert scan.cells_computed < 0.8 * scan.cells_full

    def test_computed_fraction_approaches_theory(self):
        s = encode("ACGT" * 120)  # 480 BP identical pair
        scan = reverse_scan(s, s, 480)
        assert scan.found
        predicted = predicted_necessary_fraction(480)
        # identical sequences traverse the whole diagonal: worst case
        assert scan.computed_fraction == pytest.approx(predicted, rel=0.1)


class TestExactBestAlignment:
    @given(dna_text(4, 40), dna_text(4, 40))
    @settings(max_examples=60, deadline=None)
    def test_score_matches_full_sw(self, s, t):
        full = smith_waterman(s, t)
        if full.alignment.score == 0:
            return
        exact = exact_best_alignment(s, t)
        assert exact.result.alignment.score == full.alignment.score

    def test_alignment_coordinates_match_full_sw(self):
        gp = genome_pair(600, 600, n_regions=1, region_length=60, mutation_rate=0.0, rng=51)
        full = smith_waterman(gp.s, gp.t)
        exact = exact_best_alignment(gp.s, gp.t)
        assert exact.result.alignment.score == full.alignment.score
        assert (exact.result.s_start, exact.result.t_start) == (
            full.s_start,
            full.t_start,
        )

    def test_raises_on_no_similarity(self):
        with pytest.raises(ValueError):
            exact_best_alignment("AAAA", "TTTT")

    def test_alignment_verifies(self):
        exact = exact_best_alignment(PAPER_T, PAPER_S)
        assert exact.result.alignment.verify()
        assert exact.result.alignment.score == 6


class TestRebuildAlignment:
    def test_endpoint_out_of_bounds(self):
        from repro.core import ScoreEndpoint

        with pytest.raises(ValueError):
            rebuild_alignment("ACGT", "ACGT", ScoreEndpoint(4, 10, 2))

    def test_wrong_score_raises(self):
        from repro.core import ScoreEndpoint

        with pytest.raises(ValueError, match="no alignment"):
            rebuild_alignment("ACGT", "ACGT", ScoreEndpoint(99, 4, 4))


class TestExactAlignmentsAbove:
    def test_finds_all_planted(self):
        gp = genome_pair(1500, 1500, n_regions=2, region_length=70, mutation_rate=0.0, rng=52)
        results = exact_alignments_above(gp.s, gp.t, min_score=50)
        assert len(results) == 2
        starts = sorted((r.result.s_start, r.result.t_start) for r in results)
        planted = sorted((p.s_start, p.t_start) for p in gp.regions)
        for found, truth in zip(starts, planted):
            assert abs(found[0] - truth[0]) <= 5
            assert abs(found[1] - truth[1]) <= 5

    def test_space_accounting_present(self):
        gp = genome_pair(800, 800, n_regions=1, region_length=100, mutation_rate=0.0, rng=53)
        (result,) = exact_alignments_above(gp.s, gp.t, min_score=80)
        assert result.scan.cells_computed > 0
        assert result.scan.cells_computed <= result.scan.cells_full
