"""White-box tests of the Section 4.1 cell machinery."""

import pytest

from repro.core.heuristic import (
    HeuristicAligner,
    HeuristicParams,
    _fresh,
    _priority,
)
from repro.seq import encode


class TestCellPrimitives:
    def test_fresh_cell_layout(self):
        cell = _fresh(3, 7)
        score, bi, bj, max_s, max_i, max_j, min_s, gaps, matches, mismatches, flag = cell
        assert score == 0 and flag == 0
        assert (bi, bj) == (3, 7)
        assert (max_i, max_j) == (3, 7)
        assert gaps == matches == mismatches == 0

    def test_priority_expression(self):
        # 2*matches + 2*mismatches + gaps (Section 4.1)
        cell = (5, 0, 0, 5, 1, 1, 0, 3, 4, 2, 1)
        assert _priority(cell) == 2 * 4 + 2 * 2 + 3


class TestOpenCloseMachinery:
    def test_candidate_opens_after_climb(self):
        # 15 matching characters climb the score past open_delta = 10
        aligner = HeuristicAligner("ACGTACGTACGTACG", HeuristicParams(10, 10, 10))
        s = encode("ACGTACGTACGTACG")
        row = None
        for ch in s:
            row = aligner.step_row(int(ch))
        # the diagonal cell carries an open candidate (flag == 1)
        flags = [cell[10] for cell in row]
        assert 1 in flags

    def test_candidate_closes_on_drop(self):
        """After the match run ends, mismatch decay closes the candidate."""
        core = "ACGTACGTACGTACGT"
        s = core + "AAAAAAAAAAAAAAAAAAAA"
        t = core + "CCCCCCCCCCCCCCCCCCCC"
        aligner = HeuristicAligner(t, HeuristicParams(8, 8, 8))
        for ch in encode(s):
            aligner.step_row(int(ch))
        queue = aligner.flush()
        finalized = queue.finalize(min_score=8)
        assert finalized
        best = finalized[0]
        # closed at the score maximum: the end of the matching core
        assert best.s_end == len(core)
        assert best.t_end == len(core)
        assert best.score == len(core)

    def test_min_score_gates_queue(self):
        core = "ACGTACGTAC"  # climbs to 10
        s = core + "AAAAAAAAAAAAAAAA"
        t = core + "CCCCCCCCCCCCCCCC"
        strict = HeuristicAligner(t, HeuristicParams(5, 5, 50))
        for ch in encode(s):
            strict.step_row(int(ch))
        assert strict.flush().finalize(min_score=50) == []

    def test_row_width_constant(self):
        aligner = HeuristicAligner("ACGT")
        row = aligner.step_row(0)
        assert len(row) == 5  # boundary + 4 columns

    def test_counters_survive_close(self):
        """Section 4.1: 'These counters are not reset when the alignments
        are closed' -- so after a bad patch that closes the candidate but
        does not drive the score to zero, the counters keep accumulating.
        """
        core = "ACGTACGTACGT"
        bad = "AAAA"  # 4 mismatches: 12 -> 8, closes (delta 4) but stays > 0
        s = core + bad + core
        t = core + "CCCC" + core
        aligner = HeuristicAligner(t, HeuristicParams(4, 4, 4))
        row = None
        for ch in encode(s):
            row = aligner.step_row(int(ch))
        diag = row[len(t)]
        matches, mismatches = diag[8], diag[9]
        assert matches >= 2 * len(core) - 4
        assert mismatches >= len(bad) - 1
