"""Striped kernel: bitwise parity, overflow escalation, profile cache.

The striped workspaces promise the same contract as the classic ones --
scores bitwise identical to independent :class:`KernelWorkspace` scans --
while running narrow int8/int16 lanes.  These tests pin that contract on
adversarial inputs (high-scoring repeats, extreme match scores, padded
tails) and check the recovery machinery itself: the escalation ladder must
re-scan *only* flagged lanes, escalated results must equal a straight int32
run bit for bit, and the overflow / profile-cache counters must fire both
in the module stats and through the ``repro.obs`` metrics registry.
"""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_SCORING,
    TRANSITION_TRANSVERSION,
    KernelWorkspace,
    MultiSequenceWorkspace,
    Scoring,
    StripedMultiWorkspace,
    StripedPairWorkspace,
    pack_codes,
)
from repro.core.kernels import SCORE_DTYPE, initial_row
from repro.core.striped import (
    LANE_MODES,
    PROFILE_CACHE_CAPACITY,
    LaneLimits,
    clear_profile_cache,
    overflow_stats,
    profile_cache_stats,
    reset_overflow_stats,
    score_bounds,
)
from repro.obs import observed
from repro.seq import random_dna


@pytest.fixture(autouse=True)
def _fresh_striped_state():
    """Each test sees empty cache and zeroed overflow counters."""
    clear_profile_cache()
    reset_overflow_stats()
    yield
    clear_profile_cache()
    reset_overflow_stats()


def reference_best(query, target, scoring) -> int:
    ws = KernelWorkspace(target, scoring)
    prev = initial_row(len(target), local=True)
    best = 0
    for ch in query:
        prev = ws.sw_row(prev, int(ch), out=prev)
        best = max(best, int(prev.max()) if prev.size else 0)
    return best


def reference_scores(query, targets, scoring) -> np.ndarray:
    return np.array(
        [reference_best(query, t, scoring) for t in targets], dtype=SCORE_DTYPE
    )


def make_batch(rng, k, lo, hi):
    return [random_dna(int(rng.integers(lo, hi + 1)), rng) for _ in range(k)]


class TestScoreBounds:
    def test_default_scoring(self):
        assert score_bounds(DEFAULT_SCORING) == (-1, 1)

    def test_matrix_bounds_are_global_not_summary(self):
        """MatrixScoring.match/mismatch are diag-max/off-min; the probe must
        see the true global extremes of the matrix instead."""
        lo, hi = score_bounds(TRANSITION_TRANSVERSION)
        flat = [x for row in TRANSITION_TRANSVERSION.matrix for x in row]
        assert (lo, hi) == (min(flat), max(flat))


class TestMultiParity:
    @pytest.mark.parametrize(
        "scoring",
        [DEFAULT_SCORING, TRANSITION_TRANSVERSION, Scoring(3, -2, -4)],
        ids=["default", "matrix", "custom"],
    )
    @pytest.mark.parametrize("lane_mode", LANE_MODES)
    def test_mixed_lengths_match_pairwise(self, rng, scoring, lane_mode):
        targets = make_batch(rng, 9, 1, 120)
        query = random_dna(60, rng)
        ws = StripedMultiWorkspace(*pack_codes(targets), scoring, lane_mode=lane_mode)
        got = ws.sw_best_scores(query)
        assert got.dtype == SCORE_DTYPE
        np.testing.assert_array_equal(got, reference_scores(query, targets, scoring))

    def test_fuzz_many_seeds(self):
        """Parity over varied batch geometries and segment remainders."""
        for seed in range(8):
            rng = np.random.default_rng(seed)
            targets = make_batch(rng, int(rng.integers(1, 14)), 1, 90)
            query = random_dna(int(rng.integers(1, 70)), rng)
            ws = StripedMultiWorkspace(*pack_codes(targets))
            np.testing.assert_array_equal(
                ws.sw_best_scores(query),
                reference_scores(query, targets, DEFAULT_SCORING),
                err_msg=f"seed {seed}",
            )

    def test_forced_seg_one_and_seg_width(self, rng):
        """Degenerate segment geometries: one plane, and one segment."""
        targets = make_batch(rng, 4, 10, 40)
        query = random_dna(30, rng)
        want = reference_scores(query, targets, DEFAULT_SCORING)
        for seg in (1, max(len(t) for t in targets)):
            ws = StripedMultiWorkspace(*pack_codes(targets), seg=seg)
            np.testing.assert_array_equal(ws.sw_best_scores(query), want)

    def test_heavily_padded_tail(self, rng):
        targets = [random_dna(64, rng), random_dna(1, rng), random_dna(2, rng)]
        query = random_dna(30, rng)
        ws = StripedMultiWorkspace(*pack_codes(targets))
        np.testing.assert_array_equal(
            ws.sw_best_scores(query), reference_scores(query, targets, DEFAULT_SCORING)
        )

    def test_empty_lane_scores_zero(self, rng):
        targets = [random_dna(12, rng), random_dna(0, rng)]
        ws = StripedMultiWorkspace(*pack_codes(targets))
        assert ws.sw_best_scores(random_dna(10, rng))[1] == 0

    def test_empty_batch_and_empty_query(self, rng):
        ws = StripedMultiWorkspace(*pack_codes([]))
        assert ws.sw_best_scores(random_dna(5, rng)).shape == (0,)
        ws = StripedMultiWorkspace(*pack_codes([random_dna(8, rng)]))
        np.testing.assert_array_equal(ws.sw_best_scores(np.array([], np.uint8)), [0])

    def test_validation(self):
        with pytest.raises(ValueError):
            StripedMultiWorkspace(np.zeros(4, np.uint8), [4])
        with pytest.raises(ValueError):
            StripedMultiWorkspace(np.zeros((2, 4), np.uint8), [4])
        with pytest.raises(ValueError):
            StripedMultiWorkspace(np.zeros((1, 4), np.uint8), [5])
        with pytest.raises(ValueError):
            StripedMultiWorkspace(np.zeros((1, 4), np.uint8), [4], lane_mode="int64")


class TestOverflowEscalation:
    def test_int8_overflow_escalates_and_matches_int32(self, rng):
        """A long self-identical repeat blows past the int8 cap; the ladder
        result must be bitwise equal to a straight int32 run."""
        repeat = random_dna(400, rng)
        targets = [repeat, random_dna(50, rng)]
        codes, lengths = pack_codes(targets)
        auto = StripedMultiWorkspace(codes, lengths, lane_mode="auto")
        got = auto.sw_best_scores(repeat)
        stats = overflow_stats()
        assert stats["lanes"] >= 1 and stats["recomputes"] >= 1
        int32 = StripedMultiWorkspace(codes, lengths, lane_mode="int32")
        reset_overflow_stats()
        straight = int32.sw_best_scores(repeat)
        assert overflow_stats() == {"lanes": 0, "recomputes": 0}
        np.testing.assert_array_equal(got, straight)
        assert int(got[0]) == 400 * DEFAULT_SCORING.match
        np.testing.assert_array_equal(
            got, reference_scores(repeat, targets, DEFAULT_SCORING)
        )

    def test_only_flagged_lanes_recomputed(self, rng):
        """One hot lane among many cold ones: exactly one lane escalates."""
        hot = random_dna(300, rng)
        targets = [random_dna(60, rng) for _ in range(6)] + [hot]
        codes, lengths = pack_codes(targets)
        ws = StripedMultiWorkspace(codes, lengths, lane_mode="int8", seg=8)
        got = ws.sw_best_scores(hot)
        stats = overflow_stats()
        assert stats["lanes"] == 1
        assert stats["recomputes"] == 1
        np.testing.assert_array_equal(
            got, reference_scores(hot, targets, DEFAULT_SCORING)
        )

    def test_two_rung_escalation_int8_int16_int32(self, rng):
        """Extreme match scores push one lane through int8 *and* int16."""
        scoring = Scoring(300, -1, -2)
        lo, hi = score_bounds(scoring)
        # int8 cannot represent a +300 profile entry at all: the ladder must
        # skip it rather than scan with a wrapped profile.
        assert not LaneLimits(np.int8, 4, scoring.gap, lo, hi).fits
        repeat = random_dna(400, rng)
        targets = [repeat, random_dna(40, rng)]
        codes, lengths = pack_codes(targets)
        auto = StripedMultiWorkspace(codes, lengths, scoring, lane_mode="auto")
        got = auto.sw_best_scores(repeat)  # 120,000 > int16 cap: escalate
        stats = overflow_stats()
        assert stats["lanes"] >= 1
        straight = StripedMultiWorkspace(
            codes, lengths, scoring, lane_mode="int32"
        ).sw_best_scores(repeat)
        np.testing.assert_array_equal(got, straight)
        assert int(got[0]) == 400 * 300

    def test_int32_flag_rescued_by_classic(self, rng):
        """Scores near the int32 ceiling trip even the int32 cap; the flagged
        lane must be handed to the classic workspace and still come back
        exact (the true score fits SCORE_DTYPE, only the conservative
        threshold fired)."""
        scoring = Scoring(800_000_000, -1, -2)
        target = np.array([0, 0], dtype=np.uint8)
        codes, lengths = pack_codes([target])
        ws = StripedMultiWorkspace(codes, lengths, scoring, lane_mode="int32")
        got = ws.sw_best_scores(target)
        assert overflow_stats()["lanes"] == 1
        assert int(got[0]) == 1_600_000_000
        classic = MultiSequenceWorkspace(codes, lengths, scoring)
        np.testing.assert_array_equal(got, classic.sw_best_scores(target))

    def test_obs_counters_fire(self, rng):
        repeat = random_dna(300, rng)
        codes, lengths = pack_codes([repeat])
        with observed("test") as (_, metrics):
            StripedMultiWorkspace(codes, lengths, lane_mode="int8").sw_best_scores(
                repeat
            )
        assert metrics.counter("striped_overflow_lanes").value >= 1
        assert metrics.counter("striped_recomputes").value >= 1
        assert metrics.counter("striped_profile_misses").value >= 1


class TestProfileCache:
    def test_repeat_scans_hit_the_cache(self, rng):
        targets = make_batch(rng, 5, 20, 60)
        codes, lengths = pack_codes(targets)
        q1, q2 = random_dna(30, rng), random_dna(30, rng)
        ws = StripedMultiWorkspace(codes, lengths)
        ws.sw_best_scores(q1)
        after_first = profile_cache_stats()
        assert after_first["misses"] >= 1
        ws.sw_best_scores(q2)
        after_second = profile_cache_stats()
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] > after_first["hits"]

    def test_distinct_scorings_miss(self, rng):
        codes, lengths = pack_codes(make_batch(rng, 3, 20, 40))
        q = random_dna(20, rng)
        StripedMultiWorkspace(codes, lengths).sw_best_scores(q)
        StripedMultiWorkspace(codes, lengths, Scoring(2, -1, -2)).sw_best_scores(q)
        assert profile_cache_stats()["misses"] >= 2

    def test_lru_eviction(self, rng):
        q = random_dna(10, rng)
        for _ in range(PROFILE_CACHE_CAPACITY + 2):
            codes, lengths = pack_codes(make_batch(rng, 1, 8, 16))
            StripedMultiWorkspace(codes, lengths).sw_best_scores(q)
        assert profile_cache_stats()["evictions"] >= 1

    def test_obs_hit_counter(self, rng):
        codes, lengths = pack_codes(make_batch(rng, 2, 20, 40))
        q = random_dna(15, rng)
        with observed("test") as (_, metrics):
            ws = StripedMultiWorkspace(codes, lengths)
            ws.sw_best_scores(q)
            ws.sw_best_scores(q)
        assert metrics.counter("striped_profile_hits").value >= 1


class TestPairWorkspace:
    def test_sw_row_parity(self, rng):
        t = random_dna(97, rng)  # deliberately not a multiple of any seg
        s = random_dna(40, rng)
        classic = KernelWorkspace(t)
        striped = StripedPairWorkspace(t)
        pc = initial_row(len(t), local=True)
        ps = initial_row(len(t), local=True)
        for ch in s:
            pc = classic.sw_row(pc, int(ch), out=pc)
            ps = striped.sw_row(ps, int(ch), out=ps)
            np.testing.assert_array_equal(ps, pc)

    @pytest.mark.parametrize(
        "scoring",
        [DEFAULT_SCORING, TRANSITION_TRANSVERSION, Scoring(3, -2, -4)],
        ids=["default", "matrix", "custom"],
    )
    def test_sw_rows_batched_parity(self, rng, scoring):
        t = random_dna(83, rng)
        s = random_dna(31, rng)
        classic = KernelWorkspace(t, scoring)
        striped = StripedPairWorkspace(t, scoring)
        init = initial_row(len(t), local=True)
        want = np.empty((len(s), len(t) + 1), dtype=SCORE_DTYPE)
        got = np.empty_like(want)
        classic.sw_rows(init, s, out=want)
        striped.sw_rows(init, s, out=got)
        np.testing.assert_array_equal(got, want)

    def test_sw_row_slice_parity(self, rng):
        """Column-sliced rows with a nonzero left border (blocked pipelines)."""
        t = random_dna(64, rng)
        s = random_dna(20, rng)
        classic = KernelWorkspace(t)
        striped = StripedPairWorkspace(t)
        pc = initial_row(len(t), local=True)
        ps = pc.copy()
        for i, ch in enumerate(s):
            border = 3 * i  # monotone synthetic border, exceeds span eventually
            pc = classic.sw_row_slice(pc, int(ch), border, out=pc)
            ps = striped.sw_row_slice(ps, int(ch), border, out=ps)
            np.testing.assert_array_equal(ps, pc)

    def test_wide_target_inherits_classic(self):
        """The classic int64-widening regime is out of the striped layout's
        range; construction must fall back instead of mis-scoring."""
        ws = StripedPairWorkspace(np.zeros(8, np.uint8), Scoring(2**28, -1, -2))
        assert not ws._striped
        assert ws._wide

    def test_empty_target_inherits_classic(self, rng):
        ws = StripedPairWorkspace(np.array([], np.uint8))
        assert not ws._striped
        row = ws.sw_row(initial_row(0, local=True), 1)
        assert row.tolist() == [0]

    def test_rejects_wrong_prev_size(self, rng):
        ws = StripedPairWorkspace(random_dna(20, rng))
        with pytest.raises(ValueError):
            ws.sw_row(np.zeros(5, dtype=SCORE_DTYPE), 0)

    def test_nw_row_still_classic(self, rng):
        """nw_row is inherited untouched: global rows have no zero clamp."""
        t = random_dna(30, rng)
        classic = KernelWorkspace(t)
        striped = StripedPairWorkspace(t)
        prev = initial_row(len(t), local=False)
        np.testing.assert_array_equal(
            striped.nw_row(prev, 2, 1), classic.nw_row(prev, 2, 1)
        )
