import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import needleman_wunsch
from repro.core.banded import band_width_for, banded_global, banded_global_score
from repro.seq import decode, mutate, random_dna

from _strategies import dna_text, scorings


class TestBandWidth:
    def test_includes_length_difference(self):
        assert band_width_for(100, 120) == 28
        assert band_width_for(50, 50, extra=4) == 4


class TestBandedScore:
    @given(dna_text(1, 30), dna_text(1, 30))
    @settings(max_examples=80, deadline=None)
    def test_wide_band_is_exact(self, s, t):
        """A band covering the whole matrix must reproduce plain NW."""
        width = max(len(s), len(t))
        assert banded_global_score(s, t, width) == needleman_wunsch(s, t).score

    @given(dna_text(1, 24), dna_text(1, 24), scorings)
    @settings(max_examples=40, deadline=None)
    def test_wide_band_exact_any_scoring(self, s, t, scoring):
        width = max(len(s), len(t))
        assert banded_global_score(s, t, width, scoring) == needleman_wunsch(
            s, t, scoring
        ).score

    def test_narrow_band_lower_bounds(self):
        s = random_dna(80, rng=1)
        t = mutate(s, 0.05, rng=2)
        exact = needleman_wunsch(s, t).score
        banded = banded_global_score(s, t, width=band_width_for(len(s), len(t)))
        assert banded <= exact
        # similar sequences: the optimum stays in the band
        assert banded == exact

    def test_too_narrow_band_rejected(self):
        with pytest.raises(ValueError):
            banded_global_score("A" * 10, "A" * 30, width=5)

    def test_default_width_exact_for_similar_pairs(self):
        s = random_dna(200, rng=3)
        t = mutate(s, 0.03, rng=4)
        assert banded_global_score(s, t) == needleman_wunsch(s, t).score


class TestBandedTraceback:
    @given(dna_text(1, 24), dna_text(1, 24))
    @settings(max_examples=60, deadline=None)
    def test_alignment_valid_and_optimal_with_wide_band(self, s, t):
        width = max(len(s), len(t))
        g = banded_global(s, t, width)
        assert g.verify()
        assert g.score == needleman_wunsch(s, t).score
        assert g.aligned_s.replace("-", "") == s
        assert g.aligned_t.replace("-", "") == t

    def test_similar_pair_default_band(self):
        s = random_dna(150, rng=5)
        t = mutate(s, 0.06, rng=6)
        g = banded_global(s, t)
        assert g.verify()
        assert g.score == needleman_wunsch(s, t).score

    def test_empty_sequences(self):
        g = banded_global("", "ACG", width=3)
        assert g.aligned_s == "---" and g.score == -6
        g2 = banded_global("ACG", "", width=3)
        assert g2.aligned_t == "---"
