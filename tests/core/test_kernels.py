import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Scoring, count_hits, initial_row, nw_row, sw_row
from repro.core.kernels import (
    SCORE_DTYPE,
    nw_row_naive,
    row_maximum,
    sw_row_naive,
)
from repro.seq import encode

from _strategies import dna_codes, scorings


class TestInitialRow:
    def test_local_zeros(self):
        row = initial_row(5, local=True)
        assert row.tolist() == [0, 0, 0, 0, 0, 0]

    def test_global_gap_multiples(self):
        row = initial_row(4, local=False)
        assert row.tolist() == [0, -2, -4, -6, -8]

    def test_dtype(self):
        assert initial_row(3, local=True).dtype == SCORE_DTYPE


class TestSwRow:
    def test_single_match(self):
        t = encode("A")
        prev = initial_row(1, local=True)
        row = sw_row(prev, 0, t)  # 'A' vs "A"
        assert row.tolist() == [0, 1]

    def test_single_mismatch_floors_at_zero(self):
        t = encode("C")
        prev = initial_row(1, local=True)
        row = sw_row(prev, 0, t)
        assert row.tolist() == [0, 0]

    def test_horizontal_chain_resolved(self):
        # After a strong diagonal score, horizontal gaps must decay by |gap|
        t = encode("AAAA")
        prev = np.array([0, 10, 0, 0, 0], dtype=SCORE_DTYPE)
        row = sw_row(prev, 3, t)  # 'T' mismatches everywhere
        # cell 2 takes the diagonal (10 - 1 = 9); cells 3, 4 chain
        # horizontally from it, decaying by |gap| = 2 per step
        assert row[2] == 9
        assert row[3] == 7
        assert row[4] == 5

    @given(dna_codes(1, 40), st.integers(0, 3), scorings)
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_from_zero_row(self, t, s_char, scoring):
        prev = initial_row(len(t), local=True, scoring=scoring)
        fast = sw_row(prev, s_char, t, scoring)
        slow = sw_row_naive(prev, s_char, t, scoring)
        assert np.array_equal(fast, slow)

    @given(
        dna_codes(1, 30),
        st.integers(0, 3),
        st.lists(st.integers(0, 25), min_size=1, max_size=31),
        scorings,
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_from_arbitrary_row(self, t, s_char, prev_vals, scoring):
        prev = np.zeros(len(t) + 1, dtype=SCORE_DTYPE)
        n = min(len(prev_vals), len(prev))
        prev[:n] = prev_vals[:n]
        fast = sw_row(prev, s_char, t, scoring)
        slow = sw_row_naive(prev, s_char, t, scoring)
        assert np.array_equal(fast, slow)

    def test_output_nonnegative(self):
        t = encode("ACGTACGT")
        prev = initial_row(len(t), local=True)
        for ch in range(4):
            assert (sw_row(prev, ch, t) >= 0).all()


class TestNwRow:
    def test_first_row_step(self):
        t = encode("GA")
        prev = initial_row(2, local=False)
        row = nw_row(prev, 2, t, -2)  # 'G' vs "GA"
        assert row.tolist() == [-2, 1, -1]

    @given(
        dna_codes(1, 30),
        st.integers(0, 3),
        st.integers(1, 10),
        scorings,
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_naive(self, t, s_char, i, scoring):
        prev = initial_row(len(t), local=False, scoring=scoring)
        boundary = i * scoring.gap
        fast = nw_row(prev, s_char, t, boundary, scoring)
        slow = nw_row_naive(prev, s_char, t, boundary, scoring)
        assert np.array_equal(fast, slow)

    def test_boundary_respected(self):
        t = encode("ACGT")
        prev = initial_row(4, local=False)
        row = nw_row(prev, 0, t, -2)
        assert row[0] == -2


class TestCountHits:
    def test_excludes_boundary(self):
        row = np.array([100, 1, 5, 10], dtype=SCORE_DTYPE)
        assert count_hits(row, 5) == 2

    def test_empty_data(self):
        assert count_hits(np.array([0], dtype=SCORE_DTYPE), 1) == 0

    def test_threshold_inclusive(self):
        row = np.array([0, 7], dtype=SCORE_DTYPE)
        assert count_hits(row, 7) == 1
        assert count_hits(row, 8) == 0


class TestRowMaximum:
    def test_basic(self):
        row = np.array([0, 3, 9, 9], dtype=SCORE_DTYPE)
        assert row_maximum(row) == (9, 2)  # leftmost tie

    def test_boundary_excluded(self):
        row = np.array([50, 1, 2], dtype=SCORE_DTYPE)
        assert row_maximum(row) == (2, 2)

    def test_no_data_raises(self):
        with pytest.raises(ValueError):
            row_maximum(np.array([0], dtype=SCORE_DTYPE))


class TestKernelsWithMatrixScoring:
    def test_sw_row_matches_naive_under_substitution_matrix(self):
        from repro.core import TRANSITION_TRANSVERSION

        t = encode("ACGTACGTACGT")
        prev = initial_row(len(t), local=True, scoring=TRANSITION_TRANSVERSION)
        for ch in range(4):
            fast = sw_row(prev, ch, t, TRANSITION_TRANSVERSION)
            slow = sw_row_naive(prev, ch, t, TRANSITION_TRANSVERSION)
            assert np.array_equal(fast, slow)
            prev = fast

    def test_sw_row_matches_naive_under_blosum(self):
        from repro.protein import BLOSUM62_SCORING, PROTEIN_ALPHABET

        t = PROTEIN_ALPHABET.encode("MKVLAWGRRNDE")
        prev = initial_row(len(t), local=True, scoring=BLOSUM62_SCORING)
        for ch in (0, 5, 17):
            fast = sw_row(prev, ch, t, BLOSUM62_SCORING)
            slow = sw_row_naive(prev, ch, t, BLOSUM62_SCORING)
            assert np.array_equal(fast, slow)
            prev = fast
