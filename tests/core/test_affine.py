import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AffineScoring,
    Scoring,
    affine_best_score,
    affine_matrices,
    affine_needleman_wunsch,
    affine_smith_waterman,
    needleman_wunsch,
    smith_waterman,
)
from repro.core.affine import gotoh_naive
from repro.seq import encode

from _strategies import dna_text

affine_scorings = st.builds(
    AffineScoring,
    match=st.integers(1, 4),
    mismatch=st.integers(-4, 0),
    gap_open=st.integers(-8, -2),
    gap_extend=st.integers(-2, -1),
).filter(lambda sc: sc.gap_open <= sc.gap_extend)


class TestAffineScoring:
    def test_defaults_valid(self):
        sc = AffineScoring()
        assert sc.gap_open <= sc.gap_extend < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AffineScoring(gap_open=-1, gap_extend=-2)  # open cheaper than extend
        with pytest.raises(ValueError):
            AffineScoring(gap_extend=0)
        with pytest.raises(ValueError):
            AffineScoring(match=0, mismatch=0)

    def test_gap_run_score(self):
        sc = AffineScoring(gap_open=-4, gap_extend=-1)
        assert sc.gap_run_score(0) == 0
        assert sc.gap_run_score(1) == -4
        assert sc.gap_run_score(3) == -6

    def test_alignment_score_counts_openings(self):
        sc = AffineScoring(match=2, mismatch=-1, gap_open=-4, gap_extend=-1)
        # one 2-gap run: -4 -1; four matches: +8
        assert sc.alignment_score("AC--GT", "ACAAGT") == 8 - 5
        # two 1-gap runs: -4 each
        assert sc.alignment_score("A-C-GT", "AACAGT") == 8 - 8

    def test_double_space_rejected(self):
        with pytest.raises(ValueError):
            AffineScoring().alignment_score("-", "-")


class TestAffineLocal:
    def test_simple_match(self):
        r = affine_smith_waterman("ACGTACGT", "ACGTACGT")
        assert r.alignment.score == 16
        assert r.alignment.aligned_s == "ACGTACGT"

    def test_prefers_one_long_gap_over_two_short(self):
        # affine costs make a single 2-gap run cheaper than two 1-gap runs
        sc = AffineScoring(match=2, mismatch=-3, gap_open=-4, gap_extend=-1)
        s = "ACGTACGTACGT"
        t = "ACGTAC" + "GG" + "GTACGT"  # 2 inserted bases mid-sequence
        r = affine_smith_waterman(s, t, sc)
        rendered = r.alignment.aligned_s
        assert "--" in rendered  # contiguous gap, not split
        assert r.alignment.score == sc.alignment_score(
            r.alignment.aligned_s, r.alignment.aligned_t
        )

    @given(dna_text(1, 28), dna_text(1, 28), affine_scorings)
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_gotoh(self, s, t, sc):
        H, _, _ = affine_matrices(s, t, sc, local=True)
        assert int(H.max()) == gotoh_naive(s, t, sc, local=True)

    @given(dna_text(1, 24), dna_text(1, 24), affine_scorings)
    @settings(max_examples=60, deadline=None)
    def test_traceback_score_consistent(self, s, t, sc):
        r = affine_smith_waterman(s, t, sc)
        assert sc.alignment_score(r.alignment.aligned_s, r.alignment.aligned_t) == (
            r.alignment.score
        )
        assert s[r.s_start : r.s_end] == r.alignment.aligned_s.replace("-", "")
        assert t[r.t_start : r.t_end] == r.alignment.aligned_t.replace("-", "")

    @given(dna_text(1, 24), dna_text(1, 24))
    @settings(max_examples=60, deadline=None)
    def test_reduces_to_linear_when_open_equals_extend(self, s, t):
        affine = AffineScoring(match=1, mismatch=-1, gap_open=-2, gap_extend=-2)
        linear = Scoring(match=1, mismatch=-1, gap=-2)
        assert affine_best_score(s, t, affine) == smith_waterman(s, t, linear).alignment.score

    @given(dna_text(1, 28), dna_text(1, 28), affine_scorings)
    @settings(max_examples=60, deadline=None)
    def test_linear_space_score_matches_full(self, s, t, sc):
        H, _, _ = affine_matrices(s, t, sc, local=True)
        assert affine_best_score(s, t, sc) == int(H.max())


class TestAffineGlobal:
    def test_identical(self):
        g = affine_needleman_wunsch("ACGT", "ACGT")
        assert g.score == 8

    def test_empty_vs_sequence(self):
        sc = AffineScoring(gap_open=-4, gap_extend=-1)
        g = affine_needleman_wunsch("", "ACG", sc)
        assert g.score == sc.gap_run_score(3) == -6

    @given(dna_text(0, 22), dna_text(0, 22), affine_scorings)
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_gotoh(self, s, t, sc):
        g = affine_needleman_wunsch(s, t, sc)
        assert g.score == gotoh_naive(s, t, sc, local=False)

    @given(dna_text(0, 20), dna_text(0, 20), affine_scorings)
    @settings(max_examples=60, deadline=None)
    def test_alignment_verifies(self, s, t, sc):
        g = affine_needleman_wunsch(s, t, sc)
        assert sc.alignment_score(g.aligned_s, g.aligned_t) == g.score
        assert g.aligned_s.replace("-", "") == s
        assert g.aligned_t.replace("-", "") == t

    @given(dna_text(0, 20), dna_text(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_reduces_to_linear_global(self, s, t):
        affine = AffineScoring(match=1, mismatch=-1, gap_open=-2, gap_extend=-2)
        linear = Scoring(match=1, mismatch=-1, gap=-2)
        assert (
            affine_needleman_wunsch(s, t, affine).score
            == needleman_wunsch(s, t, linear).score
        )
