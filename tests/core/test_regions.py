import numpy as np
import pytest

from repro.core import RegionConfig, StreamingRegionFinder, find_regions
from repro.core.kernels import SCORE_DTYPE
from repro.seq import genome_pair


def row(values):
    return np.array([0] + list(values), dtype=SCORE_DTYPE)


class TestRegionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RegionConfig(threshold=0)
        with pytest.raises(ValueError):
            RegionConfig(threshold=5, col_tolerance=-1)
        with pytest.raises(ValueError):
            RegionConfig(threshold=5, min_hits=0)


class TestStreamingFinder:
    def test_single_hit_region(self):
        f = StreamingRegionFinder(RegionConfig(threshold=5))
        f.feed(1, row([0, 7, 0]))
        regions = f.finish()
        assert len(regions) == 1
        r = regions[0]
        assert r.score == 7
        assert (r.peak_i, r.peak_j) == (1, 2)
        assert r.region == (0, 1, 1, 2)

    def test_rows_must_increase(self):
        f = StreamingRegionFinder(RegionConfig(threshold=5))
        f.feed(1, row([9]))
        with pytest.raises(ValueError):
            f.feed(1, row([9]))

    def test_diagonal_streak_single_region(self):
        f = StreamingRegionFinder(RegionConfig(threshold=5))
        for i in range(1, 11):
            values = [0] * 20
            values[i] = 6 + i
            f.feed(i, row(values))
        regions = f.finish()
        assert len(regions) == 1
        assert regions[0].score == 16
        assert regions[0].n_hits == 10

    def test_distant_hits_two_regions(self):
        f = StreamingRegionFinder(RegionConfig(threshold=5, col_tolerance=3, row_tolerance=3))
        values = [0] * 100
        values[5] = 9
        values[80] = 9
        f.feed(1, row(values))
        assert len(f.finish()) == 2

    def test_row_gap_beyond_tolerance_splits(self):
        cfg = RegionConfig(threshold=5, row_tolerance=2)
        f = StreamingRegionFinder(cfg)
        one = [0] * 10
        one[4] = 8
        f.feed(1, row(one))
        f.feed(10, row(one))
        assert len(f.finish()) == 2

    def test_regions_merge_when_bridged(self):
        cfg = RegionConfig(threshold=5, col_tolerance=4, row_tolerance=4)
        f = StreamingRegionFinder(cfg)
        a = [0] * 20
        a[3] = 8
        b = [0] * 20
        b[9] = 8
        bridge = [0] * 20
        bridge[3] = 8
        bridge[6] = 8
        bridge[9] = 8
        f.feed(1, row(a))
        f.feed(2, row(bridge))
        f.feed(3, row(b))
        assert len(f.finish()) == 1

    def test_min_hits_filters(self):
        cfg = RegionConfig(threshold=5, min_hits=3)
        f = StreamingRegionFinder(cfg)
        values = [0] * 10
        values[4] = 9
        f.feed(1, row(values))
        assert f.finish() == []

    def test_finish_sorted_by_score(self):
        f = StreamingRegionFinder(RegionConfig(threshold=5, col_tolerance=1))
        values = [0] * 50
        values[5] = 7
        values[40] = 30
        f.feed(1, row(values))
        regions = f.finish()
        assert [r.score for r in regions] == [30, 7]


class TestFindRegions:
    def test_recovers_planted_regions(self):
        gp = genome_pair(3000, 3000, n_regions=3, region_length=100, mutation_rate=0.03, rng=7)
        regions = find_regions(gp.s, gp.t, RegionConfig(threshold=35))
        top = regions[:3]
        assert len(top) == 3
        for planted in gp.regions:
            assert any(
                abs(r.peak_i - planted.s_end) < 25 and abs(r.peak_j - planted.t_end) < 25
                for r in top
            ), (planted, [r.region for r in top])

    def test_no_regions_in_unrelated_noise(self):
        gp = genome_pair(1000, 1000, n_regions=0, rng=8)
        regions = find_regions(gp.s, gp.t, RegionConfig(threshold=40))
        assert regions == []

    def test_as_alignment_ends_at_peak(self):
        gp = genome_pair(1200, 1200, n_regions=1, region_length=90, mutation_rate=0.0, rng=9)
        r = find_regions(gp.s, gp.t, RegionConfig(threshold=30))[0]
        a = r.as_alignment()
        assert a.s_end == r.peak_i and a.t_end == r.peak_j
        assert a.score == r.score

    def test_separate_regions_not_merged(self):
        gp = genome_pair(4000, 4000, n_regions=3, region_length=100, mutation_rate=0.05, rng=10)
        regions = find_regions(gp.s, gp.t, RegionConfig(threshold=30))
        top_regions = [r for r in regions if r.score > 60]
        assert len(top_regions) == 3
