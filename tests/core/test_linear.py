import numpy as np
from hypothesis import given, settings

from repro.core import (
    iter_sw_rows,
    nw_last_row,
    similarity_matrix,
    sw_best_endpoint,
    sw_endpoints_above,
    sw_row_hits,
    sw_scan,
)
from repro.core.matrix import best_cell
from repro.seq import genome_pair

from _strategies import dna_codes, dna_text, scorings


class TestIterSwRows:
    @given(dna_codes(1, 24), dna_codes(1, 24))
    @settings(max_examples=60, deadline=None)
    def test_rows_match_full_matrix(self, s, t):
        H = similarity_matrix(s, t, local=True)
        for i, row in iter_sw_rows(s, t):
            assert np.array_equal(row, H[i])

    def test_yields_m_rows(self):
        rows = list(iter_sw_rows("ACGT", "AC"))
        assert [i for i, _ in rows] == [1, 2, 3, 4]


class TestBestEndpoint:
    @given(dna_text(1, 30), dna_text(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_matches_full_matrix(self, s, t):
        H = similarity_matrix(s, t, local=True)
        ep = sw_best_endpoint(s, t)
        assert ep.score == int(H.max())
        if ep.score > 0:
            assert H[ep.i, ep.j] == ep.score
            assert (ep.i, ep.j) == best_cell(H)

    def test_zero_for_dissimilar(self):
        ep = sw_best_endpoint("AAAA", "TTTT")
        assert ep.score == 0 and (ep.i, ep.j) == (0, 0)

    @given(dna_text(1, 24), dna_text(1, 24), scorings)
    @settings(max_examples=40, deadline=None)
    def test_custom_scoring(self, s, t, scoring):
        H = similarity_matrix(s, t, local=True, scoring=scoring)
        assert sw_best_endpoint(s, t, scoring).score == int(H.max())


class TestEndpointsAbove:
    def test_planted_regions_all_found(self):
        gp = genome_pair(1500, 1500, n_regions=2, region_length=80, mutation_rate=0.0, rng=21)
        eps = sw_endpoints_above(gp.s, gp.t, min_score=50)
        # Decay-tail summits may add extra endpoints (resolved at rebuild
        # time, see exact_alignments_above); both planted endpoints must be
        # among them.
        assert len(eps) >= 2
        planted = sorted((p.s_end, p.t_end) for p in gp.regions)
        for pi, pj in planted:
            assert any(abs(e.i - pi) <= 10 and abs(e.j - pj) <= 10 for e in eps)

    def test_scores_at_least_threshold(self):
        gp = genome_pair(1000, 1000, n_regions=1, region_length=60, mutation_rate=0.0, rng=22)
        for ep in sw_endpoints_above(gp.s, gp.t, min_score=40):
            assert ep.score >= 40

    def test_rejects_nonpositive_threshold(self):
        import pytest

        with pytest.raises(ValueError):
            sw_endpoints_above("ACGT", "ACGT", min_score=0)


class TestRowHits:
    @given(dna_codes(1, 20), dna_codes(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_matches_full_matrix_counts(self, s, t):
        H = similarity_matrix(s, t, local=True)
        hits = sw_row_hits(s, t, threshold=2)
        expected = (H[1:, 1:] >= 2).sum(axis=1)
        assert np.array_equal(hits, expected)

    def test_zero_threshold_region(self):
        hits = sw_row_hits("AAAA", "CCCC", threshold=1)
        assert hits.sum() == 0


class TestNwLastRow:
    @given(dna_text(0, 20), dna_text(0, 20), scorings)
    @settings(max_examples=60, deadline=None)
    def test_matches_full_matrix(self, s, t, scoring):
        H = similarity_matrix(s, t, local=False, scoring=scoring)
        assert np.array_equal(nw_last_row(s, t, scoring), H[-1])

    def test_empty_s_gives_gap_row(self):
        assert nw_last_row("", "ACG").tolist() == [0, -2, -4, -6]


class TestSwScan:
    def test_on_row_sees_every_row(self):
        seen = []
        sw_scan("ACGTAC", "ACGT", on_row=lambda i, row: seen.append(i))
        assert seen == [1, 2, 3, 4, 5, 6]

    def test_scan_and_best_agree(self):
        gp = genome_pair(500, 500, n_regions=1, region_length=50, mutation_rate=0.0, rng=23)
        assert sw_scan(gp.s, gp.t) == sw_best_endpoint(gp.s, gp.t)
