"""Cross-mode properties: local / global / semiglobal / banded relate as the
textbook says they must.  Brute-force oracles over tiny inputs."""

from hypothesis import given, settings

from repro.core import needleman_wunsch, smith_waterman
from repro.core.banded import banded_global_score
from repro.core.semiglobal import semiglobal

from _strategies import dna_text


class TestSemiglobalOracle:
    @given(dna_text(1, 6), dna_text(1, 9))
    @settings(max_examples=80, deadline=None)
    def test_semiglobal_is_best_substring_global(self, s, t):
        """semiglobal(s, t) == max over substrings u of t of NW(s, u)."""
        best = max(
            needleman_wunsch(s, t[i:j]).score
            for i in range(len(t) + 1)
            for j in range(i, len(t) + 1)
        )
        assert semiglobal(s, t).alignment.score == best


class TestModeOrdering:
    @given(dna_text(1, 12), dna_text(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_local_dominates_semiglobal_dominates_global(self, s, t):
        """SW aligns any pieces, semiglobal must consume s, NW must consume
        both: each restriction can only lower the score."""
        local = smith_waterman(s, t).alignment.score
        semi = semiglobal(s, t).alignment.score
        glob = needleman_wunsch(s, t).score
        assert local >= semi >= glob

    @given(dna_text(0, 12), dna_text(0, 12))
    @settings(max_examples=60, deadline=None)
    def test_banded_never_exceeds_global(self, s, t):
        width = max(abs(len(s) - len(t)), 1)
        banded = banded_global_score(s, t, width)
        assert banded <= needleman_wunsch(s, t).score

    @given(dna_text(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_all_modes_agree_on_self_alignment(self, s):
        n = len(s)
        assert smith_waterman(s, s).alignment.score == n
        assert semiglobal(s, s).alignment.score == n
        assert needleman_wunsch(s, s).score == n
        assert banded_global_score(s, s, 2) == n
