import numpy as np
import pytest

from repro.core import DEFAULT_SCORING, Scoring
from repro.seq import encode


class TestScoring:
    def test_paper_defaults(self):
        assert DEFAULT_SCORING == Scoring(match=1, mismatch=-1, gap=-2)

    def test_nonnegative_gap_rejected(self):
        with pytest.raises(ValueError):
            Scoring(gap=0)

    def test_match_below_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Scoring(match=-1, mismatch=0, gap=-2)

    def test_substitution_row(self):
        t = encode("ACGA")
        row = DEFAULT_SCORING.substitution_row(0, t)  # 'A'
        assert row.tolist() == [1, -1, -1, 1]
        assert row.dtype == np.int32

    def test_column_score(self):
        s = DEFAULT_SCORING
        assert s.column_score("A", "A") == 1
        assert s.column_score("A", "C") == -1
        assert s.column_score("A", "-") == -2
        assert s.column_score("-", "T") == -2

    def test_double_space_column_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_SCORING.column_score("-", "-")

    def test_alignment_score_fig1(self):
        # Paper Fig. 1: GACGGATTAG vs GATCGGAATAG scores 6 (9 matches,
        # 1 mismatch, 1 space)
        a = "GA-CGGATTAG"
        b = "GATCGGAATAG"
        assert DEFAULT_SCORING.alignment_score(a, b) == 6

    def test_alignment_score_length_mismatch(self):
        with pytest.raises(ValueError):
            DEFAULT_SCORING.alignment_score("AC", "A")

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_SCORING.match = 5  # type: ignore[misc]
