import numpy as np
import pytest

from repro.core import DEFAULT_SCORING, Scoring
from repro.seq import encode


class TestScoring:
    def test_paper_defaults(self):
        assert DEFAULT_SCORING == Scoring(match=1, mismatch=-1, gap=-2)

    def test_nonnegative_gap_rejected(self):
        with pytest.raises(ValueError):
            Scoring(gap=0)

    def test_match_below_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Scoring(match=-1, mismatch=0, gap=-2)

    def test_substitution_row(self):
        t = encode("ACGA")
        row = DEFAULT_SCORING.substitution_row(0, t)  # 'A'
        assert row.tolist() == [1, -1, -1, 1]
        assert row.dtype == np.int32

    def test_column_score(self):
        s = DEFAULT_SCORING
        assert s.column_score("A", "A") == 1
        assert s.column_score("A", "C") == -1
        assert s.column_score("A", "-") == -2
        assert s.column_score("-", "T") == -2

    def test_double_space_column_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_SCORING.column_score("-", "-")

    def test_alignment_score_fig1(self):
        # Paper Fig. 1: GACGGATTAG vs GATCGGAATAG scores 6 (9 matches,
        # 1 mismatch, 1 space)
        a = "GA-CGGATTAG"
        b = "GATCGGAATAG"
        assert DEFAULT_SCORING.alignment_score(a, b) == 6

    def test_alignment_score_length_mismatch(self):
        with pytest.raises(ValueError):
            DEFAULT_SCORING.alignment_score("AC", "A")

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_SCORING.match = 5  # type: ignore[misc]


class TestScoreDtypePinned:
    """Regression: every substitution_row stays SCORE_DTYPE (int32).

    ``np.where`` promotes to int64 on some platforms and a stray wide row
    silently doubles DP memory traffic, so the pin is asserted for every
    scoring flavour, plus the initial_row builder that seeds each scan.
    """

    def test_plain_scoring_row_dtype(self):
        from repro.core.scoring import SCORE_DTYPE

        t = encode("ACGTACGT")
        for ch in range(4):
            assert DEFAULT_SCORING.substitution_row(ch, t).dtype == SCORE_DTYPE

    def test_matrix_scoring_row_dtype(self):
        from repro.core import TRANSITION_TRANSVERSION
        from repro.core.scoring import SCORE_DTYPE

        t = encode("ACGTACGT")
        for ch in range(4):
            assert TRANSITION_TRANSVERSION.substitution_row(ch, t).dtype == SCORE_DTYPE

    def test_affine_scoring_row_dtype(self):
        from repro.core import DEFAULT_AFFINE
        from repro.core.scoring import SCORE_DTYPE

        t = encode("ACGTACGT")
        assert DEFAULT_AFFINE.substitution_row(1, t).dtype == SCORE_DTYPE

    def test_protein_scoring_row_dtype(self):
        from repro.core.scoring import SCORE_DTYPE
        from repro.protein import BLOSUM62_SCORING, PROTEIN_ALPHABET
        from repro.protein.blosum import BLOSUM62_AFFINE

        t = PROTEIN_ALPHABET.encode("MKVLAWGRRNDE")
        assert BLOSUM62_SCORING.substitution_row(3, t).dtype == SCORE_DTYPE
        assert BLOSUM62_AFFINE.substitution_row(3, t).dtype == SCORE_DTYPE

    def test_initial_row_dtype_both_modes(self):
        from repro.core import initial_row
        from repro.core.scoring import SCORE_DTYPE

        assert initial_row(16, local=True).dtype == SCORE_DTYPE
        assert initial_row(16, local=False).dtype == SCORE_DTYPE
        assert initial_row(4, local=False).tolist() == [0, -2, -4, -6, -8]
