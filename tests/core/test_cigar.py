import pytest
from hypothesis import given, settings

from repro.core import (
    GlobalAlignment,
    alignment_from_cigar,
    alignment_stats,
    cigar_of,
    expand_cigar,
    needleman_wunsch,
    smith_waterman,
)

from _strategies import dna_text


def ga(a, b):
    from repro.core import DEFAULT_SCORING

    return GlobalAlignment(a, b, DEFAULT_SCORING.alignment_score(a, b))


class TestCigarOf:
    def test_all_match(self):
        assert cigar_of(ga("ACGT", "ACGT")) == "4="

    def test_mismatch_runs(self):
        assert cigar_of(ga("AATT", "AACC")) == "2=2X"

    def test_classic_m_mode(self):
        assert cigar_of(ga("AATT", "AACC"), extended=False) == "4M"

    def test_insertion_and_deletion(self):
        assert cigar_of(ga("AC-GT", "A-CGT")) == "1=1I1D2="

    def test_empty(self):
        assert cigar_of(ga("", "")) == ""


class TestExpandCigar:
    def test_parse(self):
        assert expand_cigar("3=1X2D") == [(3, "="), (1, "X"), (2, "D")]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            expand_cigar("3=banana")
        with pytest.raises(ValueError):
            expand_cigar("=3")

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            expand_cigar("0=")

    def test_empty(self):
        assert expand_cigar("") == []


class TestRoundtrip:
    @given(dna_text(0, 30), dna_text(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_nw_alignment_roundtrips(self, s, t):
        g = needleman_wunsch(s, t)
        cigar = cigar_of(g)
        rebuilt = alignment_from_cigar(cigar, s, t)
        assert rebuilt.aligned_s == g.aligned_s
        assert rebuilt.aligned_t == g.aligned_t
        assert rebuilt.score == g.score

    def test_m_mode_roundtrips_with_sequences(self):
        g = needleman_wunsch("GACGGATTAG", "GATCGGAATAG")
        rebuilt = alignment_from_cigar(cigar_of(g, extended=False), "GACGGATTAG", "GATCGGAATAG")
        assert rebuilt.aligned_s == g.aligned_s

    def test_span_mismatch_rejected(self):
        with pytest.raises(ValueError):
            alignment_from_cigar("2=", "ACG", "AC")


class TestAlignmentStats:
    def test_counts(self):
        stats = alignment_stats(ga("AC-GTT", "AACGT-"))
        assert stats.matches == 3  # A, G, T
        assert stats.mismatches == 1  # C vs A
        assert stats.deletions == 1  # '-' in query
        assert stats.insertions == 1  # '-' in reference
        assert stats.gap_runs == 2
        assert stats.length == 6

    def test_identities(self):
        stats = alignment_stats(ga("AC-T", "ACGT"))
        assert stats.identity == pytest.approx(3 / 4)
        assert stats.gapless_identity == pytest.approx(1.0)

    def test_contiguous_gap_one_run(self):
        stats = alignment_stats(ga("A---T", "AACGT"))
        assert stats.gap_runs == 1
        assert stats.deletions == 3

    def test_empty(self):
        stats = alignment_stats(ga("", ""))
        assert stats.identity == 0.0 and stats.length == 0

    @given(dna_text(1, 24), dna_text(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_consistent_with_global_alignment(self, s, t):
        g = smith_waterman(s, t).alignment
        stats = alignment_stats(g)
        assert stats.matches == g.matches
        assert stats.length == g.length
        assert stats.matches + stats.mismatches + stats.gap_characters == g.length
