import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AlignmentQueue, GlobalAlignment, LocalAlignment


def mk(score=10, s=(0, 10), t=(0, 10)):
    return LocalAlignment(score=score, s_start=s[0], s_end=s[1], t_start=t[0], t_end=t[1])


class TestLocalAlignment:
    def test_lengths(self):
        a = mk(s=(2, 10), t=(3, 7))
        assert a.s_length == 8 and a.t_length == 4 and a.size == 8

    def test_invalid_coordinates(self):
        with pytest.raises(ValueError):
            mk(s=(5, 2))
        with pytest.raises(ValueError):
            LocalAlignment(1, -1, 2, 0, 2)

    def test_paper_coordinates_one_based(self):
        a = mk(s=(38, 100), t=(55, 120))
        begin, end = a.paper_coordinates()
        assert begin == (39, 56)
        assert end == (100, 120)

    def test_overlaps_true(self):
        assert mk(s=(0, 10), t=(0, 10)).overlaps(mk(s=(5, 15), t=(5, 15)))

    def test_overlaps_false_disjoint_rows(self):
        assert not mk(s=(0, 10), t=(0, 10)).overlaps(mk(s=(20, 30), t=(0, 10)))

    def test_overlaps_with_slack(self):
        a, b = mk(s=(0, 10), t=(0, 10)), mk(s=(12, 20), t=(12, 20))
        assert not a.overlaps(b)
        assert a.overlaps(b, slack=3)

    def test_shifted(self):
        a = mk(s=(1, 5), t=(2, 6)).shifted(100, 200)
        assert a.region == (101, 105, 202, 206)

    def test_ordering_by_score(self):
        assert mk(score=5) < mk(score=9)


class TestGlobalAlignment:
    def test_matches_and_identity(self):
        g = GlobalAlignment("AC-GT", "ACTGA", -1)
        assert g.matches == 3
        assert g.identity == pytest.approx(3 / 5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GlobalAlignment("AC", "A", 0)

    def test_verify_true_and_false(self):
        ok = GlobalAlignment("ACGT", "ACGT", 4)
        assert ok.verify()
        bad = GlobalAlignment("ACGT", "ACGT", 3)
        assert not bad.verify()

    def test_render_blocks(self):
        g = GlobalAlignment("ACGTACGT", "ACGAACGT", 6)
        out = g.render(width=4)
        lines = out.split("\n")
        assert lines[0] == "ACGT"
        assert lines[1] == "|||"  # ruler trailing spaces are trimmed
        assert lines[2] == "ACGA"

    def test_empty_alignment_identity_zero(self):
        assert GlobalAlignment("", "", 0).identity == 0.0


class TestAlignmentQueue:
    def test_push_and_len(self):
        q = AlignmentQueue()
        q.push(mk())
        assert len(q) == 1

    def test_merge_gathers(self):
        q1, q2 = AlignmentQueue([mk()]), AlignmentQueue([mk(s=(20, 30), t=(20, 30))])
        q1.merge(q2)
        assert len(q1) == 2

    def test_finalize_removes_exact_duplicates(self):
        q = AlignmentQueue([mk(), mk()])
        assert len(q.finalize()) == 1

    def test_finalize_sorted_by_size_desc(self):
        q = AlignmentQueue(
            [mk(score=5, s=(0, 5), t=(0, 5)), mk(score=3, s=(100, 150), t=(100, 150))]
        )
        out = q.finalize()
        assert [a.size for a in out] == [50, 5]

    def test_finalize_min_score_filter(self):
        q = AlignmentQueue([mk(score=5), mk(score=20, s=(50, 60), t=(50, 60))])
        out = q.finalize(min_score=10)
        assert [a.score for a in out] == [20]

    def test_finalize_drops_overlapping_smaller(self):
        big = mk(score=50, s=(0, 100), t=(0, 100))
        small = mk(score=10, s=(40, 50), t=(40, 50))
        out = AlignmentQueue([big, small]).finalize()
        assert out == [big]

    def test_finalize_keeps_disjoint(self):
        a = mk(score=10, s=(0, 10), t=(0, 10))
        b = mk(score=10, s=(50, 60), t=(50, 60))
        assert len(AlignmentQueue([a, b]).finalize()) == 2

    @given(
        st.lists(
            st.tuples(st.integers(1, 50), st.integers(0, 100), st.integers(1, 30)),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_finalize_idempotent(self, specs):
        items = [
            mk(score=sc, s=(start, start + ln), t=(start, start + ln))
            for sc, start, ln in specs
        ]
        once = AlignmentQueue(items).finalize()
        twice = AlignmentQueue(once).finalize()
        assert once == twice
