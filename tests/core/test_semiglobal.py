import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import needleman_wunsch, smith_waterman
from repro.core.semiglobal import locate, semiglobal, semiglobal_matrix
from repro.seq import decode, genome_pair, mutate, random_dna

from _strategies import dna_text


class TestSemiglobal:
    def test_exact_substring_found_for_free(self):
        reference = random_dna(300, rng=130)
        fragment = reference[100:140]
        result = semiglobal(fragment, reference)
        assert result.alignment.score == 40  # every base matches, gaps free
        assert (result.t_start, result.t_end) == (100, 140)

    def test_consumes_all_of_s(self):
        s, t = "ACGTACGT", "TTTTACGTACGTTTTT"
        result = semiglobal(s, t)
        assert result.s_start == 0 and result.s_end == len(s)
        assert result.alignment.aligned_s.replace("-", "") == s

    def test_mutated_fragment_located(self):
        reference = random_dna(500, rng=131)
        fragment = mutate(reference[200:280], 0.05, rng=132)
        t_start, t_end, score = locate(fragment, reference)
        assert abs(t_start - 200) <= 5
        assert abs(t_end - 280) <= 5
        assert score > 0.8 * len(fragment)

    @given(dna_text(1, 20), dna_text(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_between_local_and_global(self, s, t):
        """Semiglobal is at most the local and at least the global score."""
        semi = semiglobal(s, t).alignment.score
        assert semi <= smith_waterman(s, t).alignment.score + len(s) * 2
        assert semi >= needleman_wunsch(s, t).score

    @given(dna_text(1, 20), dna_text(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_alignment_consistent(self, s, t):
        result = semiglobal(s, t)
        g = result.alignment
        assert g.aligned_s.replace("-", "") == s
        assert t[result.t_start : result.t_end] == g.aligned_t.replace("-", "")
        assert g.verify()

    def test_matrix_first_row_zero(self):
        H = semiglobal_matrix("ACG", "TTTT")
        assert (H[0] == 0).all()
        assert H[1, 0] == -2 and H[3, 0] == -6

    def test_fragment_of_planted_region(self):
        gp = genome_pair(800, 800, n_regions=1, region_length=100, mutation_rate=0.03, rng=133)
        planted = gp.regions[0]
        fragment = gp.s[planted.s_start : planted.s_end]
        t_start, t_end, score = locate(fragment, gp.t)
        assert abs(t_start - planted.t_start) <= 10
        assert abs(t_end - planted.t_end) <= 10
