import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    DEFAULT_SCORING,
    MatrixTooLarge,
    best_cell,
    local_alignments_above,
    needleman_wunsch,
    similarity_matrix,
    smith_waterman,
)
from repro.seq import decode, encode, genome_pair

from _strategies import dna_codes, dna_text, scorings


class TestSimilarityMatrix:
    def test_local_first_row_and_column_zero(self):
        H = similarity_matrix("ACGT", "TGCA", local=True)
        assert (H[0] == 0).all() and (H[:, 0] == 0).all()

    def test_global_borders_gap_multiples(self):
        H = similarity_matrix("AC", "GT", local=False)
        assert H[0].tolist() == [0, -2, -4]
        assert H[:, 0].tolist() == [0, -2, -4]

    def test_identical_sequences_diagonal(self):
        H = similarity_matrix("ACGT", "ACGT", local=True)
        assert H[4, 4] == 4
        assert np.all(np.diag(H) == np.arange(5))

    def test_local_nonnegative(self):
        H = similarity_matrix("ACGTACGT", "TTGACCAG", local=True)
        assert (H >= 0).all()

    def test_size_cap(self):
        with pytest.raises(MatrixTooLarge):
            similarity_matrix(
                np.zeros(10_000, dtype=np.uint8), np.zeros(10_000, dtype=np.uint8)
            )

    @given(dna_codes(0, 24), dna_codes(0, 24))
    @settings(max_examples=60, deadline=None)
    def test_local_cell_recurrence(self, s, t):
        """Every interior cell satisfies Eq. (1) of the paper."""
        H = similarity_matrix(s, t, local=True)
        for i in range(1, len(s) + 1):
            for j in range(1, len(t) + 1):
                sub = 1 if s[i - 1] == t[j - 1] else -1
                expected = max(
                    0, H[i - 1, j - 1] + sub, H[i - 1, j] - 2, H[i, j - 1] - 2
                )
                assert H[i, j] == expected


class TestBestCell:
    def test_position(self):
        H = similarity_matrix("ACGT", "ACGT", local=True)
        assert best_cell(H) == (4, 4)

    def test_tie_prefers_first_row_major(self):
        H = np.array([[0, 5], [5, 0]])
        assert best_cell(H) == (0, 1)


class TestSmithWaterman:
    def test_perfect_match(self):
        r = smith_waterman("ACGTT", "ACGTT")
        assert r.alignment.score == 5
        assert r.alignment.aligned_s == "ACGTT"
        assert (r.s_start, r.s_end) == (0, 5)

    def test_embedded_match(self):
        r = smith_waterman("TTTTACGTACGTTTTT", "GGGGACGTACGTGGGG")
        assert r.alignment.score == 8
        assert r.alignment.aligned_s == "ACGTACGT"
        assert r.s_start == 4 and r.t_start == 4

    def test_no_similarity_scores_zero_or_one(self):
        r = smith_waterman("AAAA", "TTTT")
        assert r.alignment.score == 0

    def test_alignment_score_is_consistent(self):
        r = smith_waterman("GACGGATTAG", "GATCGGAATAG")
        assert r.alignment.verify()

    def test_coordinates_name_the_subsequences(self):
        s, t = "TTACGTGG", "CCACGTAA"
        r = smith_waterman(s, t)
        assert s[r.s_start : r.s_end] == r.alignment.aligned_s.replace("-", "")
        assert t[r.t_start : r.t_end] == r.alignment.aligned_t.replace("-", "")

    @given(dna_text(1, 32), dna_text(1, 32))
    @settings(max_examples=80, deadline=None)
    def test_score_equals_matrix_max(self, s, t):
        H = similarity_matrix(s, t, local=True)
        assert smith_waterman(s, t).alignment.score == int(H.max())

    @given(dna_text(1, 24), dna_text(1, 24), scorings)
    @settings(max_examples=60, deadline=None)
    def test_traceback_score_consistent(self, s, t, scoring):
        r = smith_waterman(s, t, scoring)
        assert r.alignment.verify(scoring)
        assert s[r.s_start : r.s_end] == r.alignment.aligned_s.replace("-", "")
        assert t[r.t_start : r.t_end] == r.alignment.aligned_t.replace("-", "")

    @given(dna_text(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_self_alignment_is_identity(self, s):
        r = smith_waterman(s, s)
        assert r.alignment.score == len(s)
        assert r.alignment.aligned_s == s

    @given(dna_text(1, 20), dna_text(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, s, t):
        assert (
            smith_waterman(s, t).alignment.score
            == smith_waterman(t, s).alignment.score
        )


class TestNeedlemanWunsch:
    def test_fig1_example(self):
        # Paper Fig. 1: global alignment of GACGGATTAG / GATCGGAATAG has
        # score 6.
        g = needleman_wunsch("GACGGATTAG", "GATCGGAATAG")
        assert g.score == 6
        assert g.verify()

    def test_identical(self):
        g = needleman_wunsch("ACGT", "ACGT")
        assert g.score == 4 and g.identity == 1.0

    def test_empty_vs_sequence(self):
        g = needleman_wunsch("", "ACG")
        assert g.score == -6
        assert g.aligned_s == "---"

    def test_both_empty(self):
        g = needleman_wunsch("", "")
        assert g.score == 0 and g.length == 0

    @given(dna_text(0, 24), dna_text(0, 24), scorings)
    @settings(max_examples=60, deadline=None)
    def test_score_verifies(self, s, t, scoring):
        g = needleman_wunsch(s, t, scoring)
        assert g.verify(scoring)
        assert g.aligned_s.replace("-", "") == s
        assert g.aligned_t.replace("-", "") == t

    @given(dna_text(0, 20), dna_text(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_global_score_lower_bounds(self, s, t):
        """NW is optimal: it at least matches the no-gap / all-gap baselines."""
        g = needleman_wunsch(s, t)
        all_gaps = -2 * (len(s) + len(t))
        assert g.score >= all_gaps
        if len(s) == len(t):
            direct = sum(1 if a == b else -1 for a, b in zip(s, t))
            assert g.score >= direct


class TestLocalAlignmentsAbove:
    def test_finds_planted_regions(self):
        gp = genome_pair(800, 800, n_regions=2, region_length=60, mutation_rate=0.0, rng=11)
        results = local_alignments_above(gp.s, gp.t, min_score=40)
        assert len(results) >= 2
        found = [(r.s_start, r.t_start) for r in results[:2]]
        planted = [(p.s_start, p.t_start) for p in gp.regions]
        for p in planted:
            assert any(abs(f[0] - p[0]) <= 5 and abs(f[1] - p[1]) <= 5 for f in found)

    def test_results_do_not_overlap(self):
        gp = genome_pair(800, 800, n_regions=2, region_length=60, mutation_rate=0.0, rng=12)
        results = local_alignments_above(gp.s, gp.t, min_score=30)
        for a in results:
            for b in results:
                if a is b:
                    continue
                la, lb = a.as_local(), b.as_local()
                assert not la.overlaps(lb)

    def test_max_alignments_respected(self):
        gp = genome_pair(1200, 1200, n_regions=3, region_length=50, mutation_rate=0.0, rng=13)
        results = local_alignments_above(gp.s, gp.t, min_score=20, max_alignments=1)
        assert len(results) == 1

    def test_empty_when_threshold_too_high(self):
        assert local_alignments_above("ACGT", "TGCA", min_score=100) == []
