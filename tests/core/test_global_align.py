import pytest

from repro.core import (
    LocalAlignment,
    align_region,
    global_alignment,
    needleman_wunsch,
)
from repro.seq import decode, genome_pair


class TestGlobalAlignment:
    def test_small_uses_full_matrix_score(self):
        g = global_alignment("GACGGATTAG", "GATCGGAATAG")
        assert g.score == needleman_wunsch("GACGGATTAG", "GATCGGAATAG").score == 6

    def test_empty(self):
        assert global_alignment("", "").score == 0


class TestAlignRegion:
    def test_region_bounds_checked(self):
        bad = LocalAlignment(5, 0, 100, 0, 2)
        with pytest.raises(ValueError):
            align_region("ACGT", "ACGT", bad)

    def test_fig16_fields(self):
        gp = genome_pair(400, 400, n_regions=1, region_length=60, mutation_rate=0.02, rng=61)
        p = gp.regions[0]
        region = LocalAlignment(50, p.s_start, p.s_end, p.t_start, p.t_end)
        rec = align_region(gp.s, gp.t, region)
        assert rec.initial_x == p.s_start + 1
        assert rec.final_x == p.s_end
        assert rec.initial_y == p.t_start + 1
        assert rec.final_y == p.t_end
        assert rec.similarity == rec.alignment.score
        assert rec.alignment.identity > 0.9

    def test_render_contains_paper_fields(self):
        gp = genome_pair(300, 300, n_regions=1, region_length=40, mutation_rate=0.0, rng=62)
        p = gp.regions[0]
        region = LocalAlignment(40, p.s_start, p.s_end, p.t_start, p.t_end)
        text = align_region(gp.s, gp.t, region).render()
        for field in ("initial_x:", "final_x:", "initial_y:", "final_y:", "similarity:", "align_s:", "align_t:"):
            assert field in text

    def test_alignment_covers_subsequences(self):
        gp = genome_pair(300, 300, n_regions=1, region_length=50, mutation_rate=0.05, rng=63)
        p = gp.regions[0]
        region = LocalAlignment(30, p.s_start, p.s_end, p.t_start, p.t_end)
        rec = align_region(gp.s, gp.t, region)
        assert rec.alignment.aligned_s.replace("-", "") == decode(
            gp.s[p.s_start : p.s_end]
        )
        assert rec.alignment.aligned_t.replace("-", "") == decode(
            gp.t[p.t_start : p.t_end]
        )
