"""TopK.merge and the tournament reduce: sharding never changes the ranking.

The sharded search's whole correctness argument rests on two properties of
the bounded heap: the ``(score, -index)`` comparison is a strict total
order (so a tie at a smaller database index still displaces the k-th
entry), and any item outside its shard's local top-k is dominated by ``k``
same-shard items (so dropping it locally cannot change the global top-k).
These tests pin both, with special attention to duplicate scores whose
holders straddle shard boundaries -- the case where a sloppy ``<=`` in the
merge would silently reorder ties.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.topk import TopK, tournament_merge


def global_topk(items: list[tuple[int, int]], k: int) -> list[tuple[int, int]]:
    top = TopK(k)
    for score, index in items:
        top.push(score, index)
    return top.ranked()


def deal(items: list[tuple[int, int]], n_shards: int) -> list[TopK]:
    """Round-robin by index -- the same mapping ``shard_database`` uses."""
    tops = [TopK(3) for _ in range(n_shards)]
    for score, index in items:
        tops[index % n_shards].push(score, index)
    return tops


def test_merge_equals_pushing_everything_into_one_heap():
    rng = np.random.default_rng(7)
    items = [(int(rng.integers(0, 50)), i) for i in range(200)]
    a, b = TopK(10), TopK(10)
    for score, index in items[:100]:
        a.push(score, index)
    for score, index in items[100:]:
        b.push(score, index)
    a.merge(b)
    assert a.ranked() == global_topk(items, 10)


def test_merge_accepts_a_plain_items_list():
    a = TopK(3)
    a.push(5, 0)
    a.merge([(7, 3), (5, 1)])
    assert a.ranked() == [(7, 3), (5, 0), (5, 1)]


def test_duplicate_scores_straddling_the_shard_boundary():
    # Five sequences all score 9; k=3 keeps the three smallest indices.
    # Round-robin over two shards puts {0, 2, 4} and {1, 3} in different
    # heaps, so the survivors {0, 1, 2} only emerge at merge time -- and
    # only if the tie at the k-th entry is resolved by index, not arrival.
    items = [(9, i) for i in range(5)]
    expected = [(9, 0), (9, 1), (9, 2)]
    for n_shards in (2, 3, 4, 5):
        tops = [TopK(3) for _ in range(n_shards)]
        for score, index in items:
            tops[index % n_shards].push(score, index)
        assert tournament_merge(tops, 3).ranked() == expected, n_shards


def test_tie_with_the_kth_entry_displaces_it_when_the_index_is_smaller():
    a = TopK(2)
    a.push(9, 4)
    a.push(9, 7)  # heap full: threshold is 9
    b = TopK(2)
    b.push(9, 1)  # same score, smaller index: must displace index 7
    a.merge(b)
    assert a.ranked() == [(9, 1), (9, 4)]


def test_merge_order_and_pairing_do_not_matter():
    rng = np.random.default_rng(11)
    # Heavy score collisions: only ~8 distinct scores over 300 items.
    items = [(int(rng.integers(0, 8)), i) for i in range(300)]
    expected = global_topk(items, 5)
    for n_shards in (1, 2, 3, 4, 7, 8):
        tops = [TopK(5) for _ in range(n_shards)]
        for score, index in items:
            tops[index % n_shards].push(score, index)
        assert tournament_merge(tops, 5).ranked() == expected, n_shards
        # reversed pairing must give the same answer
        tops = [TopK(5) for _ in range(n_shards)]
        for score, index in items:
            tops[index % n_shards].push(score, index)
        assert tournament_merge(list(reversed(tops)), 5).ranked() == expected


def test_tournament_merge_of_nothing_is_an_empty_heap():
    top = tournament_merge([], 4)
    assert top.k == 4 and top.ranked() == []


def test_tournament_merge_fuzz_against_the_unsharded_heap():
    rng = np.random.default_rng(23)
    for trial in range(25):
        n = int(rng.integers(1, 120))
        k = int(rng.integers(1, 12))
        n_shards = int(rng.integers(1, 9))
        items = [(int(rng.integers(-5, 15)), i) for i in range(n)]
        tops = [TopK(k) for _ in range(n_shards)]
        for score, index in items:
            tops[index % n_shards].push(score, index)
        assert tournament_merge(tops, k).ranked() == global_topk(items, k), (
            trial,
            n,
            k,
            n_shards,
        )


def test_k_zero_heaps_merge_to_nothing():
    tops = [TopK(0), TopK(0)]
    tops[0].push(5, 1)
    tops[1].merge([(9, 0)])
    assert tournament_merge(tops, 0).ranked() == []
