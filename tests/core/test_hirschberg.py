from hypothesis import given, settings

from repro.core import hirschberg, needleman_wunsch
from repro.seq import genome_pair, mutate, random_dna, decode

from _strategies import dna_text, scorings


class TestHirschberg:
    def test_identical(self):
        g = hirschberg("ACGTACGT", "ACGTACGT")
        assert g.score == 8 and g.identity == 1.0

    def test_empty_cases(self):
        assert hirschberg("", "").score == 0
        assert hirschberg("ACG", "").aligned_t == "---"
        assert hirschberg("", "ACG").aligned_s == "---"

    @given(dna_text(0, 48), dna_text(0, 48))
    @settings(max_examples=80, deadline=None)
    def test_score_equals_needleman_wunsch(self, s, t):
        assert hirschberg(s, t).score == needleman_wunsch(s, t).score

    @given(dna_text(0, 32), dna_text(0, 32), scorings)
    @settings(max_examples=40, deadline=None)
    def test_score_equals_nw_any_scoring(self, s, t, scoring):
        assert hirschberg(s, t, scoring).score == needleman_wunsch(s, t, scoring).score

    @given(dna_text(0, 40), dna_text(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_alignment_is_valid(self, s, t):
        g = hirschberg(s, t)
        assert g.verify()
        assert g.aligned_s.replace("-", "") == s
        assert g.aligned_t.replace("-", "") == t

    def test_large_divided_input(self):
        """Force several recursion levels (beyond the base-case cell cap)."""
        s = random_dna(400, rng=31)
        t = mutate(s, 0.1, rng=32)
        g = hirschberg(s, t)
        reference = needleman_wunsch(s, t)
        assert g.score == reference.score
        assert g.verify()

    def test_related_sequences_high_identity(self):
        s = random_dna(300, rng=33)
        t = mutate(s, 0.02, rng=34)
        g = hirschberg(decode(s), decode(t))
        assert g.identity > 0.9
