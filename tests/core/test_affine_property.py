"""Fuzz the vectorized Gotoh scan against the naive triple recurrence.

The existing tests in ``test_affine.py`` already probe small pairs under a
narrow penalty grid; this module is the heavier differential battery the
vectorized ``E``-chain closed form (see the module docstring of
:mod:`repro.core.affine`) rests on: random DNA pairs up to ~120 bp under
penalties drawn from the whole legal ``open <= extend < 0`` regime --
including the ``open == extend`` boundary where the chain degenerates to the
linear-gap recurrence, and deep-open scorings where a single run must absorb
many extensions before reopening could ever pay.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AffineScoring, affine_best_score, affine_matrices
from repro.core.affine import gotoh_naive
from repro.seq import random_dna

from _strategies import dna_text

# Built from a filtered tuple (not st.builds) because invalid combinations
# raise inside AffineScoring.__post_init__ before a filter could reject them.
wide_affine_scorings = (
    st.tuples(
        st.integers(1, 9),  # match
        st.integers(-9, 0),  # mismatch
        st.integers(-30, -1),  # gap_open
        st.integers(-6, -1),  # gap_extend
    )
    .filter(lambda p: p[2] <= p[3])
    .map(lambda p: AffineScoring(match=p[0], mismatch=p[1], gap_open=p[2], gap_extend=p[3]))
)


def _random_scoring(rng: np.random.Generator) -> AffineScoring:
    extend = -int(rng.integers(1, 7))
    return AffineScoring(
        match=int(rng.integers(1, 10)),
        mismatch=-int(rng.integers(0, 10)),
        gap_open=extend - int(rng.integers(0, 25)),
        gap_extend=extend,
    )


@given(dna_text(0, 40), dna_text(0, 40), wide_affine_scorings)
@settings(max_examples=120, deadline=None)
def test_local_scan_matches_naive(s, t, sc):
    assert affine_best_score(s, t, sc) == gotoh_naive(s, t, sc, local=True)


@given(dna_text(0, 32), dna_text(0, 32), wide_affine_scorings)
@settings(max_examples=80, deadline=None)
def test_global_matrices_match_naive(s, t, sc):
    H, _, _ = affine_matrices(s, t, sc, local=False)
    assert int(H[len(s), len(t)]) == gotoh_naive(s, t, sc, local=False)


@pytest.mark.parametrize("seed", range(6))
def test_seeded_fuzz_larger_pairs(seed):
    """Bigger pairs than hypothesis can afford against the O(mn) reference."""
    rng = np.random.default_rng(1000 + seed)
    for _ in range(4):
        sc = _random_scoring(rng)
        s = random_dna(int(rng.integers(1, 121)), rng)
        t = random_dna(int(rng.integers(1, 121)), rng)
        assert affine_best_score(s, t, sc) == gotoh_naive(s, t, sc, local=True)
        H, _, _ = affine_matrices(s, t, sc, local=False)
        assert int(H[len(s), len(t)]) == gotoh_naive(s, t, sc, local=False)


def test_open_equals_extend_boundary():
    """The chain's degenerate case: affine collapses to linear gaps."""
    rng = np.random.default_rng(7)
    sc = AffineScoring(match=3, mismatch=-2, gap_open=-4, gap_extend=-4)
    for _ in range(5):
        s = random_dna(int(rng.integers(1, 80)), rng)
        t = random_dna(int(rng.integers(1, 80)), rng)
        assert affine_best_score(s, t, sc) == gotoh_naive(s, t, sc, local=True)
