"""MultiSequenceWorkspace: bitwise parity with per-sequence scans.

The batched kernel's whole contract is that valid-lane scores are *bitwise
identical* to independent :class:`KernelWorkspace` scans -- including under
matrix scorings, padded tails, length-0 lanes, and batches wide enough to
take the per-column chain loop instead of ``maximum.accumulate``.
"""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_SCORING,
    TRANSITION_TRANSVERSION,
    KernelWorkspace,
    MultiSequenceWorkspace,
    PAD_CODE,
    Scoring,
    pack_codes,
)
from repro.core.kernels import SCORE_DTYPE, initial_row
from repro.core.multi_engine import CHAIN_LOOP_MIN_LANES
from repro.seq import random_dna


def reference_best(query, target, scoring) -> int:
    """Best local score via the pairwise engine (one target)."""
    ws = KernelWorkspace(target, scoring)
    prev = initial_row(len(target), local=True)
    best = 0
    for ch in query:
        prev = ws.sw_row(prev, int(ch), out=prev)
        best = max(best, int(prev.max()) if prev.size else 0)
    return best


def reference_scores(query, targets, scoring) -> np.ndarray:
    return np.array(
        [reference_best(query, t, scoring) for t in targets], dtype=SCORE_DTYPE
    )


def make_batch(rng, k, lo, hi):
    return [random_dna(int(rng.integers(lo, hi + 1)), rng) for _ in range(k)]


class TestPackCodes:
    def test_pads_with_pad_code(self):
        codes, lengths = pack_codes([np.array([0, 1], np.uint8), np.array([2], np.uint8)])
        assert codes.shape == (2, 2)
        assert codes[1, 1] == PAD_CODE
        assert lengths.tolist() == [2, 1]

    def test_explicit_width(self):
        codes, _ = pack_codes([np.array([0], np.uint8)], width=5)
        assert codes.shape == (1, 5)
        assert (codes[0, 1:] == PAD_CODE).all()

    def test_rejects_too_narrow_width(self):
        with pytest.raises(ValueError):
            pack_codes([np.zeros(4, np.uint8)], width=3)

    def test_empty_batch(self):
        codes, lengths = pack_codes([])
        assert codes.shape == (0, 0)
        assert lengths.size == 0


class TestParity:
    @pytest.mark.parametrize(
        "scoring",
        [DEFAULT_SCORING, TRANSITION_TRANSVERSION, Scoring(3, -2, -4)],
        ids=["default", "matrix", "custom"],
    )
    def test_mixed_lengths_match_pairwise(self, rng, scoring):
        targets = make_batch(rng, 9, 1, 60)
        query = random_dna(40, rng)
        codes, lengths = pack_codes(targets)
        ws = MultiSequenceWorkspace(codes, lengths, scoring)
        got = ws.sw_best_scores(query)
        assert got.dtype == SCORE_DTYPE
        np.testing.assert_array_equal(got, reference_scores(query, targets, scoring))

    def test_wide_batch_takes_chain_loop(self, rng):
        """Above CHAIN_LOOP_MIN_LANES the per-column chain must stay exact."""
        k = CHAIN_LOOP_MIN_LANES + 5
        targets = make_batch(rng, k, 5, 40)
        query = random_dna(25, rng)
        codes, lengths = pack_codes(targets)
        ws = MultiSequenceWorkspace(codes, lengths)
        assert ws._row_views is not None  # the loop variant is actually engaged
        np.testing.assert_array_equal(
            ws.sw_best_scores(query), reference_scores(query, targets, DEFAULT_SCORING)
        )

    def test_heavily_padded_tail(self, rng):
        """A 1 bp lane packed at width 64: padding must never score."""
        targets = [random_dna(64, rng), random_dna(1, rng), random_dna(2, rng)]
        query = random_dna(30, rng)
        codes, lengths = pack_codes(targets)
        ws = MultiSequenceWorkspace(codes, lengths)
        np.testing.assert_array_equal(
            ws.sw_best_scores(query), reference_scores(query, targets, DEFAULT_SCORING)
        )

    def test_empty_lane_scores_zero(self, rng):
        targets = [random_dna(12, rng), random_dna(0, rng)]
        codes, lengths = pack_codes(targets)
        ws = MultiSequenceWorkspace(codes, lengths)
        scores = ws.sw_best_scores(random_dna(10, rng))
        assert scores[1] == 0

    def test_empty_batch_and_empty_query(self, rng):
        codes, lengths = pack_codes([])
        ws = MultiSequenceWorkspace(codes, lengths)
        assert ws.sw_best_scores(random_dna(5, rng)).shape == (0,)
        targets = [random_dna(8, rng)]
        ws = MultiSequenceWorkspace(*pack_codes(targets))
        np.testing.assert_array_equal(ws.sw_best_scores(np.array([], np.uint8)), [0])

    def test_single_lane(self, rng):
        target = random_dna(33, rng)
        query = random_dna(50, rng)
        ws = MultiSequenceWorkspace(*pack_codes([target]))
        assert int(ws.sw_best_scores(query)[0]) == reference_best(
            query, target, DEFAULT_SCORING
        )


class TestLaneDtype:
    def test_short_targets_use_int16(self):
        ws = MultiSequenceWorkspace(*pack_codes([np.zeros(500, np.uint8)]))
        assert ws.dtype == np.int16

    def test_long_targets_use_score_dtype(self):
        ws = MultiSequenceWorkspace(*pack_codes([np.zeros(20_000, np.uint8)]))
        assert ws.dtype == SCORE_DTYPE

    def test_big_match_disables_int16(self):
        ws = MultiSequenceWorkspace(
            *pack_codes([np.zeros(500, np.uint8)]), scoring=Scoring(100, -1, -2)
        )
        assert ws.dtype == SCORE_DTYPE

    def test_int16_boundary_is_exact(self, rng):
        """Right at the widest int16-eligible geometry, scores still match."""
        target = random_dna(2000, rng)
        query = target[:600]  # long high-identity run drives scores up
        ws = MultiSequenceWorkspace(*pack_codes([target, target[::-1]]))
        assert ws.dtype == np.int16
        np.testing.assert_array_equal(
            ws.sw_best_scores(query),
            reference_scores(query, [target, target[::-1]], DEFAULT_SCORING),
        )


class TestValidation:
    def test_rejects_1d_codes(self):
        with pytest.raises(ValueError):
            MultiSequenceWorkspace(np.zeros(4, np.uint8), [4])

    def test_rejects_wrong_lengths_shape(self):
        with pytest.raises(ValueError):
            MultiSequenceWorkspace(np.zeros((2, 4), np.uint8), [4])

    def test_rejects_overlong_length(self):
        with pytest.raises(ValueError):
            MultiSequenceWorkspace(np.zeros((1, 4), np.uint8), [5])

    def test_sw_row_rejects_wrong_block_shape(self, rng):
        ws = MultiSequenceWorkspace(*pack_codes([random_dna(6, rng)]))
        with pytest.raises(ValueError):
            ws.sw_row(np.zeros((3, 1), dtype=ws.dtype), 0)
