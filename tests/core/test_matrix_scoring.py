"""Substitution-matrix scoring (transition/transversion-aware schemes)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    TRANSITION_TRANSVERSION,
    MatrixScoring,
    Scoring,
    needleman_wunsch,
    smith_waterman,
)
from repro.seq import encode

from _strategies import dna_text


class TestMatrixScoring:
    def test_shape_validated(self):
        with pytest.raises(ValueError):
            MatrixScoring(gap=-2, matrix=((1, 2), (3, 4)))

    def test_pair_score(self):
        sc = TRANSITION_TRANSVERSION
        assert sc.pair_score(0, 0) == 2  # A-A
        assert sc.pair_score(0, 2) == -1  # A-G transition
        assert sc.pair_score(0, 1) == -3  # A-C transversion

    def test_substitution_row_vectorized(self):
        sc = TRANSITION_TRANSVERSION
        row = sc.substitution_row(0, encode("ACGT"))
        assert row.tolist() == [2, -3, -1, -3]

    def test_match_mismatch_bounds_derived(self):
        sc = TRANSITION_TRANSVERSION
        assert sc.match == 2
        assert sc.mismatch == -1  # the best off-diagonal entry

    def test_column_score_uses_matrix(self):
        sc = TRANSITION_TRANSVERSION
        assert sc.column_score("A", "G") == -1
        assert sc.column_score("A", "C") == -3
        assert sc.column_score("A", "-") == -3

    def test_uniform_matrix_equals_plain_scoring(self):
        uniform = MatrixScoring(
            gap=-2,
            matrix=tuple(
                tuple(1 if i == j else -1 for j in range(4)) for i in range(4)
            ),
        )
        plain = Scoring(match=1, mismatch=-1, gap=-2)
        s, t = "GACGGATTAG", "GATCGGAATAG"
        assert (
            smith_waterman(s, t, uniform).alignment.score
            == smith_waterman(s, t, plain).alignment.score
        )

    @given(dna_text(1, 24), dna_text(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_alignments_verify_under_matrix(self, s, t):
        sc = TRANSITION_TRANSVERSION
        r = smith_waterman(s, t, sc)
        assert r.alignment.verify(sc)
        g = needleman_wunsch(s, t, sc)
        assert g.verify(sc)

    def test_transitions_preferred_over_transversions(self):
        # same divergence count, but transitions should align better
        sc = TRANSITION_TRANSVERSION
        base = "ACGTACGTACGTACGT"
        transitions = "GCATGCATACGTACGT".replace("T", "C", 1)  # noisy variant
        # direct check on scores: A->G substitution beats A->C
        s_transition = smith_waterman("AAAAAAA", "AAAGAAA", sc).alignment.score
        s_transversion = smith_waterman("AAAAAAA", "AAACAAA", sc).alignment.score
        assert s_transition > s_transversion
