import pytest

from repro.core import (
    HeuristicAligner,
    HeuristicParams,
    heuristic_local_alignments,
    smith_waterman,
)
from repro.seq import decode, encode, genome_pair


class TestParams:
    def test_defaults_valid(self):
        p = HeuristicParams()
        assert p.open_delta > 0 and p.close_delta > 0 and p.min_score > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HeuristicParams(open_delta=0)
        with pytest.raises(ValueError):
            HeuristicParams(close_delta=-1)
        with pytest.raises(ValueError):
            HeuristicParams(min_score=0)


class TestHeuristicAligner:
    def test_finds_exact_repeat(self):
        core = "ACGTACGTACGTACGTACGT"  # 20 BP shared block
        s = "TTTTTTTTTTTT" + core + "GGGGGGGGGGGG"
        t = "CCCCCCCCCCCC" + core + "AAAAAAAAAAAA"
        als = heuristic_local_alignments(s, t, HeuristicParams(10, 10, 10))
        assert len(als) >= 1
        best = als[0]
        assert best.score >= 15
        # the repeat sits at offset 12 in both sequences
        assert abs(best.s_start - 12) <= 12
        assert abs(best.t_start - 12) <= 12

    def test_no_alignment_in_noise(self):
        s = "ACAC" * 10
        t = "GTGT" * 10
        assert heuristic_local_alignments(s, t, HeuristicParams(8, 8, 8)) == []

    def test_score_close_to_exact_sw(self):
        gp = genome_pair(400, 400, n_regions=1, region_length=60, mutation_rate=0.0, rng=41)
        exact = smith_waterman(gp.s, gp.t).alignment.score
        als = heuristic_local_alignments(decode(gp.s), decode(gp.t))
        assert als, "heuristic missed the planted region"
        # the heuristic closes at the maximum, so its best score matches SW
        assert als[0].score >= 0.9 * exact

    def test_planted_region_recovered(self):
        gp = genome_pair(500, 500, n_regions=1, region_length=70, mutation_rate=0.02, rng=42)
        als = heuristic_local_alignments(decode(gp.s), decode(gp.t))
        planted = gp.regions[0]
        assert any(
            abs(a.s_end - planted.s_end) < 20 and abs(a.t_end - planted.t_end) < 20
            for a in als
        )

    def test_multiple_regions(self):
        gp = genome_pair(1500, 1500, n_regions=2, region_length=60, mutation_rate=0.0, rng=43)
        als = heuristic_local_alignments(decode(gp.s), decode(gp.t))
        strong = [a for a in als if a.score >= 40]
        assert len(strong) == 2

    def test_row_engine_is_incremental(self):
        """step_row processes one row; running all rows equals the wrapper."""
        gp = genome_pair(300, 300, n_regions=1, region_length=50, mutation_rate=0.0, rng=44)
        aligner = HeuristicAligner(gp.t)
        for ch in gp.s:
            aligner.step_row(int(ch))
        queue = aligner.flush()
        direct = heuristic_local_alignments(gp.s, gp.t)
        params = HeuristicParams()
        assert queue.finalize(min_score=params.min_score) == direct

    def test_open_then_close_emits_once_deduped(self):
        core = "ACGTACGTACGTACGTACGTACGT"
        s = "TT" + core + "TTTTTTTTTTTTTTTTTTTTTTTTTTTTTT"
        t = "GG" + core + "GGGGGGGGGGGGGGGGGGGGGGGGGGGGGG"
        als = heuristic_local_alignments(s, t, HeuristicParams(8, 8, 8))
        # one dominant candidate only after dedup
        assert len([a for a in als if a.score >= 20]) == 1

    def test_counter_expression_prefers_substitutions_over_gaps(self):
        """The 2m+2mm+g rule: origins with more matches/mismatches win ties."""
        # Construct a tie scenario indirectly: just assert the aligner runs
        # and its best alignment is gap-light for a substitution-only pair.
        s = "ACGTACGTACGTACGTACGT"
        t = "ACGTACGAACGTACGTACGT"  # one substitution, no indels
        als = heuristic_local_alignments(s, t, HeuristicParams(8, 8, 8))
        assert als and als[0].s_length == als[0].t_length
