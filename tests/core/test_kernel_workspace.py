"""Differential tests: KernelWorkspace vs the naive per-cell kernels.

The workspace reuses scratch buffers, caches query profiles and (when the
scores allow) resolves the horizontal chain in int32 in-place -- every one of
those optimisations must be invisible.  These properties pin the batched
rows, the one-shot shims and the slice-stitching contract cell-for-cell to
``sw_row_naive`` / ``nw_row_naive`` over random sequences and scorings.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KernelWorkspace, Scoring, initial_row
from repro.core.kernels import (
    SCORE_DTYPE,
    nw_row,
    nw_row_naive,
    sw_row,
    sw_row_naive,
    sw_row_slice,
)

from _strategies import dna_codes, scorings


def _naive_sw_scan(s, t, scoring):
    """Reference SW matrix rows, one list entry per query row."""
    prev = initial_row(len(t), local=True, scoring=scoring)
    rows = []
    for ch in s:
        prev = sw_row_naive(prev, int(ch), t, scoring)
        rows.append(prev)
    return rows


class TestWorkspaceSingleRows:
    @given(dna_codes(1, 40), dna_codes(1, 12), scorings)
    @settings(max_examples=100, deadline=None)
    def test_sw_row_matches_naive_over_scan(self, t, s, scoring):
        ws = KernelWorkspace(t, scoring)
        prev = initial_row(len(t), local=True, scoring=scoring)
        prev_naive = prev.copy()
        for ch in s:
            prev = ws.sw_row(prev, int(ch))
            prev_naive = sw_row_naive(prev_naive, int(ch), t, scoring)
            assert np.array_equal(prev, prev_naive)
            assert prev.dtype == SCORE_DTYPE

    @given(dna_codes(1, 40), dna_codes(1, 12), scorings)
    @settings(max_examples=100, deadline=None)
    def test_nw_row_matches_naive_over_scan(self, t, s, scoring):
        ws = KernelWorkspace(t, scoring)
        prev = initial_row(len(t), local=False, scoring=scoring)
        prev_naive = prev.copy()
        for i, ch in enumerate(s, start=1):
            boundary = i * scoring.gap
            prev = ws.nw_row(prev, int(ch), boundary)
            prev_naive = nw_row_naive(prev_naive, int(ch), t, boundary, scoring)
            assert np.array_equal(prev, prev_naive)

    @given(dna_codes(1, 40), dna_codes(1, 12), scorings)
    @settings(max_examples=60, deadline=None)
    def test_in_place_out_aliasing_prev_is_exact(self, t, s, scoring):
        ws = KernelWorkspace(t, scoring)
        row = initial_row(len(t), local=True, scoring=scoring)
        expected = _naive_sw_scan(s, t, scoring)
        for ch, ref in zip(s, expected):
            returned = ws.sw_row(row, int(ch), out=row)
            assert returned is row  # true in-place advance
            assert np.array_equal(row, ref)


class TestWorkspaceBatchedRows:
    @given(dna_codes(1, 40), dna_codes(1, 12), scorings)
    @settings(max_examples=80, deadline=None)
    def test_sw_rows_matches_naive(self, t, s, scoring):
        ws = KernelWorkspace(t, scoring)
        prev = initial_row(len(t), local=True, scoring=scoring)
        block = ws.sw_rows(prev, s)
        assert block.shape == (len(s), len(t) + 1)
        assert block.dtype == SCORE_DTYPE
        for row, ref in zip(block, _naive_sw_scan(s, t, scoring)):
            assert np.array_equal(row, ref)

    @given(dna_codes(1, 40), dna_codes(1, 12), scorings)
    @settings(max_examples=80, deadline=None)
    def test_nw_rows_matches_naive(self, t, s, scoring):
        ws = KernelWorkspace(t, scoring)
        prev = initial_row(len(t), local=False, scoring=scoring)
        boundaries = np.arange(1, len(s) + 1, dtype=np.int64) * scoring.gap
        block = ws.nw_rows(prev, s, boundaries)
        prev_naive = prev.copy()
        for r, ch in enumerate(s):
            prev_naive = nw_row_naive(
                prev_naive, int(ch), t, int(boundaries[r]), scoring
            )
            assert np.array_equal(block[r], prev_naive)

    @given(dna_codes(1, 40), dna_codes(1, 12), scorings)
    @settings(max_examples=40, deadline=None)
    def test_sw_rows_into_preallocated_matrix(self, t, s, scoring):
        ws = KernelWorkspace(t, scoring)
        H = np.zeros((len(s) + 1, len(t) + 1), dtype=SCORE_DTYPE)
        ws.sw_rows(H[0], s, out=H[1:])
        for row, ref in zip(H[1:], _naive_sw_scan(s, t, scoring)):
            assert np.array_equal(row, ref)


class TestSliceStitching:
    @given(
        dna_codes(2, 48),
        dna_codes(1, 10),
        st.integers(1, 5),
        scorings,
    )
    @settings(max_examples=80, deadline=None)
    def test_stitched_slices_equal_full_rows(self, t, s, n_slices, scoring):
        """Per-slice workspaces chained by left borders == full-width scan.

        This is the distributed contract every parallel strategy relies on:
        worker p owns columns [c0, c1), receives H[i, c0-1] from its left
        neighbour, and the concatenation of all slices must reproduce the
        full-matrix row exactly.
        """
        n_slices = min(n_slices, len(t))
        cuts = np.linspace(0, len(t), n_slices + 1).astype(int)
        workspaces = [
            KernelWorkspace(t[c0:c1], scoring)
            for c0, c1 in zip(cuts[:-1], cuts[1:])
        ]
        prevs = [
            np.zeros(c1 - c0 + 1, dtype=SCORE_DTYPE)
            for c0, c1 in zip(cuts[:-1], cuts[1:])
        ]
        full = initial_row(len(t), local=True, scoring=scoring)
        for ch in s:
            full = sw_row_naive(full, int(ch), t, scoring)
            left = 0
            stitched = [0]
            for p, ws in enumerate(workspaces):
                prevs[p] = ws.sw_row_slice(prevs[p], int(ch), left, out=prevs[p])
                stitched.extend(int(v) for v in prevs[p][1:])
                left = int(prevs[p][-1])
            assert stitched == full.tolist()

    @given(dna_codes(2, 30), dna_codes(1, 8), scorings)
    @settings(max_examples=40, deadline=None)
    def test_sw_rows_slice_matches_row_at_a_time(self, t, s, scoring):
        mid = len(t) // 2
        if mid == 0:
            return
        # lefts computed from a full naive scan of the left half boundary
        full_rows = _naive_sw_scan(s, t, scoring)
        lefts = [int(row[mid]) for row in full_rows]
        ws = KernelWorkspace(t[mid:], scoring)
        prev = np.zeros(len(t) - mid + 1, dtype=SCORE_DTYPE)
        block = ws.sw_rows_slice(prev, s, lefts)
        for r, row in enumerate(full_rows):
            assert block[r].tolist() == [lefts[r]] + row[mid + 1 :].tolist()


class TestShims:
    """The legacy kernels.py functions are one-shot workspace wrappers."""

    @given(dna_codes(1, 40), st.integers(0, 3), scorings)
    @settings(max_examples=60, deadline=None)
    def test_sw_row_shim(self, t, s_char, scoring):
        prev = initial_row(len(t), local=True, scoring=scoring)
        assert np.array_equal(
            sw_row(prev, s_char, t, scoring),
            sw_row_naive(prev, s_char, t, scoring),
        )

    @given(dna_codes(1, 40), st.integers(0, 3), st.integers(1, 6), scorings)
    @settings(max_examples=60, deadline=None)
    def test_nw_row_shim(self, t, s_char, i, scoring):
        prev = initial_row(len(t), local=False, scoring=scoring)
        boundary = i * scoring.gap
        assert np.array_equal(
            nw_row(prev, s_char, t, boundary, scoring),
            nw_row_naive(prev, s_char, t, boundary, scoring),
        )

    @given(dna_codes(2, 40), st.integers(0, 3), st.integers(0, 20), scorings)
    @settings(max_examples=60, deadline=None)
    def test_sw_row_slice_shim_agrees_with_workspace(self, t, s_char, left, scoring):
        mid = len(t) // 2
        t_slice = t[mid:]
        prev = np.zeros(len(t_slice) + 1, dtype=SCORE_DTYPE)
        shim = sw_row_slice(prev, s_char, t_slice, left, scoring)
        ws = KernelWorkspace(t_slice, scoring)
        assert np.array_equal(shim, ws.sw_row_slice(prev, s_char, left))


class TestWidePath:
    """Huge scores force the int64 resolution path; results must not change."""

    def test_wide_workspace_matches_narrow_semantics(self):
        big = 1 << 27
        wide_scoring = Scoring(match=big, mismatch=-1, gap=-big)
        t = np.array([0, 1, 2, 3, 0, 1, 2, 3], dtype=np.uint8)
        s = np.array([0, 0, 3, 2], dtype=np.uint8)
        ws = KernelWorkspace(t, wide_scoring)
        assert ws._wide  # the guard actually selected the int64 path
        prev = initial_row(len(t), local=True, scoring=wide_scoring)
        prev_naive = prev.copy()
        for ch in s:
            prev = ws.sw_row(prev, int(ch), out=prev)
            prev_naive = sw_row_naive(prev_naive, int(ch), t, wide_scoring)
            assert np.array_equal(prev, prev_naive)

    def test_default_scoring_stays_narrow(self):
        ws = KernelWorkspace(np.zeros(4096, dtype=np.uint8))
        assert not ws._wide


class TestValidation:
    def test_wrong_prev_size_raises(self):
        ws = KernelWorkspace(np.zeros(8, dtype=np.uint8))
        bad = np.zeros(5, dtype=SCORE_DTYPE)
        try:
            ws.sw_row(bad, 0)
        except ValueError as exc:
            assert "9" in str(exc)
        else:
            raise AssertionError("size mismatch accepted")

    def test_profile_cached_per_code(self):
        t = np.array([0, 1, 2, 3], dtype=np.uint8)
        ws = KernelWorkspace(t)
        assert ws.profile_row(0) is ws.profile_row(0)
        assert ws.profile_row(0).tolist() == [1, -1, -1, -1]
