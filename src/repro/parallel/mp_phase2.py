"""Real-parallel phase 2: a process pool of global alignments.

The scattered mapping of Section 4.4 is embarrassingly parallel, so the
real backend is simply a :class:`multiprocessing.Pool` mapping region pairs
to Needleman-Wunsch jobs.  Pairs are dealt exactly like the paper's vector
-- sorted by subsequence size, worker ``i`` taking slots ``i, i+P, ...`` --
which balances load without any synchronisation.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Sequence

import numpy as np

from ..core.alignment import LocalAlignment
from ..core.global_align import SubsequenceAlignment, align_region
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..seq.alphabet import encode

_worker_state: dict = {}


def _init_worker(s_bytes: bytes, t_bytes: bytes, scoring: Scoring) -> None:
    _worker_state["s"] = np.frombuffer(s_bytes, dtype=np.uint8)
    _worker_state["t"] = np.frombuffer(t_bytes, dtype=np.uint8)
    _worker_state["scoring"] = scoring


def _align_one(args: tuple[int, tuple[int, int, int, int, int]]):
    idx, (score, s0, s1, t0, t1) = args
    region = LocalAlignment(score, s0, s1, t0, t1)
    record = align_region(
        _worker_state["s"], _worker_state["t"], region, _worker_state["scoring"]
    )
    return idx, record


def mp_phase2(
    s: np.ndarray,
    t: np.ndarray,
    regions: Sequence[LocalAlignment],
    n_workers: int = 2,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[SubsequenceAlignment]:
    """Globally align every region with a worker pool; queue order preserved."""
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    s = encode(s)
    t = encode(t)
    ordered = sorted(regions, key=lambda r: (-r.size, r.region))
    jobs = [
        (i, (r.score, r.s_start, r.s_end, r.t_start, r.t_end))
        for i, r in enumerate(ordered)
    ]
    if not jobs:
        return []
    if n_workers == 1:
        _init_worker(s.tobytes(), t.tobytes(), scoring)
        results = [_align_one(job) for job in jobs]
    else:
        with mp.get_context().Pool(
            n_workers, initializer=_init_worker, initargs=(s.tobytes(), t.tobytes(), scoring)
        ) as pool:
            results = pool.map(_align_one, jobs)
    out: list[SubsequenceAlignment | None] = [None] * len(ordered)
    for idx, record in results:
        out[idx] = record
    return out  # type: ignore[return-value]
