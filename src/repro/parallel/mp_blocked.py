"""Real shared-memory implementation of the blocked strategy.

This is the Section 4.3 algorithm executed with actual OS processes: bands
are dealt round-robin to workers, band-boundary rows live in a
:mod:`multiprocessing.shared_memory` segment (the stand-in for JIAJIA's
shared pages), and per-block readiness is signalled with
:class:`multiprocessing.Event` (the stand-in for jia_setcv/jia_waitcv --
like them, an Event remembers a signal sent before anyone waits).

The schedule and the kernel-driving code both come from :mod:`repro.plan`:
the worker walks its tiles of the blocked task graph and executes each one
through the shared :class:`~repro.plan.BlockedRuntime`; only the Event
handshake around each tile is this backend's own.

CPython's GIL does not hinder this backend: each worker is a separate
process, and the DP kernel is numpy-bound anyway.  On a single-core host it
degrades to correct-but-serial execution; the simulated cluster remains the
source of the paper's performance curves.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..check.sanitizer import get_sanitizer
from ..core.alignment import LocalAlignment
from ..core.kernels import SCORE_DTYPE
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..obs import get_metrics, get_tracer, is_enabled
from ..obs.collect import ObsJob, merge_into, observed_worker
from ..plan import blocked_spec, cached_plan, finalize_plan, make_runtime, state_shape
from .guard import drain_results
from .shm import attach_shared_array, create_shared_array


@dataclass(frozen=True)
class MpBlockedConfig:
    """Parameters of the real-parallel blocked run."""

    n_workers: int = 2
    n_bands: int = 8
    n_blocks: int = 8
    threshold: int = 35
    min_score: int | None = None
    timeout: float = 300.0
    kernel: str = "classic"

    def __post_init__(self) -> None:
        if self.n_workers <= 0 or self.n_bands <= 0 or self.n_blocks <= 0:
            raise ValueError("workers/bands/blocks must be positive")

    def spec(self):
        """The plan spec this config describes (one graph per (rows, cols))."""
        return blocked_spec(
            n_procs=self.n_workers,
            n_bands=self.n_bands,
            n_blocks=self.n_blocks,
            threshold=self.threshold,
            min_score=self.min_score,
            kernel=self.kernel,
        )


def _worker(
    worker_id: int,
    s_bytes: bytes,
    t_bytes: bytes,
    config: MpBlockedConfig,
    scoring: Scoring,
    shm_name: str,
    shape: tuple[int, int],
    ready: list,
    results: "mp.Queue",
    obs: ObsJob | None = None,
) -> None:
    """One cluster-node stand-in: processes its bands, signals block edges."""
    s = np.frombuffer(s_bytes, dtype=np.uint8)
    t = np.frombuffer(t_bytes, dtype=np.uint8)
    graph = cached_plan(config.spec(), len(s), len(t))
    n_blocks = graph.params["n_blocks"]
    with observed_worker(obs, f"worker-{worker_id}") as (tracer, metrics), attach_shared_array(
        shm_name, shape, SCORE_DTYPE
    ) as boundaries:
        runtime = make_runtime(graph, s, t, scoring, state=boundaries.array)
        tracing = tracer.enabled
        wait_s = busy_s = 0.0
        for tile in graph.tiles_of(worker_id):
            band, block = tile.payload
            if band > 0:
                t0 = perf_counter() if tracing else 0.0
                if not ready[(band - 1) * n_blocks + block].wait(config.timeout):
                    raise TimeoutError(
                        f"worker {worker_id} starved waiting for "
                        f"block ({band - 1}, {block})"
                    )
                san = get_sanitizer()
                if san is not None:
                    san.on_wait(f"ready[{band - 1},{block}]")
                if tracing:
                    waited = perf_counter() - t0
                    wait_s += waited
                    tracer.record(
                        "block_wait", "communication", t0, waited, band=band, block=block
                    )
            t0 = perf_counter() if tracing else 0.0
            runtime.run_tile(tile)
            if tracing and tile.cells:
                spent = perf_counter() - t0
                busy_s += spent
                tracer.record("tile", "computation", t0, spent, band=band, block=block)
            ready[band * n_blocks + block].set()
            san = get_sanitizer()
            if san is not None:
                san.on_post(f"ready[{band},{block}]")
        if tracing:
            # Tile cells are counted by the engine's batched-kernel hook.
            metrics.counter("worker_busy_seconds").inc(busy_s)
            metrics.counter("worker_wait_seconds").inc(wait_s)
        results.put((worker_id, runtime.emit(worker_id)))


def mp_blocked_alignments(
    s: np.ndarray,
    t: np.ndarray,
    config: MpBlockedConfig | None = None,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[LocalAlignment]:
    """Find local alignments with real worker processes.

    Returns the merged, finalized alignment queue -- the same post-processing
    as the simulated strategies, so results are comparable across backends.
    """
    config = config or MpBlockedConfig()
    from ..seq.alphabet import encode

    s = encode(s)
    t = encode(t)
    graph = cached_plan(config.spec(), len(s), len(t))
    ctx = mp.get_context()
    obs_dir: str | None = None
    obs: ObsJob | None = None
    # Segments also flow when only the sanitizer is on (they carry its events).
    if is_enabled() or get_sanitizer() is not None:
        obs_dir = tempfile.mkdtemp(prefix="repro-obs-")
        obs = ObsJob(obs_dir, "blocked", perf_counter())
    ready = [ctx.Event() for _ in range(len(graph.tiles))]
    results: mp.Queue = ctx.Queue()
    with create_shared_array(state_shape(graph), SCORE_DTYPE) as boundaries:
        workers = [
            ctx.Process(
                target=_worker,
                args=(
                    w,
                    s.tobytes(),
                    t.tobytes(),
                    config,
                    scoring,
                    boundaries.name,
                    boundaries.array.shape,
                    ready,
                    results,
                    obs,
                ),
            )
            for w in range(config.n_workers)
        ]
        try:
            with get_tracer().span("mp_blocked", "coordination", n_workers=config.n_workers):
                for w in workers:
                    w.start()
                collected = drain_results(
                    results, workers, config.n_workers, config.timeout
                )
                for w in workers:
                    w.join(timeout=config.timeout)
        finally:
            for w in workers:
                if w.is_alive():
                    w.terminate()
                    w.join(timeout=5.0)
            if obs is not None:
                merge_into(get_tracer(), get_metrics(), obs.dir, obs.key)
                shutil.rmtree(obs_dir, ignore_errors=True)

    parts = [collected[w] for w in sorted(collected)]
    return finalize_plan(graph, parts).alignments
