"""Real shared-memory implementation of the blocked strategy.

This is the Section 4.3 algorithm executed with actual OS processes: bands
are dealt round-robin to workers, band-boundary rows live in a
:mod:`multiprocessing.shared_memory` segment (the stand-in for JIAJIA's
shared pages), and per-block readiness is signalled with
:class:`multiprocessing.Event` (the stand-in for jia_setcv/jia_waitcv --
like them, an Event remembers a signal sent before anyone waits).

CPython's GIL does not hinder this backend: each worker is a separate
process, and the DP kernel is numpy-bound anyway.  On a single-core host it
degrades to correct-but-serial execution; the simulated cluster remains the
source of the paper's performance curves.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..check.sanitizer import get_sanitizer
from ..core.alignment import AlignmentQueue, LocalAlignment
from ..core.engine import KernelWorkspace
from ..core.kernels import SCORE_DTYPE
from ..core.regions import RegionConfig, StreamingRegionFinder
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..obs import get_metrics, get_tracer, is_enabled
from ..obs.collect import ObsJob, merge_into, observed_worker
from ..strategies.blocked import compute_tile
from ..strategies.partition import explicit_tiling
from .guard import drain_results
from .shm import attach_shared_array, create_shared_array


@dataclass(frozen=True)
class MpBlockedConfig:
    """Parameters of the real-parallel blocked run."""

    n_workers: int = 2
    n_bands: int = 8
    n_blocks: int = 8
    threshold: int = 35
    min_score: int | None = None
    timeout: float = 300.0

    def __post_init__(self) -> None:
        if self.n_workers <= 0 or self.n_bands <= 0 or self.n_blocks <= 0:
            raise ValueError("workers/bands/blocks must be positive")


def _worker(
    worker_id: int,
    s_bytes: bytes,
    t_bytes: bytes,
    config: MpBlockedConfig,
    scoring: Scoring,
    shm_name: str,
    shape: tuple[int, int],
    ready: list,
    results: "mp.Queue",
    obs: ObsJob | None = None,
) -> None:
    """One cluster-node stand-in: processes its bands, signals block edges."""
    s = np.frombuffer(s_bytes, dtype=np.uint8)
    t = np.frombuffer(t_bytes, dtype=np.uint8)
    tiling = explicit_tiling(len(s), len(t), config.n_bands, config.n_blocks)
    found: list[tuple[int, int, int, int, int]] = []
    with observed_worker(obs, f"worker-{worker_id}") as (tracer, metrics), attach_shared_array(
        shm_name, shape, SCORE_DTYPE
    ) as boundaries:
        tracing = tracer.enabled
        wait_s = busy_s = 0.0
        # Column blocks repeat across this worker's bands, so their query
        # profiles and scratch buffers are built once per block, not per tile.
        workspaces: dict[int, KernelWorkspace] = {}
        for band in range(tiling.n_bands):
            if band % config.n_workers != worker_id:
                continue
            r0, r1 = tiling.row_bounds[band]
            h = r1 - r0
            s_band = s[r0:r1]
            left_col = np.zeros(h, dtype=SCORE_DTYPE)
            band_rows = np.zeros((h, len(t) + 1), dtype=SCORE_DTYPE)
            for block in range(tiling.n_blocks):
                c0, c1 = tiling.col_bounds[block]
                if band > 0:
                    t0 = perf_counter() if tracing else 0.0
                    if not ready[(band - 1) * tiling.n_blocks + block].wait(
                        config.timeout
                    ):
                        raise TimeoutError(
                            f"worker {worker_id} starved waiting for "
                            f"block ({band - 1}, {block})"
                        )
                    san = get_sanitizer()
                    if san is not None:
                        san.on_wait(f"ready[{band - 1},{block}]")
                    if tracing:
                        waited = perf_counter() - t0
                        wait_s += waited
                        tracer.record(
                            "block_wait", "communication", t0, waited, band=band, block=block
                        )
                if c1 > c0 and h:
                    ws = workspaces.get(block)
                    if ws is None:
                        ws = workspaces[block] = KernelWorkspace(t[c0:c1], scoring)
                    t0 = perf_counter() if tracing else 0.0
                    top = boundaries.array[band, c0 : c1 + 1].copy()
                    tile = compute_tile(top, left_col, s_band, t[c0:c1], scoring, ws)
                    band_rows[:, c0 + 1 : c1 + 1] = tile[:, 1:]
                    left_col = tile[:, -1].copy()
                    boundaries.array[band + 1, c0 + 1 : c1 + 1] = tile[-1, 1:]
                    if tracing:
                        spent = perf_counter() - t0
                        busy_s += spent
                        tracer.record("tile", "computation", t0, spent, band=band, block=block)
                ready[band * tiling.n_blocks + block].set()
                san = get_sanitizer()
                if san is not None:
                    san.on_post(f"ready[{band},{block}]")
            if h:
                finder = StreamingRegionFinder(RegionConfig(threshold=config.threshold))
                for r in range(h):
                    finder.feed(r0 + r + 1, band_rows[r])
                for region in finder.finish():
                    a = region.as_alignment()
                    found.append((a.score, a.s_start, a.s_end, a.t_start, a.t_end))
        if tracing:
            # Tile cells are counted by the engine's batched-kernel hook.
            metrics.counter("worker_busy_seconds").inc(busy_s)
            metrics.counter("worker_wait_seconds").inc(wait_s)
        results.put((worker_id, found))


def mp_blocked_alignments(
    s: np.ndarray,
    t: np.ndarray,
    config: MpBlockedConfig | None = None,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[LocalAlignment]:
    """Find local alignments with real worker processes.

    Returns the merged, finalized alignment queue -- the same post-processing
    as the simulated strategies, so results are comparable across backends.
    """
    config = config or MpBlockedConfig()
    from ..seq.alphabet import encode

    s = encode(s)
    t = encode(t)
    tiling = explicit_tiling(len(s), len(t), config.n_bands, config.n_blocks)
    ctx = mp.get_context()
    obs_dir: str | None = None
    obs: ObsJob | None = None
    # Segments also flow when only the sanitizer is on (they carry its events).
    if is_enabled() or get_sanitizer() is not None:
        obs_dir = tempfile.mkdtemp(prefix="repro-obs-")
        obs = ObsJob(obs_dir, "blocked", perf_counter())
    ready = [ctx.Event() for _ in range(tiling.n_bands * tiling.n_blocks)]
    results: mp.Queue = ctx.Queue()
    with create_shared_array((tiling.n_bands + 1, len(t) + 1), SCORE_DTYPE) as boundaries:
        workers = [
            ctx.Process(
                target=_worker,
                args=(
                    w,
                    s.tobytes(),
                    t.tobytes(),
                    config,
                    scoring,
                    boundaries.name,
                    boundaries.array.shape,
                    ready,
                    results,
                    obs,
                ),
            )
            for w in range(config.n_workers)
        ]
        try:
            with get_tracer().span("mp_blocked", "coordination", n_workers=config.n_workers):
                for w in workers:
                    w.start()
                collected = drain_results(
                    results, workers, config.n_workers, config.timeout
                )
                for w in workers:
                    w.join(timeout=config.timeout)
        finally:
            for w in workers:
                if w.is_alive():
                    w.terminate()
                    w.join(timeout=5.0)
            if obs is not None:
                merge_into(get_tracer(), get_metrics(), obs.dir, obs.key)
                shutil.rmtree(obs_dir, ignore_errors=True)

    queue = AlignmentQueue()
    for found in collected.values():
        for score, s0, s1, t0, t1 in found:
            queue.push(LocalAlignment(score, s0, s1, t0, t1))
    min_score = config.min_score if config.min_score is not None else config.threshold
    return queue.finalize(min_score=min_score, overlap_slack=8, merge=True)
