"""Persistent shared-memory worker pool for repeated alignments.

The one-shot ``mp_*`` backends pay full process spawn plus sequence pickling
on *every* call -- fine for a single 400 kBP comparison, ruinous for the
ROADMAP's serving scenario where the same genome pair (or a stream of pairs)
is aligned over and over.  :class:`AlignmentWorkerPool` keeps ``n_workers``
processes alive across requests:

* Sequences are published once per pair through a
  :class:`repro.parallel.shm.SequenceArena`; workers attach by name and slice
  zero-copy views, so a request carries only a small job descriptor.
* Per-job coordination uses named shared-memory *progress counters* instead
  of semaphores/events, because synchronisation primitives can only be
  inherited at fork time while shm segments can be attached by name at any
  moment -- exactly what a long-lived pool serving arbitrary job shapes
  needs.
* Worker death is detected while collecting results (exit-code polling via
  :func:`repro.parallel.guard.drain_results`), so a crashed worker fails the
  request in well under a second instead of hanging for the full timeout.

The pool serves all three real-parallel algorithms: the non-blocked
wave-front (Section 4.2), the blocked wave-front (Section 4.3) and the
phase-2 scattered mapping (Section 4.4) -- plus the database-search job
(:meth:`AlignmentWorkerPool.search`), which replaces the static per-role
partition with a *dynamic* work queue: the packed database is published once
through the arena, each length bucket becomes a chunk descriptor on a shared
queue, and workers pull the next chunk whenever they finish one (greedy
self-scheduling), so a skewed bucket cannot stall the rest of the pool.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
import time
from time import perf_counter
from typing import Sequence

import numpy as np

from ..check.sanitizer import get_sanitizer
from ..core.alignment import AlignmentQueue, LocalAlignment
from ..core.engine import KernelWorkspace
from ..core.global_align import SubsequenceAlignment, align_region
from ..core.kernels import SCORE_DTYPE
from ..core.multi_engine import MultiSequenceWorkspace
from ..core.regions import RegionConfig, StreamingRegionFinder
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..obs import gcups, get_metrics, get_tracer, is_enabled
from ..obs.collect import ObsJob, discard_segments, merge_into, observed_worker
from ..seq.alphabet import encode
from ..strategies.blocked import compute_tile
from ..strategies.partition import column_partition, explicit_tiling
from ..strategies.search import TopK
from .guard import WorkerCrashed, drain_results, poll_until
from .mp_blocked import MpBlockedConfig
from .mp_wavefront import MpWavefrontConfig
from .shm import ArenaHandle, SequenceArena, attach_arena, attach_shared_array, create_shared_array


class PoolJobError(RuntimeError):
    """A pool worker raised while executing a job (the pool itself is fine)."""


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _close_arenas(arenas: dict) -> None:
    """Close every cached arena attachment, dropping its views first.

    Shared by the stale-pair eviction in :func:`_get_pair` and the worker
    exit path.  The numpy views are released before ``close`` so no exported
    buffer outlives the mapping, and failures are swallowed: this runs in
    ``finally`` blocks where a raise would mask the real error.
    """
    san = get_sanitizer()
    for name in list(arenas):
        shm, *views = arenas.pop(name)
        del views
        try:
            shm.close()
        except (BufferError, OSError):
            continue
        if san is not None:
            san.on_close(name, "arena", False)


def _get_pair(arenas: dict, handle: ArenaHandle) -> tuple[np.ndarray, np.ndarray]:
    """Attach (and cache) the arena named by ``handle``; evict stale pairs."""
    cached = arenas.get(handle.name)
    if cached is None:
        _close_arenas(arenas)
        arenas[handle.name] = attach_arena(handle)
        cached = arenas[handle.name]
    return cached[1], cached[2]


def _job_wavefront(role: int, job: dict, arenas: dict) -> list:
    s, t = _get_pair(arenas, job["arena"])
    n_workers: int = job["n_workers"]
    timeout: float = job["timeout"]
    scoring: Scoring = job["scoring"]
    m = len(s)
    c0, c1 = column_partition(len(t), n_workers)[role]
    with attach_shared_array(
        job["borders"], (max(1, n_workers - 1), m), SCORE_DTYPE
    ) as borders, attach_shared_array(job["progress"], (n_workers,), np.int64) as progress:
        ws = KernelWorkspace(t[c0:c1], scoring)
        finder = StreamingRegionFinder(RegionConfig(threshold=job["threshold"]))
        prev = np.zeros(c1 - c0 + 1, dtype=SCORE_DTYPE)
        batch: int = job["rows_per_exchange"]
        # Telemetry is chunk-grained: with the tracer disabled each chunk
        # pays two branch checks, keeping the hot per-row path untouched.
        tracer = get_tracer()
        tracing = tracer.enabled
        wait_s = busy_s = 0.0
        for lo in range(0, m, batch):
            hi = min(lo + batch, m)
            if role > 0:
                t0 = perf_counter() if tracing else 0.0
                poll_until(
                    lambda: int(progress.array[role - 1]) >= hi,
                    timeout,
                    f"wavefront worker {role} starved at row {lo}",
                )
                san = get_sanitizer()
                if san is not None:
                    san.on_wait(f"progress[{role - 1}]")
                if tracing:
                    waited = perf_counter() - t0
                    wait_s += waited
                    tracer.record("border_wait", "communication", t0, waited, row=lo)
            t0 = perf_counter() if tracing else 0.0
            for i in range(lo, hi):
                left = int(borders.array[role - 1, i]) if role > 0 else 0
                prev = ws.sw_row_slice(prev, int(s[i]), left, out=prev)
                finder.feed(i + 1, prev)
                if role < n_workers - 1:
                    borders.array[role, i] = prev[-1]
            if role < n_workers - 1:
                progress.array[role] = hi
            if tracing:
                spent = perf_counter() - t0
                busy_s += spent
                tracer.record("rows", "computation", t0, spent, lo=lo, hi=hi)
        if tracing:
            metrics = get_metrics()
            metrics.counter("cells_computed").inc(m * (c1 - c0))
            metrics.counter("worker_busy_seconds").inc(busy_s)
            metrics.counter("worker_wait_seconds").inc(wait_s)
        return [
            (r.score, a.s_start, a.s_end, a.t_start + c0, a.t_end + c0)
            for r in finder.finish()
            for a in [r.as_alignment()]
        ]


def _job_blocked(role: int, job: dict, arenas: dict) -> list:
    s, t = _get_pair(arenas, job["arena"])
    n_workers: int = job["n_workers"]
    timeout: float = job["timeout"]
    scoring: Scoring = job["scoring"]
    tiling = explicit_tiling(len(s), len(t), job["n_bands"], job["n_blocks"])
    found: list[tuple[int, int, int, int, int]] = []
    with attach_shared_array(
        job["boundaries"], (tiling.n_bands + 1, len(t) + 1), SCORE_DTYPE
    ) as boundaries, attach_shared_array(
        job["band_done"], (tiling.n_bands,), np.int64
    ) as band_done:
        # One workspace per column block, shared by every band this worker
        # owns: the query profile for a block is band-invariant.
        workspaces: dict[int, KernelWorkspace] = {}
        tracer = get_tracer()
        tracing = tracer.enabled
        wait_s = busy_s = 0.0
        for band in range(tiling.n_bands):
            if band % n_workers != role:
                continue
            r0, r1 = tiling.row_bounds[band]
            h = r1 - r0
            s_band = s[r0:r1]
            left_col = np.zeros(h, dtype=SCORE_DTYPE)
            band_rows = np.zeros((h, len(t) + 1), dtype=SCORE_DTYPE)
            for block in range(tiling.n_blocks):
                c0, c1 = tiling.col_bounds[block]
                if band > 0:
                    t0 = perf_counter() if tracing else 0.0
                    poll_until(
                        lambda: int(band_done.array[band - 1]) > block,
                        timeout,
                        f"blocked worker {role} starved at ({band - 1}, {block})",
                    )
                    san = get_sanitizer()
                    if san is not None:
                        san.on_wait(f"band_done[{band - 1}]")
                    if tracing:
                        waited = perf_counter() - t0
                        wait_s += waited
                        tracer.record(
                            "block_wait", "communication", t0, waited, band=band, block=block
                        )
                if c1 > c0 and h:
                    ws = workspaces.get(block)
                    if ws is None:
                        ws = workspaces[block] = KernelWorkspace(t[c0:c1], scoring)
                    t0 = perf_counter() if tracing else 0.0
                    top = boundaries.array[band, c0 : c1 + 1].copy()
                    tile = compute_tile(top, left_col, s_band, t[c0:c1], scoring, ws)
                    band_rows[:, c0 + 1 : c1 + 1] = tile[:, 1:]
                    left_col = tile[:, -1].copy()
                    boundaries.array[band + 1, c0 + 1 : c1 + 1] = tile[-1, 1:]
                    if tracing:
                        spent = perf_counter() - t0
                        busy_s += spent
                        tracer.record("tile", "computation", t0, spent, band=band, block=block)
                band_done.array[band] = block + 1
            if h:
                finder = StreamingRegionFinder(RegionConfig(threshold=job["threshold"]))
                for r in range(h):
                    finder.feed(r0 + r + 1, band_rows[r])
                for region in finder.finish():
                    a = region.as_alignment()
                    found.append((a.score, a.s_start, a.s_end, a.t_start, a.t_end))
    if tracing:
        # Tile cells are counted by the engine's batched-kernel hook; only
        # the busy/wait split needs recording here.
        metrics = get_metrics()
        metrics.counter("worker_busy_seconds").inc(busy_s)
        metrics.counter("worker_wait_seconds").inc(wait_s)
    return found


def _job_phase2(role: int, job: dict, arenas: dict) -> list:
    s, t = _get_pair(arenas, job["arena"])
    n_workers: int = job["n_workers"]
    scoring: Scoring = job["scoring"]
    out = []
    tracer = get_tracer()
    tracing = tracer.enabled
    # The paper's scattered mapping: worker i takes vector slots i, i+P, ...
    for idx in range(role, len(job["regions"]), n_workers):
        score, s0, s1, t0, t1 = job["regions"][idx]
        begin = perf_counter() if tracing else 0.0
        # DP cells are counted by the engine's batched-kernel hook inside
        # needleman_wunsch; counting the region area here would double-count.
        record = align_region(s, t, LocalAlignment(score, s0, s1, t0, t1), scoring)
        out.append((idx, record))
        if tracing:
            tracer.record(
                "align_region", "computation", begin, perf_counter() - begin, idx=idx
            )
    if tracing:
        get_metrics().counter("regions_aligned").inc(len(out))
    return out


def _job_search(role: int, job: dict, arenas: dict, work) -> list:
    """Dynamic-dispatch database search: pull packed chunks until sentinel.

    The arena's ``s`` slot holds the query, ``t`` the flat concatenation of
    every bucket's code matrix; each chunk descriptor is
    ``(offset, width, lanes, lengths, indices)`` locating one bucket in the
    blob.  The worker keeps a local top-k (deterministic total order, so the
    merge is interleaving-independent) and stops at the first ``None``
    sentinel -- exactly one per worker is enqueued ahead of the job.
    """
    q, blob = _get_pair(arenas, job["arena"])
    scoring: Scoring = job["scoring"]
    top = TopK(job["top_k"])
    tracer = get_tracer()
    tracing = tracer.enabled
    busy_s = 0.0
    cells = 0
    chunks_done = 0
    queue_depth = 0
    while True:
        chunk = work.get()
        if chunk is None:
            break
        offset, width, lanes, lengths, indices = chunk
        if tracing:
            try:
                queue_depth = max(queue_depth, work.qsize())
            except NotImplementedError:  # qsize is unimplemented on macOS
                pass
        t0 = perf_counter()
        codes = blob[offset : offset + lanes * width].reshape(lanes, width)
        ws = MultiSequenceWorkspace(codes, lengths, scoring)
        scores = ws.sw_best_scores(q)
        for lane, index in enumerate(indices):
            top.push(int(scores[lane]), int(index))
        chunks_done += 1
        if tracing:
            spent = perf_counter() - t0
            busy_s += spent
            cells += int(len(q)) * int(sum(lengths))
            tracer.record(
                "search_chunk", "computation", t0, spent, lanes=lanes, width=width
            )
    if tracing:
        metrics = get_metrics()
        metrics.counter("search_chunks").inc(chunks_done)
        metrics.counter("worker_busy_seconds").inc(busy_s)
        metrics.gauge("search_queue_depth").set(queue_depth)
        if busy_s > 0.0:
            metrics.gauge(f"search_worker{role}_gcups").set(gcups(cells, busy_s))
    return top.items()


_JOB_KINDS = {
    "wavefront": _job_wavefront,
    "blocked": _job_blocked,
    "phase2": _job_phase2,
}


def _pool_worker(role: int, tasks, results, work) -> None:
    arenas: dict = {}
    try:
        while True:
            job = tasks.get()
            if job is None:
                break
            try:
                # observed_worker installs this job's tracer/registry (or
                # resets any state inherited over fork) and writes the
                # telemetry segment on the way out, error or not.
                with observed_worker(job.get("obs"), f"worker-{role}"):
                    if job["kind"] == "search":
                        payload = _job_search(role, job, arenas, work)
                    else:
                        payload = _JOB_KINDS[job["kind"]](role, job, arenas)
                results.put((job["id"], role, "ok", payload))
            except Exception as exc:  # propagate, keep the worker alive
                results.put((job["id"], role, "error", f"{type(exc).__name__}: {exc}"))
    finally:
        _close_arenas(arenas)


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------


class AlignmentWorkerPool:
    """A reusable pool of alignment workers with shared-memory sequences.

    >>> with AlignmentWorkerPool(n_workers=2) as pool:
    ...     pool.load_pair(s, t)                 # publish once
    ...     regions = pool.wavefront()           # many requests, no respawn
    ...     records = pool.phase2(regions)

    Sequences may also be passed directly to :meth:`wavefront` /
    :meth:`blocked` / :meth:`phase2`; the pool republishes the arena only
    when the pair actually changes.
    """

    def __init__(self, n_workers: int = 2, timeout: float = 300.0) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.timeout = timeout
        ctx = mp.get_context()
        self._tasks = [ctx.Queue() for _ in range(n_workers)]
        self._results = ctx.Queue()
        # The dynamic work queue for search jobs.  Queues can only be
        # inherited at fork time, so it exists for the pool's whole life; it
        # is empty between jobs (drained even on failure).
        self._work = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_pool_worker,
                args=(w, self._tasks[w], self._results, self._work),
                daemon=True,
            )
            for w in range(n_workers)
        ]
        for p in self._procs:
            p.start()
        self._arena: SequenceArena | None = None
        self._loaded: tuple | None = None
        self._job_counter = 0
        self._closed = False
        self._obs_dir: str | None = None  # created lazily on the first traced job

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "AlignmentWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self, join_timeout: float = 5.0) -> None:
        """Shut the workers down and release every shared segment."""
        if self._closed:
            return
        self._closed = True
        for q in self._tasks:
            try:
                q.put(None)
            except (ValueError, OSError):
                pass
        for p in self._procs:
            p.join(timeout=join_timeout)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._loaded = None
        if self._obs_dir is not None:
            shutil.rmtree(self._obs_dir, ignore_errors=True)
            self._obs_dir = None

    # -- sequence publication ----------------------------------------------

    def load_pair(self, s, t) -> ArenaHandle:
        """Publish an encoded sequence pair to all workers (replaces any prior)."""
        s = encode(s)
        t = encode(t)
        if self._arena is not None:
            self._arena.close()
        with get_tracer().span("shm_publish", "communication", bytes=int(s.size + t.size)):
            self._arena = SequenceArena(s, t)
        if is_enabled():
            get_metrics().counter("arena_bytes_published").inc(int(s.size + t.size))
        self._loaded = (s, t)
        return self._arena.handle

    def _ensure_pair(self, s, t) -> ArenaHandle:
        if s is None and t is None:
            if self._arena is None:
                raise ValueError("no sequence pair loaded; call load_pair first")
            return self._arena.handle
        if s is None or t is None:
            raise ValueError("pass both sequences or neither")
        s = encode(s)
        t = encode(t)
        if (
            self._loaded is not None
            and s is self._loaded[0]
            and t is self._loaded[1]
        ):
            return self._arena.handle  # type: ignore[union-attr]
        return self.load_pair(s, t)

    # -- job plumbing ------------------------------------------------------

    def _submit(self, job: dict, fail_fast: bool = True) -> dict[int, object]:
        if self._closed:
            raise RuntimeError("pool is closed")
        self._job_counter += 1
        job["id"] = self._job_counter
        tracer = get_tracer()
        obs: ObsJob | None = None
        # Segments also flow when only the sanitizer is on: they are the
        # channel worker lock/arena events travel back through.
        if tracer.enabled or get_sanitizer() is not None:
            if self._obs_dir is None:
                self._obs_dir = tempfile.mkdtemp(prefix="repro-obs-")
            obs = ObsJob(self._obs_dir, f"job{job['id']}", perf_counter())
            job["obs"] = obs
        with tracer.span(f"pool_job:{job['kind']}", "coordination", job=job["id"]):
            for q in self._tasks:
                q.put(job)
            collected = self._collect(job["id"], fail_fast=fail_fast)
        if obs is not None:
            # Fold every worker's segment (spans + metric snapshot) into the
            # coordinator's tracer/registry -- one coherent timeline per run.
            merge_into(tracer, get_metrics(), obs.dir, obs.key)
            discard_segments(obs.dir, obs.key)
        return collected

    def _collect(self, job_id: int, fail_fast: bool = True) -> dict[int, object]:
        import queue as _queue

        collected: dict[int, object] = {}
        errors: list[str] = []
        deadline = time.monotonic() + self.timeout
        while len(collected) + len(errors) < self.n_workers:
            try:
                jid, role, status, payload = self._results.get(timeout=0.2)
            except _queue.Empty:
                dead = [
                    (w, p.exitcode)
                    for w, p in enumerate(self._procs)
                    if p.exitcode is not None
                ]
                if dead:
                    self.close(join_timeout=0.1)
                    raise WorkerCrashed(
                        f"pool worker(s) {dead} died; the pool has been closed"
                    )
                if time.monotonic() > deadline:
                    raise TimeoutError(f"pool job {job_id} timed out")
                continue
            if jid != job_id:
                continue  # stale result from a previously failed job
            if status == "error":
                # fail_fast suits the statically-partitioned jobs; search
                # waits for every worker so the shared work queue is quiet
                # (and safe to drain) by the time the error propagates.
                if fail_fast:
                    raise PoolJobError(str(payload))
                errors.append(f"worker {role}: {payload}")
                continue
            collected[role] = payload
        if errors:
            raise PoolJobError("; ".join(errors))
        return collected

    # -- alignment requests -------------------------------------------------

    def wavefront(
        self,
        s=None,
        t=None,
        config: MpWavefrontConfig | None = None,
        scoring: Scoring = DEFAULT_SCORING,
    ) -> list[LocalAlignment]:
        """Strategy 1 on the persistent workers; same results as
        :func:`repro.parallel.mp_wavefront.mp_wavefront_alignments`."""
        config = config or MpWavefrontConfig(n_workers=self.n_workers)
        handle = self._ensure_pair(s, t)
        if handle.t_len < self.n_workers:
            raise ValueError("sequence narrower than the worker count")
        # Nested `with` (not sequential creates + try/finally): if the second
        # allocation raises, the first segment is still unwound.
        with create_shared_array(
            (max(1, self.n_workers - 1), handle.s_len), SCORE_DTYPE
        ) as borders, create_shared_array((self.n_workers,), np.int64) as progress:
            collected = self._submit(
                {
                    "kind": "wavefront",
                    "arena": handle,
                    "n_workers": self.n_workers,
                    "borders": borders.name,
                    "progress": progress.name,
                    "rows_per_exchange": config.rows_per_exchange,
                    "threshold": config.threshold,
                    "timeout": config.timeout,
                    "scoring": scoring,
                }
            )
        return _merge_found(collected.values(), config.threshold, config.min_score)

    def blocked(
        self,
        s=None,
        t=None,
        config: MpBlockedConfig | None = None,
        scoring: Scoring = DEFAULT_SCORING,
    ) -> list[LocalAlignment]:
        """Strategy 2 on the persistent workers; same results as
        :func:`repro.parallel.mp_blocked.mp_blocked_alignments`."""
        config = config or MpBlockedConfig(n_workers=self.n_workers)
        handle = self._ensure_pair(s, t)
        tiling = explicit_tiling(handle.s_len, handle.t_len, config.n_bands, config.n_blocks)
        with create_shared_array(
            (tiling.n_bands + 1, handle.t_len + 1), SCORE_DTYPE
        ) as boundaries, create_shared_array((tiling.n_bands,), np.int64) as band_done:
            collected = self._submit(
                {
                    "kind": "blocked",
                    "arena": handle,
                    "n_workers": self.n_workers,
                    "boundaries": boundaries.name,
                    "band_done": band_done.name,
                    "n_bands": config.n_bands,
                    "n_blocks": config.n_blocks,
                    "threshold": config.threshold,
                    "timeout": config.timeout,
                    "scoring": scoring,
                }
            )
        return _merge_found(collected.values(), config.threshold, config.min_score)

    def phase2(
        self,
        regions: Sequence[LocalAlignment],
        s=None,
        t=None,
        scoring: Scoring = DEFAULT_SCORING,
    ) -> list[SubsequenceAlignment]:
        """Section 4.4's scattered mapping on the persistent workers."""
        handle = self._ensure_pair(s, t)
        ordered = sorted(regions, key=lambda r: (-r.size, r.region))
        if not ordered:
            return []
        collected = self._submit(
            {
                "kind": "phase2",
                "arena": handle,
                "n_workers": self.n_workers,
                "regions": [
                    (r.score, r.s_start, r.s_end, r.t_start, r.t_end) for r in ordered
                ],
                "scoring": scoring,
            }
        )
        out: list[SubsequenceAlignment | None] = [None] * len(ordered)
        for part in collected.values():
            for idx, record in part:
                out[idx] = record
        return out  # type: ignore[return-value]

    # -- database search -----------------------------------------------------

    def search(
        self,
        query,
        packed,
        top_k: int = 10,
        scoring: Scoring = DEFAULT_SCORING,
    ) -> list[tuple[int, int]]:
        """One query against a :class:`repro.seq.PackedDatabase`.

        Publishes the query plus the flat concatenation of every bucket
        matrix through a single arena, enqueues one chunk descriptor per
        bucket on the dynamic work queue (then one sentinel per worker), and
        broadcasts the job.  Workers pull chunks greedily and return local
        top-k heaps; the deterministic total order makes the merged
        ``(score, index)`` ranking identical to a sequential scan.
        """
        query = encode(query)
        if not packed.buckets:
            return []
        total = sum(b.codes.size for b in packed.buckets)
        blob = np.empty(total, dtype=np.uint8)
        chunks = []
        offset = 0
        for bucket in packed.buckets:
            flat = np.ascontiguousarray(bucket.codes).reshape(-1)
            blob[offset : offset + flat.size] = flat
            chunks.append(
                (
                    offset,
                    bucket.width,
                    bucket.lanes,
                    tuple(int(x) for x in bucket.lengths),
                    tuple(int(x) for x in bucket.indices),
                )
            )
            offset += flat.size
        arena: SequenceArena | None = None
        try:
            # The arena is created inside the try so that *any* failure after
            # it exists -- including the metrics block below -- unwinds it;
            # previously an exception between creation and dispatch leaked
            # the named segment.
            with get_tracer().span(
                "shm_publish", "communication", bytes=int(query.size + blob.size)
            ):
                arena = SequenceArena(query, blob)
            if is_enabled():
                metrics = get_metrics()
                metrics.counter("arena_bytes_published").inc(int(query.size + blob.size))
                metrics.gauge("search_queue_chunks").set(len(chunks))
            try:
                for chunk in chunks:
                    self._work.put(chunk)
                for _ in range(self.n_workers):
                    self._work.put(None)
                collected = self._submit(
                    {
                        "kind": "search",
                        "arena": arena.handle,
                        "top_k": top_k,
                        "scoring": scoring,
                    },
                    fail_fast=False,
                )
            except PoolJobError:
                # Every worker has reported back (fail_fast=False), so nothing
                # is still pulling: leftover chunks and the failed worker's
                # sentinel can be drained without starving anyone.
                self._drain_work()
                raise
            except BaseException:
                # Timeout/crash/interrupt: workers may be mid-pull, so the
                # queue cannot be drained safely -- retire the pool instead.
                self.close(join_timeout=1.0)
                raise
        finally:
            if arena is not None:
                arena.close()
        top = TopK(top_k)
        for items in collected.values():
            top.merge(items)
        return top.ranked()

    def _drain_work(self) -> None:
        import queue as _queue

        while True:
            try:
                self._work.get(timeout=0.1)
            except (_queue.Empty, OSError, ValueError):
                return


def _merge_found(parts, threshold: int, min_score: int | None) -> list[LocalAlignment]:
    """The same queue merge/finalize step every phase-1 backend performs."""
    queue = AlignmentQueue()
    for found in parts:
        for score, s0, s1, t0, t1 in found:
            queue.push(LocalAlignment(score, s0, s1, t0, t1))
    min_score = min_score if min_score is not None else threshold
    return queue.finalize(min_score=min_score, overlap_slack=8, merge=True)
