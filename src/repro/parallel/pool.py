"""Persistent shared-memory worker pool for repeated alignments.

The one-shot ``mp_*`` backends pay full process spawn plus sequence pickling
on *every* call -- fine for a single 400 kBP comparison, ruinous for the
ROADMAP's serving scenario where the same genome pair (or a stream of pairs)
is aligned over and over.  :class:`AlignmentWorkerPool` keeps ``n_workers``
processes alive across requests:

* Sequences are published once per pair through a
  :class:`repro.parallel.shm.SequenceArena`; workers attach by name and slice
  zero-copy views, so a request carries only a small job descriptor.
* Every statically-partitioned phase-1 job speaks one *generic task
  protocol* (:func:`_job_plan`): the job ships a
  :class:`repro.plan.PlanSpec`, each worker rebuilds the identical
  :class:`repro.plan.TaskGraph` via :func:`repro.plan.cached_plan`, runs its
  own tiles in id order and gates every cross-worker dependency on a shared
  *done-flag* array indexed by tile id.  Shared flags (not
  semaphores/events) because synchronisation primitives can only be
  inherited at fork time while shm segments can be attached by name at any
  moment -- exactly what a long-lived pool serving arbitrary job shapes
  needs.
* Worker death is detected while collecting results (exit-code polling in
  :meth:`AlignmentWorkerPool._collect`), so a crashed worker fails the
  request in well under a second instead of hanging for the full timeout.

The pool therefore serves every plan kind the planner can spell -- the
non-blocked wave-front (Section 4.2), the blocked wave-front (Section 4.3),
the pre_process scoreboard (Section 5) -- plus the phase-2 scattered mapping
(Section 4.4) and the database-search job
(:meth:`AlignmentWorkerPool.search`), which replaces the static per-role
partition with a *dynamic* work queue: the packed database is published once
through the arena, each length-bucket tile of the search graph goes on a
shared queue, and workers pull the next tile whenever they finish one
(greedy self-scheduling), so a skewed bucket cannot stall the rest of the
pool.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
import time
from time import perf_counter
from typing import Sequence

import numpy as np

from ..check.sanitizer import get_sanitizer
from ..core.alignment import LocalAlignment
from ..core.global_align import SubsequenceAlignment, align_region
from ..core.kernels import SCORE_DTYPE
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..obs import gcups, get_metrics, get_tracer, is_enabled
from ..obs.collect import ObsJob, discard_segments, merge_into, observed_worker
from ..plan import (
    ExecutionResult,
    PlanSpec,
    SearchRuntime,
    TaskGraph,
    blocked_spec,
    cached_plan,
    finalize_plan,
    make_runtime,
    maybe_verify,
    plan_search_buckets,
    search_blob,
    state_shape,
    wavefront_spec,
)
from ..seq.alphabet import encode
from .guard import WorkerCrashed, poll_until
from .mp_blocked import MpBlockedConfig
from .mp_wavefront import MpWavefrontConfig
from .shm import ArenaHandle, SequenceArena, attach_arena, attach_shared_array, create_shared_array

#: End-of-stream marker of every pool queue.  ``None`` by value (needs no
#: shared state to compare against); always spelled ``SENTINEL`` so the
#: shutdown handshake is explicit at every get/put site.
SENTINEL = None


class PoolJobError(RuntimeError):
    """A pool worker raised while executing a job (the pool itself is fine)."""


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _close_arenas(arenas: dict) -> None:
    """Close every cached arena attachment, dropping its views first.

    Shared by the stale-pair eviction in :func:`_get_pair` and the worker
    exit path.  The numpy views are released before ``close`` so no exported
    buffer outlives the mapping, and failures are swallowed: this runs in
    ``finally`` blocks where a raise would mask the real error.
    """
    san = get_sanitizer()
    for name in list(arenas):
        shm, *views = arenas.pop(name)
        del views
        try:
            shm.close()
        except (BufferError, OSError):
            continue
        if san is not None:
            san.on_close(name, "arena", False)


def _get_pair(arenas: dict, handle: ArenaHandle) -> tuple[np.ndarray, np.ndarray]:
    """Attach (and cache) the arena named by ``handle``; evict stale pairs."""
    cached = arenas.get(handle.name)
    if cached is None:
        _close_arenas(arenas)
        arenas[handle.name] = attach_arena(handle)
        cached = arenas[handle.name]
    return cached[1], cached[2]


def _job_plan(role: int, job: dict, arenas: dict) -> list:
    """Generic ready-set execution of one planned job (any static kind).

    The worker rebuilds the task graph from the job's spec (cached across
    requests on the same pair), attaches the shared cross-owner state array
    plus the shared per-tile done-flag array, and walks its own tiles in id
    order.  A tile may run once every dependency's flag is up: same-owner
    dependencies are satisfied by program order, cross-owner ones are polled
    under the job timeout so a stuck neighbour surfaces as a descriptive
    error instead of a hang.
    """
    s, t = _get_pair(arenas, job["arena"])
    graph = cached_plan(job["spec"], len(s), len(t))
    timeout: float = job["timeout"]
    scoring: Scoring = job["scoring"]
    with attach_shared_array(
        job["state"], state_shape(graph), SCORE_DTYPE
    ) as state, attach_shared_array(job["done"], (len(graph.tiles),), np.int64) as done:
        runtime = make_runtime(graph, s, t, scoring, state=state.array)
        done_flags = done.array
        tiles = graph.tiles
        # Telemetry is tile-grained: with the tracer disabled each tile pays
        # two branch checks, keeping the hot per-row path untouched.
        tracer = get_tracer()
        tracing = tracer.enabled
        wait_s = busy_s = 0.0
        cells = 0
        for tile in graph.tiles_of(role):
            for dep in tile.deps:
                if tiles[dep].owner == role:
                    continue  # program order: own tiles run in id order
                t0 = perf_counter() if tracing else 0.0
                poll_until(
                    lambda d=dep: int(done_flags[d]) == 1,
                    timeout,
                    f"plan worker {role} starved at tile {tile.id} (dep {dep})",
                )
                san = get_sanitizer()
                if san is not None:
                    san.on_wait(f"done[{dep}]")
                if tracing:
                    waited = perf_counter() - t0
                    wait_s += waited
                    tracer.record(
                        "tile_wait", "communication", t0, waited, tile=tile.id, dep=dep
                    )
            t0 = perf_counter() if tracing else 0.0
            runtime.run_tile(tile)
            done_flags[tile.id] = 1
            if tracing:
                spent = perf_counter() - t0
                busy_s += spent
                tracer.record(
                    runtime.SPAN_NAME,
                    "computation",
                    t0,
                    spent,
                    **runtime.tile_args(tile),
                )
            if not runtime.ENGINE_COUNTS_CELLS:
                cells += tile.cells
        if tracing:
            metrics = get_metrics()
            if cells:
                metrics.counter("cells_computed").inc(cells)
            metrics.counter("worker_busy_seconds").inc(busy_s)
            metrics.counter("worker_wait_seconds").inc(wait_s)
        return runtime.emit(role)


def _job_phase2(role: int, job: dict, arenas: dict) -> list:
    s, t = _get_pair(arenas, job["arena"])
    n_workers: int = job["n_workers"]
    scoring: Scoring = job["scoring"]
    out = []
    tracer = get_tracer()
    tracing = tracer.enabled
    # The paper's scattered mapping: worker i takes vector slots i, i+P, ...
    for idx in range(role, len(job["regions"]), n_workers):
        score, s0, s1, t0, t1 = job["regions"][idx]
        begin = perf_counter() if tracing else 0.0
        # DP cells are counted by the engine's batched-kernel hook inside
        # needleman_wunsch; counting the region area here would double-count.
        record = align_region(s, t, LocalAlignment(score, s0, s1, t0, t1), scoring)
        out.append((idx, record))
        if tracing:
            tracer.record(
                "align_region", "computation", begin, perf_counter() - begin, idx=idx
            )
    if tracing:
        get_metrics().counter("regions_aligned").inc(len(out))
    return out


def _job_search(role: int, job: dict, arenas: dict, works) -> dict:
    """Dynamic-dispatch database search: pull graph tiles until SENTINEL.

    The job's ``shard_of`` map assigns this worker to one database shard:
    the worker attaches that shard's arena (``s`` slot the query, ``t`` the
    shard's flat bucket blob, see :func:`repro.plan.search_blob`) and pulls
    from that shard's work queue -- workers sharing a shard self-schedule
    greedily off the same queue, so an unsharded job (every worker in group
    0) behaves exactly as before.  Tiles carry shard-local offsets, so the
    runtime runs them against the private blob at base 0.  The worker's
    :class:`~repro.plan.SearchRuntime` keeps a local top-k (deterministic
    total order, so the merge is interleaving-independent) and stops at the
    first SENTINEL -- exactly one per worker is enqueued ahead of the job;
    the emission is tagged with the shard for the coordinator's tournament
    reduce.
    """
    shard = job.get("shard_of", {}).get(role, 0)
    handles = job.get("arenas")
    handle = handles[shard] if handles else job["arena"]
    work = works[shard]
    q, blob = _get_pair(arenas, handle)
    runtime = SearchRuntime(
        q, blob, job["scoring"], job["top_k"], kernel=job.get("kernel", "classic")
    )
    tracer = get_tracer()
    tracing = tracer.enabled
    busy_s = 0.0
    chunks_done = 0
    queue_depth = 0
    while True:
        tile = work.get()
        if tile is SENTINEL:
            break
        if tracing:
            try:
                queue_depth = max(queue_depth, work.qsize())
            except NotImplementedError:  # qsize is unimplemented on macOS
                pass
        t0 = perf_counter()
        runtime.run_tile(tile)
        chunks_done += 1
        if tracing:
            spent = perf_counter() - t0
            busy_s += spent
            tracer.record(
                "search_chunk",
                "computation",
                t0,
                spent,
                lanes=tile.payload[2],
                width=tile.payload[1],
                **runtime.tile_args(tile),
            )
    if tracing:
        metrics = get_metrics()
        metrics.counter("search_chunks").inc(chunks_done)
        metrics.counter("worker_busy_seconds").inc(busy_s)
        metrics.gauge("search_queue_depth").set(queue_depth)
        if busy_s > 0.0:
            metrics.gauge(f"search_worker{role}_gcups").set(gcups(runtime.cells, busy_s))
    out = runtime.emit(role)
    out["shard"] = shard
    return out


_JOB_KINDS = {
    "plan": _job_plan,
    "phase2": _job_phase2,
}


def _pool_worker(role: int, tasks, results, works) -> None:
    arenas: dict = {}
    try:
        while True:
            job = tasks.get()
            if job is SENTINEL:
                break
            try:
                # observed_worker installs this job's tracer/registry (or
                # resets any state inherited over fork) and writes the
                # telemetry segment on the way out, error or not.
                with observed_worker(job.get("obs"), f"worker-{role}"):
                    if job["kind"] == "search":
                        payload = _job_search(role, job, arenas, works)
                    else:
                        payload = _JOB_KINDS[job["kind"]](role, job, arenas)
                results.put((job["id"], role, "ok", payload))
            except Exception as exc:  # propagate, keep the worker alive
                results.put((job["id"], role, "error", f"{type(exc).__name__}: {exc}"))
    finally:
        _close_arenas(arenas)


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------


class AlignmentWorkerPool:
    """A reusable pool of alignment workers with shared-memory sequences.

    >>> with AlignmentWorkerPool(n_workers=2) as pool:
    ...     pool.load_pair(s, t)                 # publish once
    ...     regions = pool.wavefront()           # many requests, no respawn
    ...     records = pool.phase2(regions)

    Sequences may also be passed directly to :meth:`wavefront` /
    :meth:`blocked` / :meth:`phase2`; the pool republishes the arena only
    when the pair actually changes.  Arbitrary planned jobs go through
    :meth:`run_plan`.
    """

    def __init__(self, n_workers: int = 2, timeout: float = 300.0) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.timeout = timeout
        ctx = mp.get_context()
        self._tasks = [ctx.Queue() for _ in range(n_workers)]
        self._results = ctx.Queue()
        # The dynamic work queues for search jobs -- one per worker so a
        # sharded job can give each shard group its own queue (shard s uses
        # queue s).  Queues can only be inherited at fork time, so they
        # exist for the pool's whole life whatever n_shards later jobs ask
        # for; all are empty between jobs (drained even on failure).
        self._works = [ctx.Queue() for _ in range(n_workers)]
        self._procs = [
            ctx.Process(
                target=_pool_worker,
                args=(w, self._tasks[w], self._results, self._works),
                daemon=True,
            )
            for w in range(n_workers)
        ]
        for p in self._procs:
            p.start()
        self._arena: SequenceArena | None = None
        self._loaded: tuple | None = None
        self._job_counter = 0
        self._closed = False
        self._obs_dir: str | None = None  # created lazily on the first traced job

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "AlignmentWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self, join_timeout: float = 5.0) -> None:
        """Shut the workers down and release every shared segment."""
        if self._closed:
            return
        self._closed = True
        for q in self._tasks:
            try:
                q.put(SENTINEL)
            except (ValueError, OSError):
                pass
        for p in self._procs:
            p.join(timeout=join_timeout)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._loaded = None
        if self._obs_dir is not None:
            shutil.rmtree(self._obs_dir, ignore_errors=True)
            self._obs_dir = None

    # -- sequence publication ----------------------------------------------

    def load_pair(self, s, t) -> ArenaHandle:
        """Publish an encoded sequence pair to all workers (replaces any prior)."""
        s = encode(s)
        t = encode(t)
        if self._arena is not None:
            self._arena.close()
        with get_tracer().span("shm_publish", "communication", bytes=int(s.size + t.size)):
            self._arena = SequenceArena(s, t)
        if is_enabled():
            get_metrics().counter("arena_bytes_published").inc(int(s.size + t.size))
        self._loaded = (s, t)
        return self._arena.handle

    def _ensure_pair(self, s, t) -> ArenaHandle:
        if s is None and t is None:
            if self._arena is None:
                raise ValueError("no sequence pair loaded; call load_pair first")
            return self._arena.handle
        if s is None or t is None:
            raise ValueError("pass both sequences or neither")
        s = encode(s)
        t = encode(t)
        if (
            self._loaded is not None
            and s is self._loaded[0]
            and t is self._loaded[1]
        ):
            return self._arena.handle  # type: ignore[union-attr]
        return self.load_pair(s, t)

    # -- job plumbing ------------------------------------------------------

    def _submit(self, job: dict, fail_fast: bool = True) -> dict[int, object]:
        if self._closed:
            raise RuntimeError("pool is closed")
        self._job_counter += 1
        job["id"] = self._job_counter
        tracer = get_tracer()
        obs: ObsJob | None = None
        # Segments also flow when only the sanitizer is on: they are the
        # channel worker lock/arena events travel back through.
        if tracer.enabled or get_sanitizer() is not None:
            if self._obs_dir is None:
                self._obs_dir = tempfile.mkdtemp(prefix="repro-obs-")
            obs = ObsJob(self._obs_dir, f"job{job['id']}", perf_counter())
            job["obs"] = obs
        with tracer.span(f"pool_job:{job['kind']}", "coordination", job=job["id"]):
            for q in self._tasks:
                q.put(job)
            collected = self._collect(job["id"], fail_fast=fail_fast)
        if obs is not None:
            # Fold every worker's segment (spans + metric snapshot) into the
            # coordinator's tracer/registry -- one coherent timeline per run.
            merge_into(tracer, get_metrics(), obs.dir, obs.key)
            discard_segments(obs.dir, obs.key)
        return collected

    def _collect(self, job_id: int, fail_fast: bool = True) -> dict[int, object]:
        import queue as _queue

        collected: dict[int, object] = {}
        errors: list[str] = []
        deadline = time.monotonic() + self.timeout
        while len(collected) + len(errors) < self.n_workers:
            try:
                jid, role, status, payload = self._results.get(timeout=0.2)
            except _queue.Empty:
                dead = [
                    (w, p.exitcode)
                    for w, p in enumerate(self._procs)
                    if p.exitcode is not None
                ]
                if dead:
                    self.close(join_timeout=0.1)
                    raise WorkerCrashed(
                        f"pool worker(s) {dead} died; the pool has been closed"
                    )
                if time.monotonic() > deadline:
                    raise TimeoutError(f"pool job {job_id} timed out")
                continue
            if jid != job_id:
                continue  # stale result from a previously failed job
            if status == "error":
                # fail_fast suits the statically-partitioned jobs; search
                # waits for every worker so the shared work queue is quiet
                # (and safe to drain) by the time the error propagates.
                if fail_fast:
                    raise PoolJobError(str(payload))
                errors.append(f"worker {role}: {payload}")
                continue
            collected[role] = payload
        if errors:
            raise PoolJobError("; ".join(errors))
        return collected

    # -- planned jobs -------------------------------------------------------

    def run_plan(
        self,
        spec: PlanSpec,
        s=None,
        t=None,
        *,
        scoring: Scoring = DEFAULT_SCORING,
        timeout: float | None = None,
    ) -> ExecutionResult:
        """Execute one planned job (any static plan kind) on the workers.

        The *spec* -- not the graph -- rides the job descriptor; every
        worker rebuilds the identical graph from ``(spec, rows, cols)`` via
        :func:`repro.plan.cached_plan` and runs its tiles under the generic
        done-flag protocol.  Returns the merged
        :class:`repro.plan.ExecutionResult`.
        """
        handle = self._ensure_pair(s, t)
        graph = cached_plan(spec, handle.s_len, handle.t_len)
        if graph.n_procs != self.n_workers:
            raise ValueError(
                f"plan wants {graph.n_procs} processors"
                f" but the pool has {self.n_workers} workers"
            )
        maybe_verify(graph, "pool")
        tracer = get_tracer()
        # pool.wavefront/blocked come here directly (not through
        # Executor.run), so the pool stamps its own plan span; attribution
        # deduplicates the nested copy when a PoolExecutor wraps this call.
        span_args = graph.span_args(backend="pool") if tracer.enabled else {}
        # Nested `with` (not sequential creates + try/finally): if the second
        # allocation raises, the first segment is still unwound.
        with tracer.span(
            f"plan:{graph.kind}", "coordination", **span_args
        ), create_shared_array(
            state_shape(graph), SCORE_DTYPE
        ) as state, create_shared_array((len(graph.tiles),), np.int64) as done:
            collected = self._submit(
                {
                    "kind": "plan",
                    "arena": handle,
                    "spec": spec,
                    "state": state.name,
                    "done": done.name,
                    "timeout": self.timeout if timeout is None else timeout,
                    "scoring": scoring,
                }
            )
        parts = [collected[role] for role in sorted(collected)]
        result = finalize_plan(graph, parts)
        result.backend = "pool"
        return result

    # -- alignment requests -------------------------------------------------

    def wavefront(
        self,
        s=None,
        t=None,
        config: MpWavefrontConfig | None = None,
        scoring: Scoring = DEFAULT_SCORING,
    ) -> list[LocalAlignment]:
        """Strategy 1 on the persistent workers; same results as
        :func:`repro.parallel.mp_wavefront.mp_wavefront_alignments`."""
        config = config or MpWavefrontConfig(n_workers=self.n_workers)
        handle = self._ensure_pair(s, t)
        if handle.t_len < self.n_workers:
            raise ValueError("sequence narrower than the worker count")
        spec = wavefront_spec(
            n_procs=self.n_workers,
            group_rows=config.rows_per_exchange,
            threshold=config.threshold,
            min_score=config.min_score,
            kernel=config.kernel,
        )
        return self.run_plan(spec, timeout=config.timeout, scoring=scoring).alignments

    def blocked(
        self,
        s=None,
        t=None,
        config: MpBlockedConfig | None = None,
        scoring: Scoring = DEFAULT_SCORING,
    ) -> list[LocalAlignment]:
        """Strategy 2 on the persistent workers; same results as
        :func:`repro.parallel.mp_blocked.mp_blocked_alignments`."""
        config = config or MpBlockedConfig(n_workers=self.n_workers)
        self._ensure_pair(s, t)
        spec = blocked_spec(
            n_procs=self.n_workers,
            n_bands=config.n_bands,
            n_blocks=config.n_blocks,
            threshold=config.threshold,
            min_score=config.min_score,
            kernel=config.kernel,
        )
        return self.run_plan(spec, timeout=config.timeout, scoring=scoring).alignments

    def phase2(
        self,
        regions: Sequence[LocalAlignment],
        s=None,
        t=None,
        scoring: Scoring = DEFAULT_SCORING,
    ) -> list[SubsequenceAlignment]:
        """Section 4.4's scattered mapping on the persistent workers."""
        handle = self._ensure_pair(s, t)
        ordered = sorted(regions, key=lambda r: (-r.size, r.region))
        if not ordered:
            return []
        collected = self._submit(
            {
                "kind": "phase2",
                "arena": handle,
                "n_workers": self.n_workers,
                "regions": [
                    (r.score, r.s_start, r.s_end, r.t_start, r.t_end) for r in ordered
                ],
                "scoring": scoring,
            }
        )
        out: list[SubsequenceAlignment | None] = [None] * len(ordered)
        for part in collected.values():
            for idx, record in part:
                out[idx] = record
        return out  # type: ignore[return-value]

    # -- database search -----------------------------------------------------

    def search(
        self,
        query,
        packed,
        top_k: int = 10,
        scoring: Scoring = DEFAULT_SCORING,
        kernel: str = "classic",
        n_shards: int = 1,
    ) -> list[tuple[int, int]]:
        """One query against a :class:`repro.seq.PackedDatabase`.

        Plans one independent tile per length bucket
        (:func:`repro.plan.plan_search_buckets`) and runs the graph through
        :meth:`run_search_plan`; returns the merged ``(score, index)``
        ranking, identical to a sequential scan.  With ``n_shards > 1`` the
        database is dealt into shards, each owned by its own worker group
        and arena (see :meth:`run_search_plan`).
        """
        query = encode(query)
        if not packed.buckets:
            return []
        if n_shards > 1:
            from ..seq.db import shard_database

            shards = shard_database(packed, n_shards)
            graph = plan_search_buckets(
                packed,
                len(query),
                top_k=top_k,
                kernel=kernel,
                n_shards=n_shards,
                shards=shards,
            )
            blob = search_blob(shards)
        else:
            graph = plan_search_buckets(packed, len(query), top_k=top_k, kernel=kernel)
            blob = search_blob(packed)
        return self.run_search_plan(graph, query, blob, scoring=scoring).hits

    def run_search_plan(
        self,
        graph: TaskGraph,
        query: np.ndarray,
        blob: np.ndarray,
        *,
        scoring: Scoring = DEFAULT_SCORING,
    ) -> ExecutionResult:
        """Dynamic-dispatch execution of one search graph.

        Unsharded: publishes the query plus the flat bucket blob through a
        single arena, enqueues every tile on work queue 0 (then one SENTINEL
        per worker), and broadcasts the job; workers pull tiles greedily and
        return local top-k heaps.  Sharded (``graph.n_shards > 1``): the
        concatenated blob is cut back into per-shard blobs along
        ``params["shard_bases"]``, each shard gets its *own* arena and work
        queue, and worker ``r`` serves shard ``r % n_shards`` -- long-lived
        per-shard worker groups, each self-scheduling off its shard's queue.
        Emissions come back shard-tagged and :func:`repro.plan.finalize_plan`
        runs the tournament reduce; the deterministic total order makes the
        merged ranking interleaving- *and* shard-independent.
        """
        if graph.params.get("prefilter"):
            raise ValueError(
                "staged (prefilter) search graphs need a shared top-k threshold "
                "and cannot ride the dynamic work queue; use "
                "repro.strategies.prefilter.pooled_pruned_search"
            )
        n_shards = graph.n_shards
        if n_shards > self.n_workers:
            raise ValueError(
                f"graph wants {n_shards} shards but the pool has only "
                f"{self.n_workers} workers (one worker group per shard)"
            )
        maybe_verify(graph, "pool")
        tracer = get_tracer()
        # The search graph has no rebuildable spec, so everything attribution
        # needs (tiles/cells/critical-path) rides this span's args directly.
        span_args = graph.span_args(backend="pool") if tracer.enabled else {}
        shard_of = {role: role % n_shards for role in range(self.n_workers)}
        bases = list(graph.params.get("shard_bases") or (0,) * n_shards)
        bases.append(int(blob.size))
        arenas: list[SequenceArena] = []
        with tracer.span(f"plan:{graph.kind}", "coordination", **span_args):
            try:
                # Arenas are created inside the try so that *any* failure
                # after one exists -- including the metrics block below --
                # unwinds them; previously an exception between creation and
                # dispatch leaked the named segment.
                with get_tracer().span(
                    "shm_publish", "communication", bytes=int(query.size + blob.size)
                ):
                    for s in range(n_shards):
                        arenas.append(
                            SequenceArena(query, blob[bases[s] : bases[s + 1]])
                        )
                if is_enabled():
                    metrics = get_metrics()
                    metrics.counter("arena_bytes_published").inc(
                        n_shards * int(query.size) + int(blob.size)
                    )
                    metrics.gauge("search_queue_chunks").set(len(graph.tiles))
                try:
                    for tile in graph.tiles:
                        self._works[tile.shard].put(tile)
                    for role in range(self.n_workers):
                        self._works[shard_of[role]].put(SENTINEL)
                    collected = self._submit(
                        {
                            "kind": "search",
                            "arenas": [a.handle for a in arenas],
                            "shard_of": shard_of,
                            "n_shards": n_shards,
                            "top_k": graph.params["top_k"],
                            "kernel": graph.params.get("kernel", "classic"),
                            "scoring": scoring,
                        },
                        fail_fast=False,
                    )
                except PoolJobError:
                    # Every worker has reported back (fail_fast=False), so
                    # nothing is still pulling: leftover tiles and the failed
                    # worker's sentinel can be drained without starving anyone.
                    self._drain_work()
                    raise
                except BaseException:
                    # Timeout/crash/interrupt: workers may be mid-pull, so the
                    # queue cannot be drained safely -- retire the pool.
                    self.close(join_timeout=1.0)
                    raise
            finally:
                for arena in arenas:
                    arena.close()
        parts = [collected[role] for role in sorted(collected)]
        result = finalize_plan(graph, parts)
        result.backend = "pool"
        return result

    def _drain_work(self) -> None:
        import queue as _queue

        for work in self._works:
            while True:
                try:
                    work.get(timeout=0.1)
                except (_queue.Empty, OSError, ValueError):
                    break
