"""Real shared-memory (multiprocessing) backend of the paper's strategies."""

from .guard import WorkerCrashed, drain_results
from .mp_blocked import MpBlockedConfig, mp_blocked_alignments
from .mp_phase2 import mp_phase2
from .mp_wavefront import MpWavefrontConfig, mp_wavefront_alignments
from .pool import AlignmentWorkerPool, PoolJobError
from .shm import (
    ArenaHandle,
    SequenceArena,
    SharedArray,
    attach_shared_array,
    create_shared_array,
)

__all__ = [
    "AlignmentWorkerPool",
    "ArenaHandle",
    "MpBlockedConfig",
    "MpWavefrontConfig",
    "PoolJobError",
    "SequenceArena",
    "SharedArray",
    "WorkerCrashed",
    "attach_shared_array",
    "create_shared_array",
    "drain_results",
    "mp_blocked_alignments",
    "mp_phase2",
    "mp_wavefront_alignments",
]
