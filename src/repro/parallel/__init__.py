"""Real shared-memory (multiprocessing) backend of the paper's strategies."""

from .mp_blocked import MpBlockedConfig, mp_blocked_alignments
from .mp_phase2 import mp_phase2
from .mp_wavefront import MpWavefrontConfig, mp_wavefront_alignments
from .shm import SharedArray, attach_shared_array, create_shared_array

__all__ = [
    "MpBlockedConfig",
    "MpWavefrontConfig",
    "SharedArray",
    "attach_shared_array",
    "create_shared_array",
    "mp_blocked_alignments",
    "mp_phase2",
    "mp_wavefront_alignments",
]
