"""Shared-memory numpy arrays and sequence arenas for the real backend.

The simulated cluster in :mod:`repro.sim` reproduces the paper's *numbers*;
this package reproduces its *mechanics* on an actual multicore host using
:mod:`multiprocessing.shared_memory` as the stand-in for JIAJIA's shared
pages.  These helpers wrap allocation/attach/cleanup of typed arrays, plus
the :class:`SequenceArena` the persistent worker pool uses to publish a
sequence pair to every worker exactly once (instead of pickling both
sequences into every task).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..check.sanitizer import get_sanitizer


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without the attacher tracking its lifetime.

    Only the creating (parent) process owns a segment; before Python 3.13
    merely attaching also registers it with the resource tracker, which then
    warns about "leaked" segments at worker shutdown even though the parent
    cleans up properly.  Registration must be *suppressed*, not undone with
    ``unregister``: under fork the tracker is shared, so a worker-side
    unregister would strip the parent's own registration and make the
    parent's later unlink double-unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag; skip the registration
        original = resource_tracker.register

        def register_skipping_shm(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = register_skipping_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass
class SharedArray:
    """A numpy array living in named shared memory.

    Usable as a context manager; :meth:`close` is idempotent, so belt-and-
    braces cleanup in ``finally`` blocks cannot double-unlink the segment.
    """

    shm: shared_memory.SharedMemory | None
    array: np.ndarray
    owner: bool

    @property
    def name(self) -> str:
        if self.shm is None:
            raise ValueError("shared array already closed")
        return self.shm.name

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self.shm is None:
            return
        # Views into the buffer must be dropped before closing, or CPython
        # warns about leaked memoryviews.
        self.array = None  # type: ignore[assignment]
        shm, self.shm = self.shm, None
        name = shm.name
        shm.close()
        if self.owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass  # already unlinked by another cleanup path
        san = get_sanitizer()
        if san is not None:
            san.on_close(name, "array", self.owner)


def create_shared_array(shape: tuple[int, ...], dtype=np.int32) -> SharedArray:
    """Allocate a zero-initialised shared array."""
    nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
    shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    array[:] = 0
    san = get_sanitizer()
    if san is not None:
        san.on_open(shm.name, "array", True)
    return SharedArray(shm=shm, array=array, owner=True)


def attach_shared_array(name: str, shape: tuple[int, ...], dtype=np.int32) -> SharedArray:
    """Attach to an existing shared array by name (worker side)."""
    shm = _attach_segment(name)
    array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    san = get_sanitizer()
    if san is not None:
        san.on_open(name, "array", False)
    return SharedArray(shm=shm, array=array, owner=False)


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable descriptor of a sequence pair living in shared memory."""

    name: str
    s_len: int
    t_len: int


class SequenceArena:
    """One encoded ``(s, t)`` pair in a named shared-memory segment.

    The pool parent creates an arena once per sequence pair; workers attach
    by name (cheap, no copy) and slice out zero-copy uint8 views.  This is
    what makes repeated alignments of the same pair pay no per-request
    serialization at all.
    """

    def __init__(self, s: np.ndarray, t: np.ndarray) -> None:
        s = np.ascontiguousarray(s, dtype=np.uint8)
        t = np.ascontiguousarray(t, dtype=np.uint8)
        total = int(s.size + t.size)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        buf = np.ndarray(total, dtype=np.uint8, buffer=self._shm.buf)
        buf[: s.size] = s
        buf[s.size :] = t
        self.handle = ArenaHandle(self._shm.name, int(s.size), int(t.size))
        san = get_sanitizer()
        if san is not None:
            san.on_open(self.handle.name, "arena", True)

    def __enter__(self) -> "SequenceArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        name = shm.name
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        san = get_sanitizer()
        if san is not None:
            san.on_close(name, "arena", True)


def attach_arena(handle: ArenaHandle) -> tuple[shared_memory.SharedMemory, np.ndarray, np.ndarray]:
    """Worker-side attach: returns the segment plus zero-copy (s, t) views.

    The caller owns the returned segment and must ``close()`` (not unlink) it
    when the views are no longer needed.
    """
    shm = _attach_segment(handle.name)
    buf = np.ndarray(handle.s_len + handle.t_len, dtype=np.uint8, buffer=shm.buf)
    san = get_sanitizer()
    if san is not None:
        san.on_open(handle.name, "arena", False)
    return shm, buf[: handle.s_len], buf[handle.s_len :]
