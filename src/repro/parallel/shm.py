"""Shared-memory numpy arrays for the real-parallel backend.

The simulated cluster in :mod:`repro.sim` reproduces the paper's *numbers*;
this package reproduces its *mechanics* on an actual multicore host using
:mod:`multiprocessing.shared_memory` as the stand-in for JIAJIA's shared
pages.  These helpers wrap allocation/attach/cleanup of typed arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


@dataclass
class SharedArray:
    """A numpy array living in named shared memory."""

    shm: shared_memory.SharedMemory
    array: np.ndarray
    owner: bool

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> None:
        # Views into the buffer must be dropped before closing, or CPython
        # warns about leaked memoryviews.
        self.array = None  # type: ignore[assignment]
        self.shm.close()
        if self.owner:
            self.shm.unlink()


def create_shared_array(shape: tuple[int, ...], dtype=np.int32) -> SharedArray:
    """Allocate a zero-initialised shared array."""
    nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
    shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    array[:] = 0
    return SharedArray(shm=shm, array=array, owner=True)


def attach_shared_array(name: str, shape: tuple[int, ...], dtype=np.int32) -> SharedArray:
    """Attach to an existing shared array by name (worker side)."""
    shm = shared_memory.SharedMemory(name=name)
    array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    return SharedArray(shm=shm, array=array, owner=False)
