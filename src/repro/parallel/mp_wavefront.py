"""Real shared-memory implementation of the non-blocked wave-front.

Strategy 1 (Section 4.2) on actual OS processes: each worker owns N/P
columns, the two DP rows' border values travel through a shared-memory
array, and the per-row handshake is a pair of semaphores per edge -- one
counting "values produced", one counting "values consumed" (the paper's
read-acknowledge, which lets the producer stay exactly one row ahead,
matching the one-slot border buffer of the DSM version).

The schedule and the kernel-driving code both come from :mod:`repro.plan`:
the worker walks its tiles of the wave-front task graph and executes each
one through the shared :class:`~repro.plan.WavefrontRuntime`; only the
semaphore handshake around each tile is this backend's own.

Row-by-row semaphore round trips make this backend deliberately
communication-heavy -- it *is* the strategy whose overheads Table 1
documents -- so a ``rows_per_exchange`` knob (the blocking factor in
embryo) is exposed; tests show batching exchanges speeds it up, which is
Section 4.3's whole point re-enacted on real hardware.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..check.sanitizer import get_sanitizer
from ..core.alignment import LocalAlignment
from ..core.kernels import SCORE_DTYPE
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..obs import get_metrics, get_tracer, is_enabled
from ..obs.collect import ObsJob, merge_into, observed_worker
from ..plan import cached_plan, finalize_plan, make_runtime, state_shape, wavefront_spec
from .guard import drain_results
from .shm import attach_shared_array, create_shared_array


@dataclass(frozen=True)
class MpWavefrontConfig:
    """Parameters of the real-parallel wave-front run."""

    n_workers: int = 2
    rows_per_exchange: int = 1  # 1 = the paper's strategy 1; >1 = blocking
    threshold: int = 35
    min_score: int | None = None
    timeout: float = 300.0
    kernel: str = "classic"

    def __post_init__(self) -> None:
        if self.n_workers <= 0 or self.rows_per_exchange <= 0:
            raise ValueError("workers and rows_per_exchange must be positive")

    def spec(self):
        """The plan spec this config describes (one graph per (rows, cols))."""
        return wavefront_spec(
            n_procs=self.n_workers,
            group_rows=self.rows_per_exchange,
            threshold=self.threshold,
            min_score=self.min_score,
            kernel=self.kernel,
        )


def _worker(
    worker_id: int,
    s_bytes: bytes,
    t_bytes: bytes,
    config: MpWavefrontConfig,
    scoring: Scoring,
    shm_name: str,
    shape: tuple[int, int],
    produced: list,
    consumed: list,
    results: "mp.Queue",
    obs: ObsJob | None = None,
) -> None:
    s = np.frombuffer(s_bytes, dtype=np.uint8)
    t = np.frombuffer(t_bytes, dtype=np.uint8)
    graph = cached_plan(config.spec(), len(s), len(t))
    with observed_worker(obs, f"worker-{worker_id}") as (tracer, metrics), attach_shared_array(
        shm_name, shape, SCORE_DTYPE
    ) as borders:
        runtime = make_runtime(graph, s, t, scoring, state=borders.array)
        tracing = tracer.enabled
        wait_s = busy_s = 0.0
        cells = 0
        last = worker_id == config.n_workers - 1
        for tile in graph.tiles_of(worker_id):
            lo, hi, _c0, _c1 = tile.payload
            if worker_id > 0:
                t0 = perf_counter() if tracing else 0.0
                if not produced[worker_id - 1].acquire(timeout=config.timeout):
                    raise TimeoutError(f"worker {worker_id} starved at row {lo}")
                san = get_sanitizer()
                if san is not None:
                    san.on_wait(f"produced[{worker_id - 1}]")
                if tracing:
                    waited = perf_counter() - t0
                    wait_s += waited
                    tracer.record("border_wait", "communication", t0, waited, row=lo)
            t0 = perf_counter() if tracing else 0.0
            runtime.run_tile(tile)
            cells += tile.cells  # sw_row_slice bypasses the engine's cell hook
            if tracing:
                spent = perf_counter() - t0
                busy_s += spent
                tracer.record("rows", "computation", t0, spent, lo=lo, hi=hi)
            if worker_id > 0:
                consumed[worker_id - 1].release()  # read-acknowledge
                san = get_sanitizer()
                if san is not None:
                    san.on_post(f"consumed[{worker_id - 1}]")
            if not last:
                if lo > 0 and not consumed[worker_id].acquire(
                    timeout=config.timeout
                ):
                    raise TimeoutError(
                        f"worker {worker_id} never got its ack at row {lo}"
                    )
                produced[worker_id].release()
        if tracing:
            metrics.counter("cells_computed").inc(cells)
            metrics.counter("worker_busy_seconds").inc(busy_s)
            metrics.counter("worker_wait_seconds").inc(wait_s)
        results.put((worker_id, runtime.emit(worker_id)))


def mp_wavefront_alignments(
    s: np.ndarray,
    t: np.ndarray,
    config: MpWavefrontConfig | None = None,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[LocalAlignment]:
    """Run strategy 1 with real worker processes; returns the merged queue."""
    config = config or MpWavefrontConfig()
    from ..seq.alphabet import encode

    s = encode(s)
    t = encode(t)
    if len(t) < config.n_workers:
        raise ValueError("sequence narrower than the worker count")
    graph = cached_plan(config.spec(), len(s), len(t))
    ctx = mp.get_context()
    obs_dir: str | None = None
    obs: ObsJob | None = None
    # Segments also flow when only the sanitizer is on (they carry its events).
    if is_enabled() or get_sanitizer() is not None:
        obs_dir = tempfile.mkdtemp(prefix="repro-obs-")
        obs = ObsJob(obs_dir, "wavefront", perf_counter())
    # borders[w, i] = last cell of worker w's slice on row i
    produced = [ctx.Semaphore(0) for _ in range(max(0, config.n_workers - 1))]
    consumed = [ctx.Semaphore(0) for _ in range(max(0, config.n_workers - 1))]
    results: mp.Queue = ctx.Queue()
    with create_shared_array(state_shape(graph), SCORE_DTYPE) as borders:
        workers = [
            ctx.Process(
                target=_worker,
                args=(
                    w,
                    s.tobytes(),
                    t.tobytes(),
                    config,
                    scoring,
                    borders.name,
                    borders.array.shape,
                    produced,
                    consumed,
                    results,
                    obs,
                ),
            )
            for w in range(config.n_workers)
        ]
        try:
            with get_tracer().span("mp_wavefront", "coordination", n_workers=config.n_workers):
                for w in workers:
                    w.start()
                # Poll with exit-code checks: a crashed worker fails the call
                # in under a second instead of hanging until the full timeout
                # while its named shared-memory segment leaks.
                collected = drain_results(
                    results, workers, config.n_workers, config.timeout
                )
                for w in workers:
                    w.join(timeout=config.timeout)
        finally:
            for w in workers:
                if w.is_alive():
                    w.terminate()
                    w.join(timeout=5.0)
            if obs is not None:
                merge_into(get_tracer(), get_metrics(), obs.dir, obs.key)
                shutil.rmtree(obs_dir, ignore_errors=True)

    parts = [collected[w] for w in sorted(collected)]
    return finalize_plan(graph, parts).alignments
