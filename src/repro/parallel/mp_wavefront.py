"""Real shared-memory implementation of the non-blocked wave-front.

Strategy 1 (Section 4.2) on actual OS processes: each worker owns N/P
columns, the two DP rows' border values travel through a shared-memory
array, and the per-row handshake is a pair of semaphores per edge -- one
counting "values produced", one counting "values consumed" (the paper's
read-acknowledge, which lets the producer stay exactly one row ahead,
matching the one-slot border buffer of the DSM version).

Row-by-row semaphore round trips make this backend deliberately
communication-heavy -- it *is* the strategy whose overheads Table 1
documents -- so a ``rows_per_exchange`` knob (the blocking factor in
embryo) is exposed; tests show batching exchanges speeds it up, which is
Section 4.3's whole point re-enacted on real hardware.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..check.sanitizer import get_sanitizer
from ..core.alignment import AlignmentQueue, LocalAlignment
from ..core.engine import KernelWorkspace
from ..core.kernels import SCORE_DTYPE
from ..core.regions import RegionConfig, StreamingRegionFinder
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..obs import get_metrics, get_tracer, is_enabled
from ..obs.collect import ObsJob, merge_into, observed_worker
from ..strategies.partition import column_partition
from .guard import drain_results
from .shm import attach_shared_array, create_shared_array


@dataclass(frozen=True)
class MpWavefrontConfig:
    """Parameters of the real-parallel wave-front run."""

    n_workers: int = 2
    rows_per_exchange: int = 1  # 1 = the paper's strategy 1; >1 = blocking
    threshold: int = 35
    min_score: int | None = None
    timeout: float = 300.0

    def __post_init__(self) -> None:
        if self.n_workers <= 0 or self.rows_per_exchange <= 0:
            raise ValueError("workers and rows_per_exchange must be positive")


def _worker(
    worker_id: int,
    s_bytes: bytes,
    t_bytes: bytes,
    config: MpWavefrontConfig,
    scoring: Scoring,
    shm_name: str,
    shape: tuple[int, int],
    produced: list,
    consumed: list,
    results: "mp.Queue",
    obs: ObsJob | None = None,
) -> None:
    s = np.frombuffer(s_bytes, dtype=np.uint8)
    t = np.frombuffer(t_bytes, dtype=np.uint8)
    slices = column_partition(len(t), config.n_workers)
    c0, c1 = slices[worker_id]
    width = c1 - c0
    batch = config.rows_per_exchange
    finder = StreamingRegionFinder(RegionConfig(threshold=config.threshold))
    with observed_worker(obs, f"worker-{worker_id}") as (tracer, metrics), attach_shared_array(
        shm_name, shape, SCORE_DTYPE
    ) as borders:
        tracing = tracer.enabled
        wait_s = busy_s = 0.0
        ws = KernelWorkspace(t[c0:c1], scoring)
        prev = np.zeros(width + 1, dtype=SCORE_DTYPE)
        for lo in range(0, len(s), batch):
            hi = min(lo + batch, len(s))
            if worker_id > 0:
                t0 = perf_counter() if tracing else 0.0
                if not produced[worker_id - 1].acquire(timeout=config.timeout):
                    raise TimeoutError(f"worker {worker_id} starved at row {lo}")
                san = get_sanitizer()
                if san is not None:
                    san.on_wait(f"produced[{worker_id - 1}]")
                if tracing:
                    waited = perf_counter() - t0
                    wait_s += waited
                    tracer.record("border_wait", "communication", t0, waited, row=lo)
            t0 = perf_counter() if tracing else 0.0
            for i in range(lo, hi):
                left = int(borders.array[worker_id - 1, i]) if worker_id > 0 else 0
                prev = ws.sw_row_slice(prev, int(s[i]), left, out=prev)
                finder.feed(i + 1, prev)
                if worker_id < config.n_workers - 1:
                    borders.array[worker_id, i] = prev[-1]
            if tracing:
                spent = perf_counter() - t0
                busy_s += spent
                tracer.record("rows", "computation", t0, spent, lo=lo, hi=hi)
            if worker_id > 0:
                consumed[worker_id - 1].release()  # read-acknowledge
                san = get_sanitizer()
                if san is not None:
                    san.on_post(f"consumed[{worker_id - 1}]")
            if worker_id < config.n_workers - 1:
                if lo > 0 and not consumed[worker_id].acquire(
                    timeout=config.timeout
                ):
                    raise TimeoutError(
                        f"worker {worker_id} never got its ack at row {lo}"
                    )
                produced[worker_id].release()
        if tracing:
            metrics.counter("cells_computed").inc(len(s) * width)
            metrics.counter("worker_busy_seconds").inc(busy_s)
            metrics.counter("worker_wait_seconds").inc(wait_s)
        found = [
            (r.score, a.s_start, a.s_end, a.t_start + c0, a.t_end + c0)
            for r in finder.finish()
            for a in [r.as_alignment()]
        ]
        results.put((worker_id, found))


def mp_wavefront_alignments(
    s: np.ndarray,
    t: np.ndarray,
    config: MpWavefrontConfig | None = None,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[LocalAlignment]:
    """Run strategy 1 with real worker processes; returns the merged queue."""
    config = config or MpWavefrontConfig()
    from ..seq.alphabet import encode

    s = encode(s)
    t = encode(t)
    if len(t) < config.n_workers:
        raise ValueError("sequence narrower than the worker count")
    ctx = mp.get_context()
    obs_dir: str | None = None
    obs: ObsJob | None = None
    # Segments also flow when only the sanitizer is on (they carry its events).
    if is_enabled() or get_sanitizer() is not None:
        obs_dir = tempfile.mkdtemp(prefix="repro-obs-")
        obs = ObsJob(obs_dir, "wavefront", perf_counter())
    # borders[w, i] = last cell of worker w's slice on row i
    produced = [ctx.Semaphore(0) for _ in range(max(0, config.n_workers - 1))]
    consumed = [ctx.Semaphore(0) for _ in range(max(0, config.n_workers - 1))]
    results: mp.Queue = ctx.Queue()
    with create_shared_array((max(1, config.n_workers - 1), len(s)), SCORE_DTYPE) as borders:
        workers = [
            ctx.Process(
                target=_worker,
                args=(
                    w,
                    s.tobytes(),
                    t.tobytes(),
                    config,
                    scoring,
                    borders.name,
                    borders.array.shape,
                    produced,
                    consumed,
                    results,
                    obs,
                ),
            )
            for w in range(config.n_workers)
        ]
        try:
            with get_tracer().span("mp_wavefront", "coordination", n_workers=config.n_workers):
                for w in workers:
                    w.start()
                # Poll with exit-code checks: a crashed worker fails the call
                # in under a second instead of hanging until the full timeout
                # while its named shared-memory segment leaks.
                collected = drain_results(
                    results, workers, config.n_workers, config.timeout
                )
                for w in workers:
                    w.join(timeout=config.timeout)
        finally:
            for w in workers:
                if w.is_alive():
                    w.terminate()
                    w.join(timeout=5.0)
            if obs is not None:
                merge_into(get_tracer(), get_metrics(), obs.dir, obs.key)
                shutil.rmtree(obs_dir, ignore_errors=True)

    queue = AlignmentQueue()
    for found in collected.values():
        for score, s0, s1, t0, t1 in found:
            queue.push(LocalAlignment(score, s0, s1, t0, t1))
    min_score = config.min_score if config.min_score is not None else config.threshold
    return queue.finalize(min_score=min_score, overlap_slack=8, merge=True)
