"""Crash-safe collection of worker results.

``Queue.get(timeout=300)`` is how the original mp backends waited for worker
results, which meant a worker that died before ``results.put`` (OOM kill,
unpickleable exception, segfault in a C extension) left the parent blocked
for the *full* timeout while the named shared-memory segment leaked.  The
helpers here poll with a short timeout and check ``Process.exitcode`` between
polls, so worker death surfaces in well under a second.
"""

from __future__ import annotations

import queue
import time
from typing import Sequence


class WorkerCrashed(RuntimeError):
    """A worker process exited without delivering its result."""


def drain_results(
    results,
    workers: Sequence,
    n_expected: int,
    timeout: float,
    poll: float = 0.2,
) -> dict[int, object]:
    """Collect ``(worker_id, payload)`` tuples, failing fast on worker death.

    Returns ``{worker_id: payload}`` once ``n_expected`` results arrived.
    Raises :class:`WorkerCrashed` as soon as any worker process is observed
    dead while results are still missing, and :class:`TimeoutError` if the
    overall deadline passes.
    """
    collected: dict[int, object] = {}
    deadline = time.monotonic() + timeout
    while len(collected) < n_expected:
        try:
            worker_id, payload = results.get(timeout=poll)
            collected[worker_id] = payload
            continue
        except queue.Empty:
            pass
        dead = [
            (i, w.exitcode)
            for i, w in enumerate(workers)
            if w.exitcode is not None and w.exitcode != 0
        ]
        if dead:
            raise WorkerCrashed(
                f"worker(s) {dead} exited abnormally with "
                f"{n_expected - len(collected)} result(s) outstanding"
            )
        if all(w.exitcode is not None for w in workers):
            # Everyone exited cleanly; give the queue feeder one last chance
            # to flush, then give up rather than spinning to the deadline.
            try:
                worker_id, payload = results.get(timeout=poll)
                collected[worker_id] = payload
                continue
            except queue.Empty:
                raise WorkerCrashed(
                    "all workers exited but "
                    f"{n_expected - len(collected)} result(s) never arrived"
                )
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"timed out after {timeout:.0f}s with "
                f"{n_expected - len(collected)} worker result(s) outstanding"
            )
    return collected


def poll_until(condition, timeout: float, what: str, interval: float = 1e-4) -> None:
    """Spin (with tiny sleeps) until ``condition()`` is true.

    The shared-memory pool signals progress through plain counters instead of
    semaphores -- counters can be created per job and attached by name,
    whereas ``multiprocessing`` semaphores can only be inherited at fork
    time, which would pin the pool to one job shape forever.
    """
    deadline = time.monotonic() + timeout
    while not condition():
        if time.monotonic() > deadline:
            raise TimeoutError(what)
        time.sleep(interval)
