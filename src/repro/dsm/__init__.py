"""JIAJIA-like page-based software DSM on the simulated cluster."""

from .jiajia import DEFAULT_CACHE_PAGES, JiaJia
from .pages import PageDirectory, RemotePageCache, SharedRegion
from .protocol import Message, MessageTrace, MsgType

__all__ = [
    "DEFAULT_CACHE_PAGES",
    "JiaJia",
    "Message",
    "MessageTrace",
    "MsgType",
    "PageDirectory",
    "RemotePageCache",
    "SharedRegion",
]
