"""Protocol message types and optional tracing.

Fig. 6 of the paper names the JIAJIA message types exchanged around a
barrier (DIFF, DIFFGRANT, BARR, BARRGRANT) and Section 3.1 describes the
lock path (ACQ, lock grant with write notices) and access faults (page
fetch).  The runtime can record a :class:`MessageTrace` of these for tests
and debugging; tracing is off by default because cluster-scale runs emit
millions of messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class MsgType(Enum):
    ACQ = "ACQ"
    GRANT = "GRANT"
    DIFF = "DIFF"
    DIFFGRANT = "DIFFGRANT"
    BARR = "BARR"
    BARRGRANT = "BARRGRANT"
    GETP = "GETP"
    PAGE = "PAGE"
    SETCV = "SETCV"
    WAITCV = "WAITCV"


@dataclass(frozen=True)
class Message:
    """One protocol message, timestamped in virtual time."""

    time: float
    msg_type: MsgType
    src: int
    dst: int
    nbytes: int = 64


@dataclass
class MessageTrace:
    """An append-only log of protocol messages."""

    messages: list[Message] = field(default_factory=list)

    def record(self, time: float, msg_type: MsgType, src: int, dst: int, nbytes: int = 64) -> None:
        self.messages.append(Message(time, msg_type, src, dst, nbytes))

    def __len__(self) -> int:
        return len(self.messages)

    def count(self, msg_type: MsgType) -> int:
        return sum(1 for m in self.messages if m.msg_type is msg_type)

    def bytes_total(self) -> int:
        return sum(m.nbytes for m in self.messages)

    def between(self, t0: float, t1: float) -> list[Message]:
        return [m for m in self.messages if t0 <= m.time < t1]
