"""Shared pages, home assignment, and per-node page caches.

JIAJIA organises shared memory "among the nodes on a NUMA-architecture
basis.  Each shared page has a home node.  A page is always present in its
home node, and it is also copied to remote nodes in an access fault.  There
is a fixed number of remote pages that can be placed at the memory of a
remote node.  When this part of the memory is full, a replacement algorithm
is executed." (Section 3.1.)

This module tracks exactly that: page-granular home assignment (round-robin
across nodes by default, like JIAJIA's allocator), per-page version numbers
that releases/barriers bump (standing in for write notices), and a bounded
FIFO remote-page cache per node whose misses are the access faults the cost
model charges for.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class SharedRegion:
    """One jia_alloc'd range of shared memory."""

    name: str
    base_page: int
    nbytes: int
    page_bytes: int

    @property
    def n_pages(self) -> int:
        return -(-self.nbytes // self.page_bytes) if self.nbytes else 0

    def pages_of(self, offset: int, nbytes: int) -> range:
        """Global page ids covering ``[offset, offset + nbytes)``."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise ValueError(
                f"access [{offset}, {offset + nbytes}) outside region "
                f"{self.name!r} of {self.nbytes} bytes"
            )
        if nbytes == 0:
            return range(0)
        first = self.base_page + offset // self.page_bytes
        last = self.base_page + (offset + nbytes - 1) // self.page_bytes
        return range(first, last + 1)


class PageDirectory:
    """Home assignment and version tracking for every shared page."""

    def __init__(self, n_nodes: int, page_bytes: int = 4096) -> None:
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.page_bytes = page_bytes
        self._next_page = 0
        self._homes: list[int] = []
        self._versions: list[int] = []
        self.regions: list[SharedRegion] = []

    def alloc(self, nbytes: int, name: str = "region", home: int | None = None) -> SharedRegion:
        """Allocate a shared region.

        ``home=None`` distributes pages round-robin across the nodes (the
        JIAJIA default); an integer pins every page of the region to that
        node (what ``jia_alloc`` achieves in practice when one node
        allocates and first-touches).
        """
        if nbytes < 0:
            raise ValueError("negative allocation")
        if home is not None and not 0 <= home < self.n_nodes:
            raise ValueError(f"home node {home} out of range")
        region = SharedRegion(name, self._next_page, nbytes, self.page_bytes)
        for k in range(region.n_pages):
            page_home = home if home is not None else (self._next_page + k) % self.n_nodes
            self._homes.append(page_home)
            self._versions.append(0)
        self._next_page += region.n_pages
        self.regions.append(region)
        return region

    def home(self, page: int) -> int:
        return self._homes[page]

    def set_home(self, page: int, node: int) -> None:
        """Migrate a page's home (JIAJIA's optional home-migration feature)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"home node {node} out of range")
        self._homes[page] = node

    def version(self, page: int) -> int:
        return self._versions[page]

    def bump(self, page: int) -> None:
        """Record that a modification of ``page`` became visible (write notice)."""
        self._versions[page] += 1


class RemotePageCache:
    """Bounded FIFO cache of remote page copies held by one node."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_pages
        self._entries: OrderedDict[int, int] = OrderedDict()  # page -> version
        self.hits = 0
        self.misses = 0
        self.replacements = 0
        self.invalidations = 0

    def lookup(self, page: int, current_version: int) -> bool:
        """True when a valid copy is cached; stale copies count as misses."""
        version = self._entries.get(page)
        if version == current_version:
            self.hits += 1
            return True
        if version is not None:
            del self._entries[page]  # stale: invalidated by a write notice
        self.misses += 1
        return False

    def fill(self, page: int, version: int) -> None:
        if page in self._entries:
            del self._entries[page]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.replacements += 1
        self._entries[page] = version

    def invalidate(self, page: int) -> None:
        if self._entries.pop(page, None) is not None:
            self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)
