"""JIAJIA-like software DSM runtime on the simulated cluster.

Exposes the API of Section 3.1 -- ``jia_alloc``, ``jia_lock``,
``jia_unlock``, ``jia_barrier``, ``jia_setcv``, ``jia_waitcv`` -- with the
scope-consistency, home-based, write-invalidate multiple-writer protocol's
*costs* charged to the virtual clock and each node's statistics:

* **release** (unlock/barrier): diffs of every remotely-homed page written
  since the last release go to the home nodes, acks come back, write
  notices go to the manager (Fig. 6 of the paper);
* **acquire** (lock/barrier): a manager round trip returns the accumulated
  write notices, and the node invalidates its cached copies of those pages;
* **access fault**: reading a page that is neither home-local nor validly
  cached fetches a fresh copy from its home.

Because the reproduction runs in one address space, data movement itself is
free -- the runtime tracks *which* bytes would have moved and charges the
calibrated times of :class:`repro.sim.costmodel.CostModel`.

All ``jia_*`` methods are generators: call them as
``yield from dsm.lock(node, lock_id)`` from a simulated process body.
"""

from __future__ import annotations

from typing import Generator

from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..sim.engine import Delay, Simulator
from ..sim.resources import SimBarrier, SimCondition, SimLock
from ..sim.stats import ClusterStats, NodeStats
from .pages import PageDirectory, RemotePageCache, SharedRegion

#: Default remote-cache capacity: the paper's nodes have 160 MB of RAM; a
#: quarter of it holding remote copies gives ~10k 4 KB pages.
DEFAULT_CACHE_PAGES = 10_000


class JiaJia:
    """The DSM runtime: one instance per simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        cost: CostModel = DEFAULT_COST_MODEL,
        cache_pages: int = DEFAULT_CACHE_PAGES,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        self.sim = sim
        self.n_nodes = n_nodes
        self.cost = cost
        self.directory = PageDirectory(n_nodes, cost.page_bytes)
        self.stats = [NodeStats(node_id=i) for i in range(n_nodes)]
        self.caches = [RemotePageCache(cache_pages) for _ in range(n_nodes)]
        self._locks: dict[int, SimLock] = {}
        self._cvs: dict[int, SimCondition] = {}
        self._barrier = SimBarrier(sim, n_nodes)
        # dirty state since last release, per node: bytes to remote homes
        # and the set of remotely-homed pages written (for write notices)
        self._dirty_bytes = [0] * n_nodes
        self._dirty_pages: list[set[int]] = [set() for _ in range(n_nodes)]
        # jia_config options (Section 3.1: "all features are set to OFF")
        self._options: dict[str, bool | int] = {
            "home_migration": False,
            "migration_threshold": 3,
        }
        # per-page (writer, consecutive-diff count) for home migration
        self._diff_streak: dict[int, tuple[int, int]] = {}

    def config(self, option: str, value: bool | int) -> None:
        """jia_config(option, value): toggle an optional DSM feature.

        Supported options: ``home_migration`` (migrate a page's home to a
        node that keeps diffing it; eliminates that node's future diff
        traffic for the page) and ``migration_threshold`` (consecutive
        diffs by the same writer before migrating).  As in JIAJIA, every
        feature starts OFF.
        """
        if option not in self._options:
            raise ValueError(
                f"unknown jia_config option {option!r}; "
                f"supported: {sorted(self._options)}"
            )
        self._options[option] = value

    # -- allocation ------------------------------------------------------
    def alloc(self, nbytes: int, name: str = "region", home: int | None = None) -> SharedRegion:
        """jia_alloc: map a shared region (see PageDirectory.alloc)."""
        return self.directory.alloc(nbytes, name, home)

    # -- memory accesses -------------------------------------------------
    def write(
        self, node: int, region: SharedRegion, offset: int, nbytes: int, times: int = 1
    ) -> None:
        """Record a write; remotely-homed bytes become diff traffic later.

        Writing is asynchronous in JIAJIA (twins are made locally); the cost
        lands at the next release, so this method consumes no virtual time.
        ``times`` repeats the same write (row aggregation: G rows re-dirty
        the same two-row buffer, each release flushing the same byte count).
        """
        if nbytes == 0 or times == 0:
            return
        dirty = self._dirty_pages[node]
        page_bytes = self.cost.page_bytes
        for page in region.pages_of(offset, nbytes):
            if self.directory.home(page) == node:
                continue
            if page not in dirty:
                dirty.add(page)
            lo = max(offset, (page - region.base_page) * page_bytes)
            hi = min(offset + nbytes, (page - region.base_page + 1) * page_bytes)
            self._dirty_bytes[node] += (hi - lo) * times

    def fault(self, node: int, pages: int = 1, repeat: int = 1) -> Generator:
        """Charge ``repeat`` access faults of ``pages`` pages each.

        Used where the aggregated simulation knows faults occur (a border
        page re-fetched every exchanged row) without enumerating them
        through :meth:`read`.
        """
        stats = self.stats[node]
        cost = self.cost.page_fault_time() * pages * repeat
        stats.page_faults += pages * repeat
        stats.record_message((self.cost.page_bytes + 64) * pages)
        stats.breakdown.add("communication", cost)
        yield Delay(cost, "communication")

    def read(self, node: int, region: SharedRegion, offset: int, nbytes: int) -> Generator:
        """Access shared data for reading, faulting in missing pages."""
        if nbytes == 0:
            return
        stats = self.stats[node]
        cache = self.caches[node]
        fault_time = 0.0
        for page in region.pages_of(offset, nbytes):
            if self.directory.home(page) == node:
                continue
            version = self.directory.version(page)
            if cache.lookup(page, version):
                continue
            cache.fill(page, version)
            stats.page_faults += 1
            stats.record_message(self.cost.page_bytes + 64)
            fault_time += self.cost.page_fault_time()
        if fault_time:
            stats.breakdown.add("communication", fault_time)
            yield Delay(fault_time, "communication")

    # -- release/acquire helpers -----------------------------------------
    def _release(self, node: int) -> tuple[float, float]:
        """Flush diffs (Fig. 6 left half).

        Returns ``(sync_cost, transfer_cost)``: the protocol/service part
        (charged as lock+cv or barrier time by the caller) and the diff
        *data* wire time (charged as communication, so the Fig. 10
        breakdown attributes byte traffic where the paper does).
        """
        stats = self.stats[node]
        dirty_bytes = self._dirty_bytes[node]
        dirty_pages = self._dirty_pages[node]
        sync_cost = self.cost.lock_release_time(0)
        transfer_cost = 0.0
        if dirty_pages:
            transfer_cost = (
                self.cost.message_time(dirty_bytes) + self.cost.message_time(64)
            )
            stats.diffs_sent += len(dirty_pages)
            stats.record_message(dirty_bytes + 64 * len(dirty_pages))
            for page in dirty_pages:
                self.directory.bump(page)
            if self._options["home_migration"]:
                self._consider_migration(node, dirty_pages)
        self._dirty_bytes[node] = 0
        self._dirty_pages[node] = set()
        return sync_cost, transfer_cost

    def _consider_migration(self, node: int, dirty_pages: set[int]) -> None:
        """Migrate pages a node keeps diffing (the home-migration option)."""
        threshold = int(self._options["migration_threshold"])
        for page in dirty_pages:
            writer, streak = self._diff_streak.get(page, (node, 0))
            streak = streak + 1 if writer == node else 1
            if streak >= threshold:
                self.directory.set_home(page, node)
                self.stats[node].homes_migrated += 1
                self._diff_streak.pop(page, None)
            else:
                self._diff_streak[page] = (node, streak)

    # -- synchronization --------------------------------------------------
    def lock(self, node: int, lock_id: int, repeat: int = 1) -> Generator:
        """jia_lock: manager round trip, then blocking FIFO acquisition.

        ``repeat`` charges the protocol cost of that many consecutive
        acquisitions while performing a single simulated one -- the row-
        aggregation device described in DESIGN.md (G rows per event).
        """
        stats = self.stats[node]
        lock = self._locks.setdefault(lock_id, SimLock(self.sim, f"jialock-{lock_id}"))
        protocol = self.cost.lock_acquire_time() * repeat
        stats.breakdown.add("lock_cv", protocol)
        for _ in range(repeat):
            stats.record_message(64)
        stats.lock_acquires += repeat
        yield Delay(protocol, "lock_cv")
        blocked_from = self.sim.now
        yield from lock.acquire()
        waited = self.sim.now - blocked_from
        if waited:
            stats.breakdown.add("lock_cv", waited)

    def unlock(self, node: int, lock_id: int, extra_releases: int = 0) -> Generator:
        """jia_unlock: propagate diffs, then hand the lock over.

        ``extra_releases`` charges that many additional no-diff release
        round trips (row aggregation: G critical sections whose dirty data
        was accumulated into one).
        """
        lock = self._locks.get(lock_id)
        if lock is None or not lock.locked:
            raise RuntimeError(f"unlock of lock {lock_id} not held")
        stats = self.stats[node]
        sync_cost, transfer_cost = self._release(node)
        sync_cost += extra_releases * self.cost.lock_release_time(0)
        stats.breakdown.add("lock_cv", sync_cost)
        yield Delay(sync_cost, "lock_cv")
        if transfer_cost:
            stats.breakdown.add("communication", transfer_cost)
            yield Delay(transfer_cost, "communication")
        lock.release()

    def setcv(self, node: int, cv_id: int, repeat: int = 1) -> Generator:
        """jia_setcv: signal a condition (with signal memory, Section 3.1)."""
        stats = self.stats[node]
        cv = self._cvs.setdefault(cv_id, SimCondition(self.sim, f"jiacv-{cv_id}"))
        cost = self.cost.cv_signal_time() * repeat
        stats.breakdown.add("lock_cv", cost)
        stats.record_message(64)
        stats.cv_signals += repeat
        yield Delay(cost, "lock_cv")
        cv.signal()

    def waitcv(self, node: int, cv_id: int, repeat: int = 1) -> Generator:
        """jia_waitcv: wait for a signal; waiting time is lock+cv time."""
        stats = self.stats[node]
        cv = self._cvs.setdefault(cv_id, SimCondition(self.sim, f"jiacv-{cv_id}"))
        cost = self.cost.cv_wait_time() * repeat
        stats.breakdown.add("lock_cv", cost)
        stats.cv_waits += repeat
        yield Delay(cost, "lock_cv")
        blocked_from = self.sim.now
        yield from cv.wait()
        waited = self.sim.now - blocked_from
        if waited:
            stats.breakdown.add("lock_cv", waited)

    def barrier(self, node: int) -> Generator:
        """jia_barrier: flush diffs, meet everyone, invalidate (Fig. 6)."""
        stats = self.stats[node]
        sync_cost, transfer_cost = self._release(node)
        barrier_cost = self.cost.barrier_time(0, self.n_nodes) + sync_cost
        stats.breakdown.add("barrier", barrier_cost)
        if transfer_cost:
            stats.breakdown.add("communication", transfer_cost)
        stats.barrier_waits += 1
        stats.record_message(64)
        yield Delay(barrier_cost, "barrier")
        if transfer_cost:
            yield Delay(transfer_cost, "communication")
        blocked_from = self.sim.now
        yield from self._barrier.arrive()
        waited = self.sim.now - blocked_from
        if waited:
            stats.breakdown.add("barrier", waited)

    # -- computation ------------------------------------------------------
    def compute(self, node: int, seconds: float, cells: int = 0) -> Generator:
        """Charge local computation time to this node."""
        stats = self.stats[node]
        stats.breakdown.add("computation", seconds)
        stats.cells_computed += cells
        yield Delay(seconds, "computation")

    def cluster_stats(self) -> ClusterStats:
        return ClusterStats(nodes=self.stats)
