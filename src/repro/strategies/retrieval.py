"""Retrieving actual alignments from the pre_process scoreboard.

Section 5: "Although little information is contained in the result matrix,
it indicates interesting regions in the score matrix. ... having the total
number of hits will hint whether investigating further in that block of
data. ... Knowing interesting areas of the matrix and having the boundary
columns and rows allow one to reprocess these limited areas so as to
retrieve the local alignments."

This module is that final selection step: pick the hot cells of the result
matrix, expand each into a (rows x columns) window of the score matrix,
re-run full Smith-Waterman over the window only, and return the recovered
alignments in global coordinates.  It turns the exact-but-approximate
pre_process output into the same alignment queue the heuristic strategies
produce -- completing strategy 3's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.alignment import AlignmentQueue, LocalAlignment
from ..core.matrix import local_alignments_above
from ..core.scoring import DEFAULT_SCORING, Scoring
from .base import StrategyResult


@dataclass(frozen=True)
class InterestingRegion:
    """One hot cell of the result matrix, expanded to matrix coordinates."""

    band: int
    bucket: int
    hits: int
    row_start: int
    row_end: int
    col_start: int
    col_end: int

    @property
    def area(self) -> int:
        return (self.row_end - self.row_start) * (self.col_end - self.col_start)

    @property
    def hit_density(self) -> float:
        return self.hits / self.area if self.area else 0.0


def interesting_regions(
    result_matrix: np.ndarray,
    band_heights: list[int],
    result_interleave: int,
    n_cols: int,
    min_hits: int = 1,
    max_regions: int = 64,
) -> list[InterestingRegion]:
    """Hot cells of the result matrix, hottest first.

    ``min_hits`` is the investigation threshold ("values at this level
    indicate that 30% of the cells were above the threshold, so that region
    is very likely to contain good alignments"); density-based thresholds
    can be applied by the caller via :attr:`InterestingRegion.hit_density`.
    """
    if result_matrix.ndim != 2:
        raise ValueError("result matrix must be 2-D")
    if len(band_heights) != result_matrix.shape[0]:
        raise ValueError("band_heights must match the result matrix rows")
    row_starts = np.concatenate([[0], np.cumsum(band_heights)])
    out: list[InterestingRegion] = []
    for band in range(result_matrix.shape[0]):
        for bucket in range(result_matrix.shape[1]):
            hits = int(result_matrix[band, bucket])
            if hits < min_hits:
                continue
            out.append(
                InterestingRegion(
                    band=band,
                    bucket=bucket,
                    hits=hits,
                    row_start=int(row_starts[band]),
                    row_end=int(row_starts[band + 1]),
                    col_start=bucket * result_interleave,
                    col_end=min(n_cols, (bucket + 1) * result_interleave),
                )
            )
    out.sort(key=lambda r: (-r.hits, r.band, r.bucket))
    return out[:max_regions]


def _merge_windows(
    regions: list[InterestingRegion], pad: int, n_rows: int, n_cols: int
) -> list[tuple[int, int, int, int]]:
    """Expand hot cells by ``pad`` and merge overlapping windows.

    An alignment's hits may span several result-matrix cells; merging keeps
    each alignment inside a single reprocessed window.
    """
    windows = [
        (
            max(0, r.row_start - pad),
            min(n_rows, r.row_end + pad),
            max(0, r.col_start - pad),
            min(n_cols, r.col_end + pad),
        )
        for r in regions
    ]
    merged: list[tuple[int, int, int, int]] = []
    for win in sorted(windows):
        for i, kept in enumerate(merged):
            if (
                win[0] < kept[1]
                and kept[0] < win[1]
                and win[2] < kept[3]
                and kept[2] < win[3]
            ):
                merged[i] = (
                    min(kept[0], win[0]),
                    max(kept[1], win[1]),
                    min(kept[2], win[2]),
                    max(kept[3], win[3]),
                )
                break
        else:
            merged.append(win)
    return merged


def retrieve_alignments(
    s: np.ndarray,
    t: np.ndarray,
    result: StrategyResult,
    min_score: int,
    min_hits: int = 1,
    pad: int = 64,
    max_regions: int = 64,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[LocalAlignment]:
    """Section 5's final selection: reprocess the interesting areas.

    ``result`` must come from :func:`repro.strategies.run_preprocess` with
    ``scale == 1`` (the windows are re-aligned on the actual data).  Returns
    the finalized queue of recovered alignments in global coordinates.
    """
    if result.name != "pre_process":
        raise ValueError("retrieve_alignments expects a pre_process result")
    if "result_matrix" not in result.extras:
        raise ValueError("result has no result matrix")
    if result.nominal_size != (len(s), len(t)):
        raise ValueError(
            "retrieval needs the actual sequences the scoreboard was built "
            "from (run pre_process with scale=1)"
        )
    matrix = result.extras["result_matrix"]
    heights = result.extras["band_heights"]
    interleave = -(-len(t) // matrix.shape[1])
    hot = interesting_regions(
        matrix, heights, interleave, len(t), min_hits=min_hits, max_regions=max_regions
    )
    queue = AlignmentQueue()
    for r0, r1, c0, c1 in _merge_windows(hot, pad, len(s), len(t)):
        for traced in local_alignments_above(
            s[r0:r1], t[c0:c1], min_score=min_score, scoring=scoring
        ):
            queue.push(traced.as_local().shifted(r0, c0))
    return queue.finalize(min_score=min_score, overlap_slack=8, merge=True)
