"""Strategy 3 (Section 5): exact computation with a result-matrix scoreboard.

No candidate-alignment tracking: the score matrix is computed in column
chunks inside row bands, every cell is compared against a threshold, and
only (a) the per-column-group *hit counts* (the result matrix) and (b) a
save-interleave subset of columns written to disk survive.  "Notice that in
this way we will provide exact but also approximate answers.  A final
selection should be done in order to select the optimal alignments."

Modelled parameters (Section 5's list):

* height of the band in rows, via the *fixed / equal / balanced* schemes;
* chunk size and growth method (fixed / arithmetic / geometric);
* save interleave ``ip`` -- column ``i`` is saved iff ``i % ip == 0``;
* result-matrix interleave -- columns summarised per cell;
* I/O mode -- ``none`` / ``immediate`` / ``deferred``.

The *equal* scheme's sequential cache penalty ("with 40 or 80 kBP sequences
this has a negative impact on the memory locality within the CPU cache",
Fig. 19) is modelled as a cell-time multiplier once a band's column arrays
outgrow the L1/L2 budget; the ablation benchmark regenerates Fig. 19 from
exactly this term.

:func:`preprocess_plan` converts the config's *nominal* sizes to actual
rows/columns and builds the band x chunk task graph; :func:`run_preprocess`
executes it on the simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..plan import SimExecutor, TaskGraph, plan_preprocess
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from .base import ScaledWorkload, StrategyResult
from .partition import band_heights

IO_MODES = ("none", "immediate", "deferred")
BAND_SCHEMES = ("fixed", "equal", "balanced")


@dataclass(frozen=True)
class PreprocessConfig:
    """Run parameters of the pre_process strategy (nominal units)."""

    n_procs: int = 8
    band_size: int = 1000  # nominal rows per band (fixed/balanced schemes)
    band_scheme: str = "fixed"
    chunk_size: int = 1000  # nominal columns per chunk
    chunk_growth: str = "fixed"
    save_interleave: int = 1000  # column i saved iff i % ip == 0
    result_interleave: int = 1000  # columns summarised per result cell
    io_mode: str = "none"
    threshold: int = 20

    # Cache-locality penalty of oversized bands (see module docstring).
    # Column-wise processing keeps ~2 column arrays of band_height cells
    # resident; above ~32k rows (2 x 32k x 4 B = 256 KB) they outgrow the
    # Pentium II's 512 KB L2 and every cell pays a memory stall -- the ~20%
    # sequential degradation of Fig. 19's "equal" bars at 40/80 kBP.
    cache_friendly_rows: int = 32_000
    cache_penalty: float = 0.20

    # Row kernel: "classic" or "striped" (see repro.core.striped).
    kernel: str = "classic"

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        if self.io_mode not in IO_MODES:
            raise ValueError(f"io_mode must be one of {IO_MODES}")
        if self.band_scheme not in BAND_SCHEMES:
            raise ValueError(f"band_scheme must be one of {BAND_SCHEMES}")
        if min(self.band_size, self.chunk_size, self.save_interleave, self.result_interleave) <= 0:
            raise ValueError("sizes and interleaves must be positive")

    def cell_time(self, band_rows_nominal: int, cost: CostModel) -> float:
        """Per-cell time including the band-height cache penalty."""
        base = cost.preprocess_cell_time
        if band_rows_nominal > self.cache_friendly_rows:
            return base * (1.0 + self.cache_penalty)
        return base


def preprocess_plan(workload: ScaledWorkload, config: PreprocessConfig) -> TaskGraph:
    """The Section 5 task graph for this workload and config.

    Config sizes are nominal; the graph is built in actual units, while the
    cache knobs stay nominal (the sim charges per nominal band height).
    """
    scale = workload.scale

    def to_actual(nominal: int) -> int:
        return max(1, nominal // scale)

    return plan_preprocess(
        workload.rows,
        workload.cols,
        n_procs=config.n_procs,
        band_size=to_actual(config.band_size),
        chunk_size=to_actual(config.chunk_size),
        band_scheme=config.band_scheme,
        chunk_growth=config.chunk_growth,
        threshold=config.threshold,
        result_interleave=to_actual(config.result_interleave),
        save_interleave=to_actual(config.save_interleave),
        io_mode=config.io_mode,
        cache_friendly_rows=config.cache_friendly_rows,
        cache_penalty=config.cache_penalty,
        kernel=config.kernel,
    )


def run_preprocess(
    workload: ScaledWorkload,
    config: PreprocessConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    timeline=None,
) -> StrategyResult:
    """Simulate one pre_process run.

    ``extras`` carries the result matrix (actual-scale hit counts per band x
    column bucket), the band heights used, and disk statistics.
    """
    config = config or PreprocessConfig()
    graph = preprocess_plan(workload, config)
    return SimExecutor(cost, timeline).run(
        graph, workload.s, workload.t, workload.scoring, scale=workload.scale
    )


def serial_preprocess_time(
    workload: ScaledWorkload,
    config: PreprocessConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Sequential pre_process core time under the same band scheme.

    Fig. 19's one-processor bars differ across blocking options purely via
    the cache-locality of the chosen band height; this helper reproduces
    that by applying the same cell-time rule with ``n_procs = 1``.
    """
    config = config or PreprocessConfig()
    heights = band_heights(
        config.band_scheme,
        workload.rows,
        max(1, config.band_size // workload.scale),
        1,
    )
    total = 0.0
    for h in heights:
        cell_time = config.cell_time(h * workload.scale, cost)
        total += h * workload.scale * workload.nominal_cols * cell_time
    return cost.node_startup_time + total + cost.node_teardown_time
