"""Strategy 3 (Section 5): exact computation with a result-matrix scoreboard.

No candidate-alignment tracking: the score matrix is computed in column
chunks inside row bands, every cell is compared against a threshold, and
only (a) the per-column-group *hit counts* (the result matrix) and (b) a
save-interleave subset of columns written to disk survive.  "Notice that in
this way we will provide exact but also approximate answers.  A final
selection should be done in order to select the optimal alignments."

Modelled parameters (Section 5's list):

* height of the band in rows, via the *fixed / equal / balanced* schemes;
* chunk size and growth method (fixed / arithmetic / geometric);
* save interleave ``ip`` -- column ``i`` is saved iff ``i % ip == 0``;
* result-matrix interleave -- columns summarised per cell;
* I/O mode -- ``none`` / ``immediate`` / ``deferred``.

The *equal* scheme's sequential cache penalty ("with 40 or 80 kBP sequences
this has a negative impact on the memory locality within the CPU cache",
Fig. 19) is modelled as a cell-time multiplier once a band's column arrays
outgrow the L1/L2 budget; the ablation benchmark regenerates Fig. 19 from
exactly this term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.kernels import SCORE_DTYPE
from ..dsm.jiajia import JiaJia
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..sim.disk import NfsDisk
from ..sim.engine import Delay, Simulator
from ..sim.stats import PhaseTimes
from .base import ScaledWorkload, StrategyResult
from .blocked import compute_tile
from .partition import band_heights, bounds_from_heights, chunk_widths

IO_MODES = ("none", "immediate", "deferred")
BAND_SCHEMES = ("fixed", "equal", "balanced")


@dataclass(frozen=True)
class PreprocessConfig:
    """Run parameters of the pre_process strategy (nominal units)."""

    n_procs: int = 8
    band_size: int = 1000  # nominal rows per band (fixed/balanced schemes)
    band_scheme: str = "fixed"
    chunk_size: int = 1000  # nominal columns per chunk
    chunk_growth: str = "fixed"
    save_interleave: int = 1000  # column i saved iff i % ip == 0
    result_interleave: int = 1000  # columns summarised per result cell
    io_mode: str = "none"
    threshold: int = 20

    # Cache-locality penalty of oversized bands (see module docstring).
    # Column-wise processing keeps ~2 column arrays of band_height cells
    # resident; above ~32k rows (2 x 32k x 4 B = 256 KB) they outgrow the
    # Pentium II's 512 KB L2 and every cell pays a memory stall -- the ~20%
    # sequential degradation of Fig. 19's "equal" bars at 40/80 kBP.
    cache_friendly_rows: int = 32_000
    cache_penalty: float = 0.20

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        if self.io_mode not in IO_MODES:
            raise ValueError(f"io_mode must be one of {IO_MODES}")
        if self.band_scheme not in BAND_SCHEMES:
            raise ValueError(f"band_scheme must be one of {BAND_SCHEMES}")
        if min(self.band_size, self.chunk_size, self.save_interleave, self.result_interleave) <= 0:
            raise ValueError("sizes and interleaves must be positive")

    def cell_time(self, band_rows_nominal: int, cost: CostModel) -> float:
        """Per-cell time including the band-height cache penalty."""
        base = cost.preprocess_cell_time
        if band_rows_nominal > self.cache_friendly_rows:
            return base * (1.0 + self.cache_penalty)
        return base


def _cv_chunk(band: int, chunk: int, n_chunks: int) -> int:
    return 20_000 + band * n_chunks + chunk


def _band_lock(band: int) -> int:
    return 10_000 + band


def run_preprocess(
    workload: ScaledWorkload,
    config: PreprocessConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    timeline=None,
) -> StrategyResult:
    """Simulate one pre_process run.

    ``extras`` carries the result matrix (actual-scale hit counts per band x
    column bucket), the band heights used, and disk statistics.
    """
    config = config or PreprocessConfig()
    n_procs = config.n_procs
    scale = workload.scale

    def to_actual(nominal: int) -> int:
        return max(1, nominal // scale)

    heights = band_heights(
        config.band_scheme, workload.rows, to_actual(config.band_size), n_procs
    )
    row_bounds = bounds_from_heights(heights)
    widths = chunk_widths(workload.cols, to_actual(config.chunk_size), config.chunk_growth)
    col_bounds = bounds_from_heights(widths)
    n_bands, n_chunks = len(row_bounds), len(col_bounds)

    sim = Simulator(timeline)
    dsm = JiaJia(sim, n_procs, cost)
    disks = [NfsDisk(cost.disk) for _ in range(n_procs)]
    border_bytes = cost.border_bytes_per_cell
    passage = [
        dsm.alloc(
            (workload.nominal_cols + 1) * border_bytes,
            f"passage-{b}",
            home=(b + 1) % n_procs if b + 1 < n_bands else 0,
        )
        for b in range(n_bands)
    ]

    boundaries = [np.zeros(workload.cols + 1, dtype=SCORE_DTYPE) for _ in range(n_bands + 1)]
    ip_result = to_actual(config.result_interleave)
    ip_save = to_actual(config.save_interleave)
    n_buckets = -(-workload.cols // ip_result)
    result_matrix = np.zeros((n_bands, n_buckets), dtype=np.int64)
    deferred_bytes = [0] * n_procs
    marks: dict[str, float] = {}

    def node(p: int):
        yield Delay(cost.node_startup_time)
        yield from dsm.barrier(p)
        if p == 0:
            marks["core_start"] = sim.now

        for band in range(n_bands):
            if band % n_procs != p:
                continue
            r0, r1 = row_bounds[band]
            h = r1 - r0
            s_band = workload.s[r0:r1]
            cell_time = config.cell_time(h * scale, cost)
            left_col = np.zeros(h, dtype=SCORE_DTYPE)
            for chunk in range(n_chunks):
                c0, c1 = col_bounds[chunk]
                w = c1 - c0
                if band > 0:
                    yield from dsm.waitcv(p, _cv_chunk(band - 1, chunk, n_chunks))
                top = boundaries[band][c0 : c1 + 1].copy()
                tile = compute_tile(
                    top, left_col, s_band, workload.t[c0:c1], workload.scoring
                )
                left_col = tile[:, -1].copy()
                cells = h * w
                yield from dsm.compute(
                    p, cells * scale * scale * cell_time, cells=cells * scale * scale
                )
                # scoreboard: hits per column, bucketed into the result matrix
                hits_per_col = (tile[:, 1:] >= config.threshold).sum(axis=0)
                for j in range(w):
                    result_matrix[band, (c0 + j) // ip_result] += int(hits_per_col[j])
                # column saving (Section 5: i != 0 and i % ip == 0)
                if config.io_mode != "none":
                    saved_cols = sum(
                        1 for j in range(c0, c1) if j != 0 and j % ip_save == 0
                    )
                    if saved_cols:
                        # one saved column is band_height nominal cells; the
                        # actual and nominal saved-column *counts* coincide
                        # because the interleave scales with the columns
                        nbytes = saved_cols * h * scale * cost.result_bytes_per_cell
                        dsm.stats[p].disk_bytes_written += nbytes
                        if config.io_mode == "immediate":
                            io_time = disks[p].write_time(sim.now, nbytes)
                            dsm.stats[p].breakdown.add("communication", io_time)
                            yield Delay(io_time)
                        else:
                            deferred_bytes[p] += nbytes
                boundaries[band + 1][c0 + 1 : c1 + 1] = tile[-1, 1:]
                if band + 1 < n_bands:
                    dsm.write(
                        p, passage[band], c0 * scale * border_bytes, w * scale * border_bytes
                    )
                    yield from dsm.lock(p, _band_lock(band))
                    yield from dsm.unlock(p, _band_lock(band))
                    yield from dsm.setcv(p, _cv_chunk(band, chunk, n_chunks))

        yield from dsm.barrier(p)
        if p == 0:
            marks["core_end"] = sim.now
        # termination: deferred I/O drains here (Section 5.1's term time)
        if config.io_mode == "deferred" and deferred_bytes[p]:
            stage = disks[p].write_time(sim.now, deferred_bytes[p])
            io_time = stage + disks[p].flush_time(sim.now + stage)
            dsm.stats[p].breakdown.add("communication", io_time)
            yield Delay(io_time)
        elif config.io_mode == "immediate":
            flush = disks[p].flush_time(sim.now)
            dsm.stats[p].breakdown.add("communication", flush)
            yield Delay(flush)
        yield Delay(cost.node_teardown_time)
        yield from dsm.barrier(p)

    procs = [sim.spawn(node(p), name=f"node{p}") for p in range(n_procs)]
    sim.run_all(procs)

    core_start = marks.get("core_start", 0.0)
    core_end = marks.get("core_end", sim.now)
    phases = PhaseTimes(
        init=core_start, core=core_end - core_start, term=sim.now - core_end
    )
    return StrategyResult(
        name="pre_process",
        n_procs=n_procs,
        nominal_size=(workload.nominal_rows, workload.nominal_cols),
        total_time=sim.now,
        phases=phases,
        stats=dsm.cluster_stats(),
        alignments=[],
        extras={
            "result_matrix": result_matrix,
            "band_heights": heights,
            "n_bands": n_bands,
            "n_chunks": n_chunks,
            "disk_bytes": [d.total_written for d in disks],
        },
    )


def serial_preprocess_time(
    workload: ScaledWorkload,
    config: PreprocessConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Sequential pre_process core time under the same band scheme.

    Fig. 19's one-processor bars differ across blocking options purely via
    the cache-locality of the chosen band height; this helper reproduces
    that by applying the same cell-time rule with ``n_procs = 1``.
    """
    config = config or PreprocessConfig()
    heights = band_heights(
        config.band_scheme,
        workload.rows,
        max(1, config.band_size // workload.scale),
        1,
    )
    total = 0.0
    for h in heights:
        cell_time = config.cell_time(h * workload.scale, cost)
        total += h * workload.scale * workload.nominal_cols * cell_time
    return cost.node_startup_time + total + cost.node_teardown_time
