"""Tiered exact prefiltering in front of the database search.

ALAE-style pruning (PAPERS.md): before paying the full Smith-Waterman scan
of a database sequence, check whether any cheap *admissible* score ceiling
(:mod:`repro.core.bounds`) already proves it cannot enter the top-k.  The
filter is exact by construction -- a sequence is dropped only when its
ceiling is strictly below the current k-th score, and a tie must survive
because an equal score at a smaller index still displaces the k-th hit --
so rankings stay bitwise identical to :func:`~repro.strategies.search.search_db_sequential`.

Two integration shapes share the bound code:

* **Inline / sim** -- :func:`repro.plan.plan_search_buckets` grows the
  filter stage directly into the task graph (``seed`` -> ``filter`` ->
  ``dp`` tiles) and :class:`repro.plan.SearchRuntime` tightens the
  threshold progressively as tiles retire in id order.
* **Pool** -- :func:`pooled_pruned_search` here: the dynamic work queue
  cannot share a threshold across worker processes, so the coordinator
  scans the highest-ceiling *seed* prefix through the pool first, filters
  the remaining sequences against the seeded threshold in one vectorized
  pass, then re-packs the survivors into fresh buckets
  (:func:`repro.seq.db.pack_subset`) so lane occupancy stays high before
  shipping the second (now much smaller) graph.  The seed-time threshold is
  stale relative to the inline path's running one, but staleness only keeps
  *more* sequences -- never fewer -- so exactness is unaffected.
"""

from __future__ import annotations

import numpy as np

from ..core.bounds import DEFAULT_KMER_K, TieredFilter
from ..core.topk import TopK
from ..obs import get_metrics, get_tracer, is_enabled
from ..plan import plan_search_buckets, search_blob
from ..plan.runtime import empty_search_stats
from ..seq.db import PackedDatabase, pack_subset, shard_database

__all__ = [
    "AUTO_MIN_SEQUENCES",
    "PREFILTER_MODES",
    "pooled_pruned_search",
    "resolve_prefilter",
]

#: Valid values of ``SearchConfig.prefilter`` / ``--prefilter``.
PREFILTER_MODES = ("off", "composition", "kmer", "auto")

#: Below this many sequences ``auto`` skips pruning entirely: the bound
#: evaluations and the extra packing cost more than the handful of DP lanes
#: they could save.
AUTO_MIN_SEQUENCES = 512

_MODE_TIERS = {
    "off": (),
    "composition": ("length", "composition"),
    "kmer": ("length", "composition", "kmer"),
}


def resolve_prefilter(mode: str, n_sequences: int) -> tuple[str, ...]:
    """Bound tiers a prefilter mode enables for a database of this size."""
    if mode not in PREFILTER_MODES:
        raise ValueError(f"prefilter must be one of {PREFILTER_MODES}, got {mode!r}")
    if mode == "auto":
        return _MODE_TIERS["kmer"] if n_sequences >= AUTO_MIN_SEQUENCES else ()
    return _MODE_TIERS[mode]


def default_seed_count(top_k: int) -> int:
    """Seed prefix size: enough lanes to saturate the top-k threshold."""
    return max(32, 2 * top_k)


def pooled_pruned_search(
    query: np.ndarray,
    packed: PackedDatabase,
    config,
    pool,
    tiers: tuple[str, ...],
    kmer_k: int = DEFAULT_KMER_K,
) -> tuple[list[tuple[int, int]], dict]:
    """Exact pruned search over a worker pool: seed, filter, re-pack, ship.

    Returns ``(ranked, stats)`` where ``ranked`` is the merged
    ``(score, index)`` top-k -- identical to an unpruned scan -- and
    ``stats`` the :func:`~repro.plan.runtime.empty_search_stats`-shaped
    prune accounting.
    """
    query_len = int(len(query))
    top = TopK(config.top_k)
    stats = empty_search_stats()
    if not packed.buckets:
        return [], stats
    max_lanes = config.resolved_max_lanes
    max_waste = config.resolved_max_waste

    def ship(subset: PackedDatabase) -> None:
        # Honour the config's shard count, but never deal more shards than
        # the subset has sequences: the seed prefix can be smaller than the
        # shard count and empty shards would only waste worker groups.
        n_shards = min(getattr(config, "n_shards", 1), max(1, subset.n_sequences))
        if n_shards > 1:
            shards = shard_database(subset, n_shards, max_lanes, max_waste)
            graph = plan_search_buckets(
                subset,
                query_len,
                top_k=config.top_k,
                kernel=config.kernel,
                n_shards=n_shards,
                shards=shards,
            )
            blob = search_blob(shards)
        else:
            graph = plan_search_buckets(
                subset, query_len, top_k=config.top_k, kernel=config.kernel
            )
            blob = search_blob(subset)
        result = pool.run_search_plan(graph, query, blob, scoring=config.scoring)
        top.merge(result.hits)

    # Pass 1: one cheap bound sweep over every lane.  The ceilings serve
    # twice -- ordering the seed prefix (highest ceiling first, so the
    # threshold is as strong as it can be before any pruning decision) and
    # the prune comparison itself.
    tiered = TieredFilter(query, config.scoring, tiers, kmer_k)
    tracer = get_tracer()
    per_bucket = []
    with tracer.span("prefilter_bounds", "computation", sequences=packed.n_sequences):
        for bucket in packed.buckets:
            combined, per_tier, bound_cells = tiered.ceilings(
                bucket.codes, bucket.lengths
            )
            stats["bound_cells"] += bound_cells
            per_bucket.append((bucket, combined, per_tier))
    all_indices = np.concatenate(
        [b.indices for b, _, _ in per_bucket]
    )
    all_ceilings = np.concatenate([c for _, c, _ in per_bucket])
    order = np.lexsort((all_indices, -all_ceilings))
    seeds = all_indices[order[: default_seed_count(config.top_k)]]
    seed_set = {int(i) for i in seeds}
    seed_db = pack_subset(packed, seeds, max_lanes, max_waste)
    if seed_db.buckets:
        ship(seed_db)

    # Pass 2: prune everything whose ceiling is strictly below the seeded
    # threshold.  The threshold is stale relative to the inline path's
    # running one, but staleness only keeps more lanes, never fewer.
    threshold = top.threshold()
    survivors: list[int] = []
    with tracer.span(
        "prefilter", "computation", sequences=packed.n_sequences - len(seed_set)
    ):
        for bucket, combined, per_tier in per_bucket:
            rest = np.array(
                [
                    lane
                    for lane in range(bucket.lanes)
                    if int(bucket.indices[lane]) not in seed_set
                ],
                dtype=np.int64,
            )
            if rest.size == 0:
                continue
            drop = combined[rest] < threshold
            survivors.extend(int(i) for i in bucket.indices[rest[~drop]])
            dropped = rest[drop]
            stats["sequences_pruned"] += int(dropped.size)
            stats["cells_skipped"] += query_len * int(bucket.lengths[dropped].sum())
            # Attribute each prune to the cheapest tier that proved it.
            unattributed = dropped
            for tier in tiered.tiers:
                if tier not in per_tier or unattributed.size == 0:
                    continue
                hit = per_tier[tier][unattributed] < threshold
                n = int(hit.sum())
                if n:
                    stats["tier_pruned"][tier] = (
                        stats["tier_pruned"].get(tier, 0) + n
                    )
                    unattributed = unattributed[~hit]
        stats["thresholds"].append(float(threshold))
    if is_enabled():
        metrics = get_metrics()
        metrics.counter("sequences_pruned").inc(stats["sequences_pruned"])
        metrics.counter("cells_skipped").inc(stats["cells_skipped"])
        for tier, n in stats["tier_pruned"].items():
            metrics.counter(f"prefilter_{tier}_pruned").inc(n)
        if threshold != float("-inf"):
            metrics.gauge("prefilter_threshold").set(float(threshold))

    if survivors:
        ship(pack_subset(packed, survivors, max_lanes, max_waste))
    return top.ranked(), stats
