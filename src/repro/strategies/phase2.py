"""Phase 2 (Section 4.4): distributed global alignment of similar regions.

After phase 1 fills the alignment queue, "the queue alignment is treated as
a vector sorted by subsequence size and we use a scattered mapping approach
to assign similar regions to processors.  In this way, processor Pi is
responsible for accessing positions i, i+P, i+2P, ... of the vector
alignments.  This strategy eliminates the need for synchronization
operations such as those provided by locks and condition variables."  Each
processor runs Needleman-Wunsch on its pairs and writes the results (the
Fig. 16 records) into a shared vector at the same scattered positions.

Because the subsequences are short (~253 BP on average), this module runs
the *real* alignments -- no workload scaling -- and only the virtual clock
is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.alignment import LocalAlignment
from ..core.global_align import SubsequenceAlignment, align_region
from ..core.linear import nw_last_row
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..dsm.jiajia import JiaJia
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..sim.engine import Simulator
from ..sim.stats import PhaseTimes
from .base import StrategyResult

#: Bytes of one queue entry (begin/end coordinates + score, Section 4.4).
QUEUE_ENTRY_BYTES = 32


@dataclass(frozen=True)
class Phase2Config:
    """Run parameters of the phase-2 scattered mapping."""

    n_procs: int = 8
    render: bool = True  # build full alignments (False: score-only, faster)

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")


def result_record_bytes(region: LocalAlignment) -> int:
    """Size of one phase-2 output record: coordinates, score, and the two
    globally-aligned subsequences."""
    return 24 + region.s_length + region.t_length


def run_phase2(
    s: np.ndarray,
    t: np.ndarray,
    regions: list[LocalAlignment],
    config: Phase2Config | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    scoring: Scoring = DEFAULT_SCORING,
) -> StrategyResult:
    """Globally align every queue entry with the scattered mapping.

    ``extras['records']`` holds the computed :class:`SubsequenceAlignment`
    records in queue order (or ``(index, score)`` tuples when
    ``config.render`` is off).
    """
    config = config or Phase2Config()
    n_procs = config.n_procs
    # "the queue alignment is treated as a vector sorted by subsequence size"
    ordered = sorted(regions, key=lambda r: (-r.size, r.region))

    sim = Simulator()
    dsm = JiaJia(sim, n_procs, cost)
    queue_region = dsm.alloc(max(1, len(ordered)) * QUEUE_ENTRY_BYTES, "queue")
    records: list[SubsequenceAlignment | tuple[int, int] | None] = [None] * len(ordered)
    result_region = dsm.alloc(
        max(1, sum(result_record_bytes(r) for r in ordered)), "results"
    )
    offsets = np.cumsum([0] + [result_record_bytes(r) for r in ordered])
    marks: dict[str, float] = {}

    def node(p: int):
        yield from dsm.barrier(p)
        if p == 0:
            marks["core_start"] = sim.now
        for idx in range(p, len(ordered), n_procs):
            region = ordered[idx]
            yield from dsm.read(p, queue_region, idx * QUEUE_ENTRY_BYTES, QUEUE_ENTRY_BYTES)
            cells = region.s_length * region.t_length
            yield from dsm.compute(p, cells * cost.nw_cell_time, cells=cells)
            if config.render:
                records[idx] = align_region(s, t, region, scoring)
            else:
                score = int(
                    nw_last_row(
                        s[region.s_start : region.s_end],
                        t[region.t_start : region.t_end],
                        scoring,
                    )[-1]
                )
                records[idx] = (idx, score)
            dsm.write(
                p, result_region, int(offsets[idx]), result_record_bytes(region)
            )
        yield from dsm.barrier(p)  # flushes every node's result diffs
        if p == 0:
            marks["core_end"] = sim.now

    procs = [sim.spawn(node(p), name=f"node{p}") for p in range(n_procs)]
    sim.run_all(procs)

    core_start = marks.get("core_start", 0.0)
    core_end = marks.get("core_end", sim.now)
    return StrategyResult(
        name="phase2",
        n_procs=n_procs,
        nominal_size=(len(s), len(t)),
        total_time=sim.now,
        phases=PhaseTimes(init=core_start, core=core_end - core_start, term=sim.now - core_end),
        stats=dsm.cluster_stats(),
        alignments=list(ordered),
        extras={"records": records},
    )


def serial_phase2_time(
    regions: list[LocalAlignment], cost: CostModel = DEFAULT_COST_MODEL
) -> float:
    """Virtual time of aligning every pair on one node (no DSM costs)."""
    return sum(r.s_length * r.t_length for r in regions) * cost.nw_cell_time
