"""Content-addressed result cache for database searches.

A database search is a pure function of (query codes, database content,
scoring scheme, ``top_k``, resolved prefilter tiers): every backend --
inline, pool, sim -- and every shard count produces the bitwise-identical
ranking (that is the repo's core invariant, enforced by the parity suites).
That purity makes results safely cacheable by *content*: the key is a sha1
over exactly the inputs the ranking depends on, so a hit can skip planning,
sharding and every DP tile outright.

Deliberately **excluded** from the key: ``kernel``, ``n_shards``, backend
and packing knobs.  Those change *how* the answer is computed, never *what*
it is, so a striped 4-shard pool run can serve a later classic inline
request for the same search.  The database is identified by
:func:`repro.seq.db.content_digest` -- re-packing the same sequences into
different bucket geometry yields a different digest (geometry is part of
the packed content), which errs on the side of recomputing rather than
ever serving a stale entry.

Entries are bounded by an LRU (:class:`collections.OrderedDict` move-to-end
on hit, popitem(last=False) on overflow) and invalidated explicitly by
database digest when the caller knows content changed.  Hit / miss /
eviction counters are mirrored into :mod:`repro.obs` metrics so ledger
diffs show cache behaviour changes.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import replace

import numpy as np

from ..core.scoring import Scoring
from ..obs import get_metrics, is_enabled

__all__ = [
    "DEFAULT_CACHE",
    "SearchCache",
    "cache_key",
    "scoring_signature",
]


def scoring_signature(scoring: Scoring) -> bytes:
    """Canonical bytes of a scoring scheme: the full 4x4 table plus gap.

    Probing :meth:`~repro.core.scoring.Scoring.pair_score` over the DNA code
    alphabet gives one uniform signature for both the match/mismatch scheme
    and :class:`~repro.core.scoring.MatrixScoring` -- two schemes that score
    every pair (and the gap) identically are interchangeable for ranking, so
    they *should* collide.
    """
    table = [scoring.pair_score(a, b) for a in range(4) for b in range(4)]
    table.append(scoring.gap)
    return np.asarray(table, dtype=np.int64).tobytes()


def cache_key(
    query: np.ndarray,
    db_digest: str,
    scoring: Scoring,
    top_k: int,
    tiers: tuple[str, ...],
) -> str:
    """sha1 content address of one search's ranking-relevant inputs.

    ``tiers`` are the *resolved* prefilter tiers, not the config string:
    "auto" resolves differently per database size, and although pruning
    never changes the ranking it does change the prune accounting carried
    in the result, which must round-trip exactly.
    """
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(query, dtype=np.int8).tobytes())
    h.update(db_digest.encode("ascii"))
    h.update(scoring_signature(scoring))
    h.update(int(top_k).to_bytes(8, "little"))
    h.update(",".join(tiers).encode("ascii"))
    return h.hexdigest()


class SearchCache:
    """Bounded LRU of :class:`~repro.strategies.search.SearchResult` values.

    Stored results are treated as immutable masters: :meth:`get` hands back
    a shallow *copy* (fresh ``hits`` list, ``cached=True``, the caller's own
    wall clock) so callers mutating their result cannot corrupt the cached
    entry, and so a hit is distinguishable from the run that populated it.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, tuple[str, object]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, name: str, n: int = 1) -> None:
        if is_enabled():
            get_metrics().counter(name).inc(n)

    def get(self, key: str, wall_seconds: float = 0.0):
        """The cached result copy for ``key``, or ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._count("search_cache_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._count("search_cache_hits")
        _, result = entry
        return replace(
            result,
            hits=list(result.hits),
            wall_seconds=wall_seconds,
            cached=True,
        )

    def put(self, key: str, db_digest: str, result) -> None:
        """Store ``result`` under ``key``, evicting the LRU tail on overflow."""
        master = replace(result, hits=list(result.hits), cached=False)
        self._entries[key] = (db_digest, master)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("search_cache_evictions")

    def invalidate(self, db_digest: str) -> int:
        """Drop every entry computed against ``db_digest``; returns the count.

        Content addressing already prevents stale *hits* (a changed database
        hashes to a new digest, hence new keys); invalidation exists to
        release memory for databases the caller knows are gone.
        """
        stale = [k for k, (d, _) in self._entries.items() if d == db_digest]
        for k in stale:
            del self._entries[k]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Process-wide cache used by ``search_db(config.cache=True)`` and the CLI.
DEFAULT_CACHE = SearchCache()
