"""Distributed Section 4.1 heuristic with exact per-cell metadata flow.

:mod:`repro.strategies.wavefront` runs the *score* kernel at cluster scale
and recovers regions statistically (see DESIGN.md, "Two engines").  This
module is the other engine distributed faithfully: each processor runs the
per-cell :class:`repro.core.heuristic.HeuristicAligner` over its column
slice, and what crosses the processor border is the *entire cell state* --
score, candidate coordinates, max/min scores, gap/match/mismatch counters
and the open flag -- exactly the record the paper says "is passed
individually between processors Pi and Pi+1".

Because the engine is per-cell Python it is only practical for small
sequences; its purpose is semantic: tests verify that the distributed run
produces *bit-identical* candidate queues to the sequential Section 4.1
algorithm for any processor count, which is the strongest possible
correctness statement about the paper's decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.alignment import AlignmentQueue, LocalAlignment
from ..core.heuristic import HeuristicParams, _fresh, _priority
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..seq.alphabet import encode
from .partition import column_partition


@dataclass(frozen=True)
class ExactWavefrontConfig:
    n_procs: int = 4
    params: HeuristicParams = HeuristicParams()


class _SliceWorker:
    """One processor's slice of the Section 4.1 computation.

    ``step_row`` consumes the left border *cell* of the current row (the
    neighbour's last cell, or a fresh boundary cell for processor 0) and
    returns this slice's own border cell for the neighbour to its right.
    """

    def __init__(
        self,
        worker_id: int,
        t_slice,
        col_offset: int,
        params: HeuristicParams,
        scoring: Scoring,
    ) -> None:
        self.worker_id = worker_id
        self.t = encode(t_slice)
        self.col_offset = col_offset
        self.params = params
        self.scoring = scoring
        self.queue = AlignmentQueue()
        self._row_index = 0
        # prev[k] = cell state of column (col_offset + k) on the previous
        # row; prev[0] is the neighbour's border cell on the previous row.
        self.prev: list[tuple] = [
            _fresh(0, col_offset + k) for k in range(len(self.t) + 1)
        ]

    def _close(self, cell: tuple, score: int) -> tuple:
        (_, bi, bj, max_score, max_i, max_j, _min, gaps, matches, mismatches, _f) = cell
        if max_score >= self.params.min_score and max_i >= bi and max_j >= bj:
            self.queue.push(
                LocalAlignment(
                    score=max_score,
                    s_start=max(0, bi - 1),
                    s_end=max_i,
                    t_start=max(0, bj - 1),
                    t_end=max_j,
                )
            )
        return (score, bi, bj, score, max_i, max_j, score, gaps, matches, mismatches, 0)

    def step_row(self, s_char: int, left_cell: tuple) -> tuple:
        """Process one row of this slice; returns the right border cell."""
        i = self._row_index = self._row_index + 1
        params = self.params
        scoring = self.scoring
        t = self.t
        prev = self.prev
        row: list[tuple] = [left_cell]
        for k in range(1, len(t) + 1):
            j = self.col_offset + k
            s_code = s_char
            is_match = t[k - 1] == s_code
            sub = scoring.pair_score(s_code, int(t[k - 1]))
            diag_cell = prev[k - 1]
            up_cell = prev[k]
            left = row[k - 1]
            diag_score = diag_cell[0] + sub
            up_score = up_cell[0] + scoring.gap
            left_score = left[0] + scoring.gap
            score = max(0, diag_score, up_score, left_score)
            if score == 0:
                row.append(_fresh(i, j))
                continue
            origin = None
            best_priority = None
            is_diag = False
            for cand_score, cell, diag_move in (
                (left_score, left, False),
                (up_score, up_cell, False),
                (diag_score, diag_cell, True),
            ):
                if cand_score != score:
                    continue
                p = _priority(cell)
                if best_priority is None or p > best_priority:
                    origin, best_priority, is_diag = cell, p, diag_move
            assert origin is not None
            (_, bi, bj, max_score, max_i, max_j, min_score, gaps, matches, mismatches, flag) = origin
            if is_diag:
                if is_match:
                    matches += 1
                else:
                    mismatches += 1
            else:
                gaps += 1
            if score > max_score:
                max_score, max_i, max_j = score, i, j
            if score < min_score:
                min_score = score
            if flag == 0 and max_score >= min_score + params.open_delta:
                flag = 1
                bi, bj = i, j
            cell = (score, bi, bj, max_score, max_i, max_j, min_score, gaps, matches, mismatches, flag)
            if flag == 1 and score <= max_score - params.close_delta:
                cell = self._close(cell, score)
            row.append(cell)
        self.prev = row
        return row[-1]

    def flush(self) -> AlignmentQueue:
        for cell in self.prev[1:]:
            if cell[10] == 1:
                self._close(cell, cell[0])
        return self.queue


def exact_wavefront_alignments(
    s,
    t,
    config: ExactWavefrontConfig | None = None,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[LocalAlignment]:
    """Run the faithful distributed Section 4.1 algorithm.

    Workers process each row left to right, handing the border cell along --
    the software analogue of the lock + condition-variable handshake whose
    *timing* :func:`repro.strategies.run_wavefront` simulates.
    """
    config = config or ExactWavefrontConfig()
    s = encode(s)
    t = encode(t)
    if len(t) < config.n_procs:
        raise ValueError("sequence narrower than the processor count")
    slices = column_partition(len(t), config.n_procs)
    workers = [
        _SliceWorker(w, t[c0:c1], c0, config.params, scoring)
        for w, (c0, c1) in enumerate(slices)
    ]
    for i, ch in enumerate(s, start=1):
        border = _fresh(i, 0)  # the matrix's left boundary cell
        for worker in workers:
            border = worker.step_row(int(ch), border)
    merged = AlignmentQueue()
    for worker in workers:
        merged.merge(worker.flush())
    return merged.finalize(min_score=config.params.min_score, overlap_slack=0)
