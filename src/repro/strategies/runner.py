"""End-to-end orchestration: phase 1 (find regions) + phase 2 (align them).

This is the "GenomeDSM" pipeline a user runs: pick a phase-1 strategy, get
the queue of similar regions, then globally align each region with the
scattered mapping of Section 4.4 and render Fig. 16-style records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.global_align import SubsequenceAlignment
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from .base import ScaledWorkload, StrategyResult
from .blocked import BlockedConfig, run_blocked
from .phase2 import Phase2Config, run_phase2
from .preprocess import PreprocessConfig, run_preprocess
from .wavefront import WavefrontConfig, run_wavefront

#: Phase-1 strategy registry (the paper's names).
STRATEGIES = ("heuristic", "heuristic_block", "pre_process")


def run_phase1(
    workload: ScaledWorkload,
    strategy: str = "heuristic_block",
    config=None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> StrategyResult:
    """Run one phase-1 strategy by paper name."""
    if strategy == "heuristic":
        return run_wavefront(workload, config, cost)
    if strategy == "heuristic_block":
        return run_blocked(workload, config, cost)
    if strategy == "pre_process":
        return run_preprocess(workload, config, cost)
    raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")


@dataclass
class PipelineResult:
    """Both phases of one genome comparison."""

    phase1: StrategyResult
    phase2: StrategyResult
    records: list = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return self.phase1.total_time + self.phase2.total_time

    def best_records(self, k: int = 3) -> list[SubsequenceAlignment]:
        """The k highest-similarity phase-2 records (the Table 2 rows)."""
        rendered = [r for r in self.records if isinstance(r, SubsequenceAlignment)]
        return sorted(rendered, key=lambda r: -r.similarity)[:k]


def run_pipeline(
    s: np.ndarray,
    t: np.ndarray,
    strategy: str = "heuristic_block",
    n_procs: int = 8,
    scale: int = 1,
    phase1_config=None,
    phase2_config: Phase2Config | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> PipelineResult:
    """Compare two genomes end to end on the simulated cluster.

    With ``scale == 1`` (the default) the phase-2 alignments are real; with
    workload scaling the phase-1 queue is in nominal coordinates, so phase 2
    is skipped unless the caller maps regions back to actual data.
    """
    workload = ScaledWorkload(s, t, scale=scale)
    if phase1_config is None:
        defaults = {
            "heuristic": WavefrontConfig(n_procs=n_procs),
            "heuristic_block": BlockedConfig(n_procs=n_procs),
            "pre_process": PreprocessConfig(n_procs=n_procs),
        }
        phase1_config = defaults.get(strategy)
    phase1 = run_phase1(workload, strategy, phase1_config, cost)
    regions = [r for r in phase1.alignments if r.s_length and r.t_length]
    if scale != 1:
        regions = []
    phase2 = run_phase2(
        workload.s, workload.t, regions, phase2_config or Phase2Config(n_procs=n_procs), cost
    )
    return PipelineResult(
        phase1=phase1, phase2=phase2, records=phase2.extras.get("records", [])
    )
