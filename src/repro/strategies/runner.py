"""End-to-end orchestration: phase 1 (find regions) + phase 2 (align them).

This is the "GenomeDSM" pipeline a user runs: pick a phase-1 strategy, get
the queue of similar regions, then globally align each region with the
scattered mapping of Section 4.4 and render Fig. 16-style records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.alignment import LocalAlignment
from ..core.global_align import SubsequenceAlignment
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..obs import gcups, get_metrics, get_tracer, is_enabled
from ..obs.trace import Stopwatch
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from .base import ScaledWorkload, StrategyResult
from .blocked import BlockedConfig, run_blocked
from .phase2 import Phase2Config, run_phase2
from .preprocess import PreprocessConfig, run_preprocess
from .wavefront import WavefrontConfig, run_wavefront

#: Phase-1 strategy registry (the paper's names).
STRATEGIES = ("heuristic", "heuristic_block", "pre_process")


def run_phase1(
    workload: ScaledWorkload,
    strategy: str = "heuristic_block",
    config=None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> StrategyResult:
    """Run one phase-1 strategy by paper name."""
    if strategy == "heuristic":
        return run_wavefront(workload, config, cost)
    if strategy == "heuristic_block":
        return run_blocked(workload, config, cost)
    if strategy == "pre_process":
        return run_preprocess(workload, config, cost)
    raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")


@dataclass
class PipelineResult:
    """Both phases of one genome comparison.

    ``total_time`` is *virtual* cluster seconds from the cost model;
    ``wall_seconds`` is what this host actually spent running the simulation
    (measured by the observability stopwatch).  Keeping both as separate
    fields means reports can never conflate the two clocks.
    """

    phase1: StrategyResult
    phase2: StrategyResult
    records: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def total_time(self) -> float:
        return self.phase1.total_time + self.phase2.total_time

    def best_records(self, k: int = 3) -> list[SubsequenceAlignment]:
        """The k highest-similarity phase-2 records (the Table 2 rows)."""
        rendered = [r for r in self.records if isinstance(r, SubsequenceAlignment)]
        return sorted(rendered, key=lambda r: -r.similarity)[:k]


def run_pipeline(
    s: np.ndarray,
    t: np.ndarray,
    strategy: str = "heuristic_block",
    n_procs: int = 8,
    scale: int = 1,
    phase1_config=None,
    phase2_config: Phase2Config | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> PipelineResult:
    """Compare two genomes end to end on the simulated cluster.

    With ``scale == 1`` (the default) the phase-2 alignments are real; with
    workload scaling the phase-1 queue is in nominal coordinates, so phase 2
    is skipped unless the caller maps regions back to actual data.
    """
    workload = ScaledWorkload(s, t, scale=scale)
    if phase1_config is None:
        defaults = {
            "heuristic": WavefrontConfig(n_procs=n_procs),
            "heuristic_block": BlockedConfig(n_procs=n_procs),
            "pre_process": PreprocessConfig(n_procs=n_procs),
        }
        phase1_config = defaults.get(strategy)
    tracer = get_tracer()
    with Stopwatch() as wall:
        with tracer.span("phase1", "phase", strategy=strategy, backend="sim"):
            phase1 = run_phase1(workload, strategy, phase1_config, cost)
        regions = [r for r in phase1.alignments if r.s_length and r.t_length]
        if scale != 1:
            regions = []
        with tracer.span("phase2", "phase", regions=len(regions), backend="sim"):
            phase2 = run_phase2(
                workload.s,
                workload.t,
                regions,
                phase2_config or Phase2Config(n_procs=n_procs),
                cost,
            )
    return PipelineResult(
        phase1=phase1,
        phase2=phase2,
        records=phase2.extras.get("records", []),
        wall_seconds=wall.elapsed,
    )


#: Real-parallel (multiprocessing) phase-1 backends served by the pool.
MP_BACKENDS = ("wavefront", "blocked")


@dataclass
class MpPipelineResult:
    """Both phases of one genome comparison on real worker processes.

    Unlike :class:`PipelineResult` the times here are *wall-clock* seconds on
    this host, not virtual cluster seconds.
    """

    backend: str
    n_workers: int
    regions: list[LocalAlignment]
    records: list[SubsequenceAlignment]
    phase1_seconds: float
    phase2_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.phase1_seconds + self.phase2_seconds

    def best_records(self, k: int = 3) -> list[SubsequenceAlignment]:
        """The k highest-similarity phase-2 records (the Table 2 rows)."""
        return sorted(self.records, key=lambda r: -r.similarity)[:k]


def run_mp_pipeline(
    s: np.ndarray,
    t: np.ndarray,
    backend: str = "wavefront",
    n_workers: int = 2,
    pool=None,
    phase1_config=None,
    scoring: Scoring = DEFAULT_SCORING,
) -> MpPipelineResult:
    """Compare two genomes end to end on real OS processes.

    ``backend`` picks the phase-1 strategy (``"wavefront"`` = Section 4.2,
    ``"blocked"`` = Section 4.3); phase 2 always uses the scattered mapping
    of Section 4.4.  Pass an :class:`repro.parallel.AlignmentWorkerPool` as
    ``pool`` to reuse live workers across calls (the sequences are published
    to shared memory once and both phases run without a respawn); otherwise
    a pool is created for this call and torn down afterwards.
    """
    if backend not in MP_BACKENDS:
        raise ValueError(f"unknown mp backend {backend!r}; expected one of {MP_BACKENDS}")
    from ..parallel import AlignmentWorkerPool  # local import: optional heavy dep chain

    owns = pool is None
    if pool is None:
        pool = AlignmentWorkerPool(n_workers=n_workers)
    tracer = get_tracer()
    phase1_cells = len(s) * len(t)
    try:
        with Stopwatch() as sw1, tracer.span(
            "phase1", "phase", backend=backend, cells=phase1_cells
        ):
            if backend == "wavefront":
                regions = pool.wavefront(s, t, phase1_config, scoring=scoring)
            else:
                regions = pool.blocked(s, t, phase1_config, scoring=scoring)
        alignable = [r for r in regions if r.s_length and r.t_length]
        phase2_cells = sum(
            (r.s_end - r.s_start) * (r.t_end - r.t_start) for r in alignable
        )
        with Stopwatch() as sw2, tracer.span(
            "phase2", "phase", regions=len(alignable), cells=phase2_cells
        ):
            records = pool.phase2(alignable, scoring=scoring)
    finally:
        if owns:
            pool.close()
    if is_enabled():
        metrics = get_metrics()
        metrics.gauge("phase1_seconds").set(sw1.elapsed)
        metrics.gauge("phase2_seconds").set(sw2.elapsed)
        metrics.gauge("phase1_gcups").set(gcups(phase1_cells, sw1.elapsed))
        metrics.gauge("phase2_gcups").set(gcups(phase2_cells, sw2.elapsed))
    return MpPipelineResult(
        backend=backend,
        n_workers=pool.n_workers,
        regions=regions,
        records=records,
        phase1_seconds=sw1.elapsed,
        phase2_seconds=sw2.elapsed,
    )
