"""End-to-end orchestration: phase 1 (find regions) + phase 2 (align them).

This is the "GenomeDSM" pipeline a user runs: pick a phase-1 strategy, get
the queue of similar regions, then globally align each region with the
scattered mapping of Section 4.4 and render Fig. 16-style records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.alignment import LocalAlignment
from ..core.global_align import SubsequenceAlignment
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..obs import gcups, get_metrics, get_tracer, is_enabled
from ..obs.ledger import record_run
from ..obs.trace import Stopwatch
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from .base import ScaledWorkload, StrategyResult
from .blocked import BlockedConfig, blocked_plan, run_blocked
from .phase2 import Phase2Config, run_phase2
from .preprocess import PreprocessConfig, preprocess_plan, run_preprocess
from .wavefront import WavefrontConfig, run_wavefront, wavefront_plan

#: Phase-1 strategy registry (the paper's names).
STRATEGIES = ("heuristic", "heuristic_block", "pre_process")

#: Accepted alternative spellings -- the mp backends' names and common
#: variants -- mapped to the paper's canonical names.
STRATEGY_ALIASES = {
    "wavefront": "heuristic",
    "blocked": "heuristic_block",
    "preprocess": "pre_process",
    "pre-process": "pre_process",
}


def canonical_strategy(name: str) -> str:
    """Resolve any accepted strategy spelling to the paper's name."""
    if name in STRATEGIES:
        return name
    canonical = STRATEGY_ALIASES.get(name)
    if canonical is None:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {STRATEGIES} "
            f"or an alias in {tuple(STRATEGY_ALIASES)}"
        )
    return canonical


def run_phase1(
    workload: ScaledWorkload,
    strategy: str = "heuristic_block",
    config=None,
    cost: CostModel = DEFAULT_COST_MODEL,
    executor=None,
) -> StrategyResult:
    """Run one phase-1 strategy by name (paper names or mp aliases).

    With ``executor=None`` the run goes through the simulated cluster.  Any
    other :class:`repro.plan.Executor` (e.g. an
    :class:`~repro.plan.InlineExecutor`) receives the same planner-built
    task graph and executes it for real -- identical regions, wall-clock
    timing.
    """
    strategy = canonical_strategy(strategy)
    if executor is None:
        if strategy == "heuristic":
            return run_wavefront(workload, config, cost)
        if strategy == "heuristic_block":
            return run_blocked(workload, config, cost)
        return run_preprocess(workload, config, cost)
    planners = {
        "heuristic": (wavefront_plan, WavefrontConfig),
        "heuristic_block": (blocked_plan, BlockedConfig),
        "pre_process": (preprocess_plan, PreprocessConfig),
    }
    plan, default_config = planners[strategy]
    graph = plan(workload, config or default_config())
    return executor.run(
        graph, workload.s, workload.t, workload.scoring, scale=workload.scale
    )


@dataclass
class PipelineResult:
    """Both phases of one genome comparison.

    ``total_time`` is *virtual* cluster seconds from the cost model;
    ``wall_seconds`` is what this host actually spent running the simulation
    (measured by the observability stopwatch).  Keeping both as separate
    fields means reports can never conflate the two clocks.
    """

    phase1: StrategyResult
    phase2: StrategyResult
    records: list = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Why phase 2 ran on an empty region list, when it did (e.g. workload
    #: scaling leaves phase-1 regions in nominal coordinates).  ``None``
    #: when phase 2 saw the real region queue.
    phase2_skipped_reason: str | None = None

    @property
    def total_time(self) -> float:
        return self.phase1.total_time + self.phase2.total_time

    def best_records(self, k: int = 3) -> list[SubsequenceAlignment]:
        """The k highest-similarity phase-2 records (the Table 2 rows)."""
        rendered = [r for r in self.records if isinstance(r, SubsequenceAlignment)]
        return sorted(rendered, key=lambda r: -r.similarity)[:k]


def run_pipeline(
    s: np.ndarray,
    t: np.ndarray,
    strategy: str = "heuristic_block",
    n_procs: int = 8,
    scale: int = 1,
    phase1_config=None,
    phase2_config: Phase2Config | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    executor=None,
) -> PipelineResult:
    """Compare two genomes end to end on the simulated cluster.

    With ``scale == 1`` (the default) the phase-2 alignments are real; with
    workload scaling the phase-1 queue is in nominal coordinates, so phase 2
    runs on an empty region list and the result records why in
    ``phase2_skipped_reason``.  Pass an ``executor`` (e.g.
    :class:`repro.plan.InlineExecutor`) to run phase 1 for real instead of
    on the virtual cluster.
    """
    strategy = canonical_strategy(strategy)
    workload = ScaledWorkload(s, t, scale=scale)
    if phase1_config is None:
        defaults = {
            "heuristic": WavefrontConfig(n_procs=n_procs),
            "heuristic_block": BlockedConfig(n_procs=n_procs),
            "pre_process": PreprocessConfig(n_procs=n_procs),
        }
        phase1_config = defaults.get(strategy)
    backend = "sim" if executor is None else executor.BACKEND
    tracer = get_tracer()
    with Stopwatch() as wall:
        with tracer.span("phase1", "phase", strategy=strategy, backend=backend):
            phase1 = run_phase1(workload, strategy, phase1_config, cost, executor)
        regions = [r for r in phase1.alignments if r.s_length and r.t_length]
        phase2_skipped_reason = None
        if scale != 1:
            phase2_skipped_reason = (
                f"workload scaling (scale={scale}) leaves phase-1 regions in "
                "nominal coordinates with no actual sequence data behind them"
            )
            regions = []
        with tracer.span("phase2", "phase", regions=len(regions), backend=backend):
            phase2 = run_phase2(
                workload.s,
                workload.t,
                regions,
                phase2_config or Phase2Config(n_procs=n_procs),
                cost,
            )
    record_run(
        f"align-{backend}",
        {
            "wall_seconds": wall.elapsed,
            "virtual_cluster_seconds": phase1.total_time + phase2.total_time,
        },
        config={
            "strategy": strategy,
            "backend": backend,
            "n_procs": n_procs,
            "scale": scale,
            "rows": len(s),
            "cols": len(t),
        },
    )
    return PipelineResult(
        phase1=phase1,
        phase2=phase2,
        records=phase2.extras.get("records", []),
        wall_seconds=wall.elapsed,
        phase2_skipped_reason=phase2_skipped_reason,
    )


#: Real-parallel (multiprocessing) phase-1 backends served by the pool.
MP_BACKENDS = ("wavefront", "blocked")

#: Canonical strategy name -> pool backend (pre_process has no real backend).
_MP_BY_STRATEGY = {"heuristic": "wavefront", "heuristic_block": "blocked"}


def _mp_backend(name: str) -> str:
    """Resolve an mp backend name or any strategy alias to the pool's name."""
    if name in MP_BACKENDS:
        return name
    canonical = canonical_strategy(name)
    backend = _MP_BY_STRATEGY.get(canonical)
    if backend is None:
        raise ValueError(
            f"strategy {canonical!r} has no real-parallel backend; "
            f"expected one of {MP_BACKENDS} (or the matching paper names)"
        )
    return backend


@dataclass
class MpPipelineResult:
    """Both phases of one genome comparison on real worker processes.

    Unlike :class:`PipelineResult` the times here are *wall-clock* seconds on
    this host, not virtual cluster seconds.
    """

    backend: str
    n_workers: int
    regions: list[LocalAlignment]
    records: list[SubsequenceAlignment]
    phase1_seconds: float
    phase2_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.phase1_seconds + self.phase2_seconds

    def best_records(self, k: int = 3) -> list[SubsequenceAlignment]:
        """The k highest-similarity phase-2 records (the Table 2 rows)."""
        return sorted(self.records, key=lambda r: -r.similarity)[:k]


def run_mp_pipeline(
    s: np.ndarray,
    t: np.ndarray,
    backend: str = "wavefront",
    n_workers: int = 2,
    pool=None,
    phase1_config=None,
    scoring: Scoring = DEFAULT_SCORING,
) -> MpPipelineResult:
    """Compare two genomes end to end on real OS processes.

    ``backend`` picks the phase-1 strategy (``"wavefront"``/``"heuristic"``
    = Section 4.2, ``"blocked"``/``"heuristic_block"`` = Section 4.3; the
    paper names and the mp names are interchangeable); phase 2 always uses
    the scattered mapping of Section 4.4.  Pass an
    :class:`repro.parallel.AlignmentWorkerPool` as ``pool`` to reuse live
    workers across calls (the sequences are published to shared memory once
    and both phases run without a respawn); otherwise a pool is created for
    this call and torn down afterwards.
    """
    backend = _mp_backend(backend)
    from ..parallel import AlignmentWorkerPool  # local import: optional heavy dep chain

    owns = pool is None
    if pool is None:
        pool = AlignmentWorkerPool(n_workers=n_workers)
    tracer = get_tracer()
    phase1_cells = len(s) * len(t)
    try:
        with Stopwatch() as sw1, tracer.span(
            "phase1", "phase", backend=backend, cells=phase1_cells
        ):
            if backend == "wavefront":
                regions = pool.wavefront(s, t, phase1_config, scoring=scoring)
            else:
                regions = pool.blocked(s, t, phase1_config, scoring=scoring)
        alignable = [r for r in regions if r.s_length and r.t_length]
        phase2_cells = sum(
            (r.s_end - r.s_start) * (r.t_end - r.t_start) for r in alignable
        )
        with Stopwatch() as sw2, tracer.span(
            "phase2", "phase", regions=len(alignable), cells=phase2_cells
        ):
            records = pool.phase2(alignable, scoring=scoring)
    finally:
        if owns:
            pool.close()
    if is_enabled():
        metrics = get_metrics()
        metrics.gauge("phase1_seconds").set(sw1.elapsed)
        metrics.gauge("phase2_seconds").set(sw2.elapsed)
        metrics.gauge("phase1_gcups").set(gcups(phase1_cells, sw1.elapsed))
        metrics.gauge("phase2_gcups").set(gcups(phase2_cells, sw2.elapsed))
    record_run(
        f"align-{backend}",
        {
            "phase1_seconds": sw1.elapsed,
            "phase2_seconds": sw2.elapsed,
            "phase1_gcups": gcups(phase1_cells, sw1.elapsed),
            "phase2_gcups": gcups(phase2_cells, sw2.elapsed),
        },
        config={
            "backend": backend,
            "n_workers": pool.n_workers,
            "rows": len(s),
            "cols": len(t),
        },
    )
    return MpPipelineResult(
        backend=backend,
        n_workers=pool.n_workers,
        regions=regions,
        records=records,
        phase1_seconds=sw1.elapsed,
        phase2_seconds=sw2.elapsed,
    )
