"""Strategy 1 (Section 4.2): wave-front without blocking factors.

Work is assigned on a column basis -- every processor owns N/P columns of
the similarity matrix and keeps only two rows of it (writing and reading
row) in JIAJIA shared memory.  "Each value of the border column is passed
individually between processors Pi and Pi+1.  Thus, no blocking factors are
used to group any values": every row triggers, per edge, a lock-protected
border write, a jia_setcv to the right neighbour, and a read-acknowledge
jia_setcv back (the paper's "processor 0 waits on a condition variable in
order to guarantee that the preceding value has already been read").

The simulation executes the real DP kernel on the actual sequences while
charging the virtual clock per *nominal* row (see
:class:`repro.strategies.base.ScaledWorkload`).  Rows are aggregated into
groups of G for event-count economy; all protocol costs are still charged
once per nominal row via the DSM layer's ``repeat`` arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.alignment import AlignmentQueue
from ..core.engine import KernelWorkspace
from ..core.kernels import SCORE_DTYPE
from ..core.regions import Region, StreamingRegionFinder
from ..dsm.jiajia import JiaJia
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..sim.engine import Delay, Simulator
from ..sim.stats import PhaseTimes
from .base import RegionSettings, ScaledWorkload, StrategyResult
from .partition import column_partition


@dataclass(frozen=True)
class WavefrontConfig:
    """Run parameters of the non-blocked strategy."""

    n_procs: int = 8
    target_groups: int = 1200  # row-aggregation granularity (DES events)
    regions: RegionSettings = RegionSettings()
    #: Enable JIAJIA's optional home-migration feature (jia_config).  The
    #: two shared DP rows are written by the same node forever, so their
    #: pages migrate to their writers and the per-row diff traffic -- the
    #: chunk-proportional overhead term -- disappears after a few rows.
    home_migration: bool = False

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        if self.target_groups <= 0:
            raise ValueError("target_groups must be positive")


def _row_groups(rows: int, target: int) -> list[tuple[int, int]]:
    group = max(1, rows // target)
    return [(lo, min(lo + group, rows)) for lo in range(0, rows, group)]


# Lock / condition-variable id spaces (one per neighbour edge).
def _edge_lock(p: int) -> int:
    return 100 + p


def _cv_data(p: int) -> int:
    return 200 + p  # data-ready, signalled by p to p+1


def _cv_ack(p: int) -> int:
    return 300 + p  # read-acknowledge, signalled by p+1 back to p


def run_wavefront(
    workload: ScaledWorkload,
    config: WavefrontConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    timeline=None,
) -> StrategyResult:
    """Simulate one non-blocked run; returns timings and found alignments."""
    config = config or WavefrontConfig()
    n_procs = config.n_procs
    if workload.cols < n_procs:
        raise ValueError(
            f"{workload.cols} columns cannot be split over {n_procs} processors"
        )
    sim = Simulator(timeline)
    dsm = JiaJia(sim, n_procs, cost)
    if config.home_migration:
        dsm.config("home_migration", True)

    cols = workload.cols
    scale = workload.scale
    slices = column_partition(cols, n_procs)
    groups = _row_groups(workload.rows, config.target_groups)

    # The two shared DP rows, allocated at nominal size with JIAJIA's
    # round-robin homes: a processor's row-chunk writes are remote for
    # (P-1)/P of their pages, which is what the release diffs.
    bytes_per_cell = cost.shared_bytes_per_cell
    rows_region = dsm.alloc(
        2 * (workload.nominal_cols + 1) * bytes_per_cell, "dp-rows"
    )

    # Actual border values flowing across each edge (left neighbour -> me).
    borders: list[list[int]] = [[] for _ in range(n_procs)]
    finders = [
        StreamingRegionFinder(config.regions.region_config()) for _ in range(n_procs)
    ]
    marks: dict[str, float] = {}

    def node(p: int):
        c0, c1 = slices[p]
        width = c1 - c0
        t_slice = workload.t[c0:c1]
        ws = KernelWorkspace(t_slice, workload.scoring)
        yield Delay(cost.node_startup_time)
        yield from dsm.barrier(p)
        if p == 0:
            marks["core_start"] = sim.now

        prev = np.zeros(width + 1, dtype=SCORE_DTYPE)
        consumed = 0  # border values taken from the left edge so far
        for g, (lo, hi) in enumerate(groups):
            g_rows = hi - lo
            g_nominal = g_rows * scale
            if p > 0 and width:
                yield from dsm.waitcv(p, _cv_data(p - 1), repeat=g_nominal)
                yield from dsm.fault(p, pages=1, repeat=g_nominal)
                yield from dsm.setcv(p, _cv_ack(p - 1), repeat=g_nominal)
            if width:
                # real kernel over my slice of rows [lo, hi)
                incoming = borders[p][consumed : consumed + g_rows] if p > 0 else None
                for r in range(g_rows):
                    i = lo + r + 1
                    left = int(incoming[r]) if incoming is not None else 0
                    prev = ws.sw_row_slice(prev, workload.s[lo + r], left, out=prev)
                    finders[p].feed(i, prev)
                    if p < n_procs - 1:
                        borders[p + 1].append(int(prev[-1]))
                consumed += g_rows
                cells = g_rows * width
                seconds = cells * scale * scale * cost.heuristic_cell_time
                yield from dsm.compute(p, seconds, cells=cells * scale * scale)
                # The writing row chunk is re-dirtied every nominal row.  A
                # producer flushes it at each per-row release (times = G);
                # the last processor never releases, so its dirty pages
                # coalesce until the final barrier flushes only the
                # last-written content once.
                if p < n_procs - 1:
                    dsm.write(
                        p,
                        rows_region,
                        (c0 * scale) * bytes_per_cell,
                        (c1 - c0) * scale * bytes_per_cell,
                        times=g_nominal,
                    )
                elif g == 0:
                    dsm.write(
                        p,
                        rows_region,
                        (c0 * scale) * bytes_per_cell,
                        (c1 - c0) * scale * bytes_per_cell,
                    )
            if p < n_procs - 1 and width:
                yield from dsm.lock(p, _edge_lock(p), repeat=g_nominal)
                yield from dsm.unlock(p, _edge_lock(p), extra_releases=g_nominal - 1)
                yield from dsm.setcv(p, _cv_data(p), repeat=g_nominal)
                # The consumer acks immediately after *reading* (before its
                # compute), so this wait does not serialise the pipeline;
                # it is the paper's "guarantee that the preceding value has
                # already been read".
                yield from dsm.waitcv(p, _cv_ack(p), repeat=g_nominal)
        yield from dsm.barrier(p)
        if p == 0:
            marks["core_end"] = sim.now
        # gather: every node ships its queue to node 0
        if p != 0:
            n_found = len(finders[p]._finished) + len(finders[p]._active)
            yield from dsm.compute(p, 0.0)
            dsm.stats[p].record_message(64 + 32 * n_found)
            gather = cost.message_time(64 + 32 * n_found)
            dsm.stats[p].breakdown.add("communication", gather)
            yield Delay(gather)
        yield Delay(cost.node_teardown_time)
        yield from dsm.barrier(p)

    procs = [sim.spawn(node(p), name=f"node{p}") for p in range(n_procs)]
    sim.run_all(procs)

    queue = AlignmentQueue()
    for p, finder in enumerate(finders):
        c0 = slices[p][0]
        for region in finder.finish():
            shifted = Region(
                s_start=region.s_start,
                s_end=region.s_end,
                t_start=region.t_start + c0,
                t_end=region.t_end + c0,
                score=region.score,
                peak_i=region.peak_i,
                peak_j=region.peak_j + c0,
                n_hits=region.n_hits,
            )
            queue.push(workload.scale_alignment(shifted.as_alignment()))
    alignments = queue.finalize(
        min_score=config.regions.admission_score,
        overlap_slack=config.regions.overlap_slack * scale,
        merge=True,
    )

    core_start = marks.get("core_start", 0.0)
    core_end = marks.get("core_end", sim.now)
    phases = PhaseTimes(
        init=core_start, core=core_end - core_start, term=sim.now - core_end
    )
    return StrategyResult(
        name="heuristic",
        n_procs=n_procs,
        nominal_size=(workload.nominal_rows, workload.nominal_cols),
        total_time=sim.now,
        phases=phases,
        stats=dsm.cluster_stats(),
        alignments=alignments,
    )


def serial_wavefront_time(workload: ScaledWorkload, cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Virtual time of the sequential heuristic run (Table 1's 'Serial').

    The sequential program pays no DSM costs: just the kernel over every
    cell plus process start/teardown.
    """
    return (
        cost.node_startup_time
        + workload.nominal_cells * cost.heuristic_cell_time
        + cost.node_teardown_time
    )
