"""Strategy 1 (Section 4.2): wave-front without blocking factors.

Work is assigned on a column basis -- every processor owns N/P columns of
the similarity matrix and keeps only two rows of it (writing and reading
row) in JIAJIA shared memory.  "Each value of the border column is passed
individually between processors Pi and Pi+1.  Thus, no blocking factors are
used to group any values": every row triggers, per edge, a lock-protected
border write, a jia_setcv to the right neighbour, and a read-acknowledge
jia_setcv back (the paper's "processor 0 waits on a condition variable in
order to guarantee that the preceding value has already been read").

This module is now a thin strategy front-end: :func:`wavefront_plan` turns a
config into a :class:`repro.plan.TaskGraph` (rows aggregated into groups of
G for event-count economy) and :func:`run_wavefront` executes that graph on
the simulated cluster via :class:`repro.plan.SimExecutor`, which charges all
protocol costs once per *nominal* row through the DSM layer's ``repeat``
arguments.  The same graph runs unchanged on the inline and pool backends.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..plan import SimExecutor, TaskGraph, plan_wavefront
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from .base import RegionSettings, ScaledWorkload, StrategyResult


@dataclass(frozen=True)
class WavefrontConfig:
    """Run parameters of the non-blocked strategy."""

    n_procs: int = 8
    target_groups: int = 1200  # row-aggregation granularity (DES events)
    regions: RegionSettings = RegionSettings()
    #: Enable JIAJIA's optional home-migration feature (jia_config).  The
    #: two shared DP rows are written by the same node forever, so their
    #: pages migrate to their writers and the per-row diff traffic -- the
    #: chunk-proportional overhead term -- disappears after a few rows.
    home_migration: bool = False
    #: Row kernel the runtimes drive: "classic" dense scans or the
    #: "striped" query-profile kernel of :mod:`repro.core.striped`.
    kernel: str = "classic"

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        if self.target_groups <= 0:
            raise ValueError("target_groups must be positive")


def wavefront_plan(workload: ScaledWorkload, config: WavefrontConfig) -> TaskGraph:
    """The Section 4.2 task graph for this workload and config."""
    regions = config.regions
    return plan_wavefront(
        workload.rows,
        workload.cols,
        n_procs=config.n_procs,
        group_rows=max(1, workload.rows // config.target_groups),
        threshold=regions.threshold,
        col_tolerance=regions.col_tolerance,
        row_tolerance=regions.row_tolerance,
        min_score=regions.min_score,
        overlap_slack=regions.overlap_slack,
        home_migration=config.home_migration,
        kernel=config.kernel,
    )


def run_wavefront(
    workload: ScaledWorkload,
    config: WavefrontConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    timeline=None,
) -> StrategyResult:
    """Simulate one non-blocked run; returns timings and found alignments."""
    config = config or WavefrontConfig()
    graph = wavefront_plan(workload, config)
    return SimExecutor(cost, timeline).run(
        graph, workload.s, workload.t, workload.scoring, scale=workload.scale
    )


def serial_wavefront_time(workload: ScaledWorkload, cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Virtual time of the sequential heuristic run (Table 1's 'Serial').

    The sequential program pays no DSM costs: just the kernel over every
    cell plus process start/teardown.
    """
    return (
        cost.node_startup_time
        + workload.nominal_cells * cost.heuristic_cell_time
        + cost.node_teardown_time
    )
