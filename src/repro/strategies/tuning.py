"""Auto-tuning the blocked strategy's decomposition.

Table 3 shows the blocked strategy is "very sensitive to a variation on
the block and band sizes", and the paper picks 5x5 by manual sweep.  This
module automates the sweep: candidate multipliers are evaluated on the
calibrated simulator against a *miniature* of the real workload (the
simulator is scale-invariant, so a small actual sequence at the target
nominal size prices each candidate in milliseconds) and the best one is
returned.  This is the "auto-tune before the long run" workflow a
production user of the library would actually follow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from .base import ScaledWorkload
from .blocked import BlockedConfig, run_blocked

#: The paper's Table 3 sweep, plus asymmetric candidates.
DEFAULT_CANDIDATES = (
    (1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (6, 6),
    (3, 5), (5, 3), (2, 8), (8, 2),
)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one auto-tuning sweep."""

    best: tuple[int, int]
    times: dict
    n_procs: int
    nominal_size: tuple[int, int]

    @property
    def best_time(self) -> float:
        return self.times[self.best]

    def ranking(self) -> list[tuple[tuple[int, int], float]]:
        return sorted(self.times.items(), key=lambda kv: kv[1])

    def gain_over(self, multiplier: tuple[int, int]) -> float:
        """Speed-up of the winner over another candidate (Table 3's
        'performance gain' column, as a ratio)."""
        return self.times[multiplier] / self.best_time


def miniature_workload(
    nominal_rows: int,
    nominal_cols: int,
    actual: int = 1024,
    rng: int | np.random.Generator | None = 0,
) -> ScaledWorkload:
    """A small random workload whose virtual clock runs at nominal size.

    Requires the nominal sizes to be divisible by the chosen actual size's
    scale; ``actual`` is shrunk until both scales are integral.
    """
    from ..seq.random_dna import random_dna

    if nominal_rows <= 0 or nominal_cols <= 0:
        raise ValueError("nominal sizes must be positive")
    actual = min(actual, nominal_rows, nominal_cols)
    while actual > 1 and (nominal_rows % actual or nominal_cols % actual):
        actual -= 1
    scale = nominal_rows // actual
    if nominal_cols // actual != scale:
        raise ValueError(
            "tuning miniatures need square-ish problems "
            f"(got {nominal_rows} x {nominal_cols})"
        )
    gen = np.random.default_rng(rng)
    return ScaledWorkload(random_dna(actual, gen), random_dna(actual, gen), scale=scale)


def tune_blocking(
    nominal_rows: int,
    nominal_cols: int,
    n_procs: int = 8,
    candidates=DEFAULT_CANDIDATES,
    cost: CostModel = DEFAULT_COST_MODEL,
    actual: int = 1024,
) -> TuningResult:
    """Price every candidate multiplier on the simulator; return the best.

    Ties break toward the coarser decomposition (fewer messages on the
    real system for the same predicted time).
    """
    if not candidates:
        raise ValueError("no candidates")
    workload = miniature_workload(nominal_rows, nominal_cols, actual)
    times: dict = {}
    for multiplier in candidates:
        result = run_blocked(
            workload, BlockedConfig(n_procs=n_procs, multiplier=multiplier), cost
        )
        times[multiplier] = result.total_time
    best = min(
        times,
        key=lambda m: (times[m], m[0] * m[1]),
    )
    return TuningResult(
        best=best,
        times=times,
        n_procs=n_procs,
        nominal_size=(nominal_rows, nominal_cols),
    )
