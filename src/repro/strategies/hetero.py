"""Section 7 extension: hierarchical execution on a heterogeneous cluster.

The paper closes with: "we intend to run this modified algorithm in order to
compare very long DNA sequences (larger than 1 MBP) in a heterogeneous
cluster.  In this case, message-passing will be used for inter-cluster
communication and DSM will be used for communicating processes that belong
to the same cluster."

This module implements that design point on the simulator: the similarity
matrix is split into column *super-slices*, one per sub-cluster; within a
sub-cluster the blocked DSM strategy runs unchanged, and the border columns
between sub-clusters travel as explicit messages over an inter-cluster link
(higher latency, independent bandwidth -- e.g. a campus backbone between
machine rooms).  Sub-clusters may be heterogeneous: each has its own node
count and CPU speed factor, and the column split is proportional to
aggregate compute power so the pipeline stays balanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.alignment import AlignmentQueue
from ..core.kernels import SCORE_DTYPE
from ..core.regions import StreamingRegionFinder
from ..dsm.jiajia import JiaJia
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..sim.engine import Delay, Simulator
from ..sim.network import NetworkParams
from ..sim.resources import SimCondition
from ..sim.stats import ClusterStats, NodeStats, PhaseTimes
from .base import RegionSettings, ScaledWorkload, StrategyResult
from .blocked import compute_tile
from .partition import split_even


@dataclass(frozen=True)
class SubCluster:
    """One homogeneous machine group inside the heterogeneous system."""

    n_procs: int = 8
    speed: float = 1.0  # CPU speed multiplier vs the paper's Pentium II

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        if self.speed <= 0:
            raise ValueError("speed must be positive")

    @property
    def power(self) -> float:
        return self.n_procs * self.speed


@dataclass(frozen=True)
class HeteroConfig:
    """Run parameters of the hierarchical strategy."""

    clusters: tuple[SubCluster, ...] = (SubCluster(8, 1.0), SubCluster(4, 2.0))
    bands_per_proc: int = 5
    regions: RegionSettings = RegionSettings()
    #: Inter-cluster link: WAN-ish latency, own bandwidth.
    link: NetworkParams = field(
        default_factory=lambda: NetworkParams(latency=2e-3, bandwidth=6.25e6)
    )

    def __post_init__(self) -> None:
        if len(self.clusters) < 1:
            raise ValueError("need at least one sub-cluster")
        if self.bands_per_proc <= 0:
            raise ValueError("bands_per_proc must be positive")

    def column_split(self, n_cols: int) -> list[tuple[int, int]]:
        """Columns proportional to each sub-cluster's aggregate power."""
        total = sum(c.power for c in self.clusters)
        bounds = []
        start = 0
        for i, c in enumerate(self.clusters):
            if i == len(self.clusters) - 1:
                end = n_cols
            else:
                end = start + int(round(n_cols * c.power / total))
            bounds.append((start, min(end, n_cols)))
            start = bounds[-1][1]
        return bounds


def run_hetero(
    workload: ScaledWorkload,
    config: HeteroConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> StrategyResult:
    """Simulate the hierarchical (message-passing + DSM) execution.

    Within a sub-cluster, bands are dealt round-robin over its nodes and the
    band boundaries move through its own JIAJIA instance; at a super-slice
    border, each finished band's right border column is sent to the next
    sub-cluster as one message over the inter-cluster link.
    """
    config = config or HeteroConfig()
    n_clusters = len(config.clusters)
    scale = workload.scale
    sim = Simulator()

    col_split = config.column_split(workload.cols)
    if any(hi - lo <= 0 for lo, hi in col_split):
        raise ValueError("workload too narrow for the sub-cluster split")

    # one DSM instance per sub-cluster; MPI-style link between them
    dsms = [JiaJia(sim, c.n_procs, cost) for c in config.clusters]
    n_bands = max(
        1, min(config.bands_per_proc * max(c.n_procs for c in config.clusters),
               workload.rows)
    )
    row_bounds = split_even(workload.rows, n_bands)

    # inter-cluster "MPI": per (cluster edge, band) condition + value buffer
    link_cv: dict[tuple[int, int], SimCondition] = {}
    link_cols: dict[tuple[int, int], np.ndarray] = {}

    def cv_for(edge: int, band: int) -> SimCondition:
        key = (edge, band)
        if key not in link_cv:
            link_cv[key] = SimCondition(sim, f"link-{edge}-{band}")
        return link_cv[key]

    boundaries = [
        [np.zeros(workload.cols + 1, dtype=SCORE_DTYPE) for _ in range(n_bands + 1)]
        for _ in range(n_clusters)
    ]
    finders: list[list[StreamingRegionFinder]] = [
        [] for _ in range(n_clusters)
    ]
    marks: dict[str, float] = {}
    link_time = lambda nbytes: config.link.latency + nbytes / config.link.bandwidth

    def node(ci: int, p: int):
        cluster = config.clusters[ci]
        dsm = dsms[ci]
        c_lo, c_hi = col_split[ci]
        t_slice_cols = (c_lo, c_hi)
        passage = node.passages[ci]
        yield Delay(cost.node_startup_time)
        yield from dsm.barrier(p)
        if ci == 0 and p == 0:
            marks["core_start"] = sim.now

        for band in range(n_bands):
            if band % cluster.n_procs != p:
                continue
            r0, r1 = row_bounds[band]
            h = r1 - r0
            if h == 0:
                continue
            # inter-cluster receive: the left super-slice's border column
            left_col = np.zeros(h, dtype=SCORE_DTYPE)
            if ci > 0:
                yield from cv_for(ci - 1, band).wait()
                nbytes = h * scale * cost.border_bytes_per_cell
                recv = link_time(nbytes)
                dsm.stats[p].breakdown.add("communication", recv)
                dsm.stats[p].record_message(nbytes)
                yield Delay(recv)
                left_col = link_cols[(ci - 1, band)]
            # intra-cluster wave-front over my super-slice (one tile per band
            # here; the fine-grained within-slice pipeline is run_blocked's
            # job and is summarised at band granularity for the hierarchy)
            if band > 0:
                yield from dsm.waitcv(p, 40_000 + band - 1)
            top = boundaries[ci][band][c_lo : c_hi + 1].copy()
            tile = compute_tile(
                top, left_col, workload.s[r0:r1], workload.t[c_lo:c_hi], workload.scoring
            )
            cells = h * (c_hi - c_lo)
            cell_time = cost.blocked_cell_time / cluster.speed
            # The band is spread over the sub-cluster's nodes by the inner
            # blocked pipeline; at this granularity the owner accounts the
            # divided compute plus the inner pipeline's fill/drain penalty
            # ((P-1) of the inner blocks are idle slots) and its per-block
            # DSM synchronisation.
            inner_blocks = config.bands_per_proc * cluster.n_procs
            seconds = cells * scale * scale * cell_time / cluster.n_procs
            fill = seconds * (cluster.n_procs - 1) / inner_blocks
            inner_sync = inner_blocks * (
                cost.cv_signal_time() + cost.cv_wait_time()
            ) / cluster.n_procs
            dsm.stats[p].breakdown.add("lock_cv", inner_sync)
            dsm.stats[p].breakdown.add("idle", fill)
            yield from dsm.compute(p, seconds, cells=cells * scale * scale)
            yield Delay(inner_sync + fill)
            boundaries[ci][band + 1][c_lo + 1 : c_hi + 1] = tile[-1, 1:]
            finder = StreamingRegionFinder(config.regions.region_config())
            for r in range(h):
                finder.feed(r0 + r + 1, tile[r])
            finders[ci].append(finder)
            if band + 1 < n_bands:
                dsm.write(
                    p, passage, c_lo * scale * cost.border_bytes_per_cell,
                    (c_hi - c_lo) * scale * cost.border_bytes_per_cell,
                )
                yield from dsm.lock(p, 30_000 + band)
                yield from dsm.unlock(p, 30_000 + band)
                yield from dsm.setcv(p, 40_000 + band)
            # inter-cluster send: my right border column to the next slice
            if ci < n_clusters - 1:
                link_cols[(ci, band)] = tile[:, -1].copy()
                nbytes = h * scale * cost.border_bytes_per_cell
                send = link_time(nbytes)
                dsm.stats[p].breakdown.add("communication", send)
                dsm.stats[p].record_message(nbytes)
                yield Delay(send)
                cv_for(ci, band).signal()

        yield from dsm.barrier(p)
        if ci == n_clusters - 1 and p == 0:
            marks["core_end"] = sim.now
        yield Delay(cost.node_teardown_time)
        yield from dsm.barrier(p)

    node.passages = [
        dsms[ci].alloc(
            (workload.nominal_cols + 1) * cost.border_bytes_per_cell, f"passage-{ci}"
        )
        for ci in range(n_clusters)
    ]
    procs = [
        sim.spawn(node(ci, p), name=f"c{ci}n{p}")
        for ci, cluster in enumerate(config.clusters)
        for p in range(cluster.n_procs)
    ]
    sim.run_all(procs)

    queue = AlignmentQueue()
    for ci, cluster_finders in enumerate(finders):
        c_lo = col_split[ci][0]
        for finder in cluster_finders:
            for region in finder.finish():
                a = region.as_alignment().shifted(0, c_lo)
                queue.push(workload.scale_alignment(a))
    alignments = queue.finalize(
        min_score=config.regions.admission_score,
        overlap_slack=config.regions.overlap_slack * scale,
        merge=True,
    )

    all_nodes: list[NodeStats] = []
    for dsm in dsms:
        all_nodes.extend(dsm.stats)
    core_start = marks.get("core_start", 0.0)
    core_end = marks.get("core_end", sim.now)
    return StrategyResult(
        name="hetero",
        n_procs=sum(c.n_procs for c in config.clusters),
        nominal_size=(workload.nominal_rows, workload.nominal_cols),
        total_time=sim.now,
        phases=PhaseTimes(init=core_start, core=core_end - core_start, term=sim.now - core_end),
        stats=ClusterStats(nodes=all_nodes),
        alignments=alignments,
        extras={"column_split": col_split, "n_bands": n_bands},
    )


def hetero_serial_time(
    workload: ScaledWorkload,
    config: HeteroConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Sequential baseline on the *fastest* single node of the system."""
    config = config or HeteroConfig()
    fastest = max(c.speed for c in config.clusters)
    return (
        cost.node_startup_time
        + workload.nominal_cells * cost.blocked_cell_time / fastest
        + cost.node_teardown_time
    )
