"""On-disk store of saved score-matrix columns (Section 5's actual output).

The pre_process strategy saves "the most relevant columns of the result
matrix to disk.  These columns were later processed in order to retrieve
the actual alignments" -- and "the fact that selective I/O can be used with
only minor impact to the execution time opens the possibility of working
with larger sequences and saving partial results for later processing."

:class:`ColumnStore` is that artifact made real: every saved column (a
band-height slice of one matrix column, as in Fig. 17) lands in one
``.npy`` file under a run directory next to a JSON manifest, and can be
reloaded later -- in a different process, on a different day -- to restart
the DP from stored boundaries without recomputing the whole matrix.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.kernels import SCORE_DTYPE

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class StoredColumn:
    """Metadata of one saved column slice."""

    band: int
    column: int  # global matrix column index (DP j)
    row_start: int  # first row of the band (DP i of the first value is +1)
    filename: str

    def key(self) -> tuple[int, int]:
        return (self.band, self.column)


class ColumnStore:
    """A directory of saved column slices plus a manifest.

    The store is append-only during a run; :meth:`finalize` writes the
    manifest.  Loading is random-access by (band, column).
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._columns: dict[tuple[int, int], StoredColumn] = {}
        self._meta: dict = {}
        manifest = self.root / MANIFEST_NAME
        if manifest.exists():
            self._load_manifest()

    # -- writing ----------------------------------------------------------
    def save_column(
        self, band: int, column: int, row_start: int, values: np.ndarray
    ) -> StoredColumn:
        """Persist one column slice (the band's cells of matrix column j)."""
        if values.ndim != 1:
            raise ValueError("column values must be 1-D")
        record = StoredColumn(
            band=band,
            column=column,
            row_start=row_start,
            filename=f"band{band:05d}_col{column:08d}.npy",
        )
        if record.key() in self._columns:
            raise ValueError(f"column {record.key()} already stored")
        np.save(self.root / record.filename, values.astype(SCORE_DTYPE))
        self._columns[record.key()] = record
        return record

    def finalize(self, **meta) -> None:
        """Write the manifest; ``meta`` records run parameters."""
        self._meta = dict(meta)
        payload = {
            "meta": self._meta,
            "columns": [
                {
                    "band": c.band,
                    "column": c.column,
                    "row_start": c.row_start,
                    "filename": c.filename,
                }
                for c in sorted(self._columns.values(), key=lambda c: c.key())
            ],
        }
        with open(self.root / MANIFEST_NAME, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)

    # -- reading ----------------------------------------------------------
    def _load_manifest(self) -> None:
        with open(self.root / MANIFEST_NAME, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        self._meta = payload.get("meta", {})
        self._columns = {}
        for entry in payload["columns"]:
            record = StoredColumn(
                band=entry["band"],
                column=entry["column"],
                row_start=entry["row_start"],
                filename=entry["filename"],
            )
            self._columns[record.key()] = record

    @property
    def meta(self) -> dict:
        return dict(self._meta)

    def __len__(self) -> int:
        return len(self._columns)

    def columns(self) -> list[StoredColumn]:
        return sorted(self._columns.values(), key=lambda c: c.key())

    def columns_in_band(self, band: int) -> list[StoredColumn]:
        return [c for c in self.columns() if c.band == band]

    def load(self, band: int, column: int) -> np.ndarray:
        record = self._columns.get((band, column))
        if record is None:
            raise KeyError(f"no stored column (band={band}, column={column})")
        return np.load(self.root / record.filename)

    def total_bytes(self) -> int:
        return sum(
            (self.root / c.filename).stat().st_size for c in self._columns.values()
        )


def save_preprocess_columns(
    s: np.ndarray,
    t: np.ndarray,
    store: ColumnStore,
    band_heights: list[int],
    save_interleave: int,
    scoring=None,
) -> int:
    """Compute and persist the interleaved columns for a (scale=1) run.

    Walks the matrix band by band exactly like the pre_process strategy and
    saves column ``j`` iff ``j != 0 and j % save_interleave == 0`` (the
    paper's rule).  Returns the number of columns saved.  This is the
    offline companion of :func:`repro.strategies.run_preprocess` -- the
    simulated run accounts the I/O *time*, this produces the I/O *bytes*.
    """
    from ..core.scoring import DEFAULT_SCORING
    from .blocked import compute_tile
    from .partition import bounds_from_heights

    scoring = scoring or DEFAULT_SCORING
    if sum(band_heights) != len(s):
        raise ValueError("band heights must cover the whole sequence")
    saved = 0
    boundary = np.zeros(len(t) + 1, dtype=SCORE_DTYPE)
    for band, (r0, r1) in enumerate(bounds_from_heights(band_heights)):
        h = r1 - r0
        left_col = np.zeros(h, dtype=SCORE_DTYPE)
        tile = compute_tile(boundary.copy(), left_col, s[r0:r1], t, scoring)
        for j in range(1, len(t) + 1):
            if j % save_interleave == 0:
                store.save_column(band, j, r0, tile[:, j])
                saved += 1
        boundary[1:] = tile[-1, 1:]
    store.finalize(
        rows=len(s),
        cols=len(t),
        band_heights=list(band_heights),
        save_interleave=save_interleave,
    )
    return saved


def restart_band_from_store(
    s: np.ndarray,
    t: np.ndarray,
    store: ColumnStore,
    band: int,
    col_start: int,
    col_end: int,
    scoring=None,
) -> np.ndarray:
    """Recompute one band window seeded from stored boundary columns.

    Demonstrates the paper's "later processing": the window
    ``[col_start, col_end)`` of ``band`` is recomputed using the nearest
    stored column at or before ``col_start`` as the left boundary (or the
    matrix edge), without touching anything to its left.  The rows above
    still need the previous band's boundary, which the caller obtains the
    same way; for the first band the matrix edge suffices.  Returns the
    recomputed tile (h x (width + 1)).
    """
    from ..core.scoring import DEFAULT_SCORING
    from .blocked import compute_tile
    from .partition import bounds_from_heights

    scoring = scoring or DEFAULT_SCORING
    heights = store.meta["band_heights"]
    bounds = bounds_from_heights(heights)
    r0, r1 = bounds[band]
    h = r1 - r0
    candidates = [
        c for c in store.columns_in_band(band) if c.column <= col_start
    ]
    if candidates:
        anchor = max(candidates, key=lambda c: c.column)
        left_col = store.load(band, anchor.column)
        start = anchor.column
    else:
        left_col = np.zeros(h, dtype=SCORE_DTYPE)
        start = 0
    if band != 0:
        raise NotImplementedError(
            "restarting inner bands additionally needs the stored boundary "
            "rows of the band above; band 0 restarts from the matrix edge"
        )
    top = np.zeros(col_end - start + 1, dtype=SCORE_DTYPE)
    tile = compute_tile(top, left_col, s[r0:r1], t[start:col_end], scoring)
    return tile[:, col_start - start :]
