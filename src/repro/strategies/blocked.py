"""Strategy 2 (Section 4.3): wave-front with blocking factors.

The similarity matrix is tiled into *bands* (row groups) x *blocks* (column
groups); band b belongs to processor b mod P, and the bottom row of every
block is sent to the next processor in one communication ("it is worth
investigating whether the communication time can be reduced by grouping
many values from the border column into one single communication").

Unlike strategy 1 there is no read-acknowledge handshake: the passage
structure buffers a whole band boundary, so a producer can run ahead of its
consumer and the per-block costs overlap with computation.  What limits
speed-up instead is pipeline fill/drain -- with a 1x1 blocking multiplier
each block is n/P columns wide and n/P rows tall, and processors idle for
most of the run (Table 3's 732 s vs 363 s at 5x5).

:func:`blocked_plan` builds the band x block task graph;
:func:`run_blocked` executes it on the simulated cluster.  The tile kernel
itself (``compute_tile``) lives in :mod:`repro.core.engine` and is
re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import compute_tile
from ..plan import SimExecutor, TaskGraph, Tiling, plan_blocked
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from .base import RegionSettings, ScaledWorkload, StrategyResult
from .partition import explicit_tiling, tiling_from_multiplier

__all__ = [
    "BlockedConfig",
    "blocked_plan",
    "compute_tile",
    "run_blocked",
    "serial_blocked_time",
]


@dataclass(frozen=True)
class BlockedConfig:
    """Run parameters of the blocked strategy."""

    n_procs: int = 8
    multiplier: tuple[int, int] = (5, 5)
    n_bands: int | None = None  # explicit override (Table 4's 40 x 25)
    n_blocks: int | None = None
    regions: RegionSettings = RegionSettings()
    kernel: str = "classic"  # row kernel: "classic" or "striped"

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        if (self.n_bands is None) != (self.n_blocks is None):
            raise ValueError("set both n_bands and n_blocks, or neither")

    def tiling(self, rows: int, cols: int) -> Tiling:
        if self.n_bands is not None:
            return explicit_tiling(rows, cols, self.n_bands, self.n_blocks)
        return tiling_from_multiplier(rows, cols, self.n_procs, self.multiplier)


def blocked_plan(workload: ScaledWorkload, config: BlockedConfig) -> TaskGraph:
    """The Section 4.3 task graph for this workload and config."""
    tiling = config.tiling(workload.rows, workload.cols)
    regions = config.regions
    return plan_blocked(
        workload.rows,
        workload.cols,
        n_procs=config.n_procs,
        n_bands=tiling.n_bands,
        n_blocks=tiling.n_blocks,
        threshold=regions.threshold,
        col_tolerance=regions.col_tolerance,
        row_tolerance=regions.row_tolerance,
        min_score=regions.min_score,
        overlap_slack=regions.overlap_slack,
        kernel=config.kernel,
    )


def run_blocked(
    workload: ScaledWorkload,
    config: BlockedConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    timeline=None,
) -> StrategyResult:
    """Simulate one blocked run; returns timings and found alignments."""
    config = config or BlockedConfig()
    graph = blocked_plan(workload, config)
    return SimExecutor(cost, timeline).run(
        graph, workload.s, workload.t, workload.scoring, scale=workload.scale
    )


def serial_blocked_time(workload: ScaledWorkload, cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Virtual time of the sequential blocked-kernel run (Table 4 'Serial')."""
    return (
        cost.node_startup_time
        + workload.nominal_cells * cost.blocked_cell_time
        + cost.node_teardown_time
    )
