"""Strategy 2 (Section 4.3): wave-front with blocking factors.

The similarity matrix is tiled into *bands* (row groups) x *blocks* (column
groups); band b belongs to processor b mod P, and the bottom row of every
block is sent to the next processor in one communication ("it is worth
investigating whether the communication time can be reduced by grouping
many values from the border column into one single communication").

Unlike strategy 1 there is no read-acknowledge handshake: the passage
structure buffers a whole band boundary, so a producer can run ahead of its
consumer and the per-block costs overlap with computation.  What limits
speed-up instead is pipeline fill/drain -- with a 1x1 blocking multiplier
each block is n/P columns wide and n/P rows tall, and processors idle for
most of the run (Table 3's 732 s vs 363 s at 5x5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.alignment import AlignmentQueue
from ..core.engine import KernelWorkspace
from ..core.kernels import SCORE_DTYPE
from ..core.regions import Region, StreamingRegionFinder
from ..core.scoring import Scoring
from ..dsm.jiajia import JiaJia
from ..sim.costmodel import DEFAULT_COST_MODEL, CostModel
from ..sim.engine import Delay, Simulator
from ..sim.stats import PhaseTimes
from .base import RegionSettings, ScaledWorkload, StrategyResult
from .partition import Tiling, explicit_tiling, tiling_from_multiplier


@dataclass(frozen=True)
class BlockedConfig:
    """Run parameters of the blocked strategy."""

    n_procs: int = 8
    multiplier: tuple[int, int] = (5, 5)
    n_bands: int | None = None  # explicit override (Table 4's 40 x 25)
    n_blocks: int | None = None
    regions: RegionSettings = RegionSettings()

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        if (self.n_bands is None) != (self.n_blocks is None):
            raise ValueError("set both n_bands and n_blocks, or neither")

    def tiling(self, rows: int, cols: int) -> Tiling:
        if self.n_bands is not None:
            return explicit_tiling(rows, cols, self.n_bands, self.n_blocks)
        return tiling_from_multiplier(rows, cols, self.n_procs, self.multiplier)


def compute_tile(
    top: np.ndarray,
    left_col: np.ndarray,
    s_band: np.ndarray,
    t_block: np.ndarray,
    scoring: Scoring,
    workspace: KernelWorkspace | None = None,
) -> np.ndarray:
    """DP over one (band x block) tile given its top row and left column.

    ``top`` has length ``w + 1``: ``top[0]`` is the diagonal corner
    ``H[r0-1, c0-1]`` and ``top[1:]`` the previous band's bottom row over
    this block's columns.  ``left_col[r] = H[r0+r, c0-1]`` comes from the
    block to the left (zeros at the matrix edge).  Returns the full tile
    including the left border column (shape ``h x (w+1)``).

    ``workspace`` (built over ``t_block``) lets callers that revisit the same
    column block -- every band of a blocked run -- amortize the query profile
    and scratch buffers across tiles.
    """
    h, w = len(s_band), len(t_block)
    ws = workspace if workspace is not None else KernelWorkspace(t_block, scoring)
    tile = np.empty((h, w + 1), dtype=SCORE_DTYPE)
    ws.sw_rows_slice(top, s_band, left_col, out=tile)
    return tile


def _cv_block(band: int, block: int, n_blocks: int) -> int:
    return 1000 + band * n_blocks + block


def _band_lock(band: int) -> int:
    return 500 + band


def run_blocked(
    workload: ScaledWorkload,
    config: BlockedConfig | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    timeline=None,
) -> StrategyResult:
    """Simulate one blocked run; returns timings and found alignments."""
    config = config or BlockedConfig()
    n_procs = config.n_procs
    tiling = config.tiling(workload.rows, workload.cols)
    n_bands, n_blocks = tiling.n_bands, tiling.n_blocks
    scale = workload.scale
    scoring = workload.scoring

    sim = Simulator(timeline)
    dsm = JiaJia(sim, n_procs, cost)

    # One passage region per band boundary, homed at the consumer so that
    # the producer's writes are what the release diffs (Section 5's "only a
    # limited amount of the similar array should be shared" applies to
    # strategy 2 as well: only boundary rows live in DSM).
    border_bytes = cost.border_bytes_per_cell
    passage = [
        dsm.alloc(
            (workload.nominal_cols + 1) * border_bytes,
            f"passage-{b}",
            home=tiling.band_owner(b + 1, n_procs) if b + 1 < n_bands else 0,
        )
        for b in range(n_bands)
    ]

    # Actual boundary rows (full width, DP indexing) between bands.
    boundaries = [np.zeros(workload.cols + 1, dtype=SCORE_DTYPE) for _ in range(n_bands + 1)]
    queues = [AlignmentQueue() for _ in range(n_procs)]
    marks: dict[str, float] = {}

    def node(p: int):
        yield Delay(cost.node_startup_time)
        yield from dsm.barrier(p)
        if p == 0:
            marks["core_start"] = sim.now

        for band in range(n_bands):
            if tiling.band_owner(band, n_procs) != p:
                continue
            r0, r1 = tiling.row_bounds[band]
            h = r1 - r0
            s_band = workload.s[r0:r1]
            band_rows = np.zeros((h, workload.cols + 1), dtype=SCORE_DTYPE)
            left_col = np.zeros(h, dtype=SCORE_DTYPE)
            for block in range(n_blocks):
                c0, c1 = tiling.col_bounds[block]
                w = c1 - c0
                if band > 0:
                    yield from dsm.waitcv(p, _cv_block(band - 1, block, n_blocks))
                    # passage pages are home-local to this consumer: the
                    # producer's diffs already delivered the data.
                if w == 0 or h == 0:
                    continue
                top = boundaries[band][c0 : c1 + 1].copy()
                tile = compute_tile(top, left_col, s_band, workload.t[c0:c1], scoring)
                band_rows[:, c0 + 1 : c1 + 1] = tile[:, 1:]
                left_col = tile[:, -1].copy()
                cells = h * w
                yield from dsm.compute(
                    p,
                    cells * scale * scale * cost.blocked_cell_time,
                    cells=cells * scale * scale,
                )
                # publish the block's bottom row through the passage band
                boundaries[band + 1][c0 + 1 : c1 + 1] = tile[-1, 1:]
                if band + 1 < n_bands:
                    dsm.write(
                        p,
                        passage[band],
                        c0 * scale * border_bytes,
                        w * scale * border_bytes,
                    )
                    yield from dsm.lock(p, _band_lock(band))
                    yield from dsm.unlock(p, _band_lock(band))
                    yield from dsm.setcv(p, _cv_block(band, block, n_blocks))
            # phase-1 candidate detection over the finished band
            if h:
                finder = StreamingRegionFinder(config.regions.region_config())
                for r in range(h):
                    finder.feed(r0 + r + 1, band_rows[r])
                for region in finder.finish():
                    queues[p].push(workload.scale_alignment(region.as_alignment()))

        yield from dsm.barrier(p)
        if p == 0:
            marks["core_end"] = sim.now
        if p != 0:
            n_found = len(queues[p])
            gather = cost.message_time(64 + 32 * n_found)
            dsm.stats[p].record_message(64 + 32 * n_found)
            dsm.stats[p].breakdown.add("communication", gather)
            yield Delay(gather)
        yield Delay(cost.node_teardown_time)
        yield from dsm.barrier(p)

    procs = [sim.spawn(node(p), name=f"node{p}") for p in range(n_procs)]
    sim.run_all(procs)

    merged = AlignmentQueue()
    for q in queues:
        merged.merge(q)
    alignments = merged.finalize(
        min_score=config.regions.admission_score,
        overlap_slack=config.regions.overlap_slack * scale,
        merge=True,
    )

    core_start = marks.get("core_start", 0.0)
    core_end = marks.get("core_end", sim.now)
    phases = PhaseTimes(
        init=core_start, core=core_end - core_start, term=sim.now - core_end
    )
    return StrategyResult(
        name="heuristic_block",
        n_procs=n_procs,
        nominal_size=(workload.nominal_rows, workload.nominal_cols),
        total_time=sim.now,
        phases=phases,
        stats=dsm.cluster_stats(),
        alignments=alignments,
        extras={"n_bands": n_bands, "n_blocks": n_blocks},
    )


def serial_blocked_time(workload: ScaledWorkload, cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Virtual time of the sequential blocked-kernel run (Table 4 'Serial')."""
    return (
        cost.node_startup_time
        + workload.nominal_cells * cost.blocked_cell_time
        + cost.node_teardown_time
    )
