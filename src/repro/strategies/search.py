"""One-query-vs-many-targets database search (the serving workload).

Every other pipeline in this repository compares one sequence *pair*; the
dominant real workload (SWAPHI's inter-task database search, ALAE's exact
database local alignment -- see PAPERS.md) is a query scanned against a
whole database of targets.  :func:`search_db` is that pipeline:

1. the database is packed into length buckets
   (:func:`repro.seq.pack_database`), each a padded code matrix;
2. each bucket is scanned by a :class:`repro.core.MultiSequenceWorkspace`,
   which advances all lanes per numpy call (batch axis = SIMD lane axis);
3. per-lane best scores feed a bounded :class:`TopK` heap keyed by
   ``(score, -index)``, so results are deterministic -- byte-identical to a
   sequential scan -- no matter how buckets are ordered or which worker
   scans them.

With a :class:`repro.parallel.AlignmentWorkerPool` the packed database is
published once through a shared-memory arena and buckets are dispatched
through a *dynamic* work queue: workers pull the next chunk when free, so a
skewed bucket cannot stall the rest of the pool (see ``pool.search``).

:func:`search_db_sequential` is the one-at-a-time
:class:`repro.core.KernelWorkspace` reference the batched path is verified
(and benchmarked) against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.engine import KernelWorkspace
from ..core.scoring import DEFAULT_SCORING, SCORE_DTYPE, Scoring
from ..core.topk import TopK
from ..obs import gcups, get_metrics, get_tracer, is_enabled
from ..obs.ledger import record_run
from ..obs.trace import Stopwatch
from ..plan import InlineExecutor, plan_search_buckets, search_blob
from ..plan.runtime import empty_search_stats
from ..seq.alphabet import encode
from ..seq.db import PackedDatabase, content_digest, pack_database, shard_database
from .cache import DEFAULT_CACHE, cache_key
from .prefilter import pooled_pruned_search, resolve_prefilter

__all__ = [
    "SearchConfig",
    "SearchHit",
    "SearchResult",
    "TopK",
    "search_db",
    "search_db_sequential",
    "sequential_best_score",
]


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of one database search.

    ``kernel`` selects the bucket scan: "classic" is the dense
    :class:`repro.core.MultiSequenceWorkspace`, "striped" the query-profile
    kernel of :mod:`repro.core.striped`.  Packing knobs left as ``None``
    resolve per kernel: the striped scan amortizes its per-plane dispatch
    over the lane axis, so it wants far wider buckets (4096 lanes, 50%
    padding) than the classic one (512 lanes, 15%).
    """

    top_k: int = 10
    max_lanes: int | None = None
    max_waste: float | None = None
    scoring: Scoring = DEFAULT_SCORING
    kernel: str = "classic"
    #: Exact score-bound pruning mode: "off", "composition" (length +
    #: composition tiers), "kmer" (all three tiers), or "auto" (kmer tiers,
    #: but disabled below :data:`repro.strategies.prefilter.AUTO_MIN_SEQUENCES`
    #: sequences where the bounds cost more than they save).  Pruning never
    #: changes rankings -- only which sequences pay for a DP scan.
    prefilter: str = "auto"
    #: Shard count.  ``1`` is the unsharded legacy layout; ``> 1`` deals the
    #: database round-robin into disjoint shards (:func:`repro.seq.db.shard_database`),
    #: scans each shard's tiles independently, and tournament-merges the
    #: per-shard top-k heaps -- the ranking stays bitwise identical on every
    #: backend.  On a pool the shard count may not exceed the worker count.
    n_shards: int = 1
    #: Consult (and populate) the process-wide content-addressed result
    #: cache (:data:`repro.strategies.cache.DEFAULT_CACHE`).  A hit skips
    #: planning, sharding and every DP tile.
    cache: bool = False

    @property
    def resolved_max_lanes(self) -> int:
        if self.max_lanes is not None:
            return self.max_lanes
        return 4096 if self.kernel == "striped" else 512

    @property
    def resolved_max_waste(self) -> float:
        if self.max_waste is not None:
            return self.max_waste
        return 0.5 if self.kernel == "striped" else 0.15


@dataclass(frozen=True)
class SearchHit:
    """One ranked database hit."""

    score: int
    index: int
    name: str
    length: int


@dataclass
class SearchResult:
    """Outcome of one query-vs-database search."""

    hits: list[SearchHit]
    n_sequences: int
    total_cells: int
    wall_seconds: float
    n_workers: int = 1
    backend: str = "batched"
    #: Bound tiers that ran ("off" when pruning was disabled or inactive).
    prefilter: str = "off"
    #: Sequences the admissible bounds proved out of the top-k (no DP scan).
    sequences_pruned: int = 0
    #: DP cells those pruned sequences would have cost.
    cells_skipped: int = 0
    #: Shards the database was dealt into (1 = unsharded).
    n_shards: int = 1
    #: True when this result was served from the content-addressed cache
    #: (no planning, no DP tiles -- ``wall_seconds`` is the probe time).
    cached: bool = False

    @property
    def gcups(self) -> float:
        """Effective throughput: geometric cells over wall time.

        ``total_cells`` stays the full query x database geometry even when
        pruning skipped most of it -- that is the point: skipped cells make
        the *effective* rate exceed the kernel's raw rate.
        """
        return gcups(self.total_cells, self.wall_seconds)

    @property
    def pruned_fraction(self) -> float:
        return self.sequences_pruned / self.n_sequences if self.n_sequences else 0.0

    def scores(self) -> list[tuple[int, int]]:
        """The ``(score, index)`` ranking (comparison-friendly form)."""
        return [(h.score, h.index) for h in self.hits]


def _as_packed(database, config: SearchConfig) -> PackedDatabase:
    if isinstance(database, PackedDatabase):
        return database
    return pack_database(
        database,
        max_lanes=config.resolved_max_lanes,
        max_waste=config.resolved_max_waste,
    )


def _hits(packed: PackedDatabase, ranked: list[tuple[int, int]]) -> list[SearchHit]:
    return [
        SearchHit(score, index, packed.names[index], int(packed.lengths[index]))
        for score, index in ranked
    ]


def search_db(
    query,
    database,
    config: SearchConfig | None = None,
    pool=None,
) -> SearchResult:
    """Best local-alignment score of ``query`` against every database record.

    ``database`` is a :class:`repro.seq.PackedDatabase` or any iterable of
    FASTA records / ``(name, codes)`` tuples (packed on the fly).  Pass an
    :class:`repro.parallel.AlignmentWorkerPool` as ``pool`` to fan buckets
    out over persistent workers; otherwise the scan runs in-process.
    """
    config = config or SearchConfig()
    if config.n_shards < 1:
        raise ValueError("n_shards must be positive")
    query = encode(query)
    packed = _as_packed(database, config)
    tiers = resolve_prefilter(config.prefilter, packed.n_sequences)
    key = digest = None
    if config.cache:
        # Probe *before* the tracer span and any planning: a hit must leave
        # zero tile spans behind -- its only cost is the probe itself.
        digest = content_digest(packed)
        key = cache_key(query, digest, config.scoring, config.top_k, tiers)
        with Stopwatch() as probe:
            hit = DEFAULT_CACHE.get(key)
        if hit is not None:
            hit.wall_seconds = probe.elapsed
            return hit
    cells = int(len(query)) * packed.total_residues
    tracer = get_tracer()
    with Stopwatch() as sw, tracer.span(
        "search_db",
        "phase",
        sequences=packed.n_sequences,
        buckets=len(packed.buckets),
        cells=cells,
        prefilter=",".join(tiers) or "off",
        shards=config.n_shards,
    ):
        if pool is None:
            shards = (
                shard_database(
                    packed,
                    config.n_shards,
                    max_lanes=config.resolved_max_lanes,
                    max_waste=config.resolved_max_waste,
                )
                if config.n_shards > 1
                else None
            )
            graph = plan_search_buckets(
                packed,
                len(query),
                top_k=config.top_k,
                kernel=config.kernel,
                prefilter=tiers,
                n_shards=config.n_shards,
                shards=shards,
            )
            executed = InlineExecutor().run(
                graph, query, search_blob(shards or packed), config.scoring
            )
            ranked = executed.hits
            stats = executed.extras.get("prefilter", empty_search_stats())
            n_workers = 1
        else:
            if tiers:
                ranked, stats = pooled_pruned_search(
                    query, packed, config, pool, tiers
                )
            else:
                ranked = pool.search(
                    query,
                    packed,
                    top_k=config.top_k,
                    scoring=config.scoring,
                    kernel=config.kernel,
                    n_shards=config.n_shards,
                )
                stats = empty_search_stats()
            n_workers = pool.n_workers
    if is_enabled():
        metrics = get_metrics()
        metrics.gauge("search_seconds").set(sw.elapsed)
        metrics.gauge("search_gcups").set(gcups(cells, sw.elapsed))
    record_run(
        "search-pool" if pool is not None else "search-inline",
        {
            "search_seconds": sw.elapsed,
            "search_gcups": gcups(cells, sw.elapsed),
        },
        config={
            "kernel": config.kernel,
            "top_k": config.top_k,
            "n_workers": n_workers,
            "sequences": packed.n_sequences,
            "buckets": len(packed.buckets),
            "query_bp": int(len(query)),
            "prefilter": ",".join(tiers) or "off",
            "sequences_pruned": stats["sequences_pruned"],
            "n_shards": config.n_shards,
            "cache": config.cache,
        },
    )
    result = SearchResult(
        hits=_hits(packed, ranked),
        n_sequences=packed.n_sequences,
        total_cells=cells,
        wall_seconds=sw.elapsed,
        n_workers=n_workers,
        backend=("striped" if config.kernel == "striped" else "batched")
        if pool is None
        else "pool",
        prefilter=",".join(tiers) or "off",
        sequences_pruned=stats["sequences_pruned"],
        cells_skipped=stats["cells_skipped"],
        n_shards=config.n_shards,
    )
    if key is not None:
        DEFAULT_CACHE.put(key, digest, result)
    return result


def sequential_best_score(query: np.ndarray, target: np.ndarray, scoring: Scoring) -> int:
    """Best local score via one pairwise :class:`KernelWorkspace` scan."""
    ws = KernelWorkspace(target, scoring)
    prev = np.zeros(len(target) + 1, dtype=SCORE_DTYPE)
    best = 0
    for ch in query:
        prev = ws.sw_row(prev, int(ch), out=prev)
        row_best = int(prev.max()) if prev.size else 0
        if row_best > best:
            best = row_best
    return best


def search_db_sequential(
    query,
    database,
    config: SearchConfig | None = None,
) -> SearchResult:
    """One-at-a-time reference scan (differential testing and benchmarking)."""
    config = config or SearchConfig()
    query = encode(query)
    packed = _as_packed(database, config)
    top = TopK(config.top_k)
    with Stopwatch() as sw:
        for bucket in packed.buckets:
            for lane in range(bucket.lanes):
                width = int(bucket.lengths[lane])
                score = sequential_best_score(
                    query, bucket.codes[lane, :width], config.scoring
                )
                top.push(score, int(bucket.indices[lane]))
    return SearchResult(
        hits=_hits(packed, top.ranked()),
        n_sequences=packed.n_sequences,
        total_cells=int(len(query)) * packed.total_residues,
        wall_seconds=sw.elapsed,
        n_workers=1,
        backend="sequential",
    )
