"""The paper's parallel strategies on the simulated DSM cluster."""

from .base import RegionSettings, ScaledWorkload, StrategyResult
from .blocked import BlockedConfig, compute_tile, run_blocked, serial_blocked_time
from .partition import (
    Tiling,
    balanced_band_size,
    band_heights,
    bounds_from_heights,
    chunk_widths,
    column_partition,
    explicit_tiling,
    split_even,
    tiling_from_multiplier,
)
from .column_store import ColumnStore, restart_band_from_store, save_preprocess_columns
from .hetero import HeteroConfig, SubCluster, hetero_serial_time, run_hetero
from .phase2 import Phase2Config, run_phase2, serial_phase2_time
from .preprocess import (
    BAND_SCHEMES,
    IO_MODES,
    PreprocessConfig,
    run_preprocess,
    serial_preprocess_time,
)
from .cache import DEFAULT_CACHE, SearchCache, cache_key
from .prefilter import (
    AUTO_MIN_SEQUENCES,
    PREFILTER_MODES,
    pooled_pruned_search,
    resolve_prefilter,
)
from .retrieval import InterestingRegion, interesting_regions, retrieve_alignments
from .search import (
    SearchConfig,
    SearchHit,
    SearchResult,
    TopK,
    search_db,
    search_db_sequential,
)
from .tuning import TuningResult, tune_blocking
from .runner import (
    MP_BACKENDS,
    STRATEGIES,
    STRATEGY_ALIASES,
    MpPipelineResult,
    PipelineResult,
    canonical_strategy,
    run_mp_pipeline,
    run_phase1,
    run_pipeline,
)
from .wavefront import WavefrontConfig, run_wavefront, serial_wavefront_time
from .wavefront_exact import ExactWavefrontConfig, exact_wavefront_alignments

__all__ = [
    "AUTO_MIN_SEQUENCES",
    "BAND_SCHEMES",
    "BlockedConfig",
    "ColumnStore",
    "DEFAULT_CACHE",
    "SearchCache",
    "ExactWavefrontConfig",
    "HeteroConfig",
    "IO_MODES",
    "MP_BACKENDS",
    "MpPipelineResult",
    "InterestingRegion",
    "PREFILTER_MODES",
    "Phase2Config",
    "PipelineResult",
    "PreprocessConfig",
    "RegionSettings",
    "STRATEGIES",
    "STRATEGY_ALIASES",
    "ScaledWorkload",
    "SearchConfig",
    "SearchHit",
    "SearchResult",
    "StrategyResult",
    "SubCluster",
    "Tiling",
    "TopK",
    "TuningResult",
    "WavefrontConfig",
    "balanced_band_size",
    "band_heights",
    "bounds_from_heights",
    "cache_key",
    "canonical_strategy",
    "chunk_widths",
    "column_partition",
    "compute_tile",
    "exact_wavefront_alignments",
    "explicit_tiling",
    "hetero_serial_time",
    "interesting_regions",
    "pooled_pruned_search",
    "resolve_prefilter",
    "run_blocked",
    "run_hetero",
    "run_mp_pipeline",
    "run_phase1",
    "run_phase2",
    "run_pipeline",
    "run_preprocess",
    "retrieve_alignments",
    "restart_band_from_store",
    "run_wavefront",
    "save_preprocess_columns",
    "search_db",
    "search_db_sequential",
    "serial_blocked_time",
    "serial_phase2_time",
    "serial_preprocess_time",
    "serial_wavefront_time",
    "split_even",
    "tiling_from_multiplier",
    "tune_blocking",
]
