"""Shared infrastructure of the three parallel strategies.

Workload scaling
----------------
The paper's largest experiment fills a 400k x 400k similarity matrix --
1.6*10^11 cells, days of compute even for vectorized kernels.  The simulated
strategies therefore accept a :class:`ScaledWorkload`: the kernels run on
*actual* sequences of ``n`` bases while the virtual clock is charged as if
each actual row were ``scale`` nominal rows (and each cell ``scale**2``
nominal cells).  ``scale=1`` (tests, examples) is exact simulation; the
benchmarks use the scale factors recorded per experiment in EXPERIMENTS.md.
The aggregation is faithful for pipeline timing because steady-state
throughput depends only on per-stage totals, and fill/drain distortion is
O(scale * P / n_nominal) (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.alignment import LocalAlignment
from ..core.regions import RegionConfig
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..plan.result import StrategyResult
from ..seq.alphabet import encode

__all__ = ["RegionSettings", "ScaledWorkload", "StrategyResult"]


@dataclass
class ScaledWorkload:
    """A sequence pair plus the nominal-size scaling factor."""

    s: np.ndarray
    t: np.ndarray
    scale: int = 1
    scoring: Scoring = DEFAULT_SCORING

    def __post_init__(self) -> None:
        self.s = encode(self.s)
        self.t = encode(self.t)
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if len(self.s) == 0 or len(self.t) == 0:
            raise ValueError("sequences must be non-empty")

    @property
    def rows(self) -> int:
        return len(self.s)

    @property
    def cols(self) -> int:
        return len(self.t)

    @property
    def nominal_rows(self) -> int:
        return self.rows * self.scale

    @property
    def nominal_cols(self) -> int:
        return self.cols * self.scale

    @property
    def nominal_cells(self) -> int:
        return self.nominal_rows * self.nominal_cols

    def scale_alignment(self, alignment: LocalAlignment) -> LocalAlignment:
        """Project an actual-coordinate alignment into nominal coordinates."""
        if self.scale == 1:
            return alignment
        return LocalAlignment(
            score=alignment.score,
            s_start=alignment.s_start * self.scale,
            s_end=alignment.s_end * self.scale,
            t_start=alignment.t_start * self.scale,
            t_end=alignment.t_end * self.scale,
        )


@dataclass(frozen=True)
class RegionSettings:
    """How phase 1 turns DP rows into queue entries at cluster scale."""

    threshold: int = 35
    col_tolerance: int = 16
    row_tolerance: int = 16
    min_score: int | None = None  # queue admission; defaults to threshold
    overlap_slack: int = 8

    def region_config(self) -> RegionConfig:
        return RegionConfig(
            threshold=self.threshold,
            col_tolerance=self.col_tolerance,
            row_tolerance=self.row_tolerance,
        )

    @property
    def admission_score(self) -> int:
        return self.threshold if self.min_score is None else self.min_score
