"""Compatibility shim: the decomposition helpers moved to :mod:`repro.plan`.

The planners (:mod:`repro.plan.planners`) are the primary consumers of the
partition geometry, so the implementation now lives next to them in
``repro/plan/partition.py``.  Import from here or from ``repro.plan`` --
both names stay supported.
"""

from __future__ import annotations

from ..plan.partition import (
    Tiling,
    balanced_band_size,
    band_heights,
    bounds_from_heights,
    chunk_widths,
    column_partition,
    explicit_tiling,
    split_even,
    tiling_from_multiplier,
)

__all__ = [
    "Tiling",
    "balanced_band_size",
    "band_heights",
    "bounds_from_heights",
    "chunk_widths",
    "column_partition",
    "explicit_tiling",
    "split_even",
    "tiling_from_multiplier",
]
