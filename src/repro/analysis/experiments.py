"""Canned reproductions of every table and figure in the paper.

Each ``exp_*`` function runs the simulated cluster with the calibrated cost
model and returns an :class:`ExperimentReport` whose rows place the measured
value next to the paper's reported value.  The benchmark harness
(``benchmarks/``) and the ``genomedsm`` CLI both call into this module, so
the experiment definitions live in exactly one place.

Workload scaling: the *nominal* sizes always match the paper; the *actual*
sequences the kernels process are smaller by the per-experiment scale
factors below (see DESIGN.md and EXPERIMENTS.md).  Set
``REPRO_BENCH_PROFILE=fast`` to halve the actual sizes again for quick runs.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..core import LocalAlignment
from ..core.exact_linear import (
    predicted_necessary_fraction,
    reverse_scan,
)
from ..blast import blastn
from ..seq import dotplot, genome_pair, random_dna
from ..strategies import (
    BlockedConfig,
    Phase2Config,
    PreprocessConfig,
    RegionSettings,
    ScaledWorkload,
    WavefrontConfig,
    run_blocked,
    run_phase2,
    run_preprocess,
    run_wavefront,
    serial_blocked_time,
    serial_phase2_time,
    serial_preprocess_time,
    serial_wavefront_time,
)
from .tables import ascii_table, render_bar

# ---------------------------------------------------------------------------
# Paper-reported values (transcribed from the tables/figures)
# ---------------------------------------------------------------------------

#: Table 1 -- total times (s) of the heuristic strategy: serial, 2, 4, 8.
PAPER_TABLE1 = {
    15: (296.0, 283.18, 202.18, 181.29),
    50: (3461.0, 2884.15, 1669.53, 1107.02),
    80: (7967.0, 6094.18, 3370.40, 2162.82),
    150: (24107.0, 19522.95, 10377.89, 5991.79),
    400: (175295.0, 141840.98, 72770.99, 38206.84),
}

#: Table 3 -- 8-processor 50k times under square blocking multipliers.
PAPER_TABLE3 = {1: 732.79, 2: 459.80, 3: 394.59, 4: 368.15, 5: 363.13}

#: Table 4 -- blocked strategy: size -> (bands, blocks, serial, 2p, 4p, 8p).
PAPER_TABLE4 = {
    8: (40, 40, 57.18, 38.59, 21.18, 12.55),
    15: (40, 40, 266.51, 129.22, 67.42, 36.51),
    50: (40, 25, 2620.64, 1352.76, 701.95, 363.13),
}

#: Fig. 15 -- phase-2 speed-ups the paper quotes explicitly.
PAPER_FIG15 = {(100, 8): 5.33, (1000, 8): 7.57, (5000, 8): 6.80}

#: Table 2 -- best-alignment coordinates (begin/end) GenomeDSM vs BlastN.
PAPER_TABLE2 = [
    ("Alignment 1", (39109, 55559), (39839, 56252), (39099, 55549), (39196, 55646)),
    ("Alignment 2", (39475, 48905), (39755, 49188), (39522, 48952), (39755, 49005)),
    ("Alignment 3", (28637, 47919), (28753, 48035), (28667, 47949), (28754, 48036)),
]


@dataclass
class ExperimentReport:
    """One reproduced table/figure: rows of measured-vs-paper values."""

    ident: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    series: dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.ident}: {self.title} =="]
        parts.append(ascii_table(self.headers, self.rows))
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Workload profiles
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchProfile:
    """Actual sequence length and scale factor per nominal size (kBP)."""

    name: str
    table1: dict  # kbp -> (actual_len, scale)
    blocked: dict
    preprocess: dict

    def workload(self, family: str, kbp: int, n_regions: int = 0, rng: int = 1234) -> ScaledWorkload:
        actual, scale = getattr(self, family)[kbp]
        gp = _cached_pair(actual, n_regions, rng)
        return ScaledWorkload(gp.s, gp.t, scale=scale)


DEFAULT_PROFILE = BenchProfile(
    name="default",
    table1={15: (3000, 5), 50: (5000, 10), 80: (4000, 20), 150: (5000, 30), 400: (8000, 50)},
    blocked={8: (2000, 4), 15: (3000, 5), 50: (5000, 10)},
    preprocess={16: (2000, 8), 40: (2000, 20), 80: (2000, 40)},
)

FAST_PROFILE = BenchProfile(
    name="fast",
    table1={15: (1500, 10), 50: (2500, 20), 80: (2000, 40), 150: (2500, 60), 400: (4000, 100)},
    blocked={8: (1000, 8), 15: (1500, 10), 50: (2500, 20)},
    preprocess={16: (1000, 16), 40: (1000, 40), 80: (1000, 80)},
)


def active_profile() -> BenchProfile:
    """The profile selected by ``REPRO_BENCH_PROFILE`` (default/fast)."""
    return FAST_PROFILE if os.environ.get("REPRO_BENCH_PROFILE") == "fast" else DEFAULT_PROFILE


@lru_cache(maxsize=32)
def _cached_pair(actual: int, n_regions: int, rng: int):
    region_length = max(60, actual // 40)
    return genome_pair(
        actual, actual, n_regions=n_regions, region_length=region_length,
        mutation_rate=0.04, rng=rng,
    )


PROC_COUNTS = (2, 4, 8)


# ---------------------------------------------------------------------------
# Table 1 / Fig. 9 / Fig. 10 -- the heuristic (non-blocked) strategy
# ---------------------------------------------------------------------------

@lru_cache(maxsize=4)
def _table1_results(profile_name: str):
    profile = FAST_PROFILE if profile_name == "fast" else DEFAULT_PROFILE
    out = {}
    for kbp in PAPER_TABLE1:
        wl = profile.workload("table1", kbp)
        out[(kbp, 1)] = serial_wavefront_time(wl)
        for procs in PROC_COUNTS:
            out[(kbp, procs)] = run_wavefront(wl, WavefrontConfig(n_procs=procs))
    return out


def exp_table1(profile: BenchProfile | None = None) -> ExperimentReport:
    """Table 1: total execution times of the heuristic strategy."""
    profile = profile or active_profile()
    results = _table1_results(profile.name)
    report = ExperimentReport(
        ident="table1",
        title="Total execution times (s), heuristic strategy",
        headers=[
            "Size (n x n)", "Serial", "paper", "2 proc", "paper",
            "4 proc", "paper", "8 proc", "paper",
        ],
    )
    for kbp, paper in PAPER_TABLE1.items():
        row = [f"{kbp}K x {kbp}K", results[(kbp, 1)], paper[0]]
        for i, procs in enumerate(PROC_COUNTS):
            row += [results[(kbp, procs)].total_time, paper[i + 1]]
        report.rows.append(row)
    report.notes.append(
        "virtual times from the calibrated cluster simulator; paper values "
        "from Table 1"
    )
    return report


def exp_fig9(profile: BenchProfile | None = None) -> ExperimentReport:
    """Fig. 9: absolute speed-ups of the heuristic strategy."""
    profile = profile or active_profile()
    results = _table1_results(profile.name)
    report = ExperimentReport(
        ident="fig9",
        title="Absolute speed-ups, heuristic strategy",
        headers=["Size", "procs", "speed-up", "paper", "efficiency"],
    )
    for kbp, paper in PAPER_TABLE1.items():
        serial = results[(kbp, 1)]
        for i, procs in enumerate(PROC_COUNTS):
            measured = serial / results[(kbp, procs)].total_time
            paper_speedup = paper[0] / paper[i + 1]
            report.rows.append(
                [f"{kbp}K", procs, measured, paper_speedup, measured / procs]
            )
        report.series[kbp] = [
            (p, serial / results[(kbp, p)].total_time) for p in PROC_COUNTS
        ]
    from .charts import speedup_chart

    report.series["chart"] = speedup_chart(
        {f"{kbp}K": report.series[kbp] for kbp in PAPER_TABLE1}
    )
    return report


def exp_fig10(profile: BenchProfile | None = None) -> ExperimentReport:
    """Fig. 10: execution-time breakdown at 8 processors."""
    profile = profile or active_profile()
    results = _table1_results(profile.name)
    report = ExperimentReport(
        ident="fig10",
        title="Execution time breakdown (8 processors, relative)",
        headers=["Size", "computation", "communication", "lock+cv", "barrier", "bar"],
    )
    for kbp in PAPER_TABLE1:
        agg = results[(kbp, 8)].stats.aggregate_breakdown()
        fr = agg.fractions()
        report.rows.append(
            [
                f"{kbp}K",
                f"{fr['computation']:.0%}",
                f"{fr['communication']:.0%}",
                f"{fr['lock_cv']:.0%}",
                f"{fr['barrier']:.0%}",
                render_bar(fr["computation"], width=20),
            ]
        )
        report.series[kbp] = fr
    report.notes.append(
        "paper's qualitative claim: small sizes are dominated by "
        "synchronization, large sizes by computation"
    )
    return report


# ---------------------------------------------------------------------------
# Table 2 -- GenomeDSM vs BlastN coordinates
# ---------------------------------------------------------------------------

def exp_table2(profile: BenchProfile | None = None) -> ExperimentReport:
    """Table 2: best-alignment coordinates, DSM strategy vs BLAST-like.

    The paper compares two real 50 kBP mitochondrial genomes; offline we
    plant three strong homologous regions into a synthetic pair and report
    both programs' coordinates for the three best alignments, which
    reproduces the observation that "the results obtained by both programs
    are very close but not the same".
    """
    gp = _cached_pair(5000, 3, rng=2020)
    wl = ScaledWorkload(gp.s, gp.t)
    dsm_result = run_blocked(
        wl, BlockedConfig(n_procs=8, regions=RegionSettings(threshold=40))
    )
    blast_result = blastn(gp.s, gp.t)
    report = ExperimentReport(
        ident="table2",
        title="GenomeDSM vs BlastN best alignments (synthetic 5 kBP pair)",
        headers=["Alignment", "", "GenomeDSM", "BlastN", "planted"],
    )
    dsm_top = dsm_result.alignments
    blast_top = [h.alignment for h in blast_result.hits]
    planted = sorted(
        gp.regions, key=lambda r: -(r.s_end - r.s_start)
    )

    def nearest(cands, ref):
        return min(
            cands,
            key=lambda a: abs(a.s_start - ref.s_start) + abs(a.t_start - ref.t_start),
            default=None,
        )

    for k, ref in enumerate(planted[:3]):
        dsm = nearest(dsm_top, ref)
        bl = nearest(blast_top, ref)
        for which, getter in (("Begin", lambda a: a.paper_coordinates()[0]),
                              ("End", lambda a: a.paper_coordinates()[1])):
            report.rows.append(
                [
                    f"Alignment {k + 1}" if which == "Begin" else "",
                    which,
                    getter(dsm) if dsm else "-",
                    getter(bl) if bl else "-",
                    (ref.s_start + 1, ref.t_start + 1)
                    if which == "Begin"
                    else (ref.s_end, ref.t_end),
                ]
            )
    report.notes.append(
        "paper Table 2 rows (real genomes): "
        + "; ".join(
            f"{name}: DSM {b1}->{e1} vs BlastN {b2}->{e2}"
            for name, b1, e1, b2, e2 in PAPER_TABLE2[:1]
        )
        + " ... (coordinates close but not identical, as here)"
    )
    return report


# ---------------------------------------------------------------------------
# Table 3 / Table 4 / Fig. 12 / Fig. 13 -- the blocked strategy
# ---------------------------------------------------------------------------

def exp_table3(profile: BenchProfile | None = None) -> ExperimentReport:
    """Table 3: blocking-multiplier sweep at 8 processors, 50 kBP."""
    profile = profile or active_profile()
    wl = profile.workload("blocked", 50)
    report = ExperimentReport(
        ident="table3",
        title="50K x 50K, 8 processors: blocking multiplier sweep",
        headers=["Blocking factor", "Time (s)", "paper", "gain vs 1x1 (%)", "paper (%)"],
    )
    times = {}
    for m in (1, 2, 3, 4, 5):
        times[m] = run_blocked(wl, BlockedConfig(n_procs=8, multiplier=(m, m))).total_time
    for m in (1, 2, 3, 4, 5):
        gain = (times[1] / times[m] - 1.0) * 100
        paper_gain = (PAPER_TABLE3[1] / PAPER_TABLE3[m] - 1.0) * 100
        report.rows.append([f"{m} x {m}", times[m], PAPER_TABLE3[m], gain, paper_gain])
    report.series["times"] = times
    return report


@lru_cache(maxsize=4)
def _table4_results(profile_name: str):
    profile = FAST_PROFILE if profile_name == "fast" else DEFAULT_PROFILE
    out = {}
    for kbp, (bands, blocks, *_paper) in PAPER_TABLE4.items():
        wl = profile.workload("blocked", kbp)
        out[(kbp, 1)] = serial_blocked_time(wl)
        for procs in PROC_COUNTS:
            out[(kbp, procs)] = run_blocked(
                wl, BlockedConfig(n_procs=procs, n_bands=bands, n_blocks=blocks)
            )
    return out


def exp_table4_fig12(profile: BenchProfile | None = None) -> ExperimentReport:
    """Table 4 + Fig. 12: blocked-strategy times and speed-ups."""
    profile = profile or active_profile()
    results = _table4_results(profile.name)
    report = ExperimentReport(
        ident="table4_fig12",
        title="Blocked strategy: execution times (s) and speed-ups",
        headers=["Size", "Bands", "Serial", "paper"]
        + [h for p in PROC_COUNTS for h in (f"{p}p", "paper", f"su{p}", "paper su")],
    )
    for kbp, (bands, blocks, serial_paper, *paper_times) in PAPER_TABLE4.items():
        serial = results[(kbp, 1)]
        row = [f"{kbp}K x {kbp}K", f"{bands} x {blocks}", serial, serial_paper]
        for i, procs in enumerate(PROC_COUNTS):
            t = results[(kbp, procs)].total_time
            row += [t, paper_times[i], serial / t, serial_paper / paper_times[i]]
        report.rows.append(row)
        report.series[kbp] = [(p, serial / results[(kbp, p)].total_time) for p in PROC_COUNTS]
    from .charts import speedup_chart

    report.series["chart"] = speedup_chart(
        {f"{kbp}K": report.series[kbp] for kbp in PAPER_TABLE4}
    )
    return report


def exp_fig13(profile: BenchProfile | None = None) -> ExperimentReport:
    """Fig. 13: 8-processor blocked vs non-blocked vs serial times."""
    profile = profile or active_profile()
    t1 = _table1_results(profile.name)
    t4 = _table4_results(profile.name)
    report = ExperimentReport(
        ident="fig13",
        title="8-processor execution times: blocking vs no blocking",
        headers=["Size", "serial (no block)", "8p no block", "8p block", "block gain"],
    )
    for kbp in (15, 50):
        no_block = t1[(kbp, 8)].total_time
        block = t4[(kbp, 8)].total_time
        report.rows.append(
            [f"{kbp}K x {kbp}K", t1[(kbp, 1)], no_block, block, no_block / block]
        )
    report.notes.append(
        "paper: 50K with 8 processors took 1362.00 s without blocking vs "
        "313.13 s with blocking (the 304% improvement quoted in Section 1)"
    )
    return report


# ---------------------------------------------------------------------------
# Fig. 14 -- similar-region dot plot
# ---------------------------------------------------------------------------

def exp_fig14(profile: BenchProfile | None = None) -> ExperimentReport:
    """Fig. 14: dot plot of the similar regions between two genomes."""
    gp = genome_pair(
        5000, 5000, n_regions=12, region_length=120, mutation_rate=0.05, rng=99,
        min_separation=250,
    )
    wl = ScaledWorkload(gp.s, gp.t)
    result = run_blocked(wl, BlockedConfig(n_procs=8, regions=RegionSettings(threshold=30)))
    plot = dotplot(
        [a.region for a in result.alignments], len(gp.s), len(gp.t), rows=24, cols=48
    )
    report = ExperimentReport(
        ident="fig14",
        title="Similar regions between the two genomes (dot plot)",
        headers=["metric", "value"],
        rows=[
            ["regions found", len(result.alignments)],
            ["regions planted", len(gp.regions)],
            ["plot", ""],
        ],
        notes=["paper: 123 similar regions plotted for the 50 kBP pair"],
    )
    report.series["plot"] = plot.render()
    report.series["regions"] = [a.region for a in result.alignments]
    return report


# ---------------------------------------------------------------------------
# Fig. 15 / Fig. 16 -- phase 2
# ---------------------------------------------------------------------------

def _phase2_workload(n_pairs: int, rng: int = 7):
    """Synthetic phase-2 queue: sizes shrink as the minimal score drops.

    The paper generates more pairs by lowering the minimal-score parameter,
    which admits smaller similar regions; mean subsequence size therefore
    falls with the pair count (253 BP at the 123-region setting)."""
    gen = np.random.default_rng(rng)
    mean = 253.0 * (123.0 / n_pairs) ** 0.4
    sizes = np.clip(gen.lognormal(math.log(mean), 0.6, n_pairs), 16, 4000).astype(int)
    seq_len = 8000
    s = random_dna(seq_len, gen)
    t = random_dna(seq_len, gen)
    regions = []
    for size in sizes:
        size = int(min(size, seq_len - 1))
        s0 = int(gen.integers(0, seq_len - size))
        t0 = int(gen.integers(0, seq_len - size))
        regions.append(LocalAlignment(10, s0, s0 + size, t0, t0 + size))
    return s, t, regions


def exp_fig15(profile: BenchProfile | None = None) -> ExperimentReport:
    """Fig. 15: phase-2 speed-ups for varying numbers of pairs."""
    report = ExperimentReport(
        ident="fig15",
        title="Phase-2 speed-ups (scattered mapping of global alignments)",
        headers=["pairs", "2p", "4p", "8p", "paper 8p"],
    )
    for n_pairs in (100, 1000, 2000, 3000, 4000, 5000):
        s, t, regions = _phase2_workload(n_pairs)
        serial = serial_phase2_time(regions)
        row = [n_pairs]
        series = []
        for procs in PROC_COUNTS:
            res = run_phase2(s, t, regions, Phase2Config(n_procs=procs, render=False))
            su = serial / res.total_time
            row.append(su)
            series.append((procs, su))
        row.append(PAPER_FIG15.get((n_pairs, 8), None))
        report.rows.append(row)
        report.series[n_pairs] = series
    report.notes.append(
        "pair sizes shrink as the pair count grows (lower minimal score), "
        "reproducing the paper's dip at 5000 pairs"
    )
    return report


def exp_fig16(profile: BenchProfile | None = None) -> ExperimentReport:
    """Fig. 16: rendered global alignments of two phase-1 subsequences."""
    from ..strategies import run_pipeline

    gp = genome_pair(2000, 2000, n_regions=2, region_length=90, mutation_rate=0.06, rng=123)
    result = run_pipeline(gp.s, gp.t, strategy="heuristic_block", n_procs=4)
    records = result.best_records(2)
    report = ExperimentReport(
        ident="fig16",
        title="Global alignment of two subsequences generated in phase 1",
        headers=["record", "similarity", "identity", "span"],
    )
    for i, rec in enumerate(records):
        report.rows.append(
            [
                i + 1,
                rec.similarity,
                f"{rec.alignment.identity:.0%}",
                f"({rec.initial_x},{rec.initial_y})->({rec.final_x},{rec.final_y})",
            ]
        )
        report.series[i + 1] = rec.render()
    return report


# ---------------------------------------------------------------------------
# Figs. 18-20 -- the pre_process strategy
# ---------------------------------------------------------------------------

#: The configuration sweep averaged in Fig. 18 (blocking x scheme, no I/O).
_FIG18_CONFIGS = (
    ("balanced", 1000),
    ("fixed", 1000),
    ("equal", 1000),
    ("balanced", 4000),
    ("fixed", 4000),
    ("equal", 4000),
)


@lru_cache(maxsize=4)
def _fig18_results(profile_name: str):
    profile = FAST_PROFILE if profile_name == "fast" else DEFAULT_PROFILE
    out = {}
    for kbp in (16, 40, 80):
        wl = profile.workload("preprocess", kbp)
        for scheme, bsize in _FIG18_CONFIGS:
            serial_cfg = PreprocessConfig(
                n_procs=1, band_scheme=scheme, band_size=bsize, chunk_size=bsize
            )
            out[(kbp, 1, scheme, bsize)] = serial_preprocess_time(wl, serial_cfg)
            for procs in PROC_COUNTS:
                cfg = PreprocessConfig(
                    n_procs=procs, band_scheme=scheme, band_size=bsize, chunk_size=bsize
                )
                out[(kbp, procs, scheme, bsize)] = run_preprocess(wl, cfg).phases.core
    return out


def exp_fig18(profile: BenchProfile | None = None) -> ExperimentReport:
    """Fig. 18: pre_process speed-ups on average and best core times."""
    profile = profile or active_profile()
    results = _fig18_results(profile.name)
    report = ExperimentReport(
        ident="fig18",
        title="pre_process speed-ups over the configuration sweep",
        headers=["Size", "procs", "avg-time speed-up", "best-time speed-up", "ideal"],
    )
    for kbp in (16, 40, 80):
        serials = [results[(kbp, 1, s, b)] for s, b in _FIG18_CONFIGS]
        for procs in PROC_COUNTS:
            times = [results[(kbp, procs, s, b)] for s, b in _FIG18_CONFIGS]
            avg_speedup = (sum(serials) / len(serials)) / (sum(times) / len(times))
            best_speedup = min(serials) / min(times)
            report.rows.append([f"{kbp}K", procs, avg_speedup, best_speedup, procs])
        report.series[kbp] = {
            procs: (sum(results[(kbp, 1, s, b)] for s, b in _FIG18_CONFIGS) / len(_FIG18_CONFIGS))
            / (sum(results[(kbp, procs, s, b)] for s, b in _FIG18_CONFIGS) / len(_FIG18_CONFIGS))
            for procs in PROC_COUNTS
        }
    report.notes.append("paper: speed-ups roughly 75% (average) to 80% (best) of linear")
    return report


def exp_fig19(profile: BenchProfile | None = None) -> ExperimentReport:
    """Fig. 19: effect of the blocking options on pre_process run times."""
    profile = profile or active_profile()
    results = _fig18_results(profile.name)
    report = ExperimentReport(
        ident="fig19",
        title="Effect of blocking options on pre_process core times (s)",
        headers=["procs/size"] + [f"{s} {b // 1000}K" for s, b in _FIG18_CONFIGS],
    )
    for procs in (1,) + PROC_COUNTS:
        for kbp in (16, 40, 80):
            row = [f"{procs}p/{kbp}K"]
            for scheme, bsize in _FIG18_CONFIGS:
                row.append(results[(kbp, procs, scheme, bsize)])
            report.rows.append(row)
    report.notes.append(
        "paper: sequential 'equal' runs ~20% slower (cache locality); "
        "4K blocking starves processors on the 16K sequence"
    )
    return report


def exp_fig20(profile: BenchProfile | None = None) -> ExperimentReport:
    """Fig. 20: effect of the I/O mode on pre_process run times (1K blocks)."""
    profile = profile or active_profile()
    report = ExperimentReport(
        ident="fig20",
        title="Effect of I/O options on pre_process core times (s)",
        headers=["procs/size", "no IO", "immediate IO", "deferred IO", "term (def.)"],
    )
    for procs in (1,) + PROC_COUNTS:
        for kbp in (16, 40, 80):
            wl = profile.workload("preprocess", kbp)
            row = [f"{procs}p/{kbp}K"]
            deferred_term = None
            for mode in ("none", "immediate", "deferred"):
                cfg = PreprocessConfig(
                    n_procs=procs, band_size=1000, chunk_size=1000,
                    save_interleave=1000, io_mode=mode,
                )
                res = run_preprocess(wl, cfg)
                row.append(res.phases.core)
                if mode == "deferred":
                    deferred_term = res.phases.term
            row.append(deferred_term)
            report.rows.append(row)
    report.notes.append(
        "paper: saving columns at these frequencies has little effect; the "
        "NFS buffer cache already provides deferred I/O"
    )
    return report


# ---------------------------------------------------------------------------
# Section 6 -- exact space reduction
# ---------------------------------------------------------------------------

def exp_sec6(profile: BenchProfile | None = None) -> ExperimentReport:
    """Section 6 (Eqs. 2-3): necessary fraction of the reverse n' x n' corner."""
    report = ExperimentReport(
        ident="sec6",
        title="Exact strategy: computed fraction of the reverse corner",
        headers=["n'", "computed cells", "naive n'^2", "measured fraction", "predicted", "paper"],
    )
    for n in (120, 240, 480, 960):
        seq = random_dna(n, rng=n)
        scan = reverse_scan(seq, seq, n)  # identical pair: worst-case diagonal
        predicted = predicted_necessary_fraction(n)
        report.rows.append(
            [n, scan.cells_computed, n * n, scan.computed_fraction, predicted, "~30%"]
        )
    report.notes.append(
        "paper: 'the necessary space (worst-case) of the whole n' x n'-matrix "
        "is approximately 30%'"
    )
    return report


#: Registry used by the CLI and the benchmark harness.
ALL_EXPERIMENTS = {
    "table1": exp_table1,
    "fig9": exp_fig9,
    "fig10": exp_fig10,
    "table2": exp_table2,
    "table3": exp_table3,
    "table4_fig12": exp_table4_fig12,
    "fig13": exp_fig13,
    "fig14": exp_fig14,
    "fig15": exp_fig15,
    "fig16": exp_fig16,
    "fig18": exp_fig18,
    "fig19": exp_fig19,
    "fig20": exp_fig20,
    "sec6": exp_sec6,
}
