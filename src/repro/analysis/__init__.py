"""Result analysis: speed-ups, table rendering, canned paper experiments."""

from .experiments import (
    ALL_EXPERIMENTS,
    DEFAULT_PROFILE,
    FAST_PROFILE,
    BenchProfile,
    ExperimentReport,
    active_profile,
)
from .charts import bar_group, line_chart, speedup_chart
from .report import run_and_export, to_csv, to_markdown, write_report
from .speedup import SpeedupCurve, amdahl_bound
from .tables import ascii_table, format_value, render_bar

__all__ = [
    "ALL_EXPERIMENTS",
    "BenchProfile",
    "DEFAULT_PROFILE",
    "ExperimentReport",
    "FAST_PROFILE",
    "SpeedupCurve",
    "active_profile",
    "amdahl_bound",
    "ascii_table",
    "bar_group",
    "line_chart",
    "format_value",
    "render_bar",
    "run_and_export",
    "speedup_chart",
    "to_csv",
    "to_markdown",
    "write_report",
]
