"""Plain-text table rendering for the benchmark harness.

Every experiment prints its rows in the same layout the paper's tables and
figure captions use, with the paper's reported value next to the measured
one so the shape comparison is immediate.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_value(value) -> str:
    """Human formatting: floats get 2 decimals, large floats none."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table with a header rule."""
    str_rows = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    rule = "-+-".join("-" * w for w in widths)
    return "\n".join([line(headers), rule] + [line(r) for r in str_rows])


def render_bar(fraction: float, width: int = 40, fill: str = "#") -> str:
    """A single text bar for breakdown/figure-style output."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    n = round(fraction * width)
    return fill * n + "." * (width - n)
