"""Exporting experiment reports: Markdown, CSV, and a combined run summary.

The benchmark harness prints plain-text tables; downstream consumers (a
paper appendix, a spreadsheet, CI artifacts) want Markdown and CSV.  This
module renders any :class:`repro.analysis.experiments.ExperimentReport`
into those formats and can materialise a whole run directory.
"""

from __future__ import annotations

import csv
import io
import os
from pathlib import Path
from typing import Iterable

from .experiments import ALL_EXPERIMENTS, BenchProfile, ExperimentReport
from .tables import format_value


def to_markdown(report: ExperimentReport) -> str:
    """GitHub-flavoured Markdown table for one report."""
    lines = [f"### {report.ident}: {report.title}", ""]
    lines.append("| " + " | ".join(report.headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in report.headers) + "|")
    for row in report.rows:
        lines.append("| " + " | ".join(format_value(v) for v in row) + " |")
    for note in report.notes:
        lines.append("")
        lines.append(f"> {note}")
    for key, value in report.series.items():
        if isinstance(value, str):
            lines += ["", f"```  # {key}", value, "```"]
    return "\n".join(lines) + "\n"


def to_csv(report: ExperimentReport) -> str:
    """CSV (header row + data rows) for one report."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(report.headers)
    for row in report.rows:
        writer.writerow([format_value(v) for v in row])
    return buffer.getvalue()


def write_report(report: ExperimentReport, directory: str | os.PathLike[str]) -> list[Path]:
    """Write ``<ident>.md`` and ``<ident>.csv``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    md = directory / f"{report.ident}.md"
    md.write_text(to_markdown(report), encoding="utf-8")
    csv_path = directory / f"{report.ident}.csv"
    csv_path.write_text(to_csv(report), encoding="utf-8")
    return [md, csv_path]


def run_and_export(
    names: Iterable[str],
    directory: str | os.PathLike[str],
    profile: BenchProfile | None = None,
) -> list[ExperimentReport]:
    """Run the named experiments and write all their artifacts.

    Also writes ``SUMMARY.md`` linking every exported report.
    """
    directory = Path(directory)
    reports = []
    for name in names:
        if name not in ALL_EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {name!r}; available: {', '.join(ALL_EXPERIMENTS)}"
            )
        report = ALL_EXPERIMENTS[name](profile)
        write_report(report, directory)
        reports.append(report)
    summary = ["# Reproduction run summary", ""]
    for report in reports:
        summary.append(f"- [{report.ident}]({report.ident}.md) — {report.title}")
    (directory / "SUMMARY.md").write_text("\n".join(summary) + "\n", encoding="utf-8")
    return reports
