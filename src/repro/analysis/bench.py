"""Deterministic kernel benchmark suite behind ``genomedsm bench kernels``.

Regenerates every entry of ``BENCH_kernels.json`` from fixed seeds: the
4 kBP pairwise scan (naive -> vectorized -> workspace), the batched row
block, the 1,000-sequence database search through both the classic batched
kernel and the striped query-profile kernel of :mod:`repro.core.striped`,
the score-bound-pruned search over a planted-homolog database
(:mod:`repro.strategies.prefilter`), and the pool-vs-spawn wavefront
repeat.  The same workloads and timing
discipline as the ``benchmarks/`` pytest suite (min-of-rounds after a
warmup call, cell counts cross-checked against the ``repro.obs`` metrics
registry), so numbers regenerated here are comparable to the committed
baseline on the same machine.

Every entry carries ``kernel``/``dtype``/``lane_mode`` fields naming the
code path it measured, and the file is stamped with a ``_machine`` record
(platform, python, numpy) so cross-machine diffs are self-explaining.
``quick=True`` shrinks the workloads for CI smoke runs; the resulting
numbers exercise the same code paths but are *not* comparable to the
committed baseline.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from ..core import KernelWorkspace, StripedMultiWorkspace, initial_row
from ..core.kernels import SCORE_DTYPE, sw_row_naive
from ..core.scoring import DEFAULT_SCORING, Scoring
from ..obs import gcups, observed
from ..seq import (
    FastaRecord,
    biased_dna,
    genome_pair,
    mutate,
    pack_database,
    random_dna,
    synthetic_database,
)
from ..strategies import SearchConfig, search_db, search_db_sequential

__all__ = ["record_bench", "run_kernel_bench", "write_bench"]


def _seed_sw_row(prev, s_char, t_codes, scoring=DEFAULT_SCORING):
    """The historical pre-workspace ``sw_row``, kept verbatim as the
    vectorized baseline: per-call ``np.where`` substitution lookup, fresh
    candidate/ramp/int64 buffers on every row."""
    sub = np.where(t_codes == s_char, np.int32(scoring.match), np.int32(scoring.mismatch))
    cand = np.empty(prev.size, dtype=SCORE_DTYPE)
    cand[0] = 0
    np.maximum(prev[:-1] + sub, prev[1:] + SCORE_DTYPE(scoring.gap), out=cand[1:])
    np.maximum(cand, 0, out=cand)
    g = -scoring.gap
    idx = np.arange(cand.size, dtype=np.int64)
    x = cand.astype(np.int64)
    x += g * idx
    np.maximum.accumulate(x, out=x)
    x -= g * idx
    return x.astype(SCORE_DTYPE)


def _best_of(fn, rounds: int) -> float:
    """Min-of-rounds wall time after one untimed warmup call."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _machine(quick: bool) -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "quick": quick,
    }


def _bench_pair_scan(quick: bool, rounds: int) -> dict:
    """naive -> vectorized (seed kernel) -> workspace on one square scan."""
    n = 512 if quick else 4096
    s = random_dna(n, rng=11)
    t = random_dna(n, rng=12)
    cells = len(s) * len(t)

    def seed_scan():
        prev = initial_row(len(t), local=True)
        for ch in s:
            prev = _seed_sw_row(prev, int(ch), t)
        return prev

    def workspace_scan():
        ws = KernelWorkspace(t)
        prev = initial_row(len(t), local=True)
        for ch in s:
            prev = ws.sw_row(prev, int(ch), out=prev)
        return prev

    if not np.array_equal(seed_scan(), workspace_scan()):
        raise AssertionError("workspace scan diverged from the seed kernel")
    seed_s = _best_of(seed_scan, rounds)
    workspace_s = _best_of(workspace_scan, rounds)

    # One naive row, extrapolated: the per-cell Python loop is ~1000x off.
    prev = initial_row(len(t), local=True)
    start = time.perf_counter()
    sw_row_naive(prev, int(s[0]), t)
    naive_row_s = time.perf_counter() - start

    # Prove the recorded GCUPS rests on *counted* cells: one batched scan
    # under observed() must agree with the m*n geometry.
    with observed("bench") as (_, metrics):
        ws = KernelWorkspace(t)
        block = np.empty((len(s), len(t) + 1), dtype=SCORE_DTYPE)
        ws.sw_rows(initial_row(len(t), local=True), s, out=block)
    cells_counted = metrics.counter("cells_computed").value
    if cells_counted != cells:
        raise AssertionError(f"counted {cells_counted} cells, expected {cells}")

    return {
        "kernel": "classic",
        "dtype": "int32",
        "lane_mode": "pairwise",
        "naive_cells_per_s": len(t) / naive_row_s,
        "vectorized_cells_per_s": cells / seed_s,
        "workspace_cells_per_s": cells / workspace_s,
        "vectorized_seconds": seed_s,
        "workspace_seconds": workspace_s,
        "workspace_speedup_vs_vectorized": seed_s / workspace_s,
        "workspace_gcups": gcups(cells_counted, workspace_s),
        "cells_counted": cells_counted,
    }


def _bench_batched_rows(quick: bool, rounds: int) -> dict:
    """The sw_rows batch API filling a whole matrix block."""
    n = 512 if quick else 4096
    m = 128 if quick else 512
    s = random_dna(n, rng=11)
    t = random_dna(n, rng=12)
    block = np.zeros((m + 1, n + 1), dtype=SCORE_DTYPE)

    def fill():
        ws = KernelWorkspace(t)
        ws.sw_rows(block[0], s[:m], out=block[1:])
        return block

    elapsed = _best_of(fill, rounds)
    return {
        "kernel": "classic",
        "dtype": "int32",
        "lane_mode": "pairwise",
        "cells_per_s": m * n / elapsed,
        "gcups": gcups(m * n, elapsed),
    }


def _search_workload(quick: bool):
    n_db = 200 if quick else 1000
    query_bp = 500 if quick else 2000
    db = synthetic_database(n=n_db, min_length=300, max_length=700, rng=77)
    query = random_dna(query_bp, rng=78)
    return query, db, n_db


def _bench_db_search(quick: bool, rounds: int) -> dict:
    """Classic batched search vs the one-at-a-time sequential reference."""
    query, db, n_db = _search_workload(quick)
    subset = db[: max(20, n_db // 10)]
    config = SearchConfig(top_k=10)

    sequential = search_db_sequential(query, subset, config)
    if search_db(query, subset, config).scores() != sequential.scores():
        raise AssertionError("batched search ranking diverged from sequential")

    packed = pack_database(db)
    elapsed = _best_of(lambda: search_db(query, packed, config), rounds)
    result = search_db(query, packed, config)

    sequential_rate = sequential.total_cells / sequential.wall_seconds
    batched_rate = result.total_cells / elapsed
    return {
        "kernel": "classic",
        "dtype": "int16",
        "lane_mode": "batched",
        "n_sequences": n_db,
        "total_cells": result.total_cells,
        "padded_slots": packed.padded_slots,
        "sequential_cells_per_s": sequential_rate,
        "batched_cells_per_s": batched_rate,
        "sequential_gcups": gcups(sequential.total_cells, sequential.wall_seconds),
        "batched_gcups": gcups(result.total_cells, elapsed),
        "batched_seconds": elapsed,
        "batched_speedup_vs_sequential": batched_rate / sequential_rate,
    }


def _bench_db_search_striped(quick: bool, rounds: int, classic_gcups: float) -> dict:
    """The striped kernel on the same database-search workload.

    Parity with the classic ranking is asserted on the *full* database
    before anything is timed; the recorded profile-cache and overflow
    counters come from the striped kernel's own stats hooks.
    """
    from ..core import striped

    query, db, n_db = _search_workload(quick)
    config = SearchConfig(top_k=10, kernel="striped")
    classic = search_db(query, db, SearchConfig(top_k=10))

    packed = pack_database(
        db,
        max_lanes=config.resolved_max_lanes,
        max_waste=config.resolved_max_waste,
    )
    result = search_db(query, packed, config)
    if result.scores() != classic.scores():
        raise AssertionError("striped search ranking diverged from classic")

    striped.clear_profile_cache()
    striped.reset_overflow_stats()
    elapsed = _best_of(lambda: search_db(query, packed, config), rounds)
    cache = striped.profile_cache_stats()
    overflow = striped.overflow_stats()

    striped_gcups = gcups(result.total_cells, elapsed)
    return {
        "kernel": "striped",
        "dtype": "int8",
        "lane_mode": "auto",
        "n_sequences": n_db,
        "total_cells": result.total_cells,
        "padded_slots": packed.padded_slots,
        "striped_cells_per_s": result.total_cells / elapsed,
        "striped_gcups": striped_gcups,
        "striped_seconds": elapsed,
        "striped_speedup_vs_batched": (
            striped_gcups / classic_gcups if classic_gcups else 0.0
        ),
        "profile_cache_hits": cache["hits"],
        "profile_cache_misses": cache["misses"],
        "overflow_lanes": overflow["lanes"],
        "overflow_recomputes": overflow["recomputes"],
    }


def _pruned_search_workload(quick: bool):
    """A database the bounds can actually prune.

    Uniform random equal-length sequences are unprunable -- every lane has
    the same ceiling and a chance-level best score right below it.  Real
    databases are not like that: lengths vary, composition varies, and the
    top-k is dominated by a few genuine homologs whose scores tower over the
    background.  This workload plants all three (length spread, AT/GC-biased
    subpopulations, mutated query substrings as homologs) under a stringent
    blastn-like scoring where background scores stay near zero, so the
    admissible ceilings separate cleanly from the seeded threshold.
    """
    rng = np.random.default_rng(42)
    scoring = Scoring(match=1, mismatch=-3, gap=-4)
    n_uniform = 300 if quick else 3000
    n_biased = 100 if quick else 1000
    n_homolog = 12 if quick else 40
    query = random_dna(1500, rng)
    db: list[FastaRecord] = []
    for i in range(n_uniform):
        length = int(rng.integers(150, 601))
        db.append(FastaRecord(f"bg{i:04d}", random_dna(length, rng)))
    for i in range(n_biased):
        length = int(rng.integers(150, 601))
        db.append(FastaRecord(f"at{i:04d}", biased_dna(length, 0.20, rng)))
    for i in range(n_biased):
        length = int(rng.integers(150, 601))
        db.append(FastaRecord(f"gc{i:04d}", biased_dna(length, 0.80, rng)))
    for i in range(n_homolog):
        span = int(rng.integers(350, 501))
        start = int(rng.integers(0, len(query) - span))
        db.append(
            FastaRecord(f"hom{i:02d}", mutate(query[start : start + span], 0.05, rng))
        )
    return query, db, scoring


def _bench_db_search_pruned(quick: bool, rounds: int) -> dict:
    """Exact score-bound pruning vs the same scan with ``--prefilter off``.

    Ranking parity with the sequential reference is asserted before timing;
    the recorded numbers are the pruned fraction and wall-time speedup the
    tiered filter buys on a database where most sequences provably cannot
    reach the top-10.
    """
    query, db, scoring = _pruned_search_workload(quick)
    off = SearchConfig(top_k=10, scoring=scoring, prefilter="off")
    on = SearchConfig(top_k=10, scoring=scoring, prefilter="kmer")
    packed = pack_database(db)

    sequential = search_db_sequential(query, packed, off)
    pruned = search_db(query, packed, on)
    if pruned.scores() != sequential.scores():
        raise AssertionError("pruned search ranking diverged from sequential")

    off_elapsed = _best_of(lambda: search_db(query, packed, off), rounds)
    on_elapsed = _best_of(lambda: search_db(query, packed, on), rounds)

    return {
        "kernel": "classic",
        "dtype": "int16",
        "lane_mode": "batched",
        "prefilter": pruned.prefilter,
        "n_sequences": pruned.n_sequences,
        "total_cells": pruned.total_cells,
        "sequences_pruned": pruned.sequences_pruned,
        "pruned_fraction": pruned.pruned_fraction,
        "cells_skipped": pruned.cells_skipped,
        "off_seconds": off_elapsed,
        "pruned_seconds": on_elapsed,
        "off_gcups": gcups(pruned.total_cells, off_elapsed),
        "pruned_gcups": gcups(pruned.total_cells, on_elapsed),
        "pruned_speedup_vs_off": off_elapsed / on_elapsed,
    }


def _bench_db_search_sharded(quick: bool, rounds: int) -> dict:
    """Sharded inline search and the content-addressed result cache.

    Ranking parity of the 4-shard scan against the unsharded one is
    asserted before timing.  The recorded ``cache_hit_speedup`` is the
    machine-independent figure the benchmark guard floors: a hit serves a
    stored result without planning, sharding or any DP tile, so it must be
    orders of magnitude faster than the scan that populated it.
    """
    from ..strategies.cache import DEFAULT_CACHE

    rng = np.random.default_rng(77)
    n_db = 500 if quick else 5000
    db = synthetic_database(n=n_db, min_length=150, max_length=600, rng=rng)
    query = random_dna(1500, rng)
    packed = pack_database(db)
    flat = SearchConfig(top_k=10, prefilter="off")
    sharded = SearchConfig(top_k=10, prefilter="off", n_shards=4)

    reference = search_db(query, packed, flat)
    result = search_db(query, packed, sharded)
    if result.scores() != reference.scores():
        raise AssertionError("sharded search ranking diverged from unsharded")

    flat_elapsed = _best_of(lambda: search_db(query, packed, flat), rounds)
    sharded_elapsed = _best_of(lambda: search_db(query, packed, sharded), rounds)

    cached = SearchConfig(top_k=10, prefilter="off", n_shards=4, cache=True)
    DEFAULT_CACHE.clear()
    search_db(query, packed, cached)  # the miss that populates the entry
    hit_elapsed = _best_of(
        lambda: search_db(query, packed, cached), max(rounds, 3)
    )
    hit = search_db(query, packed, cached)
    if not hit.cached or hit.scores() != reference.scores():
        raise AssertionError("cache hit diverged from the computed ranking")
    DEFAULT_CACHE.clear()

    return {
        "kernel": "classic",
        "dtype": "int16",
        "lane_mode": "batched",
        "n_shards": 4,
        "n_sequences": n_db,
        "total_cells": result.total_cells,
        "unsharded_seconds": flat_elapsed,
        "sharded_seconds": sharded_elapsed,
        "unsharded_gcups": gcups(result.total_cells, flat_elapsed),
        "sharded_gcups": gcups(result.total_cells, sharded_elapsed),
        "sharded_time_vs_unsharded": sharded_elapsed / flat_elapsed,
        "cache_hit_seconds": hit_elapsed,
        "cache_hit_speedup": sharded_elapsed / hit_elapsed,
    }


def _bench_pool_wavefront(quick: bool) -> dict:
    """Pool-amortized vs spawn-per-call mp_wavefront repeats."""
    from ..parallel import (
        AlignmentWorkerPool,
        MpWavefrontConfig,
        mp_wavefront_alignments,
    )

    gp = genome_pair(
        600, 600, n_regions=2, region_length=60, mutation_rate=0.02, rng=51
    )
    config = MpWavefrontConfig(n_workers=2, rows_per_exchange=16)
    reps = 3 if quick else 10

    start = time.perf_counter()
    for _ in range(reps):
        mp_wavefront_alignments(gp.s, gp.t, config)
    spawn_s = time.perf_counter() - start

    with AlignmentWorkerPool(n_workers=2) as pool:
        pool.load_pair(gp.s, gp.t)
        pool.wavefront(config=config)  # warmup: first call pays arena attach
        start = time.perf_counter()
        for _ in range(reps):
            pool.wavefront(config=config)
        pool_s = time.perf_counter() - start

    return {
        "kernel": "classic",
        "dtype": "int32",
        "lane_mode": "pairwise",
        "n_workers": 2,
        "repeats": reps,
        "spawn_seconds": spawn_s,
        "pool_seconds": pool_s,
        "pool_speedup": spawn_s / pool_s,
    }


def run_kernel_bench(quick: bool = False, progress=None) -> dict:
    """Run the whole suite; returns the BENCH_kernels.json payload."""
    rounds = 1 if quick else 3

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    results: dict = {"_machine": _machine(quick)}
    note("sw_scan: naive / vectorized / workspace ...")
    results["sw_scan_4096x4096"] = _bench_pair_scan(quick, rounds)
    note("sw_rows: batched block ...")
    results["sw_rows_batched_512x4096"] = _bench_batched_rows(quick, rounds)
    note("db_search: classic batched ...")
    results["db_search_1000seq_2kbp_query"] = _bench_db_search(quick, rounds)
    note("db_search: striped ...")
    results["db_search_striped_1000seq_2kbp_query"] = _bench_db_search_striped(
        quick, rounds, results["db_search_1000seq_2kbp_query"]["batched_gcups"]
    )
    note("db_search: score-bound pruning ...")
    results["db_search_pruned_5000seq_1500bp_query"] = _bench_db_search_pruned(
        quick, rounds
    )
    note("db_search: sharded + result cache ...")
    results["db_search_sharded_5000seq"] = _bench_db_search_sharded(quick, rounds)
    note("mp_wavefront: pool vs spawn ...")
    results["mp_wavefront_10_repeats_600x600"] = _bench_pool_wavefront(quick)
    return results


def write_bench(results: dict, path: str) -> None:
    """Write the payload as sorted, indented JSON (stable diffs)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


def record_bench(results: dict) -> dict | None:
    """Append this suite run to the active run ledger (no-op when inactive).

    The flattened ``{entry}.{metric}`` rate keys match what
    :func:`repro.obs.ledger.entry_from_bench` derives from a committed
    ``BENCH_kernels.json``, so ``obs diff`` compares a fresh run against
    the baseline file directly.
    """
    from ..obs.ledger import bench_rates, record_run

    return record_run(
        "bench-kernels", bench_rates(results), config=results.get("_machine")
    )
