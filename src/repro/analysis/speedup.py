"""Speed-up bookkeeping for the figure-style experiments."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SpeedupCurve:
    """One speed-up series: label plus (n_procs -> time) samples."""

    label: str
    serial_time: float
    times: dict[int, float] = field(default_factory=dict)

    def add(self, n_procs: int, time: float) -> None:
        if time <= 0:
            raise ValueError("non-positive time")
        self.times[n_procs] = time

    def speedup(self, n_procs: int) -> float:
        return self.serial_time / self.times[n_procs]

    def efficiency(self, n_procs: int) -> float:
        """Speed-up divided by the linear ideal."""
        return self.speedup(n_procs) / n_procs

    def series(self) -> list[tuple[int, float]]:
        return [(p, self.speedup(p)) for p in sorted(self.times)]


def amdahl_bound(serial_fraction: float, n_procs: int) -> float:
    """Amdahl's-law speed-up ceiling, for sanity checks in the analysis."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n_procs)
