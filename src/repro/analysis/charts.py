"""ASCII charts: speed-up curves and bar groups for terminal reports.

The paper's figures are line charts of speed-up vs processors (Figs. 9,
12, 15, 18) and grouped bars (Figs. 13, 19, 20).  These renderers let the
benchmark reports and the CLI show the same *shapes* in a terminal, next
to the numeric tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 56,
    height: int = 16,
    x_label: str = "processors",
    y_label: str = "speed-up",
    y_max: float | None = None,
) -> str:
    """Plot one or more (x, y) series on a character grid.

    Each series gets the first character of its label as its marker;
    overlapping points show ``*``.  Axes are linear, anchored at 0.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    x_hi = max(x for x, _ in points)
    y_hi = y_max if y_max is not None else max(y for _, y in points)
    if x_hi <= 0 or y_hi <= 0:
        raise ValueError("need positive axis ranges")
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = min(width - 1, int(round(x / x_hi * (width - 1))))
        row = min(height - 1, int(round(y / y_hi * (height - 1))))
        row = height - 1 - row
        current = grid[row][col]
        grid[row][col] = marker if current == " " else "*"

    for label, pts in series.items():
        marker = (label or "?")[0]
        for x, y in pts:
            place(x, y, marker)
    lines = [f"{y_label} (max {y_hi:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width + f"> {x_label} (max {x_hi:g})")
    legend = "  ".join(f"{(label or '?')[0]}={label}" for label in series)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def bar_group(
    values: Mapping[str, float],
    width: int = 40,
    fill: str = "#",
) -> str:
    """Horizontal labelled bars, scaled to the largest value."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("need a positive value")
    label_width = max(len(k) for k in values)
    lines = []
    for label, value in values.items():
        n = int(round(value / peak * width))
        lines.append(f"{label.ljust(label_width)} | {fill * n} {value:g}")
    return "\n".join(lines)


def speedup_chart(curves: Mapping[str, Sequence[tuple[int, float]]], max_procs: int = 8) -> str:
    """A Fig. 9-style chart: the ideal line plus measured curves."""
    series: dict[str, Sequence[tuple[float, float]]] = {
        "ideal": [(p, float(p)) for p in range(1, max_procs + 1)]
    }
    series.update({k: [(float(x), float(y)) for x, y in v] for k, v in curves.items()})
    return line_chart(series, y_max=float(max_procs), y_label="speed-up")
