"""Semiglobal ("glocal") alignment: all of ``s`` against a substring of ``t``.

The remaining classic alignment mode next to local (Section 2.1) and global
(Section 2.3): leading and trailing gaps in ``t`` are free, so the whole of
``s`` is placed at its best position inside ``t``.  This is the mode for
locating a known fragment (a phase-1 subsequence, a probe, a read) inside a
chromosome, and it reuses the same row kernel as everything else: free
leading ``t`` gaps = a zero first row; free trailing ``t`` gaps = take the
maximum over the last row.
"""

from __future__ import annotations

import numpy as np

from ..seq.alphabet import DNA_ALPHABET, Alphabet
from .alignment import GlobalAlignment
from .engine import KernelWorkspace
from .kernels import SCORE_DTYPE
from .matrix import MAX_FULL_MATRIX_CELLS, MatrixTooLarge, TracebackResult
from .scoring import DEFAULT_SCORING, Scoring


def semiglobal_matrix(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
    alphabet: Alphabet = DNA_ALPHABET,
) -> np.ndarray:
    """The semiglobal DP matrix: zero first row, gap-priced first column."""
    s = alphabet.encode(s)
    t = alphabet.encode(t)
    m, n = len(s), len(t)
    if (m + 1) * (n + 1) > MAX_FULL_MATRIX_CELLS:
        raise MatrixTooLarge("semiglobal matrix exceeds the cell cap")
    H = np.empty((m + 1, n + 1), dtype=SCORE_DTYPE)
    H[0] = 0  # free leading gaps in t
    boundaries = np.arange(1, m + 1, dtype=np.int64) * scoring.gap
    KernelWorkspace(t, scoring).nw_rows(H[0], s, boundaries, out=H[1:])
    return H


def semiglobal(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
    alphabet: Alphabet = DNA_ALPHABET,
) -> TracebackResult:
    """Best placement of the whole of ``s`` inside ``t``.

    The result's ``t_start``/``t_end`` name the matched substring of ``t``;
    ``s_start`` is always 0 and ``s_end`` always ``len(s)``.
    """
    s = alphabet.encode(s)
    t = alphabet.encode(t)
    H = semiglobal_matrix(s, t, scoring, alphabet)
    m = len(s)
    j = int(np.argmax(H[m]))  # free trailing gaps in t
    end_j = j
    score = int(H[m, j])
    i = m
    a: list[str] = []
    b: list[str] = []
    gap = scoring.gap
    while i > 0:
        h = int(H[i, j])
        if j > 0 and h == int(H[i - 1, j - 1]) + scoring.pair_score(
            int(s[i - 1]), int(t[j - 1])
        ):
            a.append(alphabet.decode(s[i - 1 : i]))
            b.append(alphabet.decode(t[j - 1 : j]))
            i -= 1
            j -= 1
        elif h == int(H[i - 1, j]) + gap:
            a.append(alphabet.decode(s[i - 1 : i]))
            b.append("-")
            i -= 1
        elif j > 0 and h == int(H[i, j - 1]) + gap:
            a.append("-")
            b.append(alphabet.decode(t[j - 1 : j]))
            j -= 1
        else:
            raise AssertionError("inconsistent semiglobal matrix during traceback")
    alignment = GlobalAlignment("".join(reversed(a)), "".join(reversed(b)), score)
    return TracebackResult(alignment, 0, j, m, end_j)


def locate(
    fragment: np.ndarray | str,
    reference: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
    alphabet: Alphabet = DNA_ALPHABET,
) -> tuple[int, int, int]:
    """Convenience: ``(t_start, t_end, score)`` of the fragment's best home."""
    result = semiglobal(fragment, reference, scoring, alphabet)
    return result.t_start, result.t_end, result.alignment.score
