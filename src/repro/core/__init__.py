"""Core alignment algorithms: the paper's computational kernels.

Public surface:

* :class:`Scoring` -- match/mismatch/gap parameters (paper defaults +1/-1/-2).
* Full-matrix algorithms (Section 2): :func:`smith_waterman`,
  :func:`needleman_wunsch`, :func:`similarity_matrix`.
* Linear-space scans (Section 4.1 base): :func:`sw_best_endpoint`,
  :func:`sw_row_hits`, :func:`nw_last_row`.
* The Section 4.1 heuristic variant: :func:`heuristic_local_alignments`.
* The vectorized region finder used at cluster scale: :func:`find_regions`.
* Linear-space global alignment: :func:`hirschberg`.
* Section 6 exact space reduction: :func:`exact_best_alignment`,
  :func:`exact_alignments_above`, :func:`predicted_necessary_fraction`.
"""

from .affine import (
    DEFAULT_AFFINE,
    AffineScoring,
    affine_best_score,
    affine_matrices,
    affine_needleman_wunsch,
    affine_smith_waterman,
)
from .alignment import AlignmentQueue, GlobalAlignment, LocalAlignment
from .banded import band_width_for, banded_global, banded_global_score
from .cigar import AlignmentStats, alignment_from_cigar, alignment_stats, cigar_of, expand_cigar
from .exact_linear import (
    ExactAlignment,
    ReverseScanResult,
    band_limit,
    exact_alignments_above,
    exact_best_alignment,
    predicted_necessary_fraction,
    predicted_unnecessary_cells,
    rebuild_alignment,
    reverse_scan,
)
from .engine import KernelWorkspace
from .multi_engine import PAD_CODE, PAD_SCORE, MultiSequenceWorkspace, pack_codes
from .striped import (
    LANE_MODES,
    StripedMultiWorkspace,
    StripedPairWorkspace,
    clear_profile_cache,
    overflow_stats,
    profile_cache_stats,
    reset_overflow_stats,
    score_bounds,
    striped_profile,
)
from .bounds import (
    ADMISSIBLE_BOUNDS,
    QueryBoundContext,
    TieredFilter,
    composition_bound,
    kmer_bound,
    length_bound,
)
from .global_align import SubsequenceAlignment, align_region, global_alignment
from .heuristic import HeuristicAligner, HeuristicParams, heuristic_local_alignments
from .hirschberg import hirschberg
from .kernels import count_hits, initial_row, nw_row, sw_row
from .linear import (
    ScoreEndpoint,
    iter_sw_rows,
    nw_last_row,
    sw_best_endpoint,
    sw_endpoints_above,
    sw_row_hits,
    sw_scan,
)
from .matrix import (
    MatrixTooLarge,
    TracebackResult,
    best_cell,
    local_alignments_above,
    needleman_wunsch,
    similarity_matrix,
    smith_waterman,
)
from .regions import Region, RegionConfig, StreamingRegionFinder, find_regions
from .semiglobal import locate, semiglobal, semiglobal_matrix
from .scoring import DEFAULT_SCORING, TRANSITION_TRANSVERSION, MatrixScoring, Scoring

__all__ = [
    "ADMISSIBLE_BOUNDS",
    "AffineScoring",
    "AlignmentQueue",
    "AlignmentStats",
    "DEFAULT_AFFINE",
    "DEFAULT_SCORING",
    "ExactAlignment",
    "GlobalAlignment",
    "HeuristicAligner",
    "HeuristicParams",
    "KernelWorkspace",
    "LANE_MODES",
    "LocalAlignment",
    "MatrixScoring",
    "MatrixTooLarge",
    "MultiSequenceWorkspace",
    "PAD_CODE",
    "PAD_SCORE",
    "QueryBoundContext",
    "TRANSITION_TRANSVERSION",
    "affine_best_score",
    "affine_matrices",
    "affine_needleman_wunsch",
    "affine_smith_waterman",
    "Region",
    "RegionConfig",
    "ReverseScanResult",
    "ScoreEndpoint",
    "Scoring",
    "StreamingRegionFinder",
    "StripedMultiWorkspace",
    "StripedPairWorkspace",
    "SubsequenceAlignment",
    "TieredFilter",
    "TracebackResult",
    "align_region",
    "alignment_from_cigar",
    "alignment_stats",
    "band_limit",
    "band_width_for",
    "banded_global",
    "banded_global_score",
    "best_cell",
    "cigar_of",
    "composition_bound",
    "clear_profile_cache",
    "count_hits",
    "expand_cigar",
    "exact_alignments_above",
    "exact_best_alignment",
    "find_regions",
    "global_alignment",
    "heuristic_local_alignments",
    "hirschberg",
    "initial_row",
    "iter_sw_rows",
    "kmer_bound",
    "length_bound",
    "locate",
    "local_alignments_above",
    "needleman_wunsch",
    "nw_last_row",
    "nw_row",
    "overflow_stats",
    "pack_codes",
    "predicted_necessary_fraction",
    "predicted_unnecessary_cells",
    "profile_cache_stats",
    "rebuild_alignment",
    "reset_overflow_stats",
    "reverse_scan",
    "score_bounds",
    "semiglobal",
    "semiglobal_matrix",
    "similarity_matrix",
    "smith_waterman",
    "striped_profile",
    "sw_best_endpoint",
    "sw_endpoints_above",
    "sw_row",
    "sw_row_hits",
    "sw_scan",
]
