"""Hirschberg's linear-space global alignment.

Section 6 of the paper: "one can apply Hirschberg's general method to compute
it in linear space while only doubling the worst-case time bound" [9].  This
is the divide-and-conquer that splits ``s`` in half, locates the optimal
crossing column of the middle row by combining a forward last-row scan of the
top half with a backward last-row scan of the bottom half, and recurses.
Space is O(min(m, n)); time stays O(m*n).
"""

from __future__ import annotations

import numpy as np

from ..seq.alphabet import decode, encode
from .alignment import GlobalAlignment
from .linear import nw_last_row
from .matrix import needleman_wunsch
from .scoring import DEFAULT_SCORING, Scoring

#: Below this many cells the recursion bottoms out into plain full-matrix NW.
_BASE_CASE_CELLS = 4096


def _hirschberg(
    s: np.ndarray, t: np.ndarray, scoring: Scoring
) -> tuple[str, str]:
    if len(s) == 0:
        return "-" * len(t), decode(t)
    if len(t) == 0:
        return decode(s), "-" * len(s)
    if len(s) * len(t) <= _BASE_CASE_CELLS or len(s) == 1:
        aligned = needleman_wunsch(s, t, scoring)
        return aligned.aligned_s, aligned.aligned_t
    mid = len(s) // 2
    forward = nw_last_row(s[:mid], t, scoring).astype(np.int64)
    backward = nw_last_row(s[mid:][::-1], t[::-1], scoring).astype(np.int64)[::-1]
    split = int(np.argmax(forward + backward))
    left = _hirschberg(s[:mid], t[:split], scoring)
    right = _hirschberg(s[mid:], t[split:], scoring)
    return left[0] + right[0], left[1] + right[1]


def hirschberg(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
) -> GlobalAlignment:
    """Optimal global alignment of ``s`` and ``t`` in linear space.

    The returned score always equals the full-matrix Needleman-Wunsch score
    (the alignment itself may differ among co-optimal alignments).
    """
    s = encode(s)
    t = encode(t)
    aligned_s, aligned_t = _hirschberg(s, t, scoring)
    score = scoring.alignment_score(aligned_s, aligned_t)
    return GlobalAlignment(aligned_s, aligned_t, score)
