"""Section 6: exact local alignment in O(min(n, m) + n'^2) space.

The paper's third theoretical contribution (Algorithm 1 plus Observation 6.1
and Theorem 6.2): run the linear-space SW scan once to find the *endpoints*
of the desired alignments, then, for each endpoint (i, j), run the dynamic
programming over the **reversed prefixes** ``s[..i]^rev`` and ``t[..j]^rev``
until the same score k reappears -- the cell where it does is the alignment's
*start* (Observation 6.1: an alignment of score k finishing at (i, j) becomes
an alignment of score k starting at the mirrored positions of the reverses).
Only the small n' x n' corner around the alignment is ever materialised.

Theorem 6.2 prunes the reverse pass further: because an alignment of minimal
length must start at the very first characters of the reversed prefixes,
every cell that cannot be reached from the border with a positive score is
unnecessary.  With match score ``ma`` and gap penalty ``g``, a cell (i, j)
with i > j needs at least ``i - j`` gaps against at most ``j`` matches, so it
is useful only while ``j*ma - (i-j)*g > 0``; for the paper's +1/-2 scheme the
border of the useful area in column k sits at row ``k + ceil(k/2)`` and the
total unnecessary area approaches ``2/3 n'^2 - n'`` (Eqs. 2-3), i.e. only
~30% of the naive n'^2 corner is computed in the worst case.  This module
implements the banded reverse scan and exposes the cell accounting so the
benchmark can verify the 30% claim empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..seq.alphabet import encode
from .engine import KernelWorkspace
from .kernels import initial_row
from .linear import ScoreEndpoint, sw_best_endpoint, sw_endpoints_above
from .matrix import TracebackResult, smith_waterman
from .scoring import DEFAULT_SCORING, Scoring


def band_limit(k: int, scoring: Scoring = DEFAULT_SCORING) -> int:
    """Row index of the useful-area border in column ``k`` (Section 6).

    A path from the border to row ``i`` of column ``k`` with ``i > k`` pays
    at least ``i - k`` gaps and earns at most ``k`` matches, so usefulness
    requires ``k*match - (i-k)*|gap| > 0``.  For the paper's scheme this is
    the ``k + ceil(k/2)`` bound quoted in Section 6.
    """
    if k == 0:
        return 0
    ratio = scoring.match / (-scoring.gap)
    return k + math.ceil(k * ratio)


def predicted_unnecessary_cells(n: int, scoring: Scoring = DEFAULT_SCORING) -> int:
    """Exact count of prunable cells in an n x n reverse corner (Eq. 2).

    Sums ``n - border(k)`` over the columns whose border falls inside the
    matrix, doubled for the symmetric row-wise pruning.
    """
    total = 0
    for k in range(1, n + 1):
        b = band_limit(k, scoring)
        if b < n:
            total += n - b
    return 2 * total


def predicted_necessary_fraction(n: int, scoring: Scoring = DEFAULT_SCORING) -> float:
    """Fraction of the n x n corner that must be computed (~30% for +1/-2)."""
    if n == 0:
        return 1.0
    return 1.0 - predicted_unnecessary_cells(n, scoring) / (n * n)


@dataclass(frozen=True)
class ReverseScanResult:
    """Outcome of the banded reverse scan from one endpoint."""

    found: bool
    rev_i: int  # 1-based row (in the reversed prefix) where score k appeared
    rev_j: int
    score: int
    cells_computed: int
    cells_full: int  # the naive rev_i x rev_j rectangle, for the 30% claim

    @property
    def computed_fraction(self) -> float:
        return self.cells_computed / self.cells_full if self.cells_full else 1.0


def reverse_scan(
    s_prefix: np.ndarray,
    t_prefix: np.ndarray,
    target_score: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> ReverseScanResult:
    """Scan the reversed prefixes until an alignment of ``target_score`` appears.

    Rows are processed with the two-row kernel, but each row is restricted to
    the Theorem 6.2 band: cells outside it are forced to zero (they cannot
    carry a useful positive score).  The scan stops at the first row
    containing the target score; the minimal-length start position is the
    leftmost such cell, matching the paper's "alignment of minimal length".
    """
    s_rev = s_prefix[::-1]
    t_rev = t_prefix[::-1]
    n_cols = len(t_rev)
    ws = KernelWorkspace(t_rev, scoring)
    row = initial_row(n_cols, local=True, scoring=scoring)
    cells = 0
    for i in range(1, len(s_rev) + 1):
        row = ws.sw_row(row, s_rev[i - 1], out=row)
        # Band: columns j with i <= border(j) and j <= border(i).
        hi = min(n_cols, band_limit(i, scoring))
        ratio = scoring.match / (-scoring.gap)
        lo = max(1, int(i / (1.0 + ratio)) - 2)
        while band_limit(lo, scoring) < i:
            lo += 1
        if lo > 1:
            row[1:lo] = 0
        if hi < n_cols:
            row[hi + 1 :] = 0
        cells += max(0, hi - lo + 1)
        in_row = np.nonzero(row[lo : hi + 1] >= target_score)[0]
        if in_row.size:
            j = int(in_row[0]) + lo
            return ReverseScanResult(
                found=True,
                rev_i=i,
                rev_j=j,
                score=int(row[j]),
                cells_computed=cells,
                cells_full=i * j,
            )
    return ReverseScanResult(False, 0, 0, 0, cells, len(s_rev) * n_cols)


@dataclass(frozen=True)
class ExactAlignment:
    """A fully rebuilt alignment plus the space-accounting evidence."""

    result: TracebackResult
    endpoint: ScoreEndpoint
    scan: ReverseScanResult


def rebuild_alignment(
    s: np.ndarray | str,
    t: np.ndarray | str,
    endpoint: ScoreEndpoint,
    scoring: Scoring = DEFAULT_SCORING,
) -> ExactAlignment:
    """Algorithm 1, steps 2-4, for one detected endpoint.

    Runs the banded reverse scan over the prefixes ending at the endpoint,
    converts the discovered start back to original coordinates, and rebuilds
    the actual alignment with a full-matrix SW over the (small) n' x n'
    rectangle only.
    """
    s = encode(s)
    t = encode(t)
    if not (0 < endpoint.i <= len(s) and 0 < endpoint.j <= len(t)):
        raise ValueError("endpoint outside the DP matrix")
    scan = reverse_scan(s[: endpoint.i], t[: endpoint.j], endpoint.score, scoring)
    if not scan.found:
        raise ValueError(
            f"no alignment of score {endpoint.score} ends at "
            f"({endpoint.i}, {endpoint.j}); was the endpoint produced by the "
            "forward scan with the same scoring?"
        )
    s_start = endpoint.i - scan.rev_i
    t_start = endpoint.j - scan.rev_j
    traced = smith_waterman(s[s_start : endpoint.i], t[t_start : endpoint.j], scoring)
    shifted = TracebackResult(
        alignment=traced.alignment,
        s_start=traced.s_start + s_start,
        t_start=traced.t_start + t_start,
        s_end=traced.s_end + s_start,
        t_end=traced.t_end + t_start,
    )
    return ExactAlignment(shifted, endpoint, scan)


def exact_best_alignment(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
) -> ExactAlignment:
    """Best local alignment using O(min(n,m) + n'^2) space end to end."""
    s = encode(s)
    t = encode(t)
    endpoint = sw_best_endpoint(s, t, scoring)
    if endpoint.score == 0:
        raise ValueError("sequences share no positive-scoring local alignment")
    return rebuild_alignment(s, t, endpoint, scoring)


def exact_alignments_above(
    s: np.ndarray | str,
    t: np.ndarray | str,
    min_score: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[ExactAlignment]:
    """All distinct alignments of score >= ``min_score`` (Algorithm 1 loop).

    A high-scoring region's DP values decay only slowly through the random
    background that follows it (the +1/-1/-2 scheme sits near its critical
    drift), so the forward scan can report secondary summits inside the decay
    tail of a real alignment.  Rebuilding resolves the ambiguity: a tail
    summit's alignment *starts* inside the true region, so after the reverse
    rebuild duplicates overlap and are dropped, keeping the best-scoring
    alignment per region -- exactly the paper's "final selection ... to
    select the optimal alignments".
    """
    s = encode(s)
    t = encode(t)
    rebuilt = [
        rebuild_alignment(s, t, endpoint, scoring)
        for endpoint in sw_endpoints_above(s, t, min_score, scoring)
    ]
    rebuilt.sort(key=lambda r: -r.result.alignment.score)
    kept: list[ExactAlignment] = []
    for cand in rebuilt:
        if any(cand.result.as_local().overlaps(k.result.as_local()) for k in kept):
            continue
        kept.append(cand)
    return kept
