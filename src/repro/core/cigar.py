"""CIGAR strings and alignment statistics.

Interchange utilities around :class:`repro.core.alignment.GlobalAlignment`:
encode/decode SAM-style CIGAR strings (``=``/``X``/``I``/``D`` operations,
with an option to collapse to ``M``) and compute the summary statistics
(matches, mismatches, gap runs, identity over different denominators) that
downstream consumers of an aligner expect.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .alignment import GlobalAlignment

#: Extended CIGAR operations: sequence match, mismatch, insertion (gap in
#: the *reference*, i.e. extra query characters), deletion.
OPS = "=XID"

_CIGAR_RE = re.compile(r"(\d+)([=XIDM])")


def cigar_of(alignment: GlobalAlignment, extended: bool = True) -> str:
    """CIGAR string of a rendered alignment.

    ``aligned_s`` is treated as the query and ``aligned_t`` as the
    reference: a gap in ``aligned_t`` is an insertion (I), a gap in
    ``aligned_s`` a deletion (D).  ``extended=False`` collapses ``=``/``X``
    into classic ``M`` runs.
    """
    ops = []
    for a, b in zip(alignment.aligned_s, alignment.aligned_t):
        if a == "-":
            ops.append("D")
        elif b == "-":
            ops.append("I")
        elif a == b:
            ops.append("=" if extended else "M")
        else:
            ops.append("X" if extended else "M")
    out = []
    i = 0
    while i < len(ops):
        j = i
        while j < len(ops) and ops[j] == ops[i]:
            j += 1
        out.append(f"{j - i}{ops[i]}")
        i = j
    return "".join(out)


def expand_cigar(cigar: str) -> list[tuple[int, str]]:
    """Parse a CIGAR string into (length, op) pairs, validating it."""
    pairs = []
    consumed = 0
    for match in _CIGAR_RE.finditer(cigar):
        length = int(match.group(1))
        if length <= 0:
            raise ValueError(f"zero-length CIGAR run in {cigar!r}")
        pairs.append((length, match.group(2)))
        consumed += len(match.group(0))
    if consumed != len(cigar):
        raise ValueError(f"malformed CIGAR string {cigar!r}")
    return pairs


def alignment_from_cigar(cigar: str, query: str, reference: str) -> GlobalAlignment:
    """Reconstruct the rendered alignment from a CIGAR and raw sequences.

    ``M`` runs are resolved against the actual characters.  The alignment's
    score is not recoverable from a CIGAR alone and is set from the
    default paper scoring.
    """
    from .scoring import DEFAULT_SCORING

    a_parts: list[str] = []
    b_parts: list[str] = []
    qi = ri = 0
    for length, op in expand_cigar(cigar):
        if op in "=XM":
            a_parts.append(query[qi : qi + length])
            b_parts.append(reference[ri : ri + length])
            qi += length
            ri += length
        elif op == "I":
            a_parts.append(query[qi : qi + length])
            b_parts.append("-" * length)
            qi += length
        elif op == "D":
            a_parts.append("-" * length)
            b_parts.append(reference[ri : ri + length])
            ri += length
    if qi != len(query) or ri != len(reference):
        raise ValueError("CIGAR does not span the given sequences")
    aligned_s = "".join(a_parts)
    aligned_t = "".join(b_parts)
    return GlobalAlignment(
        aligned_s, aligned_t, DEFAULT_SCORING.alignment_score(aligned_s, aligned_t)
    )


@dataclass(frozen=True)
class AlignmentStats:
    """Summary statistics of one alignment."""

    matches: int
    mismatches: int
    insertions: int  # gap characters in the reference
    deletions: int  # gap characters in the query
    gap_runs: int  # number of contiguous gap runs (either side)
    length: int  # alignment columns

    @property
    def gap_characters(self) -> int:
        return self.insertions + self.deletions

    @property
    def identity(self) -> float:
        """Matches over alignment columns (the common definition)."""
        return self.matches / self.length if self.length else 0.0

    @property
    def gapless_identity(self) -> float:
        """Matches over aligned (non-gap) columns."""
        aligned = self.matches + self.mismatches
        return self.matches / aligned if aligned else 0.0


def alignment_stats(alignment: GlobalAlignment) -> AlignmentStats:
    """Compute :class:`AlignmentStats` from a rendered alignment."""
    matches = mismatches = insertions = deletions = gap_runs = 0
    in_gap = False
    for a, b in zip(alignment.aligned_s, alignment.aligned_t):
        if a == "-" or b == "-":
            if a == "-":
                deletions += 1
            else:
                insertions += 1
            if not in_gap:
                gap_runs += 1
                in_gap = True
        else:
            in_gap = False
            if a == b:
                matches += 1
            else:
                mismatches += 1
    return AlignmentStats(
        matches=matches,
        mismatches=mismatches,
        insertions=insertions,
        deletions=deletions,
        gap_runs=gap_runs,
        length=alignment.length,
    )
