"""Admissible score ceilings for exact database-search pruning.

The search pipeline (ALAE-style, see PAPERS.md) skips the Smith-Waterman
scan of any database sequence whose score *ceiling* is provably below the
running top-k threshold.  Every function here that returns a ceiling must be
**admissible** -- ``ceiling(q, t) >= sw_score(q, t)`` for every pair, no
exceptions -- because pruning with an inexact bound silently changes
rankings.  The ``repro check`` rule BOUND001 enforces the contract
syntactically: each bound carries a ``# repro: admissible`` marker and is
registered in :data:`ADMISSIBLE_BOUNDS`, which the fuzz suite iterates to
verify domination against the real kernel.

Three tiers, in ascending cost order (:data:`TIER_ORDER`):

* ``length`` -- an alignment has at most ``min(m, n)`` substitution columns,
  each worth at most the best pair score; gap columns only subtract.
* ``composition`` -- per-letter counts cap how many high-scoring columns can
  exist at all, regardless of order.  With no positive mismatch score every
  positive column is an identical pair, giving the tight
  ``sum_c min(q_c, t_c) * max(0, S[c][c])`` form.
* ``kmer`` -- matches concentrate on identical diagonal runs; a run of
  length ``L`` contributes ``L - k + 1`` target k-mers that must also occur
  in the query.  Few shared k-mers therefore force either few matches or
  many separate runs, and each extra run costs at least one penalised
  (mismatch or gap) column.  See DESIGN.md section 5i for the closed form.

All bounds are vectorized over one packed bucket: ``codes`` is the padded
``(lanes, width)`` uint8 matrix (PAD rows out-of-alphabet codes never count)
and ``lengths`` the per-lane real lengths.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .scoring import Scoring

__all__ = [
    "ADMISSIBLE_BOUNDS",
    "DEFAULT_KMER_K",
    "TIER_ORDER",
    "QueryBoundContext",
    "TieredFilter",
    "composition_bound",
    "kmer_bound",
    "kmer_hits",
    "length_bound",
    "seed_order",
]

#: Tiers in ascending evaluation cost; a tiered filter runs them in this
#: order so the cheap bounds prune lanes before the expensive ones look.
TIER_ORDER = ("length", "composition", "kmer")

#: Window size of the k-mer tier.  4**6 = 4096 table slots: small enough to
#: rebuild per query, long enough that random sequences share few windows.
DEFAULT_KMER_K = 6

_ALPHABET = 4


class QueryBoundContext:
    """Per-query precomputation shared by every bound evaluation.

    Probes the scoring object into an explicit 4x4 matrix (works for both
    :class:`~repro.core.scoring.Scoring` and ``MatrixScoring``), and keeps
    the query's letter counts and (lazily) its k-mer presence table.
    """

    def __init__(
        self, query: np.ndarray, scoring: Scoring, kmer_k: int = DEFAULT_KMER_K
    ) -> None:
        if kmer_k < 2:
            raise ValueError("kmer_k must be at least 2")
        self.query = np.asarray(query, dtype=np.uint8)
        self.query_len = int(self.query.size)
        self.scoring = scoring
        self.kmer_k = int(kmer_k)
        matrix = np.array(
            [
                [scoring.pair_score(a, b) for b in range(_ALPHABET)]
                for a in range(_ALPHABET)
            ],
            dtype=np.int64,
        )
        self.matrix = matrix
        self.diag = matrix.diagonal().copy()
        self.d_max = int(self.diag.max())  # best identical-pair score
        self.s_max = int(matrix.max())  # best any-pair score
        off = matrix[~np.eye(_ALPHABET, dtype=bool)]
        self.off_max = int(off.max())  # best mismatch score
        self.gap = int(scoring.gap)
        self.q_counts = np.array(
            [int((self.query == c).sum()) for c in range(_ALPHABET)], dtype=np.int64
        )
        self.row_max = matrix.max(axis=1)
        self.col_max = matrix.max(axis=0)
        self._kmer_table: np.ndarray | None = None

    @property
    def run_penalty(self) -> int:
        """Cheapest penalised column separating two identical runs.

        Only meaningful when every mismatch scores negative
        (``off_max < 0``); the k-mer tier checks that before using it.
        """
        return min(-self.off_max, -self.gap)

    @property
    def kmer_table(self) -> np.ndarray:
        """``bool[4**k]`` presence table of the query's k-mers (lazy)."""
        if self._kmer_table is None:
            k = self.kmer_k
            table = np.zeros(_ALPHABET**k, dtype=bool)
            if self.query_len >= k:
                ids = np.zeros(self.query_len - k + 1, dtype=np.int64)
                for i in range(k):
                    ids = ids * _ALPHABET + self.query[i : self.query_len - k + 1 + i]
                table[ids] = True
            self._kmer_table = table
        return self._kmer_table


def length_bound(
    ctx: QueryBoundContext, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:  # repro: admissible
    """``min(m, n) * s_max``: the trivial per-pair ceiling.

    Admissible because a local alignment of ``q`` (length ``m``) and ``t``
    (length ``n``) has at most ``min(m, n)`` substitution columns, each
    scoring at most ``s_max``, while gap columns score ``gap < 0``.  The
    empty alignment makes every SW score >= 0, hence the clip.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.maximum(np.minimum(lengths, ctx.query_len) * ctx.s_max, 0)


def composition_bound(
    ctx: QueryBoundContext, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:  # repro: admissible
    """Letter-count ceiling: pairing capacity caps the column scores.

    When no mismatch scores positive, every positive column aligns identical
    letters ``(c, c)``, and there can be at most ``min(q_c, t_c)`` of those:
    ``ceiling = sum_c min(q_c, t_c) * max(0, S[c][c])``.  With positive
    mismatch scores that argument fails, so the bound falls back to charging
    each letter its best row (query side) or column (target side) score --
    both one-sided overcounts -- and takes the smaller.
    """
    codes = np.asarray(codes)
    t_counts = np.empty((codes.shape[0], _ALPHABET), dtype=np.int64)
    for c in range(_ALPHABET):
        t_counts[:, c] = (codes == c).sum(axis=1)
    if ctx.off_max <= 0:
        per_letter = np.minimum(ctx.q_counts[np.newaxis, :], t_counts)
        return per_letter @ np.maximum(ctx.diag, 0)
    query_side = int((ctx.q_counts * np.maximum(ctx.row_max, 0)).sum())
    target_side = t_counts @ np.maximum(ctx.col_max, 0)
    return np.minimum(target_side, query_side)


def kmer_hits(ctx: QueryBoundContext, codes: np.ndarray) -> np.ndarray:
    """Per-lane count of target k-mer windows that also occur in the query.

    Windows touching padding (or any out-of-alphabet code) never count.
    """
    codes = np.asarray(codes)
    k = ctx.kmer_k
    lanes, width = codes.shape
    n_windows = width - k + 1
    if n_windows <= 0:
        return np.zeros(lanes, dtype=np.int64)
    ids = np.zeros((lanes, n_windows), dtype=np.int64)
    valid = np.ones((lanes, n_windows), dtype=bool)
    for i in range(k):
        sl = codes[:, i : i + n_windows]
        in_alphabet = sl < _ALPHABET
        valid &= in_alphabet
        ids = ids * _ALPHABET + np.where(in_alphabet, sl, 0)
    return (ctx.kmer_table[ids] & valid).sum(axis=1).astype(np.int64)


def kmer_bound(
    ctx: QueryBoundContext, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray | None:  # repro: admissible
    """Diagonal-run ceiling from shared k-mer counts (DESIGN.md section 5i).

    Applicable only when every mismatch scores negative (otherwise matches
    need not sit on identical runs and the run argument collapses; the
    filter then skips this tier).  For an alignment whose identical-match
    columns form ``r`` maximal diagonal runs totalling ``c`` matches:

    * each run of length ``L`` yields ``max(0, L - k + 1)`` target windows
      that are also query k-mers, so ``H >= c - r*(k - 1)`` where ``H`` is
      the shared-k-mer count -- i.e. ``c <= H + r*(k - 1)``;
    * consecutive runs are separated by >= 1 penalised column, so
      ``score <= c*d_max - (r - 1)*pen`` with ``pen = min(-off_max, -gap)``.

    Maximising ``f(r) = min(H + r*(k-1), min(m, n)) * d_max - (r-1)*pen``
    over ``r >= 1``: f is concave piecewise-linear, so its integer maximum
    sits at ``r = 1``, at the smallest run count that saturates the
    ``min(m, n)`` cap, or one below it; the bound evaluates all three.
    """
    if ctx.off_max >= 0:
        return None
    lengths = np.asarray(lengths, dtype=np.int64)
    if ctx.d_max <= 0:
        # No column scores positive, so no alignment beats the empty one.
        return np.zeros(len(lengths), dtype=np.int64)
    k = ctx.kmer_k
    pen = ctx.run_penalty
    hits = kmer_hits(ctx, codes)
    cap = np.minimum(lengths, ctx.query_len)

    def f(runs: np.ndarray) -> np.ndarray:
        matches = np.minimum(hits + runs * (k - 1), cap)
        return matches * ctx.d_max - (runs - 1) * pen

    r_sat = np.maximum(1, -((hits - cap) // (k - 1)))  # ceil((cap - H)/(k-1))
    best = np.maximum(f(np.ones_like(cap)), f(r_sat))
    best = np.maximum(best, f(np.maximum(r_sat - 1, 1)))
    return np.maximum(best, 0)


#: Registry of every admissible ceiling, keyed by tier name.  The BOUND001
#: admissibility fuzz test iterates this dict, so adding a bound here (and
#: only here) is what puts it on the hook for verification.
ADMISSIBLE_BOUNDS: dict[
    str, Callable[[QueryBoundContext, np.ndarray, np.ndarray], Optional[np.ndarray]]
] = {
    "length": length_bound,
    "composition": composition_bound,
    "kmer": kmer_bound,
}


def seed_order(lengths: np.ndarray, query_len: int, count: int) -> np.ndarray:
    """Database indices of the ``count`` highest-ceiling sequences.

    The length tier makes ``min(length, query_len)`` a monotone proxy for
    every sequence's best possible ceiling, so scanning the longest targets
    first establishes a strong top-k threshold before any bound is checked.
    Ties break toward the smaller index (deterministic).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    proxy = np.minimum(lengths, query_len)
    order = np.lexsort((np.arange(len(lengths), dtype=np.int64), -proxy))
    return order[: max(0, count)]


class TieredFilter:
    """Evaluate bound tiers in cost order, pruning lanes below a threshold.

    One instance per (query, scoring, tiers) triple; :meth:`survivors` is
    called once per packed bucket by both the planned filter tiles and the
    pool coordinator, so every backend prunes through this single code path.
    Pruning is strict (``ceiling < threshold``): a tie must survive because
    an equal score at a smaller index still displaces the current k-th hit.
    """

    def __init__(
        self,
        query: np.ndarray,
        scoring: Scoring,
        tiers: Sequence[str] = TIER_ORDER,
        kmer_k: int = DEFAULT_KMER_K,
    ) -> None:
        unknown = [t for t in tiers if t not in ADMISSIBLE_BOUNDS]
        if unknown:
            raise ValueError(f"unknown bound tiers {unknown!r}")
        self.ctx = QueryBoundContext(query, scoring, kmer_k)
        self.tiers = tuple(t for t in TIER_ORDER if t in tiers)

    def ceilings(
        self, codes: np.ndarray, lengths: np.ndarray
    ) -> tuple[np.ndarray, dict[str, np.ndarray], int]:
        """``(combined, per_tier, bound_cells)`` ceilings for every lane.

        The thresholdless form used by the pool coordinator: it needs every
        lane's ceiling up front -- both to scan the highest-ceiling prefix
        first (strongest threshold earliest) and to prune the rest in one
        vectorized comparison once that threshold exists.  ``combined`` is
        the min over applicable tiers (each admissible, so their min is);
        ``per_tier`` keeps the individual ceilings for prune attribution.
        """
        codes = np.asarray(codes)
        lengths = np.asarray(lengths, dtype=np.int64)
        # Float on purpose: +inf is the identity of the running min, and the
        # threshold these ceilings meet is itself a float (TopK.threshold).
        combined = np.full(len(lengths), np.inf, dtype=np.float64)  # repro: noqa[DTYPE002]
        per_tier: dict[str, np.ndarray] = {}
        bound_cells = 0
        for tier in self.tiers:
            if tier != "length":
                bound_cells += int(lengths.sum())
            values = ADMISSIBLE_BOUNDS[tier](self.ctx, codes, lengths)
            if values is None:
                continue
            per_tier[tier] = values
            combined = np.minimum(combined, values)
        return combined, per_tier, bound_cells

    def survivors(
        self, codes: np.ndarray, lengths: np.ndarray, threshold: float
    ) -> tuple[np.ndarray, dict[str, int], int]:
        """``(keep_mask, pruned_per_tier, bound_cells)`` for one bucket.

        ``bound_cells`` is the number of residues the bound evaluations
        actually touched (the filter's own work, for attribution and the
        simulator's virtual clock).
        """
        codes = np.asarray(codes)
        lengths = np.asarray(lengths, dtype=np.int64)
        keep = np.ones(len(lengths), dtype=bool)
        pruned: dict[str, int] = {}
        bound_cells = 0
        if threshold == float("-inf") or not self.tiers:
            return keep, pruned, bound_cells
        for tier in self.tiers:
            live = np.flatnonzero(keep)
            if live.size == 0:
                break
            # The length tier reads only lane lengths; the others scan the
            # surviving lanes' residues once.
            if tier != "length":
                bound_cells += int(lengths[live].sum())
            ceilings = ADMISSIBLE_BOUNDS[tier](self.ctx, codes[live], lengths[live])
            if ceilings is None:  # tier inapplicable for this scoring
                continue
            drop = ceilings < threshold
            n_drop = int(drop.sum())
            if n_drop:
                pruned[tier] = pruned.get(tier, 0) + n_drop
                keep[live[drop]] = False
        return keep, pruned, bound_cells
