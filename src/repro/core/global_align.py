"""Global alignment of phase-1 subsequences and Fig. 16-style rendering.

Section 4.4: "to retrieve the actual alignments, the queue alignment is
accessed to obtain the beginnings and end coordinates of sequences s and t
... For each subsequence of s and t obtained in this manner, the global
alignment algorithm proposed by Needleman and Wunsh is executed."  Fig. 16
shows the record each processor writes: the subsequence coordinates, the
similarity score, and the two gapped strings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..seq.alphabet import encode
from .alignment import GlobalAlignment, LocalAlignment
from .hirschberg import hirschberg
from .matrix import MAX_FULL_MATRIX_CELLS, needleman_wunsch
from .scoring import DEFAULT_SCORING, Scoring


def global_alignment(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
) -> GlobalAlignment:
    """Optimal global alignment, choosing full-matrix NW or Hirschberg by size.

    Subsequence pairs from phase 1 average ~253 bytes (Section 4.4), so the
    full matrix is the common path; Hirschberg covers outliers that would
    blow the matrix cap.
    """
    s = encode(s)
    t = encode(t)
    if (len(s) + 1) * (len(t) + 1) > MAX_FULL_MATRIX_CELLS:
        return hirschberg(s, t, scoring)
    return needleman_wunsch(s, t, scoring)


@dataclass(frozen=True)
class SubsequenceAlignment:
    """Phase-2 output record for one similar region (the Fig. 16 fields)."""

    source: LocalAlignment
    alignment: GlobalAlignment

    @property
    def initial_x(self) -> int:
        return self.source.s_start + 1  # paper coordinates are 1-based

    @property
    def final_x(self) -> int:
        return self.source.s_end

    @property
    def initial_y(self) -> int:
        return self.source.t_start + 1

    @property
    def final_y(self) -> int:
        return self.source.t_end

    @property
    def similarity(self) -> int:
        return self.alignment.score

    def render(self, width: int = 32) -> str:
        """Render in the layout of Fig. 16."""
        lines = [
            f"initial_x: {self.initial_x} final_x: {self.final_x}",
            f"initial_y: {self.initial_y} final_y: {self.final_y}",
            f"similarity: {self.similarity}",
            "",
        ]
        a, b = self.alignment.aligned_s, self.alignment.aligned_t
        a_rows = [a[i : i + width] for i in range(0, len(a), width)] or [""]
        b_rows = [b[i : i + width] for i in range(0, len(b), width)] or [""]
        lines.append("align_s: " + a_rows[0])
        lines.extend("         " + chunk for chunk in a_rows[1:])
        lines.append("align_t: " + b_rows[0])
        lines.extend("         " + chunk for chunk in b_rows[1:])
        return "\n".join(lines)


def align_region(
    s: np.ndarray | str,
    t: np.ndarray | str,
    region: LocalAlignment,
    scoring: Scoring = DEFAULT_SCORING,
) -> SubsequenceAlignment:
    """Globally align the subsequences named by one phase-1 queue entry."""
    s = encode(s)
    t = encode(t)
    if region.s_end > len(s) or region.t_end > len(t):
        raise ValueError("region exceeds sequence bounds")
    sub_s = s[region.s_start : region.s_end]
    sub_t = t[region.t_start : region.t_end]
    return SubsequenceAlignment(region, global_alignment(sub_s, sub_t, scoring))
