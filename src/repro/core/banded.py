"""Banded alignment: DP restricted to a diagonal corridor.

When two sequences are known to be globally similar (phase-2 pairs,
BLAST's gapped refinement, the Section 6 reverse scan), cells far from the
main diagonal can never be on the optimal path -- restricting the DP to a
band of half-width ``w`` around it cuts the work from ``m*n`` to
``~(2w+1)*min(m,n)`` while remaining *exact whenever the optimal alignment
stays inside the band* (guaranteed if the band is wider than the maximum
number of gaps, e.g. ``w >= |m - n| + max_indels``).

The band is materialised as a dense ``(m+1) x (2w+1)`` array with the
classic index shift ``band[i, j - i + w] = H[i, j]``, so rows stay
vectorizable.
"""

from __future__ import annotations

import numpy as np

from ..seq.alphabet import encode
from .alignment import GlobalAlignment
from .scoring import DEFAULT_SCORING, Scoring

#: "minus infinity" that survives additions without wrapping int32.
_NEG = np.int32(-(2**30))


def band_width_for(m: int, n: int, extra: int = 8) -> int:
    """A safe band half-width: the length difference plus ``extra`` slack."""
    return abs(m - n) + extra


def banded_global_score(
    s: np.ndarray | str,
    t: np.ndarray | str,
    width: int | None = None,
    scoring: Scoring = DEFAULT_SCORING,
) -> int:
    """Global (NW) score within a band of half-width ``width``.

    Exact when the optimal alignment needs at most ``width`` net gaps;
    a lower bound otherwise.  Raises if the band cannot even reach the
    (m, n) corner (``width < |m - n|``).
    """
    s = encode(s)
    t = encode(t)
    m, n = len(s), len(t)
    if width is None:
        width = band_width_for(m, n)
    if width < abs(m - n):
        raise ValueError(f"band width {width} cannot reach the corner of {m}x{n}")
    span = 2 * width + 1
    gap = scoring.gap
    # prev[k] = H[i-1, (i-1) + k - width]
    prev = np.full(span, _NEG, dtype=np.int64)
    prev[width] = 0  # H[0, 0]
    for j in range(1, min(n, width) + 1):
        prev[width + j] = j * gap
    for i in range(1, m + 1):
        cur = np.full(span, _NEG, dtype=np.int64)
        # diagonal predecessor keeps the same k (both i and j advance);
        # dtype pinned: the default would be platform C long (int32 on
        # Windows), and sub_j feeds int64 index arithmetic below
        sub_j = np.arange(i - width, i + width + 1, dtype=np.int64)
        valid = (sub_j >= 1) & (sub_j <= n)
        sub = np.full(span, 0, dtype=np.int64)
        idx = sub_j[valid] - 1
        sub[valid] = scoring.substitution_row(int(s[i - 1]), t[idx.astype(np.int64)])
        diag = prev + sub
        # vertical predecessor: H[i-1, j] sits one slot to the right
        up = np.full(span, _NEG, dtype=np.int64)
        up[:-1] = prev[1:] + gap
        cur = np.maximum(diag, up)
        # the j = 0 boundary (k = width - i) is a pure gap run; set it
        # before the horizontal chain so cells to its right can extend it
        k0 = width - i
        if 0 <= k0 < span:
            cur[k0] = i * gap
        cur[~valid & (sub_j != 0)] = _NEG
        # horizontal chain within the row: H[i, j-1] is one slot left
        g = -gap
        offsets = np.arange(span, dtype=np.int64)
        chain = np.maximum.accumulate(cur + g * offsets) - g * offsets
        cur = np.maximum(cur, chain)
        cur[~valid & (sub_j != 0)] = _NEG
        prev = cur
    k_end = width + (n - m)
    result = int(prev[k_end])
    if result <= int(_NEG) // 2:
        raise ValueError("band never reached the terminal cell")
    return result


def banded_global(
    s: np.ndarray | str,
    t: np.ndarray | str,
    width: int | None = None,
    scoring: Scoring = DEFAULT_SCORING,
) -> GlobalAlignment:
    """Banded global alignment with traceback.

    Materialises the band as a full (small) matrix of width ``2w+1`` and
    re-derives moves from scores, mirroring :mod:`repro.core.matrix`.
    """
    s = encode(s)
    t = encode(t)
    m, n = len(s), len(t)
    if width is None:
        width = band_width_for(m, n)
    if width < abs(m - n):
        raise ValueError(f"band width {width} cannot reach the corner of {m}x{n}")
    span = 2 * width + 1
    gap = scoring.gap
    H = np.full((m + 1, span), _NEG, dtype=np.int64)
    H[0, width] = 0
    for j in range(1, min(n, width) + 1):
        H[0, width + j] = j * gap
    for i in range(1, m + 1):
        prev = H[i - 1]
        sub_j = np.arange(i - width, i + width + 1, dtype=np.int64)
        valid = (sub_j >= 1) & (sub_j <= n)
        sub = np.zeros(span, dtype=np.int64)
        idx = sub_j[valid] - 1
        sub[valid] = scoring.substitution_row(int(s[i - 1]), t[idx.astype(np.int64)])
        diag = prev + sub
        up = np.full(span, _NEG, dtype=np.int64)
        up[:-1] = prev[1:] + gap
        cur = np.maximum(diag, up)
        k0 = width - i
        if 0 <= k0 < span:
            cur[k0] = i * gap
        cur[~valid & (sub_j != 0)] = _NEG
        g = -gap
        offsets = np.arange(span, dtype=np.int64)
        cur = np.maximum(cur, np.maximum.accumulate(cur + g * offsets) - g * offsets)
        cur[~valid & (sub_j != 0)] = _NEG
        H[i] = cur

    # traceback in band coordinates
    from ..seq.alphabet import decode

    i, k = m, width + (n - m)
    if H[i, k] <= int(_NEG) // 2:
        raise ValueError("band never reached the terminal cell")
    score = int(H[i, k])
    a: list[str] = []
    b: list[str] = []
    while True:
        j = i + k - width
        if i == 0 and j == 0:
            break
        h = int(H[i, k])
        if i > 0 and j > 0 and h == int(H[i - 1, k]) + scoring.pair_score(
            int(s[i - 1]), int(t[j - 1])
        ):
            a.append(decode(s[i - 1 : i]))
            b.append(decode(t[j - 1 : j]))
            i -= 1  # k unchanged: diagonal move
        elif i > 0 and k + 1 < span and h == int(H[i - 1, k + 1]) + gap:
            a.append(decode(s[i - 1 : i]))
            b.append("-")
            i -= 1
            k += 1
        elif j > 0 and k - 1 >= 0 and h == int(H[i, k - 1]) + gap:
            a.append("-")
            b.append(decode(t[j - 1 : j]))
            k -= 1
        else:
            raise AssertionError("inconsistent banded matrix during traceback")
    return GlobalAlignment("".join(reversed(a)), "".join(reversed(b)), score)
