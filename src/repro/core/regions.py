"""Streaming detection of similar regions from DP score rows.

The paper's heuristic variant (Section 4.1) keeps per-cell candidate state to
report the begin/end coordinates of every good local alignment.  At cluster
scale this repository runs the vectorized score kernel instead, and recovers
the same *regions* by clustering above-threshold cells on the fly: cells
scoring at least a threshold are grouped into rectangles when they are close
in both the row and column directions (high-scoring local alignments form
contiguous diagonal streaks of above-threshold cells).  Each rectangle's
summit cell is the alignment endpoint; the rectangle itself reproduces the
begin/end coordinate pairs stored in the paper's alignment queue (Table 2,
Fig. 14).

The finder is strictly streaming -- it sees each row once and keeps only the
active rectangles -- so it composes with the two-row linear-space scan and
with the band/block decompositions of the parallel strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..seq.alphabet import encode
from .alignment import LocalAlignment
from .scoring import DEFAULT_SCORING, Scoring


@dataclass(frozen=True)
class RegionConfig:
    """Clustering parameters.

    ``threshold`` plays the role of the paper's *minimal score* parameter
    ("small values for minimal scores generate more similar regions",
    Section 4.4).  The tolerances control how far apart two above-threshold
    cells may be while still being attributed to the same similar region.
    """

    threshold: int
    col_tolerance: int = 16
    row_tolerance: int = 16
    min_hits: int = 1

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.col_tolerance < 0 or self.row_tolerance < 0:
            raise ValueError("tolerances must be non-negative")
        if self.min_hits < 1:
            raise ValueError("min_hits must be at least 1")


@dataclass
class Region:
    """A similar region: bounding box, summit score, and hit statistics.

    Coordinates are 0-based half-open over the input sequences (DP cell
    ``(i, j)`` covers ``s[i-1]`` / ``t[j-1]``).
    """

    s_start: int
    s_end: int
    t_start: int
    t_end: int
    score: int
    peak_i: int
    peak_j: int
    n_hits: int = 0
    last_row: int = field(default=0, repr=False)
    # Column extent of the hits in the most recent row that touched this
    # region.  Matching new hits against this *recent* extent -- not the
    # whole bounding box -- keeps a long diagonal streak from swallowing
    # unrelated regions that start in columns it visited long ago.
    cur_lo: int = field(default=0, repr=False)
    cur_hi: int = field(default=0, repr=False)

    def as_alignment(self) -> LocalAlignment:
        """Convert to a queue entry, ending at the summit cell.

        Above-threshold cells trail past an alignment's true end while the
        DP score decays back to zero; the alignment itself ends where the
        score peaked, which is also where the paper's heuristic records the
        final coordinates.  The start keeps the bounding-box corner (the
        first above-threshold cell), which -- like the paper's open-on-climb
        rule -- is a few cells downstream of the true start.
        """
        return LocalAlignment(
            score=self.score,
            s_start=self.s_start,
            s_end=max(self.peak_i, self.s_start + 1),
            t_start=self.t_start,
            t_end=max(self.peak_j, self.t_start + 1),
        )

    @property
    def region(self) -> tuple[int, int, int, int]:
        return (self.s_start, self.s_end, self.t_start, self.t_end)


class StreamingRegionFinder:
    """Cluster above-threshold cells from successive DP rows into regions."""

    def __init__(self, config: RegionConfig) -> None:
        self.config = config
        self._active: list[Region] = []
        self._finished: list[Region] = []
        self._last_fed = 0

    def feed(self, i: int, row: np.ndarray) -> None:
        """Consume DP row ``i`` (including the boundary column at index 0)."""
        if i <= self._last_fed:
            raise ValueError(f"rows must be fed in increasing order (got {i})")
        self._last_fed = i
        cfg = self.config
        self._retire(i)
        js = np.nonzero(row[1:] >= cfg.threshold)[0] + 1
        if js.size == 0:
            return
        if js.size > 1:
            breaks = np.nonzero(np.diff(js) > cfg.col_tolerance)[0]
            segments = np.split(js, breaks + 1)
        else:
            segments = [js]
        for seg in segments:
            j_lo, j_hi = int(seg[0]), int(seg[-1])
            k = int(np.argmax(row[seg]))
            seg_score, seg_peak_j = int(row[seg[k]]), int(seg[k])
            matches = [
                r
                for r in self._active
                # Allow for the ~1 column/row rightward drift of a diagonal
                # streak across any skipped rows.
                if j_lo <= r.cur_hi + cfg.col_tolerance + (i - r.last_row)
                and j_hi >= r.cur_lo - cfg.col_tolerance
            ]
            if not matches:
                self._active.append(
                    Region(
                        s_start=i - 1,
                        s_end=i,
                        t_start=j_lo - 1,
                        t_end=j_hi,
                        score=seg_score,
                        peak_i=i,
                        peak_j=seg_peak_j,
                        n_hits=len(seg),
                        last_row=i,
                        cur_lo=j_lo,
                        cur_hi=j_hi,
                    )
                )
                continue
            target = matches[0]
            for extra in matches[1:]:
                self._absorb(target, extra)
                self._active.remove(extra)
            target.s_end = i
            target.t_start = min(target.t_start, j_lo - 1)
            target.t_end = max(target.t_end, j_hi)
            target.n_hits += len(seg)
            if target.last_row == i:
                target.cur_lo = min(target.cur_lo, j_lo)
                target.cur_hi = max(target.cur_hi, j_hi)
            else:
                target.cur_lo, target.cur_hi = j_lo, j_hi
            target.last_row = i
            if seg_score > target.score:
                target.score = seg_score
                target.peak_i = i
                target.peak_j = seg_peak_j

    @staticmethod
    def _absorb(target: Region, extra: Region) -> None:
        target.s_start = min(target.s_start, extra.s_start)
        target.s_end = max(target.s_end, extra.s_end)
        target.t_start = min(target.t_start, extra.t_start)
        target.t_end = max(target.t_end, extra.t_end)
        target.n_hits += extra.n_hits
        if extra.last_row >= target.last_row:
            target.cur_lo = min(target.cur_lo, extra.cur_lo)
            target.cur_hi = max(target.cur_hi, extra.cur_hi)
        if extra.score > target.score:
            target.score = extra.score
            target.peak_i = extra.peak_i
            target.peak_j = extra.peak_j

    def _retire(self, current_row: int) -> None:
        still_active: list[Region] = []
        for r in self._active:
            if current_row - r.last_row > self.config.row_tolerance:
                self._finished.append(r)
            else:
                still_active.append(r)
        self._active = still_active

    def finish(self) -> list[Region]:
        """Close all active regions and return every region found, best first."""
        self._finished.extend(self._active)
        self._active = []
        kept = [r for r in self._finished if r.n_hits >= self.config.min_hits]
        kept.sort(key=lambda r: (-r.score, r.region))
        return kept


def find_regions(
    s: np.ndarray | str,
    t: np.ndarray | str,
    config: RegionConfig,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[Region]:
    """Run the two-row scan over ``s`` x ``t`` and cluster its hits."""
    from .linear import iter_sw_rows

    finder = StreamingRegionFinder(config)
    for i, row in iter_sw_rows(encode(s), encode(t), scoring):
        finder.feed(i, row)
    return finder.finish()
