"""Faithful implementation of the Section 4.1 heuristic SW variant.

This is the Martins-et-al.-style algorithm the paper's first two parallel
strategies run: a two-row Smith-Waterman in which every cell carries, besides
its score, the candidate-alignment metadata listed in Section 4.1 --

* initial and final alignment coordinates,
* maximal and minimal score (and where the maximum occurred),
* gap, match and mismatch counters,
* a flag marking the cell's alignment as an open candidate.

Opening and closing follow the paper exactly: a candidate opens when (flag
== 0) and ``max_score >= min_score + open_param``; it closes -- and is pushed
onto the alignment queue -- when (flag == 1) and ``score <= max_score -
close_param``.  When a cell's score is obtainable from more than one
predecessor, the origin with the greater ``2*matches + 2*mismatches + gaps``
wins ("gaps are penalized while matches and mismatches are rewarded"); on a
residual tie the preference is horizontal, then vertical, then diagonal,
"a trial to keep the gaps along the candidate alignment together".  Counters
are *not* reset when alignments close (the paper keeps them so a candidate
can reopen after a bad patch).

This reference engine is deliberately per-cell Python: it exists to pin the
semantics for tests and small examples.  The cluster-scale strategies use the
vectorized score kernel plus :mod:`repro.core.regions`, which tests verify
recovers the same regions (see DESIGN.md, "Two engines").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..seq.alphabet import encode
from .alignment import AlignmentQueue, LocalAlignment
from .scoring import DEFAULT_SCORING, Scoring


@dataclass(frozen=True)
class HeuristicParams:
    """User parameters of Section 4.1.

    ``open_delta`` is "a minimum value for opening this alignment as a
    candidate alignment"; ``close_delta`` is "a value for closing an
    alignment"; ``min_score`` is the queue admission threshold.
    """

    open_delta: int = 12
    close_delta: int = 12
    min_score: int = 12

    def __post_init__(self) -> None:
        if self.open_delta <= 0 or self.close_delta <= 0:
            raise ValueError("open/close deltas must be positive")
        if self.min_score <= 0:
            raise ValueError("min_score must be positive")


# Cell metadata tuple layout (plain tuples keep the per-cell loop cheap):
# (score, init_i, init_j, max_score, max_i, max_j, min_score,
#  gaps, matches, mismatches, flag)
_FRESH = (0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)


def _fresh(i: int, j: int) -> tuple:
    return (0, i, j, 0, i, j, 0, 0, 0, 0, 0)


def _priority(cell: tuple) -> int:
    """The paper's origin-selection expression: 2*matches + 2*mismatches + gaps."""
    return 2 * cell[8] + 2 * cell[9] + cell[7]


class HeuristicAligner:
    """Row-at-a-time engine exposing the two-row state for reuse by strategies."""

    def __init__(
        self,
        t: "str | bytes",
        params: HeuristicParams | None = None,
        scoring: Scoring = DEFAULT_SCORING,
    ) -> None:
        self.t = encode(t)
        self.params = params or HeuristicParams()
        self.scoring = scoring
        self.queue = AlignmentQueue()
        self.prev: list[tuple] = [_fresh(0, j) for j in range(len(self.t) + 1)]
        self._row_index = 0

    def _close(self, cell: tuple, score: int) -> tuple:
        """Close an open candidate: emit it and clear the flag.

        The recorded alignment spans the opening coordinates to the position
        of the maximal score, scored at that maximum; max/min restart from
        the current score so a later stretch can reopen.  Counters survive,
        per Section 4.1.
        """
        (_, bi, bj, max_score, max_i, max_j, _min, gaps, matches, mismatches, _f) = cell
        if max_score >= self.params.min_score and max_i >= bi and max_j >= bj:
            self.queue.push(
                LocalAlignment(
                    score=max_score,
                    s_start=max(0, bi - 1),
                    s_end=max_i,
                    t_start=max(0, bj - 1),
                    t_end=max_j,
                )
            )
        return (score, bi, bj, score, max_i, max_j, score, gaps, matches, mismatches, 0)

    def step_row(self, s_char: int) -> list[tuple]:
        """Advance one row; returns the new row of cell tuples."""
        i = self._row_index = self._row_index + 1
        scoring = self.scoring
        params = self.params
        t = self.t
        prev = self.prev
        row: list[tuple] = [_fresh(i, 0)]
        gap = scoring.gap
        for j in range(1, len(t) + 1):
            is_match = t[j - 1] == s_char
            sub = scoring.pair_score(s_char, int(t[j - 1]))
            diag_cell = prev[j - 1]
            up_cell = prev[j]
            left_cell = row[j - 1]
            diag = diag_cell[0] + sub
            up = up_cell[0] + gap
            left = left_cell[0] + gap
            score = max(0, diag, up, left)
            if score == 0:
                row.append(_fresh(i, j))
                continue
            # Pick the origin among score-achieving predecessors, by the
            # counter expression, then the horizontal > vertical > diagonal
            # preference.
            origin = None
            best_priority = None
            is_diag = False
            for cand_score, cell, diag_move in (
                (left, left_cell, False),
                (up, up_cell, False),
                (diag, diag_cell, True),
            ):
                if cand_score != score:
                    continue
                p = _priority(cell)
                if best_priority is None or p > best_priority:
                    origin, best_priority, is_diag = cell, p, diag_move
            assert origin is not None
            (_, bi, bj, max_score, max_i, max_j, min_score, gaps, matches, mismatches, flag) = origin
            if is_diag:
                if is_match:
                    matches += 1
                else:
                    mismatches += 1
            else:
                gaps += 1
            if score > max_score:
                max_score, max_i, max_j = score, i, j
            if score < min_score:
                min_score = score
            if flag == 0 and max_score >= min_score + params.open_delta:
                flag = 1
                bi, bj = i, j
                # The run of scores that triggered the opening belongs to the
                # alignment; anchor the start where the climb began (the cell
                # of the current minimum would already be forgotten, so the
                # paper anchors at the opening cell; we keep that behaviour).
            cell = (score, bi, bj, max_score, max_i, max_j, min_score, gaps, matches, mismatches, flag)
            if flag == 1 and score <= max_score - params.close_delta:
                cell = self._close(cell, score)
            row.append(cell)
        self.prev = row
        return row

    def flush(self) -> AlignmentQueue:
        """Close every still-open candidate on the final row and return the queue."""
        for cell in self.prev:
            if cell[10] == 1:
                self._close(cell, cell[0])
        # Open candidates may also be left stranded mid-matrix (their
        # alignment stopped extending before the last row); emit those via
        # the retired-state bookkeeping the row sweep cannot see.  With the
        # two-row scan the final row is the only place a candidate can still
        # live, so this is complete.
        return self.queue


def heuristic_local_alignments(
    s: "str | bytes",
    t: "str | bytes",
    params: HeuristicParams | None = None,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[LocalAlignment]:
    """Run the Section 4.1 algorithm and return the finalized queue."""
    s_arr = encode(s)
    aligner = HeuristicAligner(t, params, scoring)
    for ch in s_arr:
        aligner.step_row(int(ch))
    queue = aligner.flush()
    params = aligner.params
    return queue.finalize(min_score=params.min_score, overlap_slack=0)
