"""Scoring scheme for sequence alignment.

Section 2 of the paper fixes the classic scheme used throughout its
evaluation: +1 for identical characters, -1 for different characters and -2
for a space (linear gap penalty).  The whole DP machinery in this package is
parameterised over :class:`Scoring`, but the defaults reproduce the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: dtype of all score rows.  int32 gives headroom for sequences up to ~10^8
#: cells per row with the paper's unit scores.  Defined here (not in
#: :mod:`repro.core.kernels`) so the scoring classes can pin their outputs to
#: it without a circular import; kernels re-exports it.
SCORE_DTYPE = np.int32


@dataclass(frozen=True)
class Scoring:
    """Match / mismatch / gap scores with the paper's defaults.

    ``gap`` is the (negative) score of aligning a character against a space.
    Only linear gap penalties are supported: that is what the paper uses, and
    it is also what makes the exact vectorized row kernel possible
    (:mod:`repro.core.kernels`).
    """

    match: int = 1
    mismatch: int = -1
    gap: int = -2

    def __post_init__(self) -> None:
        if self.gap >= 0:
            raise ValueError("gap score must be negative")
        if self.match <= self.mismatch:
            raise ValueError("match score must exceed mismatch score")

    def substitution_row(self, s_char: int, t_codes: np.ndarray) -> np.ndarray:
        """Vector of substitution scores of ``s_char`` against every ``t`` code.

        Always :data:`SCORE_DTYPE`: ``np.where`` promotes to int64 on some
        platforms, which would silently double the DP rows' memory traffic.
        """
        return np.where(
            t_codes == s_char, np.int32(self.match), np.int32(self.mismatch)
        ).astype(SCORE_DTYPE, copy=False)

    def pair_score(self, a: int, b: int) -> int:
        """Score of aligning code ``a`` against code ``b``."""
        return self.match if a == b else self.mismatch

    def column_score(self, a: str, b: str) -> int:
        """Score of one alignment column; ``'-'`` denotes a space."""
        if a == "-" and b == "-":
            raise ValueError("column with two spaces")
        if a == "-" or b == "-":
            return self.gap
        from ..seq.alphabet import DNA

        return self.pair_score(DNA.index(a.upper()), DNA.index(b.upper()))

    def alignment_score(self, a: str, b: str) -> int:
        """Score of a rendered alignment (two equal-length gapped strings)."""
        if len(a) != len(b):
            raise ValueError("aligned strings must have equal length")
        return sum(self.column_score(x, y) for x, y in zip(a, b))


@dataclass(frozen=True)
class MatrixScoring(Scoring):
    """Scoring with an arbitrary 4x4 nucleotide substitution matrix.

    ``matrix[a][b]`` scores code ``a`` against code ``b`` (e.g. a
    transition/transversion-aware scheme).  ``match``/``mismatch`` are kept
    as the matrix's diagonal maximum and off-diagonal minimum so code that
    only needs bounds (e.g. the Section 6 band limit) stays correct.
    """

    matrix: tuple = ()

    def __post_init__(self) -> None:
        arr = np.asarray(self.matrix, dtype=np.int32)
        if arr.shape != (4, 4):
            raise ValueError("substitution matrix must be 4x4")
        diag = int(arr.diagonal().max())
        off = int((arr + np.eye(4, dtype=np.int32) * -(10**6)).max())
        object.__setattr__(self, "match", diag)
        object.__setattr__(self, "mismatch", off)
        object.__setattr__(self, "matrix", tuple(tuple(int(x) for x in row) for row in arr))
        super().__post_init__()

    def _array(self) -> np.ndarray:
        return np.asarray(self.matrix, dtype=np.int32)

    def substitution_row(self, s_char: int, t_codes: np.ndarray) -> np.ndarray:
        return self._array()[s_char][t_codes].astype(SCORE_DTYPE, copy=False)

    def pair_score(self, a: int, b: int) -> int:
        return self.matrix[a][b]


#: A transition/transversion-aware example matrix (A<->G, C<->T transitions
#: penalised less than transversions), usable anywhere a Scoring is.
TRANSITION_TRANSVERSION = MatrixScoring(
    gap=-3,
    matrix=(
        (2, -3, -1, -3),
        (-3, 2, -3, -1),
        (-1, -3, 2, -3),
        (-3, -1, -3, 2),
    ),
)

#: The scheme used in every experiment of the paper.
DEFAULT_SCORING = Scoring()
