"""Vectorized dynamic-programming row kernels.

The Smith-Waterman / Needleman-Wunsch recurrence has three dependencies per
cell; two of them (diagonal and vertical) only touch the *previous* row and
vectorize trivially, but the horizontal one chains along the current row:

    H[i, j] = max(C[j], H[i, j-1] + gap)            with
    C[j]    = max(diag, up[, 0])

For a *linear* gap penalty ``gap = -g`` this chain has the closed form

    H[i, j] = max_{k <= j} (C[k] - g * (j - k))
            = (running max of C[k] + g*k) - g*j

so one ``np.maximum.accumulate`` resolves the whole row exactly.  This is the
same algebra behind the "striped" SIMD Smith-Waterman kernels; here it is the
difference between ~10^5 and ~10^8 cells/second in Python, which is what makes
the paper's 50 kBP-400 kBP workloads reachable (see DESIGN.md).  A deliberately
naive per-cell kernel is kept for differential testing and the ablation bench.
"""

from __future__ import annotations

import numpy as np

from .scoring import DEFAULT_SCORING, Scoring

#: dtype of all score rows.  int32 gives headroom for sequences up to ~10^8
#: cells per row with the paper's unit scores.
SCORE_DTYPE = np.int32


def _resolve_horizontal(cand: np.ndarray, g: int) -> np.ndarray:
    """Exactly apply horizontal gap moves to a row of candidate scores.

    ``cand[j]`` must already hold the best score of cell ``j`` over all moves
    that do not end in a horizontal gap; ``g > 0`` is the gap penalty.
    """
    idx = np.arange(cand.size, dtype=np.int64)
    x = cand.astype(np.int64)
    x += g * idx
    np.maximum.accumulate(x, out=x)
    x -= g * idx
    return x.astype(SCORE_DTYPE)


def sw_row(
    prev: np.ndarray,
    s_char: int,
    t_codes: np.ndarray,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Advance one Smith-Waterman (local) row.

    ``prev`` is row ``i-1`` of the similarity array including the boundary
    column (length ``len(t_codes) + 1``); returns row ``i``.  Entries follow
    Eq. (1) of the paper: the max of the three gapped/matched predecessors
    and zero.
    """
    sub = scoring.substitution_row(int(s_char), t_codes)
    cand = np.empty(prev.size, dtype=SCORE_DTYPE)
    cand[0] = 0
    np.maximum(prev[:-1] + sub, prev[1:] + SCORE_DTYPE(scoring.gap), out=cand[1:])
    np.maximum(cand, 0, out=cand)
    return _resolve_horizontal(cand, -scoring.gap)


def nw_row(
    prev: np.ndarray,
    s_char: int,
    t_codes: np.ndarray,
    boundary: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Advance one Needleman-Wunsch (global) row.

    Identical to :func:`sw_row` but without the zero floor and with
    ``boundary`` as the first-column value (``i * gap`` for a plain global
    alignment, per Section 2.3 / Fig. 4 of the paper).
    """
    sub = scoring.substitution_row(int(s_char), t_codes)
    cand = np.empty(prev.size, dtype=SCORE_DTYPE)
    cand[0] = boundary
    np.maximum(prev[:-1] + sub, prev[1:] + SCORE_DTYPE(scoring.gap), out=cand[1:])
    return _resolve_horizontal(cand, -scoring.gap)


def sw_row_slice(
    prev: np.ndarray,
    s_char: int,
    t_slice: np.ndarray,
    left_current: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Advance one SW row over a *column slice* of the matrix.

    This is the distributed-kernel primitive of the parallel strategies:
    processor ``p`` owns columns ``[c0, c1)`` and receives the border values
    from its left neighbour.  ``prev`` has length ``c1 - c0 + 1`` with
    ``prev[0] = H[i-1, c0-1]`` (the neighbour's border on the previous row)
    and ``prev[k] = H[i-1, c0+k-1]``; ``left_current = H[i, c0-1]`` is the
    neighbour's border on the current row.  Returns the same layout for row
    ``i``.  Stitching slices computed this way reproduces the full-matrix
    row exactly (tested property).
    """
    sub = scoring.substitution_row(int(s_char), t_slice)
    cand = np.empty(prev.size, dtype=SCORE_DTYPE)
    cand[0] = left_current
    np.maximum(prev[:-1] + sub, prev[1:] + SCORE_DTYPE(scoring.gap), out=cand[1:])
    np.maximum(cand[1:], 0, out=cand[1:])
    return _resolve_horizontal(cand, -scoring.gap)


def sw_row_naive(
    prev: np.ndarray,
    s_char: int,
    t_codes: np.ndarray,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Per-cell reference implementation of :func:`sw_row` (tests/ablation)."""
    row = np.zeros_like(prev)
    for j in range(1, prev.size):
        sub = scoring.pair_score(int(s_char), int(t_codes[j - 1]))
        row[j] = max(
            0,
            int(prev[j - 1]) + sub,
            int(prev[j]) + scoring.gap,
            int(row[j - 1]) + scoring.gap,
        )
    return row


def nw_row_naive(
    prev: np.ndarray,
    s_char: int,
    t_codes: np.ndarray,
    boundary: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Per-cell reference implementation of :func:`nw_row`."""
    row = np.zeros_like(prev)
    row[0] = boundary
    for j in range(1, prev.size):
        sub = scoring.pair_score(int(s_char), int(t_codes[j - 1]))
        row[j] = max(
            int(prev[j - 1]) + sub,
            int(prev[j]) + scoring.gap,
            int(row[j - 1]) + scoring.gap,
        )
    return row


def initial_row(n_cols: int, local: bool, scoring: Scoring = DEFAULT_SCORING) -> np.ndarray:
    """Row 0 of the DP array: zeros for local, gap multiples for global."""
    if local:
        return np.zeros(n_cols + 1, dtype=SCORE_DTYPE)
    return (np.arange(n_cols + 1, dtype=SCORE_DTYPE) * SCORE_DTYPE(scoring.gap)).astype(
        SCORE_DTYPE
    )


def count_hits(row: np.ndarray, threshold: int) -> int:
    """Number of cells in a row at or above ``threshold``.

    This is the scoreboard primitive of the *pre_process* strategy (Section
    5): "when a new cell score is calculated, the score value is compared to
    a threshold; if it is found to be greater than the threshold, a hit
    counter is incremented".  The boundary column is excluded.
    """
    return int(np.count_nonzero(row[1:] >= threshold))


def row_maximum(row: np.ndarray) -> tuple[int, int]:
    """``(score, column)`` of the row maximum, excluding the boundary column.

    Ties resolve to the leftmost column, matching a left-to-right scan.
    """
    if row.size <= 1:
        raise ValueError("row has no data columns")
    j = int(np.argmax(row[1:])) + 1
    return int(row[j]), j
