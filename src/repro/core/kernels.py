"""Vectorized dynamic-programming row kernels.

The Smith-Waterman / Needleman-Wunsch recurrence has three dependencies per
cell; two of them (diagonal and vertical) only touch the *previous* row and
vectorize trivially, but the horizontal one chains along the current row:

    H[i, j] = max(C[j], H[i, j-1] + gap)            with
    C[j]    = max(diag, up[, 0])

For a *linear* gap penalty ``gap = -g`` this chain has the closed form

    H[i, j] = max_{k <= j} (C[k] - g * (j - k))
            = (running max of C[k] + g*k) - g*j

so one ``np.maximum.accumulate`` resolves the whole row exactly.  This is the
same algebra behind the "striped" SIMD Smith-Waterman kernels; here it is the
difference between ~10^5 and ~10^8 cells/second in Python, which is what makes
the paper's 50 kBP-400 kBP workloads reachable (see DESIGN.md).  A deliberately
naive per-cell kernel is kept for differential testing and the ablation bench.

The row machinery itself lives in :class:`repro.core.engine.KernelWorkspace`,
which additionally precomputes the query profile and reuses all scratch
buffers across rows.  The functions here are one-shot compatibility shims: a
throwaway lazy workspace per call, correct but without the amortization.  Hot
loops should hold a workspace instead.
"""

from __future__ import annotations

import numpy as np

from .engine import KernelWorkspace
from .scoring import DEFAULT_SCORING, SCORE_DTYPE, Scoring

__all__ = [
    "SCORE_DTYPE",
    "count_hits",
    "initial_row",
    "nw_row",
    "nw_row_naive",
    "row_maximum",
    "sw_row",
    "sw_row_naive",
    "sw_row_slice",
]


def _one_shot(t_codes: np.ndarray, scoring: Scoring) -> KernelWorkspace:
    """A lazy workspace for a single row advance (no eager profile)."""
    return KernelWorkspace(t_codes, scoring, eager_codes=())


def sw_row(
    prev: np.ndarray,
    s_char: int,
    t_codes: np.ndarray,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Advance one Smith-Waterman (local) row.

    ``prev`` is row ``i-1`` of the similarity array including the boundary
    column (length ``len(t_codes) + 1``); returns row ``i``.  Entries follow
    Eq. (1) of the paper: the max of the three gapped/matched predecessors
    and zero.
    """
    return _one_shot(t_codes, scoring).sw_row(prev, int(s_char))


def nw_row(
    prev: np.ndarray,
    s_char: int,
    t_codes: np.ndarray,
    boundary: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Advance one Needleman-Wunsch (global) row.

    Identical to :func:`sw_row` but without the zero floor and with
    ``boundary`` as the first-column value (``i * gap`` for a plain global
    alignment, per Section 2.3 / Fig. 4 of the paper).
    """
    return _one_shot(t_codes, scoring).nw_row(prev, int(s_char), boundary)


def sw_row_slice(
    prev: np.ndarray,
    s_char: int,
    t_slice: np.ndarray,
    left_current: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Advance one SW row over a *column slice* of the matrix.

    This is the distributed-kernel primitive of the parallel strategies:
    processor ``p`` owns columns ``[c0, c1)`` and receives the border values
    from its left neighbour.  ``prev`` has length ``c1 - c0 + 1`` with
    ``prev[0] = H[i-1, c0-1]`` (the neighbour's border on the previous row)
    and ``prev[k] = H[i-1, c0+k-1]``; ``left_current = H[i, c0-1]`` is the
    neighbour's border on the current row.  Returns the same layout for row
    ``i``.  Stitching slices computed this way reproduces the full-matrix
    row exactly (tested property).
    """
    return _one_shot(t_slice, scoring).sw_row_slice(prev, int(s_char), left_current)


def sw_row_naive(
    prev: np.ndarray,
    s_char: int,
    t_codes: np.ndarray,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Per-cell reference implementation of :func:`sw_row` (tests/ablation)."""
    row = np.zeros_like(prev)
    for j in range(1, prev.size):
        sub = scoring.pair_score(int(s_char), int(t_codes[j - 1]))
        row[j] = max(
            0,
            int(prev[j - 1]) + sub,
            int(prev[j]) + scoring.gap,
            int(row[j - 1]) + scoring.gap,
        )
    return row


def nw_row_naive(
    prev: np.ndarray,
    s_char: int,
    t_codes: np.ndarray,
    boundary: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Per-cell reference implementation of :func:`nw_row`."""
    row = np.zeros_like(prev)
    row[0] = boundary
    for j in range(1, prev.size):
        sub = scoring.pair_score(int(s_char), int(t_codes[j - 1]))
        row[j] = max(
            int(prev[j - 1]) + sub,
            int(prev[j]) + scoring.gap,
            int(row[j - 1]) + scoring.gap,
        )
    return row


def initial_row(n_cols: int, local: bool, scoring: Scoring = DEFAULT_SCORING) -> np.ndarray:
    """Row 0 of the DP array: zeros for local, gap multiples for global."""
    if local:
        return np.zeros(n_cols + 1, dtype=SCORE_DTYPE)
    return np.arange(n_cols + 1, dtype=SCORE_DTYPE) * SCORE_DTYPE(scoring.gap)


def count_hits(row: np.ndarray, threshold: int) -> int:
    """Number of cells in a row at or above ``threshold``.

    This is the scoreboard primitive of the *pre_process* strategy (Section
    5): "when a new cell score is calculated, the score value is compared to
    a threshold; if it is found to be greater than the threshold, a hit
    counter is incremented".  The boundary column is excluded.
    """
    return int(np.count_nonzero(row[1:] >= threshold))


def row_maximum(row: np.ndarray) -> tuple[int, int]:
    """``(score, column)`` of the row maximum, excluding the boundary column.

    Ties resolve to the leftmost column, matching a left-to-right scan.
    """
    if row.size <= 1:
        raise ValueError("row has no data columns")
    j = int(np.argmax(row[1:])) + 1
    return int(row[j]), j
