"""Alignment records and the paper's *alignment queue*.

Phase 1 of every strategy produces begin/end coordinates of candidate local
alignments; the paper stores them in a queue that is "sorted by subsequence
size, and the repeated alignments are removed" (Section 4.1).  Phase 2 then
globally aligns each coordinate pair and renders output like Fig. 16.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from .scoring import DEFAULT_SCORING, Scoring


@dataclass(frozen=True, order=True)
class LocalAlignment:
    """A candidate local alignment between ``s[s_start:s_end]`` and ``t[t_start:t_end]``.

    Coordinates are 0-based half-open over the *unaligned* input sequences
    (the paper reports 1-based inclusive coordinates; conversion helpers are
    provided).  ``score`` is the similarity score of the alignment.
    """

    score: int
    s_start: int
    s_end: int
    t_start: int
    t_end: int

    def __post_init__(self) -> None:
        if self.s_start > self.s_end or self.t_start > self.t_end:
            raise ValueError("alignment end precedes start")
        if min(self.s_start, self.t_start) < 0:
            raise ValueError("negative alignment coordinate")

    @property
    def s_length(self) -> int:
        return self.s_end - self.s_start

    @property
    def t_length(self) -> int:
        return self.t_end - self.t_start

    @property
    def size(self) -> int:
        """Subsequence size used by the paper's queue ordering."""
        return max(self.s_length, self.t_length)

    @property
    def region(self) -> tuple[int, int, int, int]:
        return (self.s_start, self.s_end, self.t_start, self.t_end)

    def paper_coordinates(self) -> tuple[tuple[int, int], tuple[int, int]]:
        """``((begin_s, begin_t), (end_s, end_t))`` 1-based inclusive, as in Table 2."""
        return (
            (self.s_start + 1, self.t_start + 1),
            (self.s_end, self.t_end),
        )

    def overlaps(self, other: "LocalAlignment", slack: int = 0) -> bool:
        """True when both projections of the two alignments overlap (within slack)."""
        return (
            self.s_start - slack < other.s_end
            and other.s_start - slack < self.s_end
            and self.t_start - slack < other.t_end
            and other.t_start - slack < self.t_end
        )

    def shifted(self, s_offset: int, t_offset: int) -> "LocalAlignment":
        """Translate coordinates, e.g. from block-local to global frames."""
        return replace(
            self,
            s_start=self.s_start + s_offset,
            s_end=self.s_end + s_offset,
            t_start=self.t_start + t_offset,
            t_end=self.t_end + t_offset,
        )


@dataclass(frozen=True)
class GlobalAlignment:
    """A rendered global alignment of two (sub)sequences (phase 2 output)."""

    aligned_s: str
    aligned_t: str
    score: int

    def __post_init__(self) -> None:
        if len(self.aligned_s) != len(self.aligned_t):
            raise ValueError("aligned strings must have equal length")

    @property
    def length(self) -> int:
        return len(self.aligned_s)

    @property
    def matches(self) -> int:
        return sum(
            1
            for a, b in zip(self.aligned_s, self.aligned_t)
            if a == b and a != "-"
        )

    @property
    def identity(self) -> float:
        return self.matches / self.length if self.length else 0.0

    def verify(self, scoring: Scoring = DEFAULT_SCORING) -> bool:
        """Check the stored score against a recomputation from the columns."""
        return scoring.alignment_score(self.aligned_s, self.aligned_t) == self.score

    def render(self, width: int = 60, match_char: str = "|") -> str:
        """Pretty-print in blocks of ``width`` columns with a match ruler."""
        lines = []
        for i in range(0, self.length, width):
            a = self.aligned_s[i : i + width]
            b = self.aligned_t[i : i + width]
            ruler = "".join(
                match_char if x == y and x != "-" else " " for x, y in zip(a, b)
            ).rstrip()
            lines += [a, ruler, b, ""]
        return "\n".join(lines).rstrip("\n")


class AlignmentQueue:
    """The paper's queue of candidate alignments.

    Maintains insertion of candidates from any number of workers, then
    ``finalize()`` sorts by subsequence size (descending, so the dominant
    alignments such as Table 2's come first) and removes repeated or
    mutually-overlapping duplicates, exactly the post-processing described at
    the end of Section 4.1/4.3.
    """

    def __init__(self, items: Iterable[LocalAlignment] = ()) -> None:
        self._items: list[LocalAlignment] = list(items)

    def push(self, alignment: LocalAlignment) -> None:
        self._items.append(alignment)

    def extend(self, alignments: Iterable[LocalAlignment]) -> None:
        self._items.extend(alignments)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[LocalAlignment]:
        return iter(self._items)

    def merge(self, other: "AlignmentQueue") -> None:
        """Gather another worker's queue (paper: results are gathered at the end)."""
        self._items.extend(other._items)

    def finalize(
        self,
        min_score: int | None = None,
        overlap_slack: int = 0,
        merge: bool = False,
    ) -> list[LocalAlignment]:
        """Sort by size and drop (or merge) repeated/overlapping alignments.

        Exact duplicates are always removed; with ``overlap_slack >= 0`` an
        alignment whose rectangle overlaps an already-kept, larger alignment
        is treated as the same region re-discovered (the wave-front strategies
        can report one region once per band or per column slice) and dropped.
        With ``merge=True`` it instead *extends* the kept alignment to the
        union of both rectangles (score: the maximum) -- this reunifies a
        region split across processor borders.
        """
        kept: list[LocalAlignment] = []
        candidates = sorted(
            self._items, key=lambda a: (a.size, a.score, a.region), reverse=True
        )
        for cand in candidates:
            if min_score is not None and cand.score < min_score:
                continue
            matched = False
            for k, existing in enumerate(kept):
                if cand.overlaps(existing, slack=overlap_slack):
                    if merge:
                        kept[k] = LocalAlignment(
                            score=max(existing.score, cand.score),
                            s_start=min(existing.s_start, cand.s_start),
                            s_end=max(existing.s_end, cand.s_end),
                            t_start=min(existing.t_start, cand.t_start),
                            t_end=max(existing.t_end, cand.t_end),
                        )
                    matched = True
                    break
            if not matched:
                kept.append(cand)
        kept.sort(key=lambda a: (a.size, a.score, a.region), reverse=True)
        return kept
