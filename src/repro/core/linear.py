"""Linear-space (two-row) Smith-Waterman score pass.

Section 4.1 of the paper: "it is possible to simulate the filling of the
original bi-dimensional array using only two rows of memory because in order
to compute entry A[i,j], we require only the values of A[i-1,j], A[i-1,j-1]
and A[i,j-1]".  This module provides that scan for score-only questions: best
score and endpoint (the input to the Section 6 reverse-rebuild), per-row hit
counts (the input to the pre_process result matrix), and the last row of a
global alignment (the primitive Hirschberg's divide-and-conquer needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..seq.alphabet import encode
from .engine import KernelWorkspace
from .kernels import count_hits, initial_row
from .scoring import DEFAULT_SCORING, Scoring


@dataclass(frozen=True)
class ScoreEndpoint:
    """Best local score and the matrix cell (1-based DP coords) where it ends."""

    score: int
    i: int
    j: int


def iter_sw_rows(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(i, row_i)`` for i = 1..m, using two rows of memory.

    The yielded array is reused between iterations; callers that need to keep
    a row must copy it.
    """
    s = encode(s)
    t = encode(t)
    ws = KernelWorkspace(t, scoring)
    row = initial_row(len(t), local=True, scoring=scoring)
    for i in range(1, len(s) + 1):
        row = ws.sw_row(row, s[i - 1], out=row)
        yield i, row


def sw_best_endpoint(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
) -> ScoreEndpoint:
    """Best local-alignment score and endpoint in O(min-row) memory.

    Ties resolve to the smallest ``i`` then smallest ``j`` (first cell found
    in a row-major scan), matching :func:`repro.core.matrix.best_cell`.
    """
    best = ScoreEndpoint(0, 0, 0)
    for i, row in iter_sw_rows(s, t, scoring):
        j = int(np.argmax(row))
        score = int(row[j])
        if score > best.score:
            best = ScoreEndpoint(score, i, j)
    return best


def sw_endpoints_above(
    s: np.ndarray | str,
    t: np.ndarray | str,
    min_score: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> list[ScoreEndpoint]:
    """Endpoints of all distinct above-threshold alignments (linear space).

    A cell qualifies when it scores at least ``min_score`` and is a *summit*:
    no neighbouring continuation of the same alignment scores higher.  We
    detect summits streamingly by clustering above-threshold cells with
    :class:`repro.core.regions.StreamingRegionFinder` and reporting each
    cluster's peak, which is exactly the "detected alignment of desired score
    k at positions i, j" input of the paper's Algorithm 1.
    """
    from .regions import RegionConfig, StreamingRegionFinder

    if min_score <= 0:
        raise ValueError("min_score must be positive")
    finder = StreamingRegionFinder(RegionConfig(threshold=min_score))
    for i, row in iter_sw_rows(s, t, scoring):
        finder.feed(i, row)
    return [
        ScoreEndpoint(r.score, r.peak_i, r.peak_j)
        for r in finder.finish()
        if r.score >= min_score
    ]


def sw_row_hits(
    s: np.ndarray | str,
    t: np.ndarray | str,
    threshold: int,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Per-row counts of cells scoring at or above ``threshold``.

    Sequential reference of the pre_process strategy's scoreboard
    (Section 5); the parallel version distributes exactly this computation.
    """
    s_arr = encode(s)
    hits = np.zeros(len(s_arr), dtype=np.int64)
    for i, row in iter_sw_rows(s_arr, t, scoring):
        hits[i - 1] = count_hits(row, threshold)
    return hits


def nw_last_row(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
) -> np.ndarray:
    """Last row of the global (NW) similarity matrix in linear space.

    ``result[j] == sim_global(s, t[:j])``; this is the score vector
    Hirschberg's algorithm combines from both directions.
    """
    s = encode(s)
    t = encode(t)
    ws = KernelWorkspace(t, scoring)
    row = initial_row(len(t), local=False, scoring=scoring)
    for i in range(1, len(s) + 1):
        row = ws.nw_row(row, s[i - 1], i * scoring.gap, out=row)
    return row


def sw_scan(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
    on_row: Callable[[int, np.ndarray], None] | None = None,
) -> ScoreEndpoint:
    """One linear-space pass that both tracks the best endpoint and streams rows.

    ``on_row(i, row)`` (if given) observes every computed row; this is the
    hook the simulated cluster kernels use to feed hit counters and region
    finders without a second pass over the matrix.
    """
    best = ScoreEndpoint(0, 0, 0)
    for i, row in iter_sw_rows(s, t, scoring):
        if on_row is not None:
            on_row(i, row)
        j = int(np.argmax(row))
        score = int(row[j])
        if score > best.score:
            best = ScoreEndpoint(score, i, j)
    return best
