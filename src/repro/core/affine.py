"""Affine-gap local/global alignment (Gotoh's algorithm).

The paper evaluates with a linear gap penalty (-2 per space); real aligners
usually charge gap *opening* more than gap *extension*.  This extension
module provides exact affine-gap alignment with the same vectorization
discipline as :mod:`repro.core.kernels`:

    H[i,j] = max(H[i-1,j-1] + sub, E[i,j], F[i,j] [, 0])
    E[i,j] = max(H[i,j-1] + open, E[i,j-1] + extend)      (gap in s)
    F[i,j] = max(H[i-1,j] + open, F[i-1,j] + extend)      (gap in t)

``F`` depends only on the previous row and vectorizes directly.  ``E``
chains along the current row, but for ``open <= extend`` (opening at least
as expensive as extending, the only sensible regime) a gap run is never
improved by closing and reopening, so every ``E`` chain starts at a non-E
cell and the chain resolves exactly with one running-max scan:

    E[j] = open + extend*(j-1) + max_{k<j}(C[k] - extend*k)

where ``C`` is the row of candidate scores before horizontal moves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..seq.alphabet import DNA_ALPHABET, Alphabet, decode, encode
from .alignment import GlobalAlignment
from .kernels import SCORE_DTYPE
from .matrix import MAX_FULL_MATRIX_CELLS, MatrixTooLarge, TracebackResult
from .scoring import Scoring

#: "minus infinity" for int32 score matrices (room to add without wrapping).
NEG_INF = np.int32(-(2**30))


@dataclass(frozen=True)
class AffineScoring:
    """Match/mismatch plus affine gap costs.

    ``gap_open`` is the score of the *first* gap character (opening
    included); ``gap_extend`` of each further one.  Requires
    ``gap_open <= gap_extend < 0`` (see module docstring).

    For *local* alignment on random sequences to stay in the logarithmic
    regime, additionally keep ``match + gap_extend <= 0``: otherwise a long
    gap run paired with the matches it buys gains score without bound and
    "local" alignments sprawl across the whole matrix.  This is a modelling
    property, not a correctness requirement, so it is documented rather
    than enforced.
    """

    match: int = 2
    mismatch: int = -1
    gap_open: int = -4
    gap_extend: int = -1

    def __post_init__(self) -> None:
        if not self.gap_open <= self.gap_extend < 0:
            raise ValueError("need gap_open <= gap_extend < 0")
        if self.match <= self.mismatch:
            raise ValueError("match score must exceed mismatch score")

    def substitution_row(self, s_char: int, t_codes: np.ndarray) -> np.ndarray:
        return np.where(
            t_codes == s_char, np.int32(self.match), np.int32(self.mismatch)
        ).astype(SCORE_DTYPE, copy=False)

    def pair_score(self, a: int, b: int) -> int:
        return self.match if a == b else self.mismatch

    def gap_run_score(self, length: int) -> int:
        """Score of a run of ``length`` consecutive gap characters."""
        if length <= 0:
            return 0
        return self.gap_open + (length - 1) * self.gap_extend

    def alignment_score(self, a: str, b: str) -> int:
        """Score a rendered alignment under affine gap costs."""
        if len(a) != len(b):
            raise ValueError("aligned strings must have equal length")
        total = 0
        in_gap_a = in_gap_b = False
        for x, y in zip(a, b):
            if x == "-" and y == "-":
                raise ValueError("column with two spaces")
            if x == "-":
                total += self.gap_extend if in_gap_a else self.gap_open
                in_gap_a, in_gap_b = True, False
            elif y == "-":
                total += self.gap_extend if in_gap_b else self.gap_open
                in_gap_a, in_gap_b = False, True
            else:
                total += self.text_pair_score(x, y)
                in_gap_a = in_gap_b = False
        return total

    def text_pair_score(self, x: str, y: str) -> int:
        """Score of two aligned residue characters (hook for matrices)."""
        return self.match if x == y else self.mismatch


#: A common DNA affine scheme.
DEFAULT_AFFINE = AffineScoring()


def _resolve_e(cand: np.ndarray, open_: int, extend: int) -> np.ndarray:
    """Exact E row from the candidate row (see module docstring)."""
    n = cand.size
    e = np.full(n, NEG_INF, dtype=np.int64)
    if n <= 1:
        return e.astype(SCORE_DTYPE)
    idx = np.arange(n, dtype=np.int64)
    chain = np.maximum.accumulate(cand.astype(np.int64) - extend * idx)
    e[1:] = open_ + extend * (idx[1:] - 1) + chain[:-1]
    return np.clip(e, NEG_INF, None).astype(SCORE_DTYPE)


def affine_row_step(
    prev_h: np.ndarray,
    prev_f: np.ndarray,
    s_char: int,
    t_codes: np.ndarray,
    scoring: AffineScoring,
    local: bool = True,
    h_boundary: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Advance one Gotoh row; returns ``(H, E, F)`` for row ``i``.

    For global alignment pass ``h_boundary = gap_run_score(i)`` and
    ``local=False``.
    """
    sub = scoring.substitution_row(int(s_char), t_codes)
    f = np.maximum(
        prev_h.astype(np.int64) + scoring.gap_open,
        prev_f.astype(np.int64) + scoring.gap_extend,
    )
    f[0] = NEG_INF
    f = np.clip(f, NEG_INF, None).astype(SCORE_DTYPE)
    cand = np.empty(prev_h.size, dtype=SCORE_DTYPE)
    if local:
        cand[0] = 0
    else:
        if h_boundary is None:
            raise ValueError("global rows need the boundary value")
        cand[0] = h_boundary
    np.maximum(prev_h[:-1] + sub, f[1:], out=cand[1:])
    if local:
        np.maximum(cand[1:], 0, out=cand[1:])
    e = _resolve_e(cand, scoring.gap_open, scoring.gap_extend)
    h = np.maximum(cand, e)
    return h, e, f


def affine_matrices(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: AffineScoring = DEFAULT_AFFINE,
    local: bool = True,
    alphabet: Alphabet = DNA_ALPHABET,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full Gotoh H/E/F matrices (for traceback; capped like matrix.py)."""
    s = alphabet.encode(s)
    t = alphabet.encode(t)
    m, n = len(s), len(t)
    if 3 * (m + 1) * (n + 1) > MAX_FULL_MATRIX_CELLS:
        raise MatrixTooLarge("affine matrices exceed the cell cap")
    H = np.empty((m + 1, n + 1), dtype=SCORE_DTYPE)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=SCORE_DTYPE)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=SCORE_DTYPE)
    if local:
        H[0] = 0
    else:
        H[0, 0] = 0
        for j in range(1, n + 1):
            H[0, j] = scoring.gap_run_score(j)
            E[0, j] = H[0, j]
    for i in range(1, m + 1):
        boundary = None if local else scoring.gap_run_score(i)
        H[i], E[i], F[i] = affine_row_step(
            H[i - 1], F[i - 1], s[i - 1], t, scoring, local, boundary
        )
        if not local:
            F[i, 0] = H[i, 0] = scoring.gap_run_score(i)
    return H, E, F


def _trace_affine(
    H: np.ndarray,
    E: np.ndarray,
    F: np.ndarray,
    s: np.ndarray,
    t: np.ndarray,
    i: int,
    j: int,
    local: bool,
    scoring: AffineScoring,
    alphabet: Alphabet = DNA_ALPHABET,
) -> TracebackResult:
    """State-machine traceback over the three Gotoh matrices."""
    end_i, end_j = i, j
    score = int(H[i, j])
    a: list[str] = []
    b: list[str] = []
    state = "M"
    while i > 0 or j > 0:
        if state == "M":
            if local and H[i, j] == 0:
                break
            h = int(H[i, j])
            if i > 0 and j > 0 and h == int(H[i - 1, j - 1]) + scoring.pair_score(
                int(s[i - 1]), int(t[j - 1])
            ):
                a.append(alphabet.decode(s[i - 1 : i]))
                b.append(alphabet.decode(t[j - 1 : j]))
                i -= 1
                j -= 1
            elif j > 0 and h == int(E[i, j]):
                state = "E"
            elif i > 0 and h == int(F[i, j]):
                state = "F"
            else:
                raise AssertionError("inconsistent Gotoh matrices (M state)")
        elif state == "E":
            a.append("-")
            b.append(alphabet.decode(t[j - 1 : j]))
            if int(E[i, j]) == int(H[i, j - 1]) + scoring.gap_open:
                state = "M"
            elif j > 1 and int(E[i, j]) == int(E[i, j - 1]) + scoring.gap_extend:
                pass  # stay in E
            else:
                state = "M"
            j -= 1
        else:  # F
            a.append(alphabet.decode(s[i - 1 : i]))
            b.append("-")
            if int(F[i, j]) == int(H[i - 1, j]) + scoring.gap_open:
                state = "M"
            elif i > 1 and int(F[i, j]) == int(F[i - 1, j]) + scoring.gap_extend:
                pass  # stay in F
            else:
                state = "M"
            i -= 1
    alignment = GlobalAlignment("".join(reversed(a)), "".join(reversed(b)), score)
    return TracebackResult(alignment, i, j, end_i, end_j)


def affine_smith_waterman(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: AffineScoring = DEFAULT_AFFINE,
    alphabet: Alphabet = DNA_ALPHABET,
) -> TracebackResult:
    """Best local alignment under affine gap costs."""
    s = alphabet.encode(s)
    t = alphabet.encode(t)
    H, E, F = affine_matrices(s, t, scoring, local=True, alphabet=alphabet)
    flat = int(np.argmax(H))
    i, j = flat // H.shape[1], flat % H.shape[1]
    return _trace_affine(
        H, E, F, s, t, i, j, local=True, scoring=scoring, alphabet=alphabet
    )


def affine_needleman_wunsch(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: AffineScoring = DEFAULT_AFFINE,
    alphabet: Alphabet = DNA_ALPHABET,
) -> GlobalAlignment:
    """Best global alignment under affine gap costs."""
    s = alphabet.encode(s)
    t = alphabet.encode(t)
    H, E, F = affine_matrices(s, t, scoring, local=False, alphabet=alphabet)
    return _trace_affine(
        H, E, F, s, t, len(s), len(t), local=False, scoring=scoring, alphabet=alphabet
    ).alignment


def affine_best_score(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: AffineScoring = DEFAULT_AFFINE,
) -> int:
    """Best local affine score in linear space (two H rows + one F row)."""
    s = encode(s)
    t = encode(t)
    h = np.zeros(len(t) + 1, dtype=SCORE_DTYPE)
    f = np.full(len(t) + 1, NEG_INF, dtype=SCORE_DTYPE)
    best = 0
    for ch in s:
        h, _e, f = affine_row_step(h, f, int(ch), t, scoring, local=True)
        best = max(best, int(h.max()))
    return best


def gotoh_naive(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: AffineScoring = DEFAULT_AFFINE,
    local: bool = True,
) -> int:
    """Per-cell reference Gotoh (differential testing only).

    Accepts pre-encoded uint8 arrays of any alphabet, or DNA text.
    """
    s = s if isinstance(s, np.ndarray) else encode(s)
    t = t if isinstance(t, np.ndarray) else encode(t)
    m, n = len(s), len(t)
    neg = int(NEG_INF)
    H = [[0] * (n + 1) for _ in range(m + 1)]
    E = [[neg] * (n + 1) for _ in range(m + 1)]
    F = [[neg] * (n + 1) for _ in range(m + 1)]
    if not local:
        for j in range(1, n + 1):
            H[0][j] = E[0][j] = scoring.gap_run_score(j)
        for i in range(1, m + 1):
            H[i][0] = F[i][0] = scoring.gap_run_score(i)
    best = 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i][j] = max(H[i][j - 1] + scoring.gap_open, E[i][j - 1] + scoring.gap_extend)
            F[i][j] = max(H[i - 1][j] + scoring.gap_open, F[i - 1][j] + scoring.gap_extend)
            diag = H[i - 1][j - 1] + scoring.pair_score(int(s[i - 1]), int(t[j - 1]))
            H[i][j] = max(diag, E[i][j], F[i][j])
            if local:
                H[i][j] = max(H[i][j], 0)
            best = max(best, H[i][j])
    return best if local else H[m][n]
