"""Bounded top-k selection with deterministic tie-breaking.

Used by the database-search pipeline: workers (or the inline scan) keep a
local heap of the best ``(score, db_index)`` pairs and the coordinator merges
them.  Because the comparison key ``(score, -index)`` is a total order, the
surviving set -- and therefore the final ranking -- does not depend on
insertion order, so any interleaving of workers yields byte-identical
results to a sequential scan.
"""

from __future__ import annotations

import heapq

import numpy as np


class TopK:
    """A bounded max-score heap with deterministic tie-breaking.

    Entries are ``(score, db_index)``; ordering is by score descending then
    index ascending.  Because the comparison key ``(score, -index)`` is a
    total order, the surviving set (and therefore :meth:`ranked`) does not
    depend on insertion order -- workers may push in any interleaving.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k
        self._heap: list[tuple[int, int]] = []

    def push(self, score: int, index: int) -> None:
        if self.k == 0:
            return
        entry = (score, -index)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    def push_lanes(self, scores: np.ndarray, indices: np.ndarray) -> None:
        """Push one bucket's per-lane best scores."""
        for lane in range(len(indices)):
            self.push(int(scores[lane]), int(indices[lane]))

    def merge(self, other: "TopK | list | tuple") -> None:
        """Fold another heap (or a heap's :meth:`items` list) into this one.

        Accepts either a :class:`TopK` -- the shard-merge form -- or a plain
        iterable of ``(score, index)`` pairs (worker-local :meth:`items`).
        Merging goes through :meth:`push`, so the strict total order
        ``(score, -index)`` decides every survivor: a tie with this heap's
        k-th entry at a *smaller* database index still displaces it, exactly
        as if both heaps' entries had been pushed into one heap from the
        start.  That invariance is what makes the sharded search's
        tournament reduce (:func:`tournament_merge`) order-independent and
        bitwise-equal to a sequential scan.
        """
        items = other.items() if isinstance(other, TopK) else other
        for score, index in items:
            self.push(score, index)

    def threshold(self) -> float:
        """Score a candidate must *beat or tie* to enter the current top-k.

        The k-th best score seen so far, ``-inf`` while the heap is underfull
        (anything can still enter), ``+inf`` for ``k == 0`` (nothing can).
        Exact pruning must be strict -- drop a candidate only when its score
        ceiling is ``< threshold()`` -- because a tie with the k-th entry at a
        smaller database index still displaces it.
        """
        if self.k == 0:
            return float("inf")
        if len(self._heap) < self.k:
            return float("-inf")
        return float(self._heap[0][0])

    def items(self) -> list[tuple[int, int]]:
        """Unordered ``(score, index)`` survivors (picklable)."""
        return [(score, -neg) for score, neg in self._heap]

    def ranked(self) -> list[tuple[int, int]]:
        """Survivors sorted by score descending, index ascending."""
        return sorted(self.items(), key=lambda e: (-e[0], e[1]))


def tournament_merge(tops: list[TopK], k: int) -> TopK:
    """Merge per-shard heaps pairwise (SWAPHI's final top-k reduce).

    Rounds halve the field: heap ``i`` absorbs heap ``i + stride`` until one
    remains.  Because :meth:`TopK.merge` is a fold through the strict
    ``(score, -index)`` total order, the result is independent of pairing
    *and* of how lanes were sharded: any sequence outside its shard's local
    top-k is dominated by ``k`` same-shard entries and so can never enter
    the global top-k -- dropping it locally loses nothing.  The tournament
    shape matters only for the simulated cluster (log-depth merge traffic),
    not for the answer.
    """
    if not tops:
        return TopK(k)
    ring = list(tops)
    while len(ring) > 1:
        nxt: list[TopK] = []
        for i in range(0, len(ring) - 1, 2):
            ring[i].merge(ring[i + 1])
            nxt.append(ring[i])
        if len(ring) % 2:
            nxt.append(ring[-1])
        ring = nxt
    return ring[0]
