"""Full-matrix Smith-Waterman / Needleman-Wunsch with traceback.

This is the textbook O(m*n) space algorithm of Sections 2.1-2.3 of the paper
(Figs. 3 and 4): build the whole similarity array, then follow the arrows
back from a maximal entry.  The paper itself cannot afford this memory at
its sequence sizes -- that is the entire motivation for the three parallel
strategies -- but the full matrix is the ground truth every space-reduced
variant in this repository is tested against, and it is what phase 2 uses on
the short subsequences it globally aligns.

Arrows are not stored: at traceback time the move is re-derived from the
score values, which is equivalent and halves the memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..seq.alphabet import DNA_ALPHABET, Alphabet, decode, encode
from .alignment import GlobalAlignment, LocalAlignment
from .engine import KernelWorkspace
from .kernels import SCORE_DTYPE, initial_row
from .scoring import DEFAULT_SCORING, Scoring

#: Guard against accidentally materialising a paper-sized matrix: 64M cells
#: (~256 MB of int32) is the most this module will allocate.
MAX_FULL_MATRIX_CELLS = 64_000_000


class MatrixTooLarge(MemoryError):
    """Raised when the requested full matrix would exceed the safety cap."""


def similarity_matrix(
    s: np.ndarray | str,
    t: np.ndarray | str,
    local: bool = True,
    scoring: Scoring = DEFAULT_SCORING,
    alphabet: Alphabet = DNA_ALPHABET,
) -> np.ndarray:
    """Build the (m+1) x (n+1) similarity array of Fig. 3 (local) / Fig. 4 (global)."""
    s = alphabet.encode(s)
    t = alphabet.encode(t)
    m, n = len(s), len(t)
    if (m + 1) * (n + 1) > MAX_FULL_MATRIX_CELLS:
        raise MatrixTooLarge(
            f"full matrix of {(m + 1) * (n + 1)} cells exceeds the "
            f"{MAX_FULL_MATRIX_CELLS}-cell cap; use repro.core.linear or "
            "repro.core.exact_linear instead"
        )
    H = np.empty((m + 1, n + 1), dtype=SCORE_DTYPE)
    H[0] = initial_row(n, local, scoring)
    ws = KernelWorkspace(t, scoring)
    if local:
        ws.sw_rows(H[0], s, out=H[1:])
    else:
        boundaries = np.arange(1, m + 1, dtype=np.int64) * scoring.gap
        ws.nw_rows(H[0], s, boundaries, out=H[1:])
    return H


def best_cell(H: np.ndarray) -> tuple[int, int]:
    """Coordinates of the maximal entry (ties: smallest i, then smallest j)."""
    flat = int(np.argmax(H))
    return flat // H.shape[1], flat % H.shape[1]


@dataclass(frozen=True)
class TracebackResult:
    """A traced alignment: the rendered strings plus the matrix path ends."""

    alignment: GlobalAlignment
    s_start: int  # 0-based, inclusive
    t_start: int
    s_end: int  # 0-based, exclusive
    t_end: int

    def as_local(self) -> LocalAlignment:
        return LocalAlignment(
            score=self.alignment.score,
            s_start=self.s_start,
            s_end=self.s_end,
            t_start=self.t_start,
            t_end=self.t_end,
        )


def _trace(
    H: np.ndarray,
    s: np.ndarray,
    t: np.ndarray,
    i: int,
    j: int,
    local: bool,
    scoring: Scoring,
    alphabet: Alphabet = DNA_ALPHABET,
) -> TracebackResult:
    """Follow arrows from (i, j) to a stop cell, re-deriving moves from scores.

    Preference order on ties is north-west, north, west (the conventional
    choice; Section 4.1's counter-based tie-breaking applies only to the
    heuristic variant, implemented in :mod:`repro.core.heuristic`).
    """
    end_i, end_j = i, j
    score = int(H[i, j])
    a: list[str] = []
    b: list[str] = []
    gap = scoring.gap
    while i > 0 or j > 0:
        if local and H[i, j] == 0:
            break
        h = int(H[i, j])
        if i > 0 and j > 0:
            sub = scoring.pair_score(int(s[i - 1]), int(t[j - 1]))
            if h == int(H[i - 1, j - 1]) + sub:
                a.append(alphabet.decode(s[i - 1 : i]))
                b.append(alphabet.decode(t[j - 1 : j]))
                i -= 1
                j -= 1
                continue
        if i > 0 and h == int(H[i - 1, j]) + gap:
            a.append(alphabet.decode(s[i - 1 : i]))
            b.append("-")
            i -= 1
            continue
        if j > 0 and h == int(H[i, j - 1]) + gap:
            a.append("-")
            b.append(alphabet.decode(t[j - 1 : j]))
            j -= 1
            continue
        raise AssertionError("inconsistent similarity matrix during traceback")
    alignment = GlobalAlignment("".join(reversed(a)), "".join(reversed(b)), score)
    return TracebackResult(alignment, i, j, end_i, end_j)


def smith_waterman(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
    alphabet: Alphabet = DNA_ALPHABET,
) -> TracebackResult:
    """Best local alignment via the full-matrix SW algorithm (Section 2)."""
    s = alphabet.encode(s)
    t = alphabet.encode(t)
    H = similarity_matrix(s, t, local=True, scoring=scoring, alphabet=alphabet)
    i, j = best_cell(H)
    return _trace(H, s, t, i, j, local=True, scoring=scoring, alphabet=alphabet)


def needleman_wunsch(
    s: np.ndarray | str,
    t: np.ndarray | str,
    scoring: Scoring = DEFAULT_SCORING,
    alphabet: Alphabet = DNA_ALPHABET,
) -> GlobalAlignment:
    """Best global alignment via the full-matrix NW algorithm (Section 2.3)."""
    s = alphabet.encode(s)
    t = alphabet.encode(t)
    H = similarity_matrix(s, t, local=False, scoring=scoring, alphabet=alphabet)
    return _trace(
        H, s, t, len(s), len(t), local=False, scoring=scoring, alphabet=alphabet
    ).alignment


def local_alignments_above(
    s: np.ndarray | str,
    t: np.ndarray | str,
    min_score: int,
    scoring: Scoring = DEFAULT_SCORING,
    max_alignments: int = 100,
) -> list[TracebackResult]:
    """All non-overlapping local alignments scoring at least ``min_score``.

    Repeatedly traces the best remaining endpoint, then masks the traced
    rectangle so subsequent alignments do not share cells.  This is the
    full-matrix ground truth for the candidate queues produced by the
    paper's heuristic strategies.
    """
    s = encode(s)
    t = encode(t)
    H = similarity_matrix(s, t, local=True, scoring=scoring)
    results: list[TracebackResult] = []
    masked = H.copy()
    while len(results) < max_alignments:
        i, j = best_cell(masked)
        if masked[i, j] < min_score:
            break
        result = _trace(H, s, t, i, j, local=True, scoring=scoring)
        # Endpoints in the slow decay tail of an already-reported region
        # trace back into it; drop them, but keep masking so the scan
        # progresses.
        local = result.as_local()
        if not any(local.overlaps(r.as_local()) for r in results):
            results.append(result)
        masked[result.s_start : result.s_end + 1, result.t_start : result.t_end + 1] = 0
        masked[i, j] = 0
    return results
