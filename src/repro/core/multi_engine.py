"""Multi-sequence DP workspace: one query row advanced across many targets.

:class:`repro.core.engine.KernelWorkspace` removes the per-row allocation
overhead of a single pairwise scan, but a *database search* (one query
against thousands of short targets) is still dominated by per-sequence
Python/numpy dispatch: a 500 bp target means every vector op touches only a
few hundred elements, so the interpreter -- not the ALU -- sets the pace.

:class:`MultiSequenceWorkspace` applies the inter-task parallelisation of
SWAPHI's Xeon Phi kernels (see PAPERS.md): pack ``k`` length-bucketed
targets into one padded code matrix and advance *all k* DP rows per numpy
call, so the batch axis plays the role of the SIMD lane axis.  Three layout
decisions carry the throughput:

* **Lanes are the contiguous axis.**  The DP state is ``(n + 1, k)`` --
  target position outer, lane inner -- so every vector op streams over
  contiguous same-position lanes.  Crucially, the horizontal-gap chain
  (``H[j] = max(C[j], H[j-1] + gap)``) runs as one vectorized ``maximum``
  per *column* over all ``k`` lanes, instead of ``numpy``'s
  ``maximum.accumulate`` whose inner loop is serial per element in either
  layout.  For narrow batches the accumulate is cheaper, so the workspace
  picks per batch (:data:`CHAIN_LOOP_MIN_LANES`).
* **Narrow lanes when scores provably fit.**  With short targets the paper's
  unit scores are bounded far below ``2**15``, so the whole row state drops
  to int16 -- double the SIMD width and half the memory traffic of
  :data:`SCORE_DTYPE` -- whenever ``match * n`` and every intermediate
  (candidate + ramp, chain minimum) fit with margin; otherwise int32 (and
  the usual int64 widening for enormous widths).  Returned scores are
  always :data:`SCORE_DTYPE`.
* **Padding mask.**  Lanes shorter than the bucket width are padded with
  :data:`PAD_CODE`; the query profile maps padded positions to a score
  dominating any real score, so a diagonal move can never enter padding
  competitively.  Gap moves *can* flow rightwards into the padding, but
  every such path starts from a valid cell and only accumulates strictly
  negative penalties, so padded cells are strictly dominated by a valid
  cell already counted -- per-lane running maxima are exact with no
  per-lane slicing.

The Smith-Waterman zero-clamp is applied *after* the chain rather than
before it: with ``g = -gap > 0``,
``max_{i<=j}(max(C[i], 0) + g*i) = max(max_{i<=j}(C[i] + g*i), g*j)``
because ``g*i`` is increasing, so clamping the resolved row at 0 yields the
same values as clamping the candidates first -- one fewer full pass.

Valid-column values are bitwise identical to a per-sequence
:class:`KernelWorkspace` scan: column ``j``'s recurrence only reads columns
``<= j`` of the current row and ``j-1, j`` of the previous one, all valid
when ``j`` is.
"""

from __future__ import annotations

import numpy as np

from ..obs import count_cells
from .scoring import DEFAULT_SCORING, SCORE_DTYPE, Scoring

#: Code used for padded positions of the packed target matrix.  Outside every
#: real alphabet (DNA is 0..3, proteins 0..24), so profiles can mask on it.
PAD_CODE = np.uint8(255)

#: Substitution score of a query character against a padded position in the
#: int32 lane mode.  Large enough (in magnitude) to dominate any score
#: reachable in the narrow int32 regime, small enough that ``prev + PAD``
#: cannot wrap.
PAD_SCORE = SCORE_DTYPE(-(2**30))

#: The int16 counterpart.  Scores are bounded by ``match * n <= 2**13`` when
#: this mode is selected, so ``-(2**13)`` dominates and every intermediate
#: (down to ``PAD_SCORE_16 - g*(n+1) > -2**15``) stays in range.
PAD_SCORE_16 = np.int16(-(2**13))

#: Batch width at which the per-column vectorized chain loop overtakes
#: ``np.maximum.accumulate`` (whose inner loop is serial per element).
CHAIN_LOOP_MIN_LANES = 128


def pack_codes(targets, width: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Pack encoded target sequences into a padded ``(k, width)`` matrix.

    Returns ``(codes, lengths)`` where padded positions hold
    :data:`PAD_CODE`.  ``width`` defaults to the longest target.
    """
    lengths = np.array([int(len(t)) for t in targets], dtype=np.int64)
    if width is None:
        width = int(lengths.max()) if lengths.size else 0
    if lengths.size and int(lengths.max()) > width:
        raise ValueError(f"target longer than pack width {width}")
    codes = np.full((len(lengths), width), PAD_CODE, dtype=np.uint8)
    for lane, t in enumerate(targets):
        codes[lane, : lengths[lane]] = t
    return codes, lengths


class MultiSequenceWorkspace:
    """Reusable state for advancing ``k`` DP rows, one per packed target.

    ``codes`` is a ``(k, n)`` uint8 matrix of encoded targets padded with
    :data:`PAD_CODE` (as produced by :func:`pack_codes`); ``lengths`` gives
    each lane's real length.  Row blocks have shape ``(n + 1, k)`` -- the
    usual leading boundary column, lanes contiguous.  ``eager_codes`` lists
    the query codes profiled up front (default: the DNA alphabet); other
    codes are profiled lazily, so protein batches work unchanged.
    """

    __slots__ = (
        "scoring",
        "lengths",
        "lanes",
        "width",
        "dtype",
        "_codes_t",
        "_valid",
        "_gap",
        "_pad_score",
        "_wide",
        "_ramp",
        "_cand",
        "_tmp",
        "_acc",
        "_zero",
        "_row",
        "_row_views",
        "_rowmax",
        "_profile",
    )

    def __init__(
        self,
        codes: np.ndarray,
        lengths,
        scoring: Scoring = DEFAULT_SCORING,
        eager_codes=range(4),
    ) -> None:
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.ndim != 2:
            raise ValueError("codes must be a (k, n) matrix")
        k, n = codes.shape
        self.lengths = np.asarray(lengths, dtype=np.int64)
        if self.lengths.shape != (k,):
            raise ValueError("lengths must have one entry per lane")
        if self.lengths.size and int(self.lengths.max()) > n:
            raise ValueError("lane length exceeds the packed width")
        self.scoring = scoring
        self.lanes = k
        self.width = n
        self._gap = int(scoring.gap)
        self._codes_t = np.ascontiguousarray(codes.T)
        self._valid = self._codes_t != PAD_CODE
        match, mismatch = int(scoring.match), int(scoring.mismatch)
        # Lane dtype: int16 when the score bound match*n and every
        # intermediate fit with margin (see module docstring), else the same
        # int32/int64 regime switch as KernelWorkspace.
        if (
            match * n <= 2**13
            and (match - self._gap) * (n + 2) <= 2**14
            and mismatch >= -(2**13)
        ):
            self.dtype = np.int16
            self._pad_score = PAD_SCORE_16
            self._wide = False
        else:
            self.dtype = SCORE_DTYPE
            self._pad_score = PAD_SCORE
            self._wide = (match - self._gap) * (n + 1) >= 2**30
        ramp_dtype = np.int64 if self._wide else self.dtype
        self._ramp = ((-self._gap) * np.arange(n + 1, dtype=ramp_dtype))[:, None]
        self._cand = np.empty((n + 1, k), dtype=self.dtype)
        self._tmp = np.empty((n, k), dtype=self.dtype)
        self._acc = np.empty((n + 1, k), dtype=np.int64) if self._wide else None
        # Zero-clamp operand: a scalar 0 falls off numpy's vectorized inner
        # loop for integer maximum, an array operand does not.
        self._zero = np.zeros((n + 1, k), dtype=np.int64 if self._wide else self.dtype)
        self._row = np.zeros((n + 1, k), dtype=self.dtype)
        # Pre-sliced per-column views of the owned row buffer: the chain loop
        # costs one vectorized maximum per column, no per-iteration slicing.
        self._row_views = [self._row[j] for j in range(n + 1)] if k >= CHAIN_LOOP_MIN_LANES else None
        self._rowmax = np.empty(k, dtype=self.dtype)
        self._profile: dict[int, np.ndarray] = {}
        for code in eager_codes:
            self.profile_block(int(code))

    # -- profile -----------------------------------------------------------

    def profile_block(self, s_char: int) -> np.ndarray:
        """The ``(n, k)`` substitution block of ``s_char`` vs every lane."""
        block = self._profile.get(s_char)
        if block is None:
            # Scorings may index 4x4 matrices with the codes, so padded cells
            # are remapped to code 0 for the lookup and then overwritten.
            safe = np.where(self._valid, self._codes_t, np.uint8(0))
            block = self.scoring.substitution_row(s_char, safe).astype(self.dtype)
            block[~self._valid] = self._pad_score
            self._profile[s_char] = np.ascontiguousarray(block)
            block = self._profile[s_char]
        return block

    # -- row kernel --------------------------------------------------------

    def initial_rows(self) -> np.ndarray:
        """A fresh all-zero ``(n+1, k)`` row block (local row 0)."""
        return np.zeros((self.width + 1, self.lanes), dtype=self.dtype)

    def _chain(self, x: np.ndarray) -> None:
        """In-place prefix maximum along axis 0 (the ramped gap chain)."""
        if x is self._row and self._row_views is not None:
            rows = self._row_views
            prev = rows[0]
            for cur in rows[1:]:
                np.maximum(cur, prev, out=cur)
                prev = cur
        elif x.shape[1] >= CHAIN_LOOP_MIN_LANES:
            prev = x[0]
            for j in range(1, x.shape[0]):
                cur = x[j]
                np.maximum(cur, prev, out=cur)
                prev = cur
        else:
            np.maximum.accumulate(x, axis=0, out=x)

    def sw_row(
        self, prev: np.ndarray, s_char: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Advance every lane by one Smith-Waterman row.

        ``prev`` is the ``(n+1, k)`` previous row block; ``out`` may alias
        ``prev`` for an in-place two-row scan.
        """
        if prev.shape != (self.width + 1, self.lanes):
            raise ValueError(
                f"prev block is {prev.shape}; workspace needs "
                f"{(self.width + 1, self.lanes)}"
            )
        cand = self._cand
        np.add(prev[:-1], self.profile_block(int(s_char)), out=cand[1:])
        np.add(prev[1:], self.dtype(self._gap), out=self._tmp)
        np.maximum(cand[1:], self._tmp, out=cand[1:])
        cand[0] = 0
        if out is None:
            out = np.empty((self.width + 1, self.lanes), dtype=self.dtype)
        if self._wide:
            acc = self._acc
            np.add(cand, self._ramp, out=acc)
            self._chain(acc)
            np.subtract(acc, self._ramp, out=acc)
            np.maximum(acc, self._zero, out=acc)
            out[:] = acc  # exact downcast: true row values fit the lane dtype
        else:
            np.add(cand, self._ramp, out=out)
            self._chain(out)
            np.subtract(out, self._ramp, out=out)
            np.maximum(out, self._zero, out=out)
        return out

    # -- whole-query scans -------------------------------------------------

    def sw_best_scores(self, s_codes) -> np.ndarray:
        """Best local alignment score of the query against every lane.

        Streams the query once down the whole batch, keeping a per-lane
        running maximum; returns a ``(k,)`` :data:`SCORE_DTYPE` vector
        bitwise equal to ``k`` independent :class:`KernelWorkspace` scans.
        """
        best = np.zeros(self.lanes, dtype=self.dtype)
        row = self._row
        row[:] = 0
        rowmax = self._rowmax
        for ch in s_codes:
            row = self.sw_row(row, int(ch), out=row)
            np.max(row, axis=0, out=rowmax)
            np.maximum(best, rowmax, out=best)
        # Only real cells count: padded slots do no useful work.
        count_cells(int(len(s_codes)) * int(self.lengths.sum()))
        return best.astype(SCORE_DTYPE)
