"""Zero-copy kernel workspace: query profiles, scratch reuse, batched rows.

:mod:`repro.core.kernels` computes each DP row correctly but wastefully: every
call re-derives the substitution vector with ``np.where`` (or a matrix
gather), allocates a candidate buffer, an ``arange`` ramp and two int64
temporaries, and throws them all away.  At the paper's sequence sizes the row
kernel is called tens of thousands of times per alignment, so the allocator
and the redundant passes dominate.

:class:`KernelWorkspace` is the fix, borrowing two standard tricks from the
SIMD Smith-Waterman literature (Rucci et al.'s KNL kernels, Farrar's striped
layout -- see PAPERS.md):

* **Query profile**: the substitution vector depends only on (scoring, target,
  query character), so the workspace computes it once per character code and
  reuses it for every row that character appears in.  For DNA that is four
  vectors for the whole alignment instead of one ``np.where`` per row.
* **Scratch reuse**: the candidate row, the int64 accumulate buffer and the
  ``gap * arange`` ramp used to resolve the horizontal-gap chain are allocated
  once and reused, so a row advance performs zero heap allocations when the
  caller supplies an output buffer (``out=`` may alias ``prev`` for a true
  in-place two-row scan).
* **Row batching**: ``sw_rows``/``nw_rows``/``sw_rows_slice`` advance many
  rows per Python call, which hoists attribute lookups and bounds checks out
  of the per-row path.

A workspace is bound to one ``(scoring, target)`` pair -- exactly the shape of
every loop in this repository: the target (or target slice) is fixed while the
query characters stream past.  The legacy :func:`repro.core.kernels.sw_row`
family remains as thin one-shot shims over this module.
"""

from __future__ import annotations

import numpy as np

from ..obs import count_cells
from .scoring import DEFAULT_SCORING, SCORE_DTYPE, Scoring


class KernelWorkspace:
    """Reusable state for advancing DP rows against one fixed target.

    ``t_codes`` is the encoded target (or target slice) every row is computed
    against.  ``eager_codes`` lists the query codes whose profile rows are
    precomputed up front (default: the DNA alphabet); any other code is
    profiled lazily on first use, so protein workspaces work unchanged.
    """

    __slots__ = (
        "t",
        "scoring",
        "width",
        "_gap",
        "_ramp",
        "_cand",
        "_tmp",
        "_acc",
        "_wide",
        "_zero",
        "_profile",
    )

    def __init__(
        self,
        t_codes: np.ndarray,
        scoring: Scoring = DEFAULT_SCORING,
        eager_codes=range(4),
    ) -> None:
        self.t = np.ascontiguousarray(t_codes)
        self.scoring = scoring
        n = int(self.t.size)
        self.width = n
        self._gap = int(scoring.gap)
        # Horizontal resolution ramp g*j (g = |gap|).  Candidate scores are
        # bounded by match*n above, so cand + g*j stays within int32 unless
        # (match + g) * (n + 1) approaches 2^31; only then is the int64
        # widening path needed.  The narrow path runs the whole resolution
        # in-place in the int32 output row: three passes, zero copies.
        self._wide = (int(scoring.match) - self._gap) * (n + 1) >= 2**30
        ramp_dtype = np.int64 if self._wide else SCORE_DTYPE
        self._ramp = (-self._gap) * np.arange(n + 1, dtype=ramp_dtype)
        self._cand = np.empty(n + 1, dtype=SCORE_DTYPE)
        self._tmp = np.empty(n, dtype=SCORE_DTYPE)
        self._acc = np.empty(n + 1, dtype=np.int64) if self._wide else None
        # Zero-clamp operand: a scalar 0 falls off numpy's vectorized inner
        # loop for integer maximum (~20x slower per row), an array does not.
        self._zero = np.zeros(n + 1, dtype=SCORE_DTYPE)
        self._profile: dict[int, np.ndarray] = {}
        for code in eager_codes:
            self.profile_row(int(code))

    # -- profile ----------------------------------------------------------

    def profile_row(self, s_char: int) -> np.ndarray:
        """Substitution scores of ``s_char`` against the whole target."""
        row = self._profile.get(s_char)
        if row is None:
            row = np.ascontiguousarray(
                self.scoring.substitution_row(s_char, self.t), dtype=SCORE_DTYPE
            )
            self._profile[s_char] = row
        return row

    # -- single-row kernels ------------------------------------------------

    def _candidates(self, prev: np.ndarray, s_char: int) -> np.ndarray:
        """Best score per cell over the diagonal and vertical moves."""
        if prev.size != self.width + 1:
            raise ValueError(
                f"prev row has {prev.size} cells; workspace target needs "
                f"{self.width + 1}"
            )
        cand = self._cand
        np.add(prev[:-1], self.profile_row(s_char), out=cand[1:])
        np.add(prev[1:], SCORE_DTYPE(self._gap), out=self._tmp)
        np.maximum(cand[1:], self._tmp, out=cand[1:])
        return cand

    def _resolve(self, out: np.ndarray | None, n_cells: int) -> np.ndarray:
        """Apply the horizontal-gap closed form to ``_cand`` and emit the row."""
        if out is None:
            out = np.empty(n_cells, dtype=SCORE_DTYPE)
        if self._wide:
            acc = self._acc
            np.add(self._cand, self._ramp, out=acc)
            np.maximum.accumulate(acc, out=acc)
            np.subtract(acc, self._ramp, out=acc)
            out[:] = acc  # exact downcast: true row values fit SCORE_DTYPE
        else:
            np.add(self._cand, self._ramp, out=out)
            np.maximum.accumulate(out, out=out)
            np.subtract(out, self._ramp, out=out)
        return out

    def sw_row(
        self, prev: np.ndarray, s_char: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        """One Smith-Waterman row; ``out`` may alias ``prev`` (in-place scan)."""
        cand = self._candidates(prev, int(s_char))
        cand[0] = 0
        np.maximum(cand, self._zero, out=cand)
        return self._resolve(out, prev.size)

    def nw_row(
        self,
        prev: np.ndarray,
        s_char: int,
        boundary: int,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """One Needleman-Wunsch row with ``boundary`` as the first column."""
        cand = self._candidates(prev, int(s_char))
        cand[0] = boundary
        return self._resolve(out, prev.size)

    def sw_row_slice(
        self,
        prev: np.ndarray,
        s_char: int,
        left_current: int,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """One SW row over a column slice given the left neighbour's border.

        Same layout contract as :func:`repro.core.kernels.sw_row_slice`; the
        workspace must have been built over the *slice* of the target.
        """
        cand = self._candidates(prev, int(s_char))
        cand[0] = left_current
        np.maximum(cand[1:], self._zero[1:], out=cand[1:])
        return self._resolve(out, prev.size)

    # -- batched kernels ---------------------------------------------------

    def sw_rows(
        self, prev: np.ndarray, s_codes, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Advance ``len(s_codes)`` SW rows; returns the ``(k, n+1)`` block."""
        k = len(s_codes)
        if out is None:
            out = np.empty((k, prev.size), dtype=SCORE_DTYPE)
        row = prev
        for r in range(k):
            row = self.sw_row(row, int(s_codes[r]), out=out[r])
        count_cells(k * self.width)  # one guarded hook per batch, never per row
        return out

    def nw_rows(
        self,
        prev: np.ndarray,
        s_codes,
        boundaries,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance ``len(s_codes)`` NW rows; ``boundaries[r]`` seeds column 0."""
        k = len(s_codes)
        if out is None:
            out = np.empty((k, prev.size), dtype=SCORE_DTYPE)
        row = prev
        for r in range(k):
            row = self.nw_row(row, int(s_codes[r]), int(boundaries[r]), out=out[r])
        count_cells(k * self.width)
        return out

    def sw_rows_slice(
        self,
        prev: np.ndarray,
        s_codes,
        lefts,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance a batch of slice rows; ``lefts[r]`` is the left border of row r."""
        k = len(s_codes)
        if out is None:
            out = np.empty((k, prev.size), dtype=SCORE_DTYPE)
        row = prev
        for r in range(k):
            row = self.sw_row_slice(row, int(s_codes[r]), int(lefts[r]), out=out[r])
        count_cells(k * self.width)
        return out


def compute_tile(
    top: np.ndarray,
    left_col: np.ndarray,
    s_band: np.ndarray,
    t_block: np.ndarray,
    scoring: Scoring = DEFAULT_SCORING,
    workspace: KernelWorkspace | None = None,
) -> np.ndarray:
    """DP over one (band x block) tile given its top row and left column.

    ``top`` has length ``w + 1``: ``top[0]`` is the diagonal corner
    ``H[r0-1, c0-1]`` and ``top[1:]`` the previous band's bottom row over
    this block's columns.  ``left_col[r] = H[r0+r, c0-1]`` comes from the
    block to the left (zeros at the matrix edge).  Returns the full tile
    including the left border column (shape ``h x (w+1)``).

    ``workspace`` (built over ``t_block``) lets callers that revisit the same
    column block -- every band of a blocked run -- amortize the query profile
    and scratch buffers across tiles.
    """
    h, w = len(s_band), len(t_block)
    ws = workspace if workspace is not None else KernelWorkspace(t_block, scoring)
    tile = np.empty((h, w + 1), dtype=SCORE_DTYPE)
    ws.sw_rows_slice(top, s_band, left_col, out=tile)
    return tile
