"""Striped query-profile Smith-Waterman kernels (lazy-F eliminated).

:class:`repro.core.MultiSequenceWorkspace` already turns the batch axis into
the SIMD lane axis, but its inner loop still walks the target one position at
a time: ``n`` vector ops per query row, each touching ``k`` lanes.  This
module applies the two remaining tricks of the wide-SIMD Smith-Waterman
literature (Farrar's striped layout; Snytsar's "de(con)struction of the
lazy-F loop" -- see PAPERS.md):

* **Striped layout.**  The target axis ``j`` is split as ``j = c*seg + r``
  into ``p = ceil(n/seg)`` segments of ``seg`` positions.  The DP state is a
  ``(seg, p, k)`` block -- plane ``r`` holds position ``r`` of *every*
  segment of *every* lane -- so one numpy call advances ``p*k`` cells and the
  serial plane loop runs only ``seg ~ sqrt(n)`` times per query row instead
  of ``n`` times.  Within a segment, plane ``r-1`` is position ``j-1``, so
  the within-segment part of the horizontal gap chain rides along the plane
  loop for free (one fused ``maximum`` per plane).

* **Lazy-F elimination.**  Farrar's kernel corrects cross-segment gap
  carries by re-running the column loop to a fixpoint.  Here the correction
  is computed analytically in two vector phases: phase 2 takes each
  segment's end value ``tend[c]`` and resolves the carry into segment
  ``c+1`` (a carry can only cross a *whole* segment when some end value
  exceeds ``span = |gap|*seg``, so the serial segment chain is skipped on
  the overwhelming majority of rows); phase 3 broadcasts
  ``carry[c] + gap*(r+1)`` over the first ``d`` planes, where ``d`` is
  truncated to the depth the row maximum can still reach.  No fixpoint loop,
  no data-dependent iteration count on the fast path.

* **Narrow lanes with overflow recovery.**  The scan runs in int8 or int16
  lanes.  numpy integer arithmetic wraps rather than saturates, so the
  layout *emulates* saturation by construction: the padded-position profile
  score is exactly ``iinfo.min + span``, which makes the most negative
  reachable intermediate (``pad + gap*seg``) land on ``iinfo.min`` without
  wrapping, and the detection threshold ``cap = -iinfo.min - span - hi - 1``
  leaves enough headroom above that a row whose maximum first reaches
  ``cap`` is still exact.  Lanes whose running maximum crosses ``cap`` get a
  sticky per-lane overflow flag (lanes never mix, so garbage after the first
  crossing stays lane-local) and are transparently recomputed at the next
  wider dtype -- int8 -> int16 -> int32 -- with only the flagged sequences
  re-scanned.

The scores are bitwise identical to :class:`KernelWorkspace` /
:class:`MultiSequenceWorkspace` scans: the zero-clamp is applied after the
chain (same identity as :mod:`repro.core.multi_engine` --
``max_{i<=j}(max(C[i],0)+g*i) = max(max_{i<=j}(C[i]+g*i), g*j)``), and every
narrow-lane result is either provably unwrapped or flagged and recomputed.

Striped query profiles are cached module-wide (LRU, keyed by target-batch
digest, scoring, lane dtype and segment length) so repeated searches against
the same packed database -- the pool serving pattern -- pay the profile
build once.  Hit/miss counters are exported through :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict

import numpy as np

from ..obs import count_cells, get_metrics, is_enabled
from .engine import KernelWorkspace
from .multi_engine import PAD_CODE, MultiSequenceWorkspace
from .scoring import DEFAULT_SCORING, SCORE_DTYPE, Scoring

__all__ = [
    "LANE_MODES",
    "LaneLimits",
    "StripedMultiWorkspace",
    "StripedPairWorkspace",
    "StripedProfile",
    "clear_profile_cache",
    "overflow_stats",
    "profile_cache_stats",
    "reset_overflow_stats",
    "score_bounds",
    "striped_profile",
]

#: Accepted ``lane_mode`` values: the *starting* rung of the escalation
#: ladder (rungs the scoring scheme cannot fit are skipped automatically).
LANE_MODES = ("auto", "int8", "int16", "int32")

_LADDERS = {
    "auto": (np.int8, np.int16, SCORE_DTYPE),
    "int8": (np.int8, np.int16, SCORE_DTYPE),
    "int16": (np.int16, SCORE_DTYPE),
    "int32": (SCORE_DTYPE,),
}

#: Upper bound on the segment length.  ``seg ~ sqrt(n)`` balances the serial
#: plane loop against per-dispatch overhead; beyond 64 planes the dispatch
#: cost dominates any further vector-width gain.
MAX_SEG = 64

#: Entries kept in the module-wide striped-profile LRU cache.
PROFILE_CACHE_CAPACITY = 16

_PROFILE_CACHE: "OrderedDict[tuple, StripedProfile]" = OrderedDict()
_PROFILE_STATS = {"hits": 0, "misses": 0, "evictions": 0}
_OVERFLOW_STATS = {"lanes": 0, "recomputes": 0}

_BOUNDS_CACHE: dict[Scoring, tuple[int, int]] = {}


def score_bounds(scoring: Scoring) -> tuple[int, int]:
    """``(lo, hi)`` bounds of the substitution scores over the DNA alphabet.

    Derived from the scoring object itself (not its ``match``/``mismatch``
    summary fields, which for :class:`MatrixScoring` are the diagonal max and
    off-diagonal min, not global bounds).
    """
    bounds = _BOUNDS_CACHE.get(scoring)
    if bounds is None:
        probe = np.arange(4, dtype=np.uint8)
        rows = [scoring.substitution_row(code, probe) for code in range(4)]
        flat = np.concatenate(rows)
        bounds = (int(flat.min()), int(flat.max()))
        _BOUNDS_CACHE[scoring] = bounds
    return bounds


class LaneLimits:
    """Saturation geometry of one lane dtype for one scoring scheme.

    ``span = |gap| * seg`` is the largest decay a gap chain suffers crossing
    one whole segment.  ``pad = iinfo.min + span`` is the padded-position
    profile score: the most negative reachable intermediate is
    ``pad + gap*seg = iinfo.min`` exactly, so nothing wraps below.
    ``cap = -iinfo.min - span - max(hi,0) - 1`` is the sticky overflow
    threshold: a row maximum that first reaches ``cap`` is still exact
    (``cap + hi <= iinfo.max``), anything at or above it flags the lane.
    """

    __slots__ = ("dtype", "seg", "gap", "span", "cap", "pad", "fits")

    def __init__(self, dtype, seg: int, gap: int, lo: int, hi: int) -> None:
        info = np.iinfo(dtype)
        self.dtype = np.dtype(dtype)
        self.seg = int(seg)
        self.gap = int(gap)
        self.span = (-self.gap) * self.seg
        self.cap = (-int(info.min)) - self.span - max(hi, 0) - 1
        self.pad = int(info.min) + self.span
        # Feasibility: the threshold leaves room for at least one real score
        # step, and every real profile entry is exactly representable (a
        # wrapped profile cast would corrupt scores *without* tripping the
        # overflow flag, so unfit dtypes must be skipped up front).
        self.fits = self.cap >= max(1, hi) and lo >= self.pad


def _pick_seg(n: int, dtype, gap: int, lo: int, hi: int) -> int:
    """Default segment length: ``~sqrt(n)``, clamped to what ``dtype`` fits.

    Returns 0 when no segment length makes the dtype feasible.
    """
    gi = -int(gap)
    info = np.iinfo(dtype)
    hm = max(hi, 0)
    seg_cap = ((-int(info.min)) - hm - 1 - max(1, hi)) // gi
    if lo < 0:
        seg_cap = min(seg_cap, (lo - int(info.min)) // gi)
    if seg_cap < 1:
        return 0
    base = max(1, math.isqrt(max(n, 1)))
    return min(base, seg_cap, MAX_SEG)


def profile_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters of the striped-profile LRU cache."""
    return dict(_PROFILE_STATS)


def clear_profile_cache() -> None:
    """Drop every cached striped profile and zero the cache counters."""
    _PROFILE_CACHE.clear()
    for key in _PROFILE_STATS:
        _PROFILE_STATS[key] = 0


def overflow_stats() -> dict[str, int]:
    """Cumulative overflow-escalation counters (lanes flagged, recomputes)."""
    return dict(_OVERFLOW_STATS)


def reset_overflow_stats() -> None:
    for key in _OVERFLOW_STATS:
        _OVERFLOW_STATS[key] = 0


class StripedProfile:
    """Farrar-striped query profile of one packed target batch.

    For each query code the profile is a ``(seg, p, k)`` block in the lane
    dtype -- plane ``r`` holds the substitution scores of the code against
    target position ``r`` of every segment of every lane -- stored as a
    tuple of per-plane views so the row kernel indexes no arrays in its hot
    loop.  Padded positions hold :attr:`LaneLimits.pad`.  DNA codes are
    profiled eagerly, anything else lazily (protein batches work unchanged).
    """

    __slots__ = ("scoring", "limits", "seg", "p", "k", "n", "npad", "_safe", "_invalid", "_blocks")

    def __init__(self, codes: np.ndarray, scoring: Scoring, limits: LaneLimits) -> None:
        k, n = codes.shape
        seg = limits.seg
        self.scoring = scoring
        self.limits = limits
        self.seg = seg
        self.k = k
        self.n = n
        self.p = -(-n // seg)
        self.npad = seg * self.p
        ct = np.full((self.npad, k), PAD_CODE, dtype=np.uint8)
        ct[:n] = codes.T
        striped = np.ascontiguousarray(ct.reshape(self.p, seg, k).transpose(1, 0, 2))
        self._invalid = striped == PAD_CODE
        # Scorings may index 4x4 matrices with the codes, so padded cells are
        # remapped to code 0 for the lookup and then overwritten.
        self._safe = np.where(self._invalid, np.uint8(0), striped)
        self._blocks: dict[int, tuple] = {}
        for code in range(4):
            self.block(code)

    def block(self, code: int) -> tuple:
        """Per-plane ``(p, k)`` views of the striped profile of ``code``."""
        planes = self._blocks.get(code)
        if planes is None:
            raw = self.scoring.substitution_row(code, self._safe).astype(self.limits.dtype)
            raw[self._invalid] = self.limits.pad
            block = np.ascontiguousarray(raw)
            planes = tuple(block[r] for r in range(self.seg))
            self._blocks[code] = planes
        return planes


def striped_profile(codes: np.ndarray, scoring: Scoring, limits: LaneLimits) -> StripedProfile:
    """The cached striped profile for ``(codes, scoring, dtype, seg)``.

    ``codes`` must be a C-contiguous ``(k, n)`` uint8 batch; the cache key is
    a digest of its bytes plus the scoring scheme and lane geometry, so pool
    workers re-serving the same packed database hit the cache on every query.
    """
    key = (
        hashlib.sha1(codes.tobytes()).hexdigest(),
        codes.shape,
        scoring,
        limits.dtype.name,
        limits.seg,
    )
    prof = _PROFILE_CACHE.get(key)
    if prof is not None:
        _PROFILE_CACHE.move_to_end(key)
        _PROFILE_STATS["hits"] += 1
        if is_enabled():
            get_metrics().counter("striped_profile_hits").inc()
        return prof
    _PROFILE_STATS["misses"] += 1
    if is_enabled():
        get_metrics().counter("striped_profile_misses").inc()
    prof = StripedProfile(codes, scoring, limits)
    _PROFILE_CACHE[key] = prof
    while len(_PROFILE_CACHE) > PROFILE_CACHE_CAPACITY:
        _PROFILE_CACHE.popitem(last=False)
        _PROFILE_STATS["evictions"] += 1
    return prof


class _StripedScan:
    """One narrow-lane pass over one packed batch: state plus the row kernel.

    Ping-pong ``(seg, p, k)`` state blocks with per-parity prebuilt plane
    views, so the hot row advance performs no slicing and no allocation.
    """

    __slots__ = (
        "_prof", "_seg", "_p", "_k", "_gi", "_g", "_gseg", "_span", "_cap",
        "_u", "_diag0", "_carry", "_endh", "_c3", "_zplane", "_decay",
        "_best", "_rowmax", "_ovf", "_ovtmp", "_plans", "_parity", "chain_rows",
    )

    def __init__(self, prof: StripedProfile) -> None:
        limits = prof.limits
        dt = limits.dtype
        seg, p, k = prof.seg, prof.p, prof.k
        self._prof = prof
        self._seg = seg
        self._p = p
        self._k = k
        self._gi = -limits.gap
        self._g = dt.type(limits.gap)
        self._gseg = dt.type(limits.gap * seg)
        self._span = limits.span
        self._cap = dt.type(limits.cap)
        h = np.zeros((seg, p, k), dtype=dt)
        t = np.zeros((seg, p, k), dtype=dt)
        self._u = np.empty((p, k), dtype=dt)
        self._diag0 = np.empty((p, k), dtype=dt)
        self._carry = np.empty((p, k), dtype=dt)
        self._endh = np.empty((p, k), dtype=dt)
        self._c3 = np.empty((seg, p, k), dtype=dt)
        # Clamp operand: a scalar 0 falls off numpy's vectorized inner loop
        # for integer maximum, an array operand does not.
        self._zplane = np.zeros((p, k), dtype=dt)
        self._decay = (dt.type(limits.gap) * np.arange(1, seg + 1, dtype=dt))[:, None, None]
        self._best = np.zeros(k, dtype=dt)
        self._rowmax = np.empty(k, dtype=dt)
        self._ovf = np.zeros(k, dtype=bool)
        self._ovtmp = np.empty(k, dtype=bool)
        self._plans = (self._plan(h, t), self._plan(t, h))
        self._parity = 0
        self.chain_rows = 0

    def _plan(self, prev_arr: np.ndarray, out_arr: np.ndarray) -> tuple:
        seg = self._seg
        pv = [prev_arr[r] for r in range(seg)]
        ov = [out_arr[r] for r in range(seg)]
        steps = tuple((ov[r], pv[r], pv[r - 1]) for r in range(1, seg))
        flat = out_arr.reshape(seg * self._p, self._k)
        return (ov[0], pv[0], pv[seg - 1], steps, out_arr, flat)

    def run(self, s_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Stream the query; returns ``(best, overflowed)`` per lane."""
        row = self._row
        prof = self._prof
        for ch in s_codes:
            row(prof.block(int(ch)))
        return self._best.astype(SCORE_DTYPE), self._ovf

    def _row(self, pv: tuple) -> None:  # repro: kernel -- striped lazy-F row advance
        cur0, h0, hlast, steps, out_arr, flat = self._plans[self._parity]
        add_ = np.add
        max_ = np.maximum
        diag0 = self._diag0
        diag0[1:] = hlast[:-1]
        diag0[0] = 0
        u = self._u
        g = self._g
        # Phase 1: diagonal + vertical candidates, fused with the
        # within-segment horizontal chain (plane r-1 is position j-1).
        add_(diag0, pv[0], out=cur0)
        add_(h0, g, out=u)
        max_(cur0, u, out=cur0)
        prev = cur0
        r = 1
        for cur, h, hm1 in steps:
            add_(hm1, pv[r], out=cur)
            max_(h, prev, out=u)
            add_(u, g, out=u)
            max_(cur, u, out=cur)
            prev = cur
            r += 1
        # Phase 2: cross-segment carries.  A carry can cross a *whole*
        # segment only when some end value exceeds span, so the serial
        # segment chain (the one data-dependent loop) is almost never taken.
        carry = self._carry
        tm = int(prev.max())
        if tm > self._span:
            tm = self._chain(prev)
            self.chain_rows += 1
        else:
            carry[1:] = prev[:-1]
            carry[0] = 0
        # Phase 3: inject carries, truncated to the depth d the row maximum
        # can still reach (deeper planes would only receive values the final
        # zero-clamp dominates anyway).
        d = min(self._seg, max(0, (tm - 1) // self._gi))
        if d > 0:
            c3 = self._c3
            add_(carry[None, :, :], self._decay[:d], out=c3[:d])
            max_(out_arr[:d], c3[:d], out=out_arr[:d])
        max_(out_arr, self._zplane, out=out_arr)
        np.maximum.reduce(flat, axis=0, out=self._rowmax)
        max_(self._best, self._rowmax, out=self._best)
        np.greater_equal(self._rowmax, self._cap, out=self._ovtmp)
        np.logical_or(self._ovf, self._ovtmp, out=self._ovf)
        self._parity ^= 1

    def _chain(self, tend: np.ndarray) -> int:  # repro: kernel -- rare serial carry chain
        endh = self._endh
        gseg = self._gseg
        add_ = np.add
        max_ = np.maximum
        endh[0] = tend[0]
        prev = endh[0]
        for c in range(1, self._p):
            cur = endh[c]
            add_(prev, gseg, out=cur)
            max_(cur, tend[c], out=cur)
            prev = cur
        carry = self._carry
        carry[1:] = endh[:-1]
        carry[0] = 0
        return int(carry.max())


def _run_scan(codes, s_codes, scoring, limits) -> tuple[np.ndarray, np.ndarray]:
    prof = striped_profile(codes, scoring, limits)
    return _StripedScan(prof).run(s_codes)


def _note_overflow(lanes_flagged: int) -> None:
    _OVERFLOW_STATS["lanes"] += lanes_flagged
    _OVERFLOW_STATS["recomputes"] += 1
    if is_enabled():
        metrics = get_metrics()
        metrics.counter("striped_overflow_lanes").inc(lanes_flagged)
        metrics.counter("striped_recomputes").inc()


class StripedMultiWorkspace:
    """Striped drop-in for :class:`MultiSequenceWorkspace` best-score scans.

    Same packed-batch contract (``codes`` is a ``(k, n)`` uint8 matrix padded
    with :data:`PAD_CODE`, ``lengths`` the per-lane real lengths) and the
    same result: :meth:`sw_best_scores` is bitwise equal to ``k`` independent
    :class:`KernelWorkspace` scans.  ``lane_mode`` picks the starting lane
    dtype of the escalation ladder (``"auto"`` starts at the narrowest dtype
    the scoring scheme fits); overflowed lanes are recomputed one rung wider
    with only the flagged sequences re-scanned.
    """

    __slots__ = ("scoring", "lengths", "lanes", "width", "lane_mode", "seg", "_codes")

    def __init__(
        self,
        codes: np.ndarray,
        lengths,
        scoring: Scoring = DEFAULT_SCORING,
        lane_mode: str = "auto",
        seg: int | None = None,
    ) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        if codes.ndim != 2:
            raise ValueError("codes must be a (k, n) matrix")
        k, n = codes.shape
        self.lengths = np.asarray(lengths, dtype=np.int64)
        if self.lengths.shape != (k,):
            raise ValueError("lengths must have one entry per lane")
        if self.lengths.size and int(self.lengths.max()) > n:
            raise ValueError("lane length exceeds the packed width")
        if lane_mode not in LANE_MODES:
            raise ValueError(f"lane_mode must be one of {LANE_MODES}")
        self.scoring = scoring
        self.lanes = k
        self.width = n
        self.lane_mode = lane_mode
        self.seg = seg
        self._codes = codes

    def _ladder(self) -> list[LaneLimits]:
        """The feasible lane dtypes, narrowest first, always ending in int32."""
        lo, hi = score_bounds(self.scoring)
        gap = int(self.scoring.gap)
        ladder = []
        for dt in _LADDERS[self.lane_mode]:
            seg = self.seg if self.seg is not None else _pick_seg(self.width, dt, gap, lo, hi)
            if seg < 1:
                continue
            limits = LaneLimits(dt, seg, gap, lo, hi)
            if limits.fits:
                ladder.append(limits)
        if not ladder:
            raise ValueError("no feasible lane dtype for this scoring scheme")
        return ladder

    def sw_best_scores(self, s_codes) -> np.ndarray:
        """Best local score of the query against every lane (:data:`SCORE_DTYPE`).

        Runs the ladder: scan every lane at the starting dtype, then re-scan
        only the overflow-flagged lanes one rung wider.  int32 results are
        exact by construction; should a lane flag even there (astronomical
        scoring magnitudes), it is handed to the classic
        :class:`MultiSequenceWorkspace`, whose int64 widening path has no
        ceiling.
        """
        s_codes = np.asarray(s_codes, dtype=np.uint8)
        best = np.zeros(self.lanes, dtype=SCORE_DTYPE)
        m = int(s_codes.size)
        if self.lanes == 0 or self.width == 0 or m == 0:
            return best
        ladder = self._ladder()
        codes = self._codes
        lengths = self.lengths
        indices = np.arange(self.lanes, dtype=np.int64)
        for rung, limits in enumerate(ladder):
            count_cells(m * int(lengths.sum()))
            scores, ovf = _run_scan(codes, s_codes, self.scoring, limits)
            ok = ~ovf
            best[indices[ok]] = scores[ok]
            flagged = int(ovf.sum())
            if flagged == 0:
                break
            _note_overflow(flagged)
            indices = indices[ovf]
            codes = np.ascontiguousarray(codes[ovf])
            lengths = lengths[ovf]
            if rung + 1 == len(ladder):
                rescue = MultiSequenceWorkspace(codes, lengths, self.scoring)
                best[indices] = rescue.sw_best_scores(s_codes)
                break
        return best


class StripedPairWorkspace(KernelWorkspace):
    """A :class:`KernelWorkspace` whose SW rows run the striped kernel.

    Overrides only :meth:`sw_row` and :meth:`sw_row_slice`; the batched row
    APIs and :meth:`nw_row` are inherited (the engine's batch loops dispatch
    through ``self``), so this is a drop-in behind ``compute_tile`` and the
    plan runtimes.  Rows are computed in :data:`SCORE_DTYPE` -- pairwise
    scans have no lane axis to amortize narrow dtypes over -- and are bitwise
    equal to the classic rows.  Targets wide enough for the classic int64
    widening regime (and empty targets) fall back to the inherited kernels.
    """

    __slots__ = (
        "_striped", "_seg", "_p", "_npad", "_span", "_spad", "_sgseg",
        "_ppad", "_pviews", "_opad", "_oviews", "_o2d", "_sdiag0", "_su",
        "_scarry", "_sc3", "_sdecay", "_szero", "_sprof",
    )

    def __init__(
        self,
        t_codes: np.ndarray,
        scoring: Scoring = DEFAULT_SCORING,
        eager_codes=range(4),
    ) -> None:
        super().__init__(t_codes, scoring, eager_codes)
        n = self.width
        self._striped = n > 0 and not self._wide
        if not self._striped:
            return
        lo, hi = score_bounds(scoring)
        seg = _pick_seg(n, SCORE_DTYPE, self._gap, lo, hi)
        limits = LaneLimits(SCORE_DTYPE, seg, self._gap, lo, hi)
        p = -(-n // seg)
        npad = seg * p
        self._seg = seg
        self._p = p
        self._npad = npad
        self._span = limits.span
        self._spad = SCORE_DTYPE(limits.pad)
        self._sgseg = self._gap * seg
        # Previous/current rows live in zero-padded (npad,) buffers; plane r
        # is the strided view [r::seg] (position r of every segment).  The
        # pad positions of _ppad are written once here and never touched
        # again: real cells precede every pad within its segment, so pads
        # never feed a real cell.
        self._ppad = np.zeros(npad, dtype=SCORE_DTYPE)
        self._pviews = tuple(self._ppad[r::seg] for r in range(seg))
        self._opad = np.zeros(npad, dtype=SCORE_DTYPE)
        self._oviews = tuple(self._opad[r::seg] for r in range(seg))
        self._o2d = self._opad.reshape(p, seg).T
        self._sdiag0 = np.empty(p, dtype=SCORE_DTYPE)
        self._su = np.empty(p, dtype=SCORE_DTYPE)
        self._scarry = np.empty(p, dtype=SCORE_DTYPE)
        self._sc3 = np.empty((seg, p), dtype=SCORE_DTYPE)
        self._sdecay = (SCORE_DTYPE(self._gap) * np.arange(1, seg + 1, dtype=SCORE_DTYPE))[:, None]
        # Clamp operand: a scalar 0 falls off numpy's vectorized inner loop
        # for integer maximum, an array operand does not.
        self._szero = np.zeros(npad, dtype=SCORE_DTYPE)
        self._sprof: dict[int, tuple] = {}

    def _striped_profile(self, s_char: int) -> tuple:
        planes = self._sprof.get(s_char)
        if planes is None:
            padded = np.full(self._npad, self._spad, dtype=SCORE_DTYPE)
            padded[: self.width] = self.profile_row(s_char)
            seg = self._seg
            planes = tuple(padded[r::seg] for r in range(seg))
            self._sprof[s_char] = planes
        return planes

    def sw_row(
        self, prev: np.ndarray, s_char: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        """One Smith-Waterman row; ``out`` may alias ``prev`` (in-place scan)."""
        if not self._striped:
            return super().sw_row(prev, s_char, out)
        return self._striped_row(prev, int(s_char), 0, out)

    def sw_row_slice(
        self,
        prev: np.ndarray,
        s_char: int,
        left_current: int,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """One SW row over a column slice given the left neighbour's border."""
        if not self._striped:
            return super().sw_row_slice(prev, s_char, left_current, out)
        return self._striped_row(prev, int(s_char), int(left_current), out)

    def _striped_row(
        self, prev: np.ndarray, s_char: int, border: int, out: np.ndarray | None
    ) -> np.ndarray:  # repro: kernel -- striped pairwise row advance
        if prev.size != self.width + 1:
            raise ValueError(
                f"prev row has {prev.size} cells; workspace target needs "
                f"{self.width + 1}"
            )
        pv = self._striped_profile(s_char)
        n = self.width
        seg = self._seg
        prev0 = int(prev[0])
        ppad = self._ppad
        ppad[:n] = prev[1:]
        pviews = self._pviews
        oviews = self._oviews
        diag0 = self._sdiag0
        hlast = pviews[seg - 1]
        diag0[1:] = hlast[:-1]
        diag0[0] = prev0
        u = self._su
        g = SCORE_DTYPE(self._gap)
        add_ = np.add
        max_ = np.maximum
        cur0 = oviews[0]
        add_(diag0, pv[0], out=cur0)
        add_(pviews[0], g, out=u)
        max_(cur0, u, out=cur0)
        prevp = cur0
        for r in range(1, seg):
            cur = oviews[r]
            add_(pviews[r - 1], pv[r], out=cur)
            max_(pviews[r], prevp, out=u)
            add_(u, g, out=u)
            max_(cur, u, out=cur)
            prevp = cur
        carry = self._scarry
        tm = int(prevp.max())
        if tm > self._span or border > self._span:
            tm = self._chain_pair(prevp, border)
        else:
            carry[1:] = prevp[:-1]
            carry[0] = border
            tm = max(tm, border)
        d = min(seg, max(0, (tm - 1) // (-self._gap)))
        if d > 0:
            c3 = self._sc3
            add_(carry[None, :], self._sdecay[:d], out=c3[:d])
            max_(self._o2d[:d], c3[:d], out=self._o2d[:d])
        opad = self._opad
        max_(opad, self._szero, out=opad)
        if out is None:
            out = np.empty(n + 1, dtype=SCORE_DTYPE)
        out[1:] = opad[:n]
        out[0] = border
        return out

    def _chain_pair(self, tend: np.ndarray, border: int) -> int:  # repro: kernel
        """Serial cross-segment carry chain (rows whose scores exceed span)."""
        carry = self._scarry
        gseg = self._sgseg
        e = border
        tm = border
        for c in range(self._p):
            carry[c] = e
            if e > tm:
                tm = e
            e = max(int(tend[c]), e + gseg)
        return tm
