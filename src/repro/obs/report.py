"""Render per-phase and per-process tables from an ``align --trace`` file.

``repro obs report trace.json`` digests the Chrome-trace JSON written by
:meth:`repro.obs.trace.Tracer.write_chrome_trace` into the paper's style of
summary: a per-phase table (wall time, DP cells, GCUPS, and the
communication/computation split inside each phase window -- the Fig. 13
breakdown measured on real processes) plus a per-process occupancy table and
the raw metric snapshot embedded under ``reproMetrics``.

Phase attribution is purely temporal: every worker slice is credited to the
phase span whose ``[ts, ts+dur)`` window it overlaps, clipped to the
overlap.  All spans share one monotonic clock, so this is exact up to clock
resolution.
"""

from __future__ import annotations

import json

from .metrics import gcups, safe_rate


def load_trace(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if "traceEvents" not in payload:
        raise ValueError(f"{path} is not a trace file (no traceEvents)")
    return payload


def _overlap(event: dict, lo: float, hi: float) -> float:
    start = float(event["ts"])
    end = start + float(event["dur"])
    return max(0.0, min(end, hi) - max(start, lo))


def _fmt_cells(cells) -> str:
    return f"{int(cells):,}" if cells else "-"


def phase_rows(payload: dict) -> list[dict]:
    """One summary dict per "phase"-category span, plus a total row."""
    events = payload.get("traceEvents", [])
    phases = sorted((e for e in events if e.get("cat") == "phase"), key=lambda e: e["ts"])
    others = [e for e in events if e.get("cat") in ("computation", "communication")]
    rows = []
    for ph in phases:
        lo = float(ph["ts"])
        hi = lo + float(ph["dur"])
        comp = sum(_overlap(e, lo, hi) for e in others if e["cat"] == "computation")
        comm = sum(_overlap(e, lo, hi) for e in others if e["cat"] == "communication")
        seconds = float(ph["dur"]) / 1e6
        cells = ph.get("args", {}).get("cells", 0)
        rows.append(
            {
                "phase": ph["name"],
                "seconds": seconds,
                "cells": cells,
                "gcups": gcups(cells, seconds),
                "compute_s": comp / 1e6,
                "comm_s": comm / 1e6,
                "comm_ratio": safe_rate(comm / 1e6, comp / 1e6),
            }
        )
    if rows:
        total_cells = sum(r["cells"] for r in rows)
        total_s = sum(r["seconds"] for r in rows)
        rows.append(
            {
                "phase": "total",
                "seconds": total_s,
                "cells": total_cells,
                "gcups": gcups(total_cells, total_s),
                "compute_s": sum(r["compute_s"] for r in rows),
                "comm_s": sum(r["comm_s"] for r in rows),
                "comm_ratio": safe_rate(
                    sum(r["comm_s"] for r in rows), sum(r["compute_s"] for r in rows)
                ),
            }
        )
    return rows


def process_rows(payload: dict) -> list[dict]:
    """Per-process busy breakdown over the whole trace (Fig. 13 style)."""
    events = payload.get("traceEvents", [])
    if not events:
        return []
    span_us = max(float(e["ts"]) + float(e["dur"]) for e in events) - min(
        float(e["ts"]) for e in events
    )
    by_process: dict[str, dict[str, float]] = {}
    for e in events:
        process = e.get("args", {}).get("process", f"pid{e.get('pid', '?')}")
        bucket = by_process.setdefault(process, {"computation": 0.0, "communication": 0.0})
        if e.get("cat") in bucket:
            bucket[e["cat"]] += float(e["dur"]) / 1e6
    rows = []
    for process in sorted(by_process):
        comp = by_process[process]["computation"]
        comm = by_process[process]["communication"]
        rows.append(
            {
                "process": process,
                "compute_s": comp,
                "comm_s": comm,
                "busy_pct": 100.0 * safe_rate(comp + comm, span_us / 1e6),
            }
        )
    return rows


def render_report(payload: dict) -> str:
    """The full ``obs report`` text."""
    lines = []
    rows = phase_rows(payload)
    lines.append("per-phase breakdown (wall clock)")
    header = f"{'phase':<12} {'seconds':>9} {'cells':>15} {'GCUPS':>8} {'comp s':>8} {'comm s':>8} {'comm/comp':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    if not rows:
        lines.append("(no phase spans in trace)")
    for r in rows:
        lines.append(
            f"{r['phase']:<12} {r['seconds']:>9.3f} {_fmt_cells(r['cells']):>15} "
            f"{r['gcups']:>8.3f} {r['compute_s']:>8.3f} {r['comm_s']:>8.3f} "
            f"{r['comm_ratio']:>9.2f}"
        )
    procs = process_rows(payload)
    if procs:
        lines.append("")
        lines.append("per-process occupancy")
        lines.append(f"{'process':<16} {'comp s':>8} {'comm s':>8} {'busy %':>7}")
        for r in procs:
            lines.append(
                f"{r['process']:<16} {r['compute_s']:>8.3f} {r['comm_s']:>8.3f} "
                f"{r['busy_pct']:>7.1f}"
            )
    metrics = payload.get("reproMetrics")
    if metrics:
        lines.append("")
        lines.append("metrics")
        for name, value in metrics.get("counters", {}).items():
            shown = f"{value:,}" if isinstance(value, int) else f"{value:.4g}"
            lines.append(f"  {name} = {shown}")
        for name, value in metrics.get("gauges", {}).items():
            lines.append(f"  {name} = {value:.4g}")
        for name, h in metrics.get("histograms", {}).items():
            mean = h["sum"] / h["count"] if h.get("count") else 0.0
            lines.append(f"  {name}: n={h.get('count', 0)} mean={mean:.4g}s")
    return "\n".join(lines)
